// Package streamfetch is the public API of the stream fetch engine
// reproduction (Ramirez, Santana, Larriba-Pey & Valero, MICRO-35): a
// session builder that owns the workload → profile → layout → trace → sim
// pipeline, a registry-backed set of fetch engines, and structured,
// JSON-marshallable reports.
//
// A session is built with functional options and run under a context:
//
//	rep, err := streamfetch.New("164.gzip",
//		streamfetch.WithWidth(8),
//		streamfetch.WithEngine("streams"),
//		streamfetch.WithOptimizedLayout(),
//		streamfetch.WithSeed(99),
//	).Run(ctx)
//
// Prepared artifacts (program, layouts) are cached in the session, so
// RunWith can sweep engines, widths and layouts cheaply:
//
//	s := streamfetch.New("176.gcc", streamfetch.WithOptimizedLayout())
//	for _, e := range streamfetch.Engines() {
//		rep, err := s.RunWith(ctx, streamfetch.WithEngine(e))
//		...
//	}
//
// Traces are streamed, never materialized: each run pulls its dynamic block
// sequence from a fresh trace.Source — produced on the fly from the seeded
// CFG walk, or decoded incrementally from a trace file — so trace memory is
// independent of run length and 100M+-instruction sessions are practical.
// Determinism is preserved: the same seed yields the same source sequence,
// run after run.
//
// New fetch engines plug in through the registry in internal/frontend:
// Register a factory under a name and every sweep, table and cmd picks it
// up by that name.
package streamfetch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"streamfetch/internal/cache"
	"streamfetch/internal/cfg"
	"streamfetch/internal/frontend"
	"streamfetch/internal/layout"
	"streamfetch/internal/sim"
	"streamfetch/internal/store"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

// Engines lists the registered fetch engines in registration order: the
// paper's four (ev8, ftb, streams, tcache) first, then any extensions.
func Engines() []string { return frontend.Engines() }

// Benchmarks lists the synthetic benchmark suite by name.
func Benchmarks() []string {
	suite := workload.Suite()
	names := make([]string, len(suite))
	for i, p := range suite {
		names[i] = p.Name
	}
	return names
}

// Layouts lists the code layout strategies a session accepts.
func Layouts() []string { return []string{"base", "optimized"} }

// checkLayout validates a layout name against Layouts.
func checkLayout(name string) error {
	for _, l := range Layouts() {
		if name == l {
			return nil
		}
	}
	return fmt.Errorf("streamfetch: unknown layout %q (want %s)",
		name, strings.Join(Layouts(), " or "))
}

// Progress is a snapshot handed to the WithProgress callback during a run.
type Progress struct {
	Benchmark string
	Engine    string
	Layout    string
	Width     int
	// Retired counts correct-path instructions committed so far. Total is
	// the run's instruction target when one is known up front: the trace
	// total for materialized or header-bearing replays, the configured
	// generation budget for seeded runs, or MaxInstructions when lower.
	// Total is 0 when the length is unknown until EOF (a streamed trace
	// file with no header total).
	Retired uint64
	Total   uint64
	Cycles  uint64
	// Shard identifies the reporting trace interval of a sharded run and
	// Shards the interval count; both are 0 for unsharded runs. Retired
	// and Cycles then cover the reporting shard only, while Total remains
	// the logical run's target. Sharded callbacks arrive concurrently.
	Shard  int
	Shards int
}

// prepared caches the expensive artifacts a session builds once and reuses
// across runs. The optimized layout and the materialized reference trace
// (Trace, only) are built lazily on first use; runs themselves stream and
// never populate ref.
type prepared struct {
	mu   sync.Mutex
	prog *cfg.Program
	base *layout.Layout
	opt  *layout.Layout
	ref  *trace.Trace
}

// Session is one configured simulation pipeline. Options passed to New fix
// its defaults; RunWith overrides them per run while sharing the prepared
// workload and layouts. A Session is safe for concurrent RunWith calls.
type Session struct {
	benchmark  string
	width      int
	engine     string
	engineOpts any
	layoutName string
	seed       uint64
	trainSeed  uint64
	insts      uint64
	trainInsts uint64
	maxInsts   uint64
	lineBytes  int
	traceFile  string
	traceData  *trace.Trace
	shards     int
	warmup     uint64
	coldShards bool

	// ckptStore, when non-nil, caches warm-state checkpoints at interval
	// boundaries: mid-trace shards and samples restore from it in
	// O(state) instead of functionally replaying their prefix, and
	// publish the checkpoint they produce on a miss.
	ckptStore store.Store
	// samples/sampleInsts configure sampled mode (WithSampling): K
	// measure windows of sampleInsts instructions spread evenly over the
	// trace, merged with a confidence interval instead of a full run.
	samples     int
	sampleInsts uint64

	progressEvery uint64
	onProgress    func(Progress)

	// stageTimings opts the run into per-stage wall-clock collection
	// (Report.Timings). Off by default so reports stay byte-identical to
	// their goldens; the daemon turns it on for every job it executes.
	stageTimings bool

	prep *prepared
}

// prepKey captures every field that shapes the prepared artifacts; when a
// RunWith override changes one, the override runs with fresh preparation.
type prepKey struct {
	benchmark, traceFile string
	traceData            *trace.Trace
	seed, trainSeed      uint64
	insts, trainInsts    uint64
}

func (s *Session) key() prepKey {
	return prepKey{s.benchmark, s.traceFile, s.traceData, s.seed, s.trainSeed, s.insts, s.trainInsts}
}

// Session defaults, shared with the service's session-cache key
// (prepSpec) so "default by omission" and "default spelled out" stay one
// configuration everywhere.
const (
	defaultSeed      = 99
	defaultTrainSeed = 7
	defaultInsts     = 2_000_000
	defaultWidth     = 8
	defaultEngine    = "streams"
	defaultLayout    = "base"
)

// New builds a session for one benchmark with the paper's defaults: 8-wide
// pipe, the streams engine, base layout, reference seed 99 (train seed 7),
// and a 2M-instruction trace. Configuration errors surface from
// Run/Prepare, so calls chain: New(...).Run(ctx).
func New(benchmark string, opts ...Option) *Session {
	s := &Session{
		benchmark:  benchmark,
		width:      defaultWidth,
		engine:     defaultEngine,
		layoutName: defaultLayout,
		seed:       defaultSeed,
		trainSeed:  defaultTrainSeed,
		insts:      defaultInsts,
		prep:       &prepared{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

func (s *Session) validate() error {
	if s.benchmark == "" {
		return errors.New("streamfetch: empty benchmark name")
	}
	if s.width <= 0 {
		return fmt.Errorf("streamfetch: invalid pipe width %d", s.width)
	}
	return checkLayout(s.layoutName)
}

// ensure prepares (or reuses) the program and the requested layout.
func (s *Session) ensure(ctx context.Context, layoutName string) (*layout.Layout, error) {
	p := s.prep
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.prog == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		params, err := workload.ByName(s.benchmark)
		if err != nil {
			return nil, err
		}
		p.prog = workload.Generate(params)
		p.base = layout.Baseline(p.prog)
	}
	if err := checkLayout(layoutName); err != nil {
		return nil, err
	}
	var lay *layout.Layout
	switch layoutName {
	case "base":
		lay = p.base
	case "optimized":
		if p.opt == nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			train := s.trainInsts
			if train == 0 {
				train = s.insts / 4
			}
			prof := trace.CollectProfile(p.prog, s.trainSeed, train)
			p.opt = layout.Optimized(p.prog, prof)
		}
		lay = p.opt
	}
	return lay, nil
}

// newSource builds a fresh trace source for one run: the in-memory trace
// installed by WithTrace, an incremental decode of the WithTraceFile file,
// or (the default) blocks produced on the fly from the seeded CFG walk.
// prog must be the session's prepared program.
func (s *Session) newSource(prog *cfg.Program) (trace.Source, error) {
	switch {
	case s.traceData != nil:
		return s.traceData.Source(), nil
	case s.traceFile != "":
		src, err := trace.Open(s.traceFile)
		if err != nil {
			return nil, fmt.Errorf("streamfetch: opening trace %s: %w", s.traceFile, err)
		}
		return src, nil
	default:
		return trace.NewGenSource(prog, trace.GenConfig{Seed: s.seed, MaxInsts: s.insts}), nil
	}
}

// Prepare builds the session's artifacts (program, configured layout)
// without running a simulation. Run calls it implicitly; sweeps call it up
// front to separate preparation cost from simulation cost.
func (s *Session) Prepare(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.validate(); err != nil {
		return err
	}
	_, err := s.ensure(ctx, s.layoutName)
	return err
}

// Program returns the synthesized benchmark program, preparing it if
// needed.
func (s *Session) Program() (*cfg.Program, error) {
	if _, err := s.ensure(context.Background(), "base"); err != nil {
		return nil, err
	}
	return s.prep.prog, nil
}

// Layout returns the named code layout ("base" or "optimized"), preparing
// it if needed.
func (s *Session) Layout(name string) (*layout.Layout, error) {
	return s.ensure(context.Background(), name)
}

// Source returns a fresh trace source positioned at the start of the
// session's trace: the replayed file or in-memory trace when one is
// configured, otherwise the seeded generator. Every call returns an
// independent single-use source emitting the identical sequence, so
// analyses can walk the trace repeatedly without materializing it; the
// caller closes it.
func (s *Session) Source() (trace.Source, error) {
	if _, err := s.ensure(context.Background(), "base"); err != nil {
		return nil, err
	}
	return s.newSource(s.prep.prog)
}

// Trace materializes the session's reference trace in memory, generating
// (or reading) and caching it on first call. This is a convenience for
// analyses that need random access; its memory is proportional to the
// trace length, so paper-scale runs should iterate Source instead.
func (s *Session) Trace() (*trace.Trace, error) {
	if s.traceData != nil {
		// WithTrace already holds the materialized trace.
		return s.traceData, nil
	}
	if _, err := s.ensure(context.Background(), "base"); err != nil {
		return nil, err
	}
	p := s.prep
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ref == nil {
		src, err := s.newSource(p.prog)
		if err != nil {
			return nil, err
		}
		tr, err := trace.Drain(src)
		if err != nil {
			return nil, fmt.Errorf("streamfetch: reading trace: %w", err)
		}
		p.ref = tr
	}
	return p.ref, nil
}

// Benchmark returns the session's benchmark name.
func (s *Session) Benchmark() string { return s.benchmark }

// Run executes the session's configured simulation. The context cancels
// long runs: on cancellation the partial report is returned together with
// ctx.Err().
func (s *Session) Run(ctx context.Context) (*Report, error) {
	return s.RunWith(ctx)
}

// RunWith executes one simulation with per-run option overrides, sharing
// the session's prepared artifacts. Overriding a preparation-phase option
// (benchmark, seeds, instruction counts, trace file) re-prepares for that
// run only. With WithShards(n > 1) in effect the run executes as n
// parallel trace intervals merged into one report (see RunSharded).
func (s *Session) RunWith(ctx context.Context, opts ...Option) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	run := *s
	before := run.key()
	for _, o := range opts {
		o(&run)
	}
	if run.key() != before {
		run.prep = &prepared{}
	}
	if run.samples > 0 {
		return run.runSampled(ctx)
	}
	if run.shards > 1 {
		return run.runSharded(ctx)
	}
	if err := run.validate(); err != nil {
		return nil, err
	}
	prepStart := time.Now()
	lay, err := run.ensure(ctx, run.layoutName)
	if err != nil {
		return nil, err
	}
	src, err := run.newSource(run.prep.prog)
	if err != nil {
		return nil, err
	}
	defer src.Close()

	// The run target: exact when the source knows its length up front,
	// the generation budget for seeded runs, 0 (unknown until EOF) for
	// streamed replays.
	total := uint64(0)
	if n, exact := src.TotalInsts(); exact {
		total = n
	} else if run.traceFile == "" {
		total = run.insts
	}
	if run.maxInsts > 0 && (total == 0 || run.maxInsts < total) {
		total = run.maxInsts
	}
	cfg := run.simConfig(ctx, lay, run.maxInsts, total, 0, 0)

	proc, err := sim.New(lay, src, cfg)
	if err != nil {
		return nil, err
	}
	measureStart := time.Now()
	res := proc.Run()
	measureSecs := time.Since(measureStart).Seconds()
	if err := src.Close(); err != nil {
		// A decode error mid-stream looks like a short trace to the sim;
		// surface it instead of reporting a silently truncated run.
		return nil, fmt.Errorf("streamfetch: reading trace %s: %w", run.traceFile, err)
	}
	traceInsts, _ := src.TotalInsts()
	rep := newReport(run.benchmark, lay, traceInsts, run.reportSeed(), res)
	if run.stageTimings {
		rep.Timings = &Timings{
			PrepareSeconds: measureStart.Sub(prepStart).Seconds(),
			MeasureSeconds: measureSecs,
		}
	}
	if res.Aborted {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// simConfig assembles the simulator configuration for one run (shard and
// shards are 0) or one shard of a sharded run.
func (s *Session) simConfig(ctx context.Context, lay *layout.Layout, maxInsts, total uint64, shard, shards int) sim.Config {
	cfg := sim.Config{
		Width:            s.width,
		Engine:           s.engine,
		EngineOptions:    s.engineOpts,
		MaxInsts:         maxInsts,
		ProgressInterval: s.progressEvery,
	}
	if s.lineBytes > 0 {
		cfg.Hier = cache.DefaultHierarchy(s.width)
		cfg.Hier.ICache.LineBytes = s.lineBytes
	}
	cb := s.onProgress
	cfg.OnProgress = func(retired, cycles uint64) bool {
		if ctx.Err() != nil {
			return false
		}
		if cb != nil {
			cb(Progress{
				Benchmark: s.benchmark,
				Engine:    s.engine,
				Layout:    lay.Name,
				Width:     s.width,
				Retired:   retired,
				Total:     total,
				Cycles:    cycles,
				Shard:     shard,
				Shards:    shards,
			})
		}
		return true
	}
	return cfg
}

// reportSeed returns the seed a report should carry: a replayed trace was
// not generated from the session seed, so it is not attributed to one.
func (s *Session) reportSeed() uint64 {
	if s.traceFile != "" || s.traceData != nil {
		return 0
	}
	return s.seed
}
