package streamfetch

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestStreamingSourceEquivalence: the same benchmark and seed must produce
// byte-identical Report JSON whether the trace is generated on the fly,
// replayed incrementally from a file, or replayed from a materialized
// in-memory trace. (Seed attribution differs by construction — replays
// aren't attributed to a seed — so it is normalized before comparing.)
func TestStreamingSourceEquivalence(t *testing.T) {
	ctx := context.Background()
	const insts = 80_000
	newSession := func(opts ...Option) *Session {
		return New("164.gzip", append([]Option{
			WithInstructions(insts),
			WithSeed(99),
			WithOptimizedLayout(),
		}, opts...)...)
	}

	// Generator-backed: blocks produced on the fly from the seeded walk.
	gen := newSession()

	// File-backed: stream the same source to disk, then replay it.
	path := filepath.Join(t.TempDir(), "equiv.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := newSession().WriteTrace(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if info.Blocks == 0 || info.Insts < insts {
		t.Fatalf("implausible trace written: %+v", info)
	}
	file := newSession(WithTraceFile(path))

	// In-memory: materialize the trace and wrap it.
	tr, err := newSession().Trace()
	if err != nil {
		t.Fatal(err)
	}
	mem := newSession(WithTrace(tr))

	marshal := func(name string, s *Session) []byte {
		rep, err := s.Run(ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rep.Seed = 0 // replays are not attributed to a seed
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return buf.Bytes()
	}

	got := map[string][]byte{
		"generator": marshal("generator", gen),
		"file":      marshal("file", file),
		"in-memory": marshal("in-memory", mem),
	}
	for name, b := range got {
		if !bytes.Equal(b, got["generator"]) {
			t.Errorf("%s report differs from generator report:\n%s\nvs\n%s",
				name, b, got["generator"])
		}
	}
}

// TestSourceDeterminism: repeated sources from one session must emit the
// identical sequence — that is what keeps run-to-run reports reproducible
// without a materialized reference trace.
func TestSourceDeterminism(t *testing.T) {
	s := New("175.vpr", WithInstructions(40_000))
	a, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; ; i++ {
		ida, oka := a.Next()
		idb, okb := b.Next()
		if oka != okb || ida != idb {
			t.Fatalf("sources diverge at block %d: (%v,%v) vs (%v,%v)", i, ida, oka, idb, okb)
		}
		if !oka {
			break
		}
	}
	na, ea := a.TotalInsts()
	nb, eb := b.TotalInsts()
	if na != nb || !ea || !eb {
		t.Fatalf("exhausted sources disagree on totals: (%d,%v) vs (%d,%v)", na, ea, nb, eb)
	}
}

// TestWriteTraceCancellation: a cancelled context stops a streaming export.
func TestWriteTraceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	if _, err := New("164.gzip", WithInstructions(1_000_000)).WriteTrace(ctx, &buf); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWriteTraceForeignTraceIndexless: re-encoding a trace recorded for a
// different benchmark must not write a seek index — the session's program
// has the wrong block lengths, and wrong instruction offsets would corrupt
// sharded seeks silently.
func TestWriteTraceForeignTraceIndexless(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "gzip.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	own, err := New("164.gzip", WithInstructions(30_000)).WriteTrace(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !own.Seekable {
		t.Fatal("native trace written without an index")
	}
	// A 176.gcc session replaying the gzip file re-encodes a trace named
	// 164.gzip: block IDs may be in range of gcc's program by accident,
	// so the name mismatch must disable the index.
	var buf bytes.Buffer
	foreign, err := New("176.gcc", WithTraceFile(path)).WriteTrace(ctx, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if foreign.Seekable {
		t.Fatal("foreign trace re-encoded with an index from the wrong program")
	}
}

// TestInspectTraceRejectsTruncation: a trace cut off mid-stream (no footer)
// must be reported as an error, not summarized as a short trace. Clipping
// only the trailing chunk index is harmless — the stream and footer are
// intact — so the cut has to land inside the block stream itself.
func TestInspectTraceRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := New("164.gzip", WithInstructions(50_000)).WriteTrace(context.Background(), &buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	if _, err := InspectTrace(bytes.NewReader(whole)); err != nil {
		t.Fatalf("intact trace rejected: %v", err)
	}
	if _, err := InspectTrace(bytes.NewReader(whole[:len(whole)/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}
