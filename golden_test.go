package streamfetch_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"streamfetch"
)

// TestReportGolden pins the full 2M-instruction Report JSON for fixed seeds
// against goldens captured before the O(1)-decode-table/ring-buffer
// refactor: the hot-path rework must be invisible in every simulated
// metric, byte for byte. Regenerate the goldens ONLY for a deliberate
// model change, never to absorb an accidental one.
func TestReportGolden(t *testing.T) {
	cases := []struct {
		engine, layout, golden string
	}{
		{"streams", "optimized", "golden_report_gzip_w8_streams_opt.json"},
		{"ev8", "base", "golden_report_gzip_w8_ev8_base.json"},
		{"tcache", "optimized", "golden_report_gzip_w8_tcache_opt.json"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.engine+"/"+tc.layout, func(t *testing.T) {
			t.Parallel()
			opts := []streamfetch.Option{
				streamfetch.WithWidth(8),
				streamfetch.WithEngine(tc.engine),
			}
			if tc.layout == "optimized" {
				opts = append(opts, streamfetch.WithOptimizedLayout())
			}
			rep, err := streamfetch.New("164.gzip", opts...).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if err := rep.WriteJSON(&got); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("report JSON diverged from %s\ngot:\n%s\nwant:\n%s",
					tc.golden, got.Bytes(), want)
			}
		})
	}
}
