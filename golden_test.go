package streamfetch_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"streamfetch"
)

// goldenCases pins the 2M-instruction golden configurations shared by the
// plain-run and sharded-run byte-identity tests.
var goldenCases = []struct {
	engine, layout, golden string
}{
	{"streams", "optimized", "golden_report_gzip_w8_streams_opt.json"},
	{"ev8", "base", "golden_report_gzip_w8_ev8_base.json"},
	{"tcache", "optimized", "golden_report_gzip_w8_tcache_opt.json"},
}

// goldenSession builds the session for one golden case.
func goldenSession(engine, layout string) *streamfetch.Session {
	return streamfetch.New("164.gzip",
		streamfetch.WithWidth(8),
		streamfetch.WithEngine(engine),
		streamfetch.WithLayout(layout),
	)
}

// assertReportGolden compares a report's JSON byte-for-byte against a
// golden file.
func assertReportGolden(t *testing.T, rep *streamfetch.Report, golden string) {
	t.Helper()
	var got bytes.Buffer
	if err := rep.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", golden))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("report JSON diverged from %s\ngot:\n%s\nwant:\n%s",
			golden, got.Bytes(), want)
	}
}

// TestReportGolden pins the full 2M-instruction Report JSON for fixed seeds
// against goldens captured before the O(1)-decode-table/ring-buffer
// refactor: the hot-path rework must be invisible in every simulated
// metric, byte for byte. Regenerate the goldens ONLY for a deliberate
// model change, never to absorb an accidental one.
func TestReportGolden(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.engine+"/"+tc.layout, func(t *testing.T) {
			t.Parallel()
			rep, err := goldenSession(tc.engine, tc.layout).Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			assertReportGolden(t, rep, tc.golden)
		})
	}
}
