// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablations for the design choices called out in
// DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the figures it regenerates through b.ReportMetric
// (IPC, misprediction rates, fetch IPC, unit sizes) so `benchstat` can track
// them across changes; the full formatted tables come from cmd/experiments.
//
// This is an external test package (streamfetch_test): it exercises the
// public session API together with internal/experiments, which itself
// depends on package streamfetch.
package streamfetch_test

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"streamfetch"
	"streamfetch/internal/core"
	"streamfetch/internal/experiments"
	"streamfetch/internal/frontend"
	"streamfetch/internal/stats"
)

// benchInsts keeps the per-iteration work laptop-scale; cmd/experiments runs
// the full-length version.
const benchInsts = 300_000

var (
	prepOnce    sync.Once
	prepBenches []experiments.Bench
	prepCfg     experiments.Config
	prepErr     error
)

// benchEngines is Engines() minus the chaos test doubles: the chaos tests
// register deliberately misbehaving engines at runtime, and a `go test
// -bench` run in the same binary must not sweep them into the tables.
func benchEngines() []string {
	var es []string
	for _, e := range streamfetch.Engines() {
		if !strings.HasPrefix(e, "chaos-") {
			es = append(es, e)
		}
	}
	return es
}

// prepared builds a three-benchmark subset once, shared by every benchmark.
func prepared(b *testing.B) ([]experiments.Bench, experiments.Config) {
	b.Helper()
	prepOnce.Do(func() {
		prepCfg = experiments.DefaultConfig()
		prepCfg.TraceInsts = benchInsts
		prepCfg.TrainInsts = benchInsts / 4
		prepCfg.Benchmarks = []string{"164.gzip", "176.gcc", "300.twolf"}
		prepBenches, prepErr = experiments.Prepare(context.Background(), prepCfg)
	})
	if prepErr != nil {
		b.Fatal(prepErr)
	}
	return prepBenches, prepCfg
}

// BenchmarkFig8IPC regenerates Figure 8: harmonic-mean IPC per engine and
// layout, for 2-, 4- and 8-wide pipelines.
func BenchmarkFig8IPC(b *testing.B) {
	benches, cfg := prepared(b)
	for _, width := range []int{2, 4, 8} {
		width := width
		b.Run(fmt.Sprintf("width%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells, err := experiments.Sweep(context.Background(), benches, width,
					[]string{"base", "optimized"}, benchEngines(), cfg.Parallel)
				if err != nil {
					b.Fatal(err)
				}
				h := experiments.HarmonicIPC(cells)
				for _, e := range benchEngines() {
					b.ReportMetric(h[[2]string{"optimized", e}], e+"-opt-IPC")
				}
			}
		})
	}
}

// BenchmarkFig9PerBenchmark regenerates Figure 9: per-benchmark IPC on the
// 8-wide optimized configuration.
func BenchmarkFig9PerBenchmark(b *testing.B) {
	benches, cfg := prepared(b)
	for i := 0; i < b.N; i++ {
		if err := experiments.Fig9(io.Discard, benches, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1UnitSizes regenerates Table 1: mean dynamic fetch-unit
// sizes (basic block, trace, stream).
func BenchmarkTable1UnitSizes(b *testing.B) {
	benches, _ := prepared(b)
	for i := 0; i < b.N; i++ {
		var bb, st, tr []float64
		for _, bench := range benches {
			src, err := bench.Session.Source()
			if err != nil {
				b.Fatal(err)
			}
			u := experiments.UnitSizes(bench.Opt, src)
			src.Close()
			bb = append(bb, u.BasicBlock)
			st = append(st, u.Stream)
			tr = append(tr, u.Trace)
		}
		b.ReportMetric(stats.Mean(bb), "basicblock-insts")
		b.ReportMetric(stats.Mean(tr), "trace-insts")
		b.ReportMetric(stats.Mean(st), "stream-insts")
	}
}

// BenchmarkTable3FetchMetrics regenerates Table 3: misprediction rate and
// fetch IPC per engine on the 8-wide processor with optimized layouts.
func BenchmarkTable3FetchMetrics(b *testing.B) {
	benches, cfg := prepared(b)
	for _, e := range benchEngines() {
		e := e
		b.Run(e, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells, err := experiments.Sweep(context.Background(), benches, 8,
					[]string{"optimized"}, []string{e}, cfg.Parallel)
				if err != nil {
					b.Fatal(err)
				}
				var mp, fi []float64
				for _, c := range cells {
					mp = append(mp, c.Result.MispredRate)
					fi = append(fi, c.Result.FetchIPC)
				}
				b.ReportMetric(100*stats.Mean(mp), "mispred-%")
				b.ReportMetric(stats.HarmonicMean(fi), "fetch-IPC")
			}
		})
	}
}

// runStreams runs one bench's session with the streams engine on the 8-wide
// optimized configuration, with per-run overrides.
func runStreams(b *testing.B, bench experiments.Bench, opts ...streamfetch.Option) *streamfetch.Report {
	b.Helper()
	opts = append([]streamfetch.Option{
		streamfetch.WithWidth(8),
		streamfetch.WithEngine("streams"),
		streamfetch.WithOptimizedLayout(),
	}, opts...)
	rep, err := bench.Session.RunWith(context.Background(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

// BenchmarkFig7Misalignment sweeps the instruction cache line width (1x, 2x,
// 4x the pipe width) for the stream engine, the misalignment effect of
// Figure 7: longer lines reduce the chance a stream crosses a line boundary.
func BenchmarkFig7Misalignment(b *testing.B) {
	benches, _ := prepared(b)
	for _, mult := range []int{1, 2, 4} {
		mult := mult
		b.Run(fmt.Sprintf("line%dx", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var fi []float64
				for _, bench := range benches {
					r := runStreams(b, bench, streamfetch.WithICacheLineBytes(mult*8*4))
					fi = append(fi, r.FetchIPC)
				}
				b.ReportMetric(stats.HarmonicMean(fi), "fetch-IPC")
			}
		})
	}
}

// BenchmarkAblationStreamPredictor compares the next-stream-predictor design
// choices of §3.2: the full cascade, no mispredict upgrades, a single
// address-indexed table, and strict path priority on double hits.
func BenchmarkAblationStreamPredictor(b *testing.B) {
	benches, _ := prepared(b)
	variants := []struct {
		name string
		mut  func(*core.PredictorConfig)
	}{
		{"cascade", nil},
		{"noupgrade", func(p *core.PredictorConfig) { p.NoUpgrade = true }},
		{"singletable", func(p *core.PredictorConfig) { p.NoCascade = true }},
		{"pathpriority", func(p *core.PredictorConfig) { p.AlwaysPathPriority = true }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var ipc, mp []float64
				for _, bench := range benches {
					sc := frontend.DefaultStreamConfig()
					if v.mut != nil {
						v.mut(&sc.Predictor)
					}
					r := runStreams(b, bench, streamfetch.WithEngineOptions(sc))
					ipc = append(ipc, r.IPC)
					mp = append(mp, r.MispredRate)
				}
				b.ReportMetric(stats.HarmonicMean(ipc), "IPC")
				b.ReportMetric(100*stats.Mean(mp), "mispred-%")
			}
		})
	}
}

// BenchmarkAblationICacheBanks compares the paper's chosen wide-line
// instruction cache (one 4x-width line per cycle) against §3.4's
// alternative: a multi-banked cache reading two consecutive 1x-width lines
// per cycle. The wide line wins on misalignment without the interchange
// network.
func BenchmarkAblationICacheBanks(b *testing.B) {
	benches, _ := prepared(b)
	variants := []struct {
		name     string
		lineMult int
		banks    int
	}{
		{"wide-line-4x", 4, 1},
		{"dual-bank-1x", 1, 2},
		{"single-1x", 1, 1},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var fi []float64
				for _, bench := range benches {
					sc := frontend.DefaultStreamConfig()
					sc.ICacheBanks = v.banks
					r := runStreams(b, bench,
						streamfetch.WithEngineOptions(sc),
						streamfetch.WithICacheLineBytes(v.lineMult*8*4))
					fi = append(fi, r.FetchIPC)
				}
				b.ReportMetric(stats.HarmonicMean(fi), "fetch-IPC")
			}
		})
	}
}

// BenchmarkAblationFTQDepth sweeps the fetch target queue depth (the
// decoupling buffer of §3.3).
func BenchmarkAblationFTQDepth(b *testing.B) {
	benches, _ := prepared(b)
	for _, depth := range []int{1, 2, 4, 8} {
		depth := depth
		b.Run(fmt.Sprintf("ftq%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var ipc []float64
				for _, bench := range benches {
					sc := frontend.DefaultStreamConfig()
					sc.FTQDepth = depth
					r := runStreams(b, bench, streamfetch.WithEngineOptions(sc))
					ipc = append(ipc, r.IPC)
				}
				b.ReportMetric(stats.HarmonicMean(ipc), "IPC")
			}
		})
	}
}

// BenchmarkSimThroughput measures raw simulator speed (simulated
// instructions per second) for each engine.
func BenchmarkSimThroughput(b *testing.B) {
	benches, _ := prepared(b)
	bench := benches[0]
	for _, e := range benchEngines() {
		e := e
		b.Run(e, func(b *testing.B) {
			var retired uint64
			for i := 0; i < b.N; i++ {
				rep, err := bench.Session.RunWith(context.Background(),
					streamfetch.WithWidth(8),
					streamfetch.WithEngine(e),
					streamfetch.WithOptimizedLayout())
				if err != nil {
					b.Fatal(err)
				}
				retired += rep.Retired
			}
			b.ReportMetric(float64(retired)/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}
