package streamfetch

import "testing"

// TestSessionCacheLRU: the cache reuses sessions for repeated specs,
// bounds its size, and evicts least-recently-used first — so a client
// sweeping the key space (fresh seed per request) cannot grow a daemon's
// prepared-artifact memory without limit.
func TestSessionCacheLRU(t *testing.T) {
	c := sessionCache{cap: 2}
	a := c.get(prepSpec{benchmark: "164.gzip", seed: 1})
	if got := c.get(prepSpec{benchmark: "164.gzip", seed: 1}); got != a {
		t.Fatal("repeated spec did not reuse the cached session")
	}
	b := c.get(prepSpec{benchmark: "164.gzip", seed: 2})
	_ = b
	// Touch a so seed 2 is now least recently used, then overflow.
	c.get(prepSpec{benchmark: "164.gzip", seed: 1})
	c.get(prepSpec{benchmark: "164.gzip", seed: 3})
	if got := c.size(); got != 2 {
		t.Fatalf("cache size %d, want 2", got)
	}
	if got := c.get(prepSpec{benchmark: "164.gzip", seed: 1}); got != a {
		t.Error("recently used session was evicted")
	}
	if got := c.get(prepSpec{benchmark: "164.gzip", seed: 2}); got == b {
		t.Error("least recently used session was not evicted")
	}
}
