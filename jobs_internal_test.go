package streamfetch

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

// TestSessionCacheLRU: the cache reuses sessions for repeated specs,
// bounds its size, and evicts least-recently-used first — so a client
// sweeping the key space (fresh seed per request) cannot grow a daemon's
// prepared-artifact memory without limit.
func TestSessionCacheLRU(t *testing.T) {
	c := sessionCache{cap: 2}
	a := c.get(prepSpec{benchmark: "164.gzip", seed: 1})
	if got := c.get(prepSpec{benchmark: "164.gzip", seed: 1}); got != a {
		t.Fatal("repeated spec did not reuse the cached session")
	}
	b := c.get(prepSpec{benchmark: "164.gzip", seed: 2})
	_ = b
	// Touch a so seed 2 is now least recently used, then overflow.
	c.get(prepSpec{benchmark: "164.gzip", seed: 1})
	c.get(prepSpec{benchmark: "164.gzip", seed: 3})
	if got := c.size(); got != 2 {
		t.Fatalf("cache size %d, want 2", got)
	}
	if got := c.get(prepSpec{benchmark: "164.gzip", seed: 1}); got != a {
		t.Error("recently used session was evicted")
	}
	if got := c.get(prepSpec{benchmark: "164.gzip", seed: 2}); got == b {
		t.Error("least recently used session was not evicted")
	}
}

// TestEffTimeoutOverflow: timeout_ms near MaxInt64 used to overflow
// time.Duration(ms) * time.Millisecond into a negative duration, which
// read as "no timeout" in one branch and bypassed -max-job-time in the
// other. The conversion must saturate and the server cap must still win.
func TestEffTimeoutOverflow(t *testing.T) {
	if d := msToDuration(math.MaxInt64); d <= 0 {
		t.Fatalf("msToDuration(MaxInt64) = %d, want a positive saturated duration", d)
	}
	if d := msToDuration(math.MaxInt64/int64(time.Millisecond) + 1); d != time.Duration(math.MaxInt64) {
		t.Fatalf("just past the overflow threshold: got %d, want saturation", d)
	}
	if d := msToDuration(1500); d != 1500*time.Millisecond {
		t.Fatalf("ordinary value distorted: got %s", d)
	}
	m := &jobManager{maxJobTime: time.Minute}
	if d := m.effTimeout(math.MaxInt64); d != time.Minute {
		t.Fatalf("server cap bypassed by overflowing timeout_ms: got %s, want 1m", d)
	}
	m = &jobManager{} // no cap: saturated, but bounded and positive
	if d := m.effTimeout(math.MaxInt64); d != time.Duration(math.MaxInt64) {
		t.Fatalf("uncapped overflow: got %d, want MaxInt64", d)
	}
}

func queuedJob(id string, pri int, deadline time.Time, seq int) *job {
	return &job{id: id, state: JobQueued, priority: pri, deadline: deadline,
		seq: seq, done: make(chan struct{})}
}

// TestJobQueueOrdering: the admission queue pops by priority class first,
// earliest deadline within a class (no deadline sorts last), submission
// order as the tie-break.
func TestJobQueueOrdering(t *testing.T) {
	now := time.Now()
	q := newJobQueue()
	q.push(queuedJob("low", -1, time.Time{}, 1))
	q.push(queuedJob("fifo-b", 0, time.Time{}, 5))
	q.push(queuedJob("deadline-late", 0, now.Add(time.Hour), 4))
	q.push(queuedJob("high", 3, time.Time{}, 3))
	q.push(queuedJob("deadline-soon", 0, now.Add(time.Minute), 6))
	q.push(queuedJob("fifo-a", 0, time.Time{}, 2))
	var got []string
	for q.len() > 0 {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop failed with jobs queued")
		}
		got = append(got, j.id)
	}
	want := "high deadline-soon deadline-late fifo-a fifo-b low"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("pop order %q, want %q", s, want)
	}
}

// TestJobQueueSwap: a job the dispatcher holds while waiting for
// capacity is re-offered against the queue head, so a higher-priority
// arrival overtakes it instead of waiting behind it.
func TestJobQueueSwap(t *testing.T) {
	q := newJobQueue()
	held := queuedJob("held", 0, time.Time{}, 1)
	if got := q.swap(held); got != held {
		t.Fatal("swap against an empty queue must return the held job")
	}
	q.push(queuedJob("later-equal", 0, time.Time{}, 2))
	if got := q.swap(held); got != held {
		t.Fatal("an equal-priority later arrival must not displace the held job")
	}
	hi := queuedJob("hi", 5, time.Time{}, 3)
	q.push(hi)
	got := q.swap(held)
	if got != hi {
		t.Fatalf("swap returned %s, want the higher-priority arrival", got.id)
	}
	// The held job went back: it and later-equal drain in seq order.
	j1, _ := q.pop()
	j2, _ := q.pop()
	if j1 != held || j2 == nil || j2.id != "later-equal" {
		t.Fatalf("after swap, drained %v then %v", j1.id, j2.id)
	}
}

// TestJobQueueCloseDrains: close ends pop-blocking but queued jobs still
// drain (shutdown completes accepted work), and push stays usable for
// the dispatcher's internal re-offers.
func TestJobQueueCloseDrains(t *testing.T) {
	q := newJobQueue()
	q.push(queuedJob("a", 0, time.Time{}, 1))
	q.close()
	q.push(queuedJob("b", 0, time.Time{}, 2))
	if j, ok := q.pop(); !ok || j.id != "a" {
		t.Fatalf("first pop after close: %v %v", j, ok)
	}
	if j, ok := q.pop(); !ok || j.id != "b" {
		t.Fatalf("second pop after close: %v %v", j, ok)
	}
	if j, ok := q.pop(); ok || j != nil {
		t.Fatal("empty closed queue must report closed, not block")
	}
}

// TestRunGridErrorCellsProgress: a cell that completes with an error is
// still a completed cell. onCell used to be skipped on the error path,
// so a sweep grinding through erroring cells looked stalled to the
// watchdog and its cells_done never reached cells_total.
func TestRunGridErrorCellsProgress(t *testing.T) {
	sess := New("164.gzip", WithInstructions(5_000))
	var done, total int
	cells, err := RunGrid(context.Background(), []*Session{sess},
		[]int{-1}, // invalid width: the cell fails without simulating
		[]string{"base"}, []string{"streams"}, false,
		func(d, tot int) { done, total = d, tot })
	if err == nil {
		t.Fatal("invalid width must fail the cell")
	}
	if len(cells) != 1 || cells[0].Error == "" {
		t.Fatalf("expected one errored cell, got %+v", cells)
	}
	if done != 1 || total != 1 {
		t.Fatalf("progress after an erroring cell: done=%d total=%d, want 1/1", done, total)
	}
}
