// Fetch architecture comparison on one benchmark: run every registered
// fetch engine side by side across pipe widths, mirroring the structure of
// the paper's Figure 8 for a single program. The session prepares the
// workload, layout and trace once; RunWith sweeps engines and widths over
// the shared artifacts.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"streamfetch"
)

func main() {
	bench := flag.String("bench", "176.gcc", "benchmark name")
	insts := flag.Uint64("insts", 2_000_000, "dynamic instructions")
	flag.Parse()

	ctx := context.Background()
	session := streamfetch.New(*bench,
		streamfetch.WithOptimizedLayout(),
		streamfetch.WithInstructions(*insts),
	)
	if err := session.Prepare(ctx); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s, optimized layout, %d instructions\n\n", *bench, *insts)
	for _, width := range []int{2, 4, 8} {
		fmt.Printf("%d-wide pipeline:\n", width)
		fmt.Printf("  %-8s %8s %10s %10s %10s\n", "engine", "IPC", "fetch IPC", "mispred", "unit size")
		for _, e := range streamfetch.Engines() {
			rep, err := session.RunWith(ctx,
				streamfetch.WithWidth(width),
				streamfetch.WithEngine(e),
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("  %-8s %8.3f %10.2f %9.2f%% %10.1f\n",
				e, rep.IPC, rep.FetchIPC, 100*rep.MispredRate, rep.Fetch.MeanUnitLen)
		}
		fmt.Println()
	}
}
