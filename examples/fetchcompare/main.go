// Fetch architecture comparison on one benchmark: run the EV8, FTB, stream
// and trace cache front-ends side by side across pipe widths, mirroring the
// structure of the paper's Figure 8 for a single program.
package main

import (
	"flag"
	"fmt"

	"streamfetch/internal/layout"
	"streamfetch/internal/sim"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

func main() {
	bench := flag.String("bench", "176.gcc", "benchmark name")
	insts := flag.Uint64("insts", 2_000_000, "dynamic instructions")
	flag.Parse()

	params, err := workload.ByName(*bench)
	if err != nil {
		panic(err)
	}
	prog := workload.Generate(params)
	prof := trace.CollectProfile(prog, 7, *insts/4)
	lay := layout.Optimized(prog, prof)
	tr := trace.Generate(prog, trace.GenConfig{Seed: 99, MaxInsts: *insts})

	fmt.Printf("%s, optimized layout, %d instructions\n\n", *bench, tr.Insts)
	for _, width := range []int{2, 4, 8} {
		fmt.Printf("%d-wide pipeline:\n", width)
		fmt.Printf("  %-8s %8s %10s %10s %10s\n", "engine", "IPC", "fetch IPC", "mispred", "unit size")
		for _, e := range sim.Kinds() {
			r := sim.Run(lay, tr, sim.Config{Width: width, Engine: e})
			fmt.Printf("  %-8s %8.3f %10.2f %9.2f%% %10.1f\n",
				e, r.IPC, r.FetchIPC, 100*r.MispredRate, r.Fetch.MeanUnitLen())
		}
		fmt.Println()
	}
}
