// Layout optimization effects: measure, for each benchmark, how
// profile-guided code layout changes the conditional taken rate, the mean
// stream length, and the instruction cache miss rate — the three effects
// (§2.4) the stream fetch architecture exploits. Sessions prepare both
// layouts once; the static walk streams the trace from a fresh session
// source per layout (nothing is materialized) and the I-cache miss rate
// comes from a stream-engine run.
package main

import (
	"context"
	"fmt"
	"os"

	"streamfetch"
	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
	"streamfetch/internal/trace"
)

func main() {
	ctx := context.Background()
	fmt.Printf("%-14s %26s %26s\n", "", "base", "optimized")
	fmt.Printf("%-14s %8s %8s %8s %8s %8s %8s\n",
		"benchmark", "takenR", "stream", "ic-miss", "takenR", "stream", "ic-miss")
	for _, name := range streamfetch.Benchmarks() {
		session := streamfetch.New(name,
			streamfetch.WithInstructions(1_000_000),
			streamfetch.WithTrainInstructions(500_000),
		)

		var cells [2][3]float64
		for i, layoutName := range streamfetch.Layouts() {
			lay, err := session.Layout(layoutName)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep, err := session.RunWith(ctx,
				streamfetch.WithWidth(8),
				streamfetch.WithEngine("streams"),
				streamfetch.WithLayout(layoutName),
			)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			src, err := session.Source()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			taken, stream := measure(lay, src)
			src.Close()
			cells[i] = [3]float64{taken, stream, rep.ICache.MissRate}
		}
		fmt.Printf("%-14s %7.1f%% %8.1f %7.2f%% %7.1f%% %8.1f %7.2f%%\n",
			name,
			100*cells[0][0], cells[0][1], 100*cells[0][2],
			100*cells[1][0], cells[1][1], 100*cells[1][2])
	}
}

// measure returns (conditional taken rate, mean stream length) from a
// static walk of the streamed trace under the layout.
func measure(lay *layout.Layout, src trace.Source) (takenRate, streamLen float64) {
	var buf []layout.DynInst
	var cond, condTaken, insts, taken uint64
	trace.ForEachPair(src, func(cur, next cfg.BlockID) {
		buf = lay.AppendDyn(buf[:0], cur, next)
		for _, d := range buf {
			insts++
			if d.Branch == isa.BranchCond {
				cond++
				if d.Taken {
					condTaken++
				}
			}
			if d.IsBranch() && d.Taken {
				taken++
			}
		}
	})
	return float64(condTaken) / float64(cond), float64(insts) / float64(taken)
}
