// Layout optimization effects: measure, for each benchmark, how
// profile-guided code layout changes the conditional taken rate, the mean
// stream length, and the instruction cache miss rate — the three effects
// (§2.4) the stream fetch architecture exploits.
package main

import (
	"fmt"

	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
	"streamfetch/internal/sim"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

func main() {
	fmt.Printf("%-14s %26s %26s\n", "", "base", "optimized")
	fmt.Printf("%-14s %8s %8s %8s %8s %8s %8s\n",
		"benchmark", "takenR", "stream", "ic-miss", "takenR", "stream", "ic-miss")
	for _, params := range workload.Suite() {
		prog := workload.Generate(params)
		prof := trace.CollectProfile(prog, 7, 500_000)
		tr := trace.Generate(prog, trace.GenConfig{Seed: 99, MaxInsts: 1_000_000})
		base := layout.Baseline(prog)
		opt := layout.Optimized(prog, prof)

		bt, bs, bi := measure(base, tr)
		ot, os_, oi := measure(opt, tr)
		fmt.Printf("%-14s %7.1f%% %8.1f %7.2f%% %7.1f%% %8.1f %7.2f%%\n",
			params.Name, 100*bt, bs, 100*bi, 100*ot, os_, 100*oi)
	}
}

// measure returns (conditional taken rate, mean stream length, icache miss
// rate under the stream engine).
func measure(lay *layout.Layout, tr *trace.Trace) (takenRate, streamLen, icMiss float64) {
	var buf []layout.DynInst
	var cond, condTaken, insts, taken uint64
	for i, id := range tr.Blocks {
		next := cfg.NoBlock
		if i+1 < len(tr.Blocks) {
			next = tr.Blocks[i+1]
		}
		buf = lay.AppendDyn(buf[:0], id, next)
		for _, d := range buf {
			insts++
			if d.Branch == isa.BranchCond {
				cond++
				if d.Taken {
					condTaken++
				}
			}
			if d.IsBranch() && d.Taken {
				taken++
			}
		}
	}
	r := sim.Run(lay, tr, sim.Config{Width: 8, Engine: sim.EngineStreams})
	return float64(condTaken) / float64(cond),
		float64(insts) / float64(taken),
		r.ICache.MissRate()
}
