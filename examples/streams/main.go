// Figure-1 walk-through: build the paper's example control flow graph (a
// loop containing an if-then-else hammock), lay it out with profile
// guidance, and enumerate the instruction streams that execution produces.
//
// The paper's example: basic blocks A, B, C, D where A->B is the frequent
// path and C the infrequent else-arm. After layout optimization the frequent
// path A,B,D falls through not-taken branches, so the whole loop body is a
// single stream; the infrequent path produces the streams (A,..), (C,..)
// through taken branches.
package main

import (
	"fmt"

	"streamfetch/internal/cfg"
	"streamfetch/internal/core"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
	"streamfetch/internal/trace"
)

// buildFigure1 constructs the loop { if (likely) B else C; D } CFG by hand.
func buildFigure1() *cfg.Program {
	mk := func(id cfg.BlockID, n int, br isa.BranchType) *cfg.Block {
		classes := make([]isa.Class, n)
		if br != isa.BranchNone {
			classes[n-1] = isa.ClassBranch
		}
		return &cfg.Block{ID: id, NInsts: n, Classes: classes, Branch: br, Cont: cfg.NoBlock}
	}
	// A: loop header + condition of the hammock.
	a := mk(0, 4, isa.BranchCond)
	a.Cond = cfg.CondModel{Kind: cfg.CondBias, P: 0.10} // C is infrequent
	// B: frequent then-arm.
	b := mk(1, 5, isa.BranchNone)
	// C: infrequent else-arm.
	c := mk(2, 5, isa.BranchUncond)
	// D: join + loop back edge.
	d := mk(3, 6, isa.BranchCond)
	d.Cond = cfg.CondModel{Kind: cfg.CondLoop, Trip: 8}
	// E: loop exit.
	e := mk(4, 3, isa.BranchUncond)

	a.Succs = []cfg.Edge{{To: b.ID, Prob: 0.9}, {To: c.ID, Prob: 0.1}}
	b.Succs = []cfg.Edge{{To: d.ID, Prob: 1}}
	c.Succs = []cfg.Edge{{To: d.ID, Prob: 1}}
	d.Succs = []cfg.Edge{{To: e.ID, Prob: 1.0 / 8}, {To: a.ID, Prob: 7.0 / 8}}
	e.Succs = []cfg.Edge{{To: a.ID, Prob: 1}}

	p := &cfg.Program{
		Name:   "figure1",
		Blocks: []*cfg.Block{a, b, c, d, e},
		Procs:  []cfg.Proc{{Name: "main", Entry: 0, Blocks: []cfg.BlockID{0, 1, 2, 3, 4}}},
		Entry:  0,
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

func main() {
	prog := buildFigure1()
	names := map[cfg.BlockID]string{0: "A", 1: "B", 2: "C", 3: "D", 4: "E"}

	prof := trace.CollectProfile(prog, 1, 20_000)
	for _, lay := range []*layout.Layout{layout.Baseline(prog), layout.Optimized(prog, prof)} {
		fmt.Printf("=== %s layout\n", lay.Name)
		fmt.Print("block order: ")
		for i, id := range lay.Order {
			if i > 0 {
				fmt.Print(" ")
			}
			fmt.Print(names[id])
		}
		fmt.Println()

		// Execute and enumerate the streams.
		tr := trace.Generate(prog, trace.GenConfig{Seed: 42, MaxInsts: 5_000})
		builder := core.NewBuilder(lay.Start(prog.Entry))
		var buf []layout.DynInst
		seen := map[core.Stream]int{}
		for i, id := range tr.Blocks {
			next := cfg.NoBlock
			if i+1 < len(tr.Blocks) {
				next = tr.Blocks[i+1]
			}
			buf = lay.AppendDyn(buf[:0], id, next)
			for _, d := range buf {
				if cl, ok := builder.Commit(d.Addr, d.Branch, d.Taken, d.NextAddr, false); ok {
					seen[cl.Stream]++
				}
			}
		}
		fmt.Printf("distinct streams: %d\n", len(seen))
		for s, n := range seen {
			startBlock, _, _ := lay.BlockAt(s.Start)
			fmt.Printf("  stream start=%s(%v) len=%-3d terminator=%-7v x%d\n",
				names[startBlock], s.Start, s.Len, s.Type, n)
		}
		fmt.Println()
	}
}
