// Stream walk-through on the public API: the paper's Figure-1 observation,
// measured end to end. Profile-guided layout turns frequent paths into
// fall-through runs, so the dynamic stream — the run of instructions between
// taken branches, the fetch unit of the stream front-end — lengthens, and
// with it the instructions delivered per fetch. One session prepares the
// benchmark once; RunWith sweeps both layouts with the streams engine over
// the shared artifacts, each run pulling its trace from a fresh streaming
// source (nothing is materialized).
package main

import (
	"context"
	"fmt"
	"os"

	"streamfetch"
)

func main() {
	session := streamfetch.New("300.twolf",
		streamfetch.WithEngine("streams"),
		streamfetch.WithInstructions(1_000_000),
	)

	fmt.Println("stream fetch engine, 8-wide pipe, 1M instructions")
	fmt.Printf("%-10s %12s %10s %8s %9s\n",
		"layout", "mean stream", "fetch IPC", "IPC", "ic-miss")
	for _, layoutName := range streamfetch.Layouts() {
		rep, err := session.RunWith(context.Background(),
			streamfetch.WithLayout(layoutName))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %12.1f %10.2f %8.3f %8.2f%%\n",
			rep.Layout, rep.Fetch.MeanUnitLen, rep.FetchIPC, rep.IPC,
			100*rep.ICache.MissRate)
	}
	fmt.Println("\nlonger streams -> fewer predictions per instruction and wider")
	fmt.Println("fetch blocks: the optimized layout feeds the pipe from the same code.")
}
