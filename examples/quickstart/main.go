// Quickstart for the public streamfetch API: build a session for one
// synthetic benchmark, profile-optimize its code layout, simulate the
// stream fetch architecture on an 8-wide processor, and print the
// structured report.
package main

import (
	"context"
	"fmt"
	"os"

	"streamfetch"
)

func main() {
	// One session owns the whole pipeline: workload synthesis, training
	// profile, code layout, trace generation, and the simulation itself.
	session := streamfetch.New("164.gzip",
		streamfetch.WithWidth(8),
		streamfetch.WithEngine("streams"),
		streamfetch.WithOptimizedLayout(),
		streamfetch.WithInstructions(2_000_000),
		streamfetch.WithSeed(99),
	)
	rep, err := session.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%s (%s layout, %d KB of code): IPC %.3f, fetch IPC %.2f, misprediction rate %.2f%%\n",
		rep.Benchmark, rep.Layout, rep.CodeBytes/1024, rep.IPC, rep.FetchIPC, 100*rep.MispredRate)

	// Reports marshal to JSON for downstream tooling.
	fmt.Println("\nfull report:")
	if err := rep.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
