// Quickstart: synthesize a benchmark, optimize its code layout from a
// training profile, and simulate the stream fetch architecture on an 8-wide
// processor.
package main

import (
	"fmt"

	"streamfetch/internal/layout"
	"streamfetch/internal/sim"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

func main() {
	// 1. Pick a benchmark from the synthetic SPECint2000-like suite.
	params, err := workload.ByName("164.gzip")
	if err != nil {
		panic(err)
	}
	prog := workload.Generate(params)
	fmt.Printf("%s: %d procedures, %d basic blocks, %d static instructions\n",
		prog.Name, len(prog.Procs), prog.NumBlocks(), prog.StaticInsts())

	// 2. Profile a training run and lay the code out (spike-style).
	prof := trace.CollectProfile(prog, 7, 500_000)
	lay := layout.Optimized(prog, prof)
	fmt.Printf("optimized layout: %d KB of code\n", lay.CodeSize()/1024)

	// 3. Generate the reference trace (a different input seed).
	tr := trace.Generate(prog, trace.GenConfig{Seed: 99, MaxInsts: 2_000_000})

	// 4. Simulate the stream fetch architecture.
	r := sim.Run(lay, tr, sim.Config{Width: 8, Engine: sim.EngineStreams})
	fmt.Printf("streams: IPC %.3f, fetch IPC %.2f, misprediction rate %.2f%%\n",
		r.IPC, r.FetchIPC, 100*r.MispredRate)
}
