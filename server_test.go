package streamfetch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamfetch"
	"streamfetch/internal/par"
	"streamfetch/internal/store"
)

// newTestServer builds a Server, failing the test on configuration
// errors.
func newTestServer(t *testing.T, opts ...streamfetch.ServerOption) *streamfetch.Server {
	t.Helper()
	srv, err := streamfetch.NewServer(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// serviceClient wraps an httptest server with JSON helpers.
type serviceClient struct {
	t  *testing.T
	ts *httptest.Server
	c  *http.Client
}

func newServiceClient(t *testing.T, srv *streamfetch.Server) *serviceClient {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &serviceClient{t: t, ts: ts, c: ts.Client()}
}

// do issues one request, decodes the JSON response into out (when non-nil)
// and returns the status code.
func (sc *serviceClient) do(method, path string, body, out any) int {
	sc.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			sc.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, sc.ts.URL+path, rd)
	if err != nil {
		sc.t.Fatal(err)
	}
	resp, err := sc.c.Do(req)
	if err != nil {
		sc.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			sc.t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// submit posts a job and asserts 202.
func (sc *serviceClient) submit(path string, req any) *streamfetch.JobEnvelope {
	sc.t.Helper()
	var env streamfetch.JobEnvelope
	if code := sc.do("POST", path, req, &env); code != http.StatusAccepted {
		sc.t.Fatalf("POST %s: status %d, want 202", path, code)
	}
	if env.ID == "" || env.State != streamfetch.JobQueued {
		sc.t.Fatalf("submit envelope: %+v", env)
	}
	return &env
}

// await polls a job until it reaches a terminal state.
func (sc *serviceClient) await(id string, timeout time.Duration) *streamfetch.JobEnvelope {
	sc.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var env streamfetch.JobEnvelope
		if code := sc.do("GET", "/v1/runs/"+id, nil, &env); code != http.StatusOK {
			sc.t.Fatalf("GET /v1/runs/%s: status %d", id, code)
		}
		if env.State.Terminal() {
			return &env
		}
		if time.Now().After(deadline) {
			sc.t.Fatalf("job %s still %s after %s", id, env.State, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// reportJSON renders a report exactly as the golden tests do. Stage
// timings are wall-clock telemetry the daemon adds, not results: strip
// them so byte-identity comparisons see only the model's output.
func reportJSON(t *testing.T, rep *streamfetch.Report) []byte {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	clone := *rep
	clone.Timings = nil
	rep = &clone
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServiceDifferentialOracle: for a grid of configurations — including
// a sharded one — the Report that comes back through the HTTP service is
// byte-identical to Session.RunWith called directly with the same seed.
// The service must add routing, queueing and concurrency, never model
// drift.
func TestServiceDifferentialOracle(t *testing.T) {
	srv := newTestServer(t, streamfetch.WithQueueDepth(8), streamfetch.WithWorkers(2))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	cases := []streamfetch.RunRequest{
		{Benchmark: "164.gzip", Engine: "streams", Layout: "optimized", Width: 8, Insts: 300_000},
		{Benchmark: "164.gzip", Engine: "ev8", Layout: "base", Width: 4, Insts: 300_000},
		{Benchmark: "175.vpr", Engine: "tcache", Layout: "optimized", Width: 8, Insts: 200_000, MaxInsts: 150_000},
		{Benchmark: "164.gzip", Engine: "streams", Layout: "base", Width: 8, Insts: 400_000,
			Shards: 3, Warmup: 20_000},
	}
	for _, req := range cases {
		req := req
		name := fmt.Sprintf("%s/%s/%s/w%d/shards%d", req.Benchmark, req.Engine, req.Layout, req.Width, req.Shards)
		t.Run(name, func(t *testing.T) {
			env := sc.submit("/v1/runs", req)
			got := sc.await(env.ID, 3*time.Minute)
			if got.State != streamfetch.JobDone {
				t.Fatalf("job finished %s (error %q), want done", got.State, got.Error)
			}
			if got.StartedAt.IsZero() || got.FinishedAt.IsZero() || got.EnqueuedAt.IsZero() {
				t.Errorf("missing timings in terminal envelope: %+v", got)
			}

			direct := streamfetch.New(req.Benchmark, streamfetch.WithInstructions(req.Insts))
			opts := []streamfetch.Option{
				streamfetch.WithEngine(req.Engine),
				streamfetch.WithLayout(req.Layout),
				streamfetch.WithWidth(req.Width),
			}
			if req.MaxInsts > 0 {
				opts = append(opts, streamfetch.WithMaxInstructions(req.MaxInsts))
			}
			if req.Shards > 0 {
				opts = append(opts, streamfetch.WithShards(req.Shards))
			}
			if req.Warmup > 0 {
				opts = append(opts, streamfetch.WithWarmup(req.Warmup))
			}
			if req.Warmup > 0 && req.Shards > 1 {
				// The service runs warmed sharded jobs with warm-state
				// checkpoints against its store; mirror that (on a fresh
				// store, so the same all-miss pattern) for byte-identity.
				opts = append(opts, streamfetch.WithCheckpoints(store.NewMem()))
			}
			want, err := direct.RunWith(context.Background(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			if g, w := reportJSON(t, got.Report), reportJSON(t, want); !bytes.Equal(g, w) {
				t.Errorf("service report diverged from direct run\nservice:\n%s\ndirect:\n%s", g, w)
			}
		})
	}
}

// TestServiceSweepOracle: sweep cells carry the same reports a direct
// session run produces, cell for cell.
func TestServiceSweepOracle(t *testing.T) {
	srv := newTestServer(t)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	req := streamfetch.SweepRequest{
		Benchmarks: []string{"164.gzip"},
		Layouts:    []string{"base", "optimized"},
		Engines:    []string{"streams"},
		Widths:     []int{4},
		Insts:      200_000,
	}
	env := sc.submit("/v1/sweeps", req)
	got := sc.await(env.ID, 3*time.Minute)
	if got.State != streamfetch.JobDone {
		t.Fatalf("sweep finished %s (error %q), want done", got.State, got.Error)
	}
	if len(got.Cells) != 2 {
		t.Fatalf("sweep returned %d cells, want 2", len(got.Cells))
	}
	if got.Progress == nil || got.Progress.CellsDone != 2 || got.Progress.CellsTotal != 2 {
		t.Errorf("sweep progress = %+v, want 2/2 cells", got.Progress)
	}
	direct := streamfetch.New("164.gzip", streamfetch.WithInstructions(req.Insts))
	for _, cell := range got.Cells {
		want, err := direct.RunWith(context.Background(),
			streamfetch.WithEngine(cell.Engine),
			streamfetch.WithLayout(cell.Layout),
			streamfetch.WithWidth(cell.Width),
		)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := reportJSON(t, cell.Report), reportJSON(t, want); !bytes.Equal(g, w) {
			t.Errorf("cell %s/%s diverged from direct run", cell.Layout, cell.Engine)
		}
	}
}

// TestServiceBackpressureAndCancel: a full queue answers 429, cancelling a
// queued job keeps it from running, and cancelling a running job stops it
// promptly with its partial report marked aborted.
func TestServiceBackpressureAndCancel(t *testing.T) {
	srv := newTestServer(t, streamfetch.WithQueueDepth(1), streamfetch.WithWorkers(1))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	long := streamfetch.RunRequest{Benchmark: "164.gzip", Engine: "streams", Insts: 500_000_000}
	running := sc.submit("/v1/runs", long)
	// Wait for the dispatcher to pop it (empty queue) AND for the sim to
	// make measurable progress, so the later cancellation lands mid-run.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var env streamfetch.JobEnvelope
		sc.do("GET", "/v1/runs/"+running.ID, nil, &env)
		if env.State == streamfetch.JobRunning && env.Progress != nil && env.Progress.Retired > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never made progress (state %s)", running.ID, env.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Fill the pending capacity until the queue pushes back. The depth-1
	// queue plus the dispatcher's single placement slot (it may have
	// popped one job it cannot place yet) bound acceptance at two more
	// submissions; the 429 must arrive by the third.
	var pending []string
	var errBody struct {
		Error string `json:"error"`
	}
	got429 := false
	for i := 0; i < 3 && !got429; i++ {
		// Distinct seeds: identical bodies would coalesce onto the
		// running job instead of exercising the queue.
		fill := long
		fill.Seed = uint64(1 + i)
		var env streamfetch.JobEnvelope
		switch code := sc.do("POST", "/v1/runs", fill, &env); code {
		case http.StatusAccepted:
			pending = append(pending, env.ID)
			// Let the dispatcher pull at most one into its placement slot.
			time.Sleep(50 * time.Millisecond)
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("submission %d: status %d", i, code)
		}
	}
	if !got429 {
		t.Fatalf("queue never pushed back: %d pending submissions all accepted", len(pending))
	}
	// The queue is still full: issue one more distinct submission to check
	// the 429 carries a JSON error body.
	refill := long
	refill.Seed = 77
	if code := sc.do("POST", "/v1/runs", refill, &errBody); code != http.StatusTooManyRequests {
		t.Fatalf("refill submission: status %d, want 429", code)
	}
	if errBody.Error == "" {
		t.Error("429 carried no error body")
	}

	// Cancel the pending jobs: with the single worker slot occupied by
	// the running job, none of them may ever start.
	var env streamfetch.JobEnvelope
	for _, id := range pending {
		if code := sc.do("DELETE", "/v1/runs/"+id, nil, &env); code != http.StatusOK {
			t.Fatalf("DELETE pending %s: status %d", id, code)
		}
		got := sc.await(id, 10*time.Second)
		if got.State != streamfetch.JobCancelled {
			t.Fatalf("cancelled pending job state = %s", got.State)
		}
		if !got.StartedAt.IsZero() {
			t.Error("cancelled pending job has a start time; it must never run")
		}
	}

	// Cancel the running 500M-instruction job: it must stop long before
	// the simulation could finish, keeping its partial aborted report.
	if code := sc.do("DELETE", "/v1/runs/"+running.ID, nil, &env); code != http.StatusOK {
		t.Fatalf("DELETE running: status %d", code)
	}
	got := sc.await(running.ID, 30*time.Second)
	if got.State != streamfetch.JobCancelled {
		t.Fatalf("cancelled running job state = %s (error %q)", got.State, got.Error)
	}
	if got.Report == nil || !got.Report.Aborted {
		t.Errorf("cancelled running job should carry a partial aborted report, got %+v", got.Report)
	}

	if code := sc.do("DELETE", "/v1/runs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("DELETE unknown id: status %d, want 404", code)
	}
	if code := sc.do("GET", "/v1/runs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("GET unknown id: status %d, want 404", code)
	}
}

// TestServiceEnginesAndHealth covers the discovery and liveness surface.
func TestServiceEnginesAndHealth(t *testing.T) {
	srv := newTestServer(t, streamfetch.WithQueueDepth(4), streamfetch.WithWorkers(2))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	var axes struct {
		Engines    []string `json:"engines"`
		Benchmarks []string `json:"benchmarks"`
		Layouts    []string `json:"layouts"`
	}
	if code := sc.do("GET", "/v1/engines", nil, &axes); code != http.StatusOK {
		t.Fatalf("GET /v1/engines: status %d", code)
	}
	if len(axes.Engines) < 4 || len(axes.Benchmarks) == 0 || len(axes.Layouts) != 2 {
		t.Fatalf("axes: %+v", axes)
	}

	var h streamfetch.Health
	if code := sc.do("GET", "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", code)
	}
	if h.Status != "ok" || h.QueueCap != 4 || h.Workers != 2 {
		t.Fatalf("health: %+v", h)
	}
	if h.ParBudget != par.Budget() || h.ParInUse > h.ParBudget {
		t.Fatalf("health pool metrics: %+v (budget %d)", h, par.Budget())
	}
}

// TestServiceWorkersRunConcurrently: WithWorkers(n) means n jobs actually
// execute at once when the pool has tokens for them — two long runs must
// both reach the running state with live progress before either finishes.
func TestServiceWorkersRunConcurrently(t *testing.T) {
	par.SetBudget(4)
	t.Cleanup(func() { par.SetBudget(runtime.GOMAXPROCS(0) - 1) })

	srv := newTestServer(t, streamfetch.WithQueueDepth(4), streamfetch.WithWorkers(2))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	// Distinct seeds so the two submissions are distinct jobs rather than
	// coalescing onto one in-flight run.
	long := streamfetch.RunRequest{Benchmark: "164.gzip", Engine: "streams", Layout: "base", Insts: 500_000_000, Seed: 1}
	long2 := long
	long2.Seed = 2
	a := sc.submit("/v1/runs", long)
	b := sc.submit("/v1/runs", long2)
	deadline := time.Now().Add(30 * time.Second)
	for {
		var ea, eb streamfetch.JobEnvelope
		sc.do("GET", "/v1/runs/"+a.ID, nil, &ea)
		sc.do("GET", "/v1/runs/"+b.ID, nil, &eb)
		running := func(e streamfetch.JobEnvelope) bool {
			return e.State == streamfetch.JobRunning && e.Progress != nil && e.Progress.Retired > 0
		}
		if running(ea) && running(eb) {
			break
		}
		if ea.State.Terminal() || eb.State.Terminal() {
			t.Fatalf("a 500M-instruction job finished before both ran: a=%s b=%s", ea.State, eb.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never ran concurrently with workers=2: a=%s b=%s", ea.State, eb.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	sc.do("DELETE", "/v1/runs/"+a.ID, nil, nil)
	sc.do("DELETE", "/v1/runs/"+b.ID, nil, nil)
	sc.await(a.ID, 30*time.Second)
	sc.await(b.ID, 30*time.Second)
}

// TestServiceJobRetention: terminal jobs are evicted oldest-first beyond
// the retention bound, so a long-lived daemon's registry cannot grow
// without limit; evicted ids answer 404 while retained ones keep serving
// their reports.
func TestServiceJobRetention(t *testing.T) {
	srv := newTestServer(t, streamfetch.WithJobRetention(2), streamfetch.WithWorkers(1))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	req := streamfetch.RunRequest{Benchmark: "164.gzip", Engine: "streams", Layout: "base", Insts: 20_000}
	var ids []string
	for i := 0; i < 3; i++ {
		// Distinct seeds: a repeated identical body would be a cache hit
		// (HTTP 200, no new job), not a fresh terminal job to retain.
		req.Seed = uint64(100 + i)
		env := sc.submit("/v1/runs", req)
		got := sc.await(env.ID, time.Minute)
		if got.State != streamfetch.JobDone {
			t.Fatalf("job %s finished %s", env.ID, got.State)
		}
		ids = append(ids, env.ID)
	}
	if code := sc.do("GET", "/v1/runs/"+ids[0], nil, nil); code != http.StatusNotFound {
		t.Errorf("oldest job past retention: status %d, want 404", code)
	}
	for _, id := range ids[1:] {
		var env streamfetch.JobEnvelope
		if code := sc.do("GET", "/v1/runs/"+id, nil, &env); code != http.StatusOK || env.Report == nil {
			t.Errorf("retained job %s: status %d, report %v", id, code, env.Report != nil)
		}
	}
}

// TestJobQueueRaceStress: 8 concurrent sweep submissions plus concurrent
// cancellations, with the par saturation metric sampled throughout — the
// shared budget must never oversubscribe (InUse ≤ Budget, so simulation
// concurrency ≤ GOMAXPROCS under the default budget), cancelled jobs must
// release their tokens, and shutdown must leave zero service goroutines.
// Run under -race in CI.
func TestJobQueueRaceStress(t *testing.T) {
	// A multi-token pool even on 1-core CI runners, so token traffic is
	// actually exercised; restored below.
	par.SetBudget(3)
	t.Cleanup(func() { par.SetBudget(runtime.GOMAXPROCS(0) - 1) })

	before := runtime.NumGoroutine()
	srv := newTestServer(t, streamfetch.WithQueueDepth(32), streamfetch.WithWorkers(4))
	sc := newServiceClient(t, srv)

	// Sample pool saturation while the stress runs.
	var maxInUse atomic.Int64
	stopSampling := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stopSampling:
				return
			default:
			}
			if n := int64(par.InUse()); n > maxInUse.Load() {
				maxInUse.Store(n)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	sweep := streamfetch.SweepRequest{
		Benchmarks: []string{"164.gzip"},
		Layouts:    []string{"base"},
		Engines:    []string{"streams", "ev8"},
		Widths:     []int{4},
		Insts:      60_000,
	}
	const nSweeps = 8
	ids := make([]string, nSweeps)
	var wg sync.WaitGroup
	for i := 0; i < nSweeps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds: 8 identical sweeps would coalesce into one
			// job and the stress would exercise nothing.
			s := sweep
			s.Seed = uint64(1000 + i)
			env := sc.submit("/v1/sweeps", s)
			ids[i] = env.ID
			if i%2 == 1 {
				// Cancel half of them mid-flight, racing the run.
				sc.do("DELETE", "/v1/runs/"+env.ID, nil, nil)
			}
		}(i)
	}
	wg.Wait()

	for i, id := range ids {
		got := sc.await(id, 3*time.Minute)
		switch got.State {
		case streamfetch.JobDone:
			if len(got.Cells) != 2 {
				t.Errorf("job %s done with %d cells, want 2", id, len(got.Cells))
			}
		case streamfetch.JobCancelled:
			if i%2 == 0 {
				t.Errorf("job %s cancelled but never deleted", id)
			}
		default:
			t.Errorf("job %s finished %s (error %q)", id, got.State, got.Error)
		}
	}

	close(stopSampling)
	sampler.Wait()
	if got, budget := maxInUse.Load(), int64(par.Budget()); got > budget {
		t.Errorf("pool saturation reached %d tokens, budget is %d (oversubscription)", got, budget)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if n := par.InUse(); n != 0 {
		t.Errorf("%d pool tokens still held after shutdown; cancelled jobs must release them", n)
	}

	// New submissions during/after drain are refused with 503.
	if code := sc.do("POST", "/v1/sweeps", sweep, nil); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submission: status %d, want 503", code)
	}

	// Zero leaked goroutines: once the HTTP server and its idle conns are
	// gone, the count settles back to where it started.
	sc.ts.Close()
	sc.c.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after shutdown: %d, started with %d\n%s",
				n, before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
