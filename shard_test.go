package streamfetch_test

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"

	"streamfetch"
)

// TestRunShardedSingleIdentical: RunSharded with shards=1 and no warmup
// goes through the full sharding path (interval source, merge) yet
// produces a report byte-identical to Run — pinned against the same golden
// files (and case table) as the plain runner.
func TestRunShardedSingleIdentical(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.engine+"/"+tc.layout, func(t *testing.T) {
			t.Parallel()
			rep, err := goldenSession(tc.engine, tc.layout).
				RunSharded(context.Background(), streamfetch.WithShards(1))
			if err != nil {
				t.Fatal(err)
			}
			assertReportGolden(t, rep, tc.golden)
		})
	}
}

// TestRunShardedMergeInvariants: whatever the shard count, the measured
// windows tile the trace — retired instructions, branches and
// mispredictions merge losslessly — and with warmup the harmonic
// aggregate IPC stays within 2% of the single-shot run.
func TestRunShardedMergeInvariants(t *testing.T) {
	const insts = 500_000
	s := streamfetch.New("164.gzip",
		streamfetch.WithWidth(8),
		streamfetch.WithEngine("streams"),
		streamfetch.WithOptimizedLayout(),
		streamfetch.WithInstructions(insts),
	)
	ctx := context.Background()
	single, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		rep, err := s.RunWith(ctx,
			streamfetch.WithShards(shards),
			streamfetch.WithWarmup(50_000),
		)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rep.Shards != shards || len(rep.Intervals) != shards {
			t.Fatalf("shards=%d: report has Shards=%d, %d intervals",
				shards, rep.Shards, len(rep.Intervals))
		}
		if rep.Retired != single.Retired {
			t.Errorf("shards=%d: merged Retired %d, single %d",
				shards, rep.Retired, single.Retired)
		}
		if rep.Branches != single.Branches {
			t.Errorf("shards=%d: merged Branches %d, single %d",
				shards, rep.Branches, single.Branches)
		}
		if rep.TraceInsts != single.TraceInsts {
			t.Errorf("shards=%d: merged TraceInsts %d, single %d",
				shards, rep.TraceInsts, single.TraceInsts)
		}
		var sumRetired uint64
		for _, iv := range rep.Intervals {
			sumRetired += iv.Retired
			if iv.Index > 0 && iv.WarmupInsts == 0 {
				t.Errorf("shards=%d: interval %d ran without warmup lead-in",
					shards, iv.Index)
			}
		}
		if sumRetired != rep.Retired {
			t.Errorf("shards=%d: interval retired sum %d != merged %d",
				shards, sumRetired, rep.Retired)
		}
		if diff := math.Abs(rep.IPC-single.IPC) / single.IPC; diff > 0.02 {
			t.Errorf("shards=%d: merged IPC %.4f vs single %.4f (%.2f%% off)",
				shards, rep.IPC, single.IPC, 100*diff)
		}
	}
}

// TestRunShardedTraceFile: sharding a replayed trace file (seekable via
// the chunk index) merges to the same instruction totals as a sequential
// replay of the same file.
func TestRunShardedTraceFile(t *testing.T) {
	ctx := context.Background()
	gen := streamfetch.New("186.crafty", streamfetch.WithInstructions(300_000))
	path := filepath.Join(t.TempDir(), "crafty.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.WriteTrace(ctx, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s := streamfetch.New("186.crafty",
		streamfetch.WithTraceFile(path),
		streamfetch.WithEngine("ftb"),
	)
	single, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := s.RunWith(ctx,
		streamfetch.WithShards(3), streamfetch.WithWarmup(30_000))
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Retired != single.Retired || sharded.Branches != single.Branches {
		t.Fatalf("file shards merged (retired %d, branches %d), single (%d, %d)",
			sharded.Retired, sharded.Branches, single.Retired, single.Branches)
	}
	if sharded.Seed != 0 {
		t.Fatalf("replayed sharded run attributed to seed %d", sharded.Seed)
	}
}

// TestRunShardedDegenerateWindows: shard counts so high that many windows
// are smaller than a basic block (and so, after block snapping, empty)
// still merge losslessly — empty intervals contribute zero instead of
// double-counting their lead-in as measured work.
func TestRunShardedDegenerateWindows(t *testing.T) {
	ctx := context.Background()
	s := streamfetch.New("164.gzip", streamfetch.WithInstructions(1_000))
	single, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunWith(ctx, streamfetch.WithShards(200), streamfetch.WithWarmup(50))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retired != single.Retired || rep.Branches != single.Branches {
		t.Fatalf("degenerate shards merged (retired %d, branches %d), single (%d, %d)",
			rep.Retired, rep.Branches, single.Retired, single.Branches)
	}
	// Cache accesses are cycle-behaviour quantities, not losslessly
	// additive across tiny windows — but lead-in work must never be
	// double-counted as measured (each shard replays up to the whole
	// prefix, so double-counting would multiply the total).
	if limit := single.ICache.Accesses + uint64(rep.Shards); rep.ICache.Accesses > limit {
		t.Fatalf("degenerate shards merged %d icache accesses, single run made %d: lead-in counted as measured",
			rep.ICache.Accesses, single.ICache.Accesses)
	}
}

// TestRunShardedCold: WithColdShards skips shard prefixes (the seek path
// for indexed trace files) instead of functionally warming through them;
// instruction and branch counts still merge losslessly.
func TestRunShardedCold(t *testing.T) {
	ctx := context.Background()
	gen := streamfetch.New("164.gzip", streamfetch.WithInstructions(300_000))
	path := filepath.Join(t.TempDir(), "gzip.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := gen.WriteTrace(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !info.Seekable {
		t.Fatal("session-written trace carries no index")
	}

	s := streamfetch.New("164.gzip", streamfetch.WithTraceFile(path))
	single, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := s.RunWith(ctx,
		streamfetch.WithShards(4),
		streamfetch.WithWarmup(20_000),
		streamfetch.WithColdShards(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Retired != single.Retired || cold.Branches != single.Branches {
		t.Fatalf("cold shards merged (retired %d, branches %d), single (%d, %d)",
			cold.Retired, cold.Branches, single.Retired, single.Branches)
	}
}

// TestRunShardedCancel: cancelling mid-run surfaces the context error.
func TestRunShardedCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := streamfetch.New("164.gzip").RunSharded(ctx, streamfetch.WithShards(2))
	if err == nil {
		t.Fatal("cancelled sharded run returned no error")
	}
}
