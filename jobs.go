// Job execution for the streamfetchd service: a bounded queue of run and
// sweep jobs drained by a worker pool that shares the process-wide
// internal/par budget with intra-job shard workers, a session cache that
// amortizes preparation (program synthesis, profiling, layouts) across
// requests, and the grid sweep runner the service shares with
// internal/experiments.
//
// Concurrency model: every concurrent job holds one par token while it
// runs, and sharded runs inside a job draw their extra shard workers from
// the same pool; only when the pool is empty and nothing is in flight
// does the dispatcher run a single job inline as the budget-free caller,
// which keeps a zero-token (one core) box progressing. Total simulation
// concurrency therefore never exceeds GOMAXPROCS, however jobs, sweeps
// and shards stack.
package streamfetch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"streamfetch/internal/par"
)

// Submission errors, mapped to HTTP statuses by the server (503 and 429).
var (
	ErrDraining  = errors.New("streamfetch: server is draining, not accepting jobs")
	ErrQueueFull = errors.New("streamfetch: job queue is full")
)

// GridCell is one (benchmark, layout, engine, width) outcome of RunGrid.
// Report is nil when the cell failed (Error says why) or was never reached
// because an earlier cell failed or the context was cancelled.
type GridCell struct {
	Benchmark string  `json:"benchmark"`
	Layout    string  `json:"layout"`
	Engine    string  `json:"engine"`
	Width     int     `json:"width"`
	Report    *Report `json:"report,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// RunGrid runs every (session × layout × engine × width) combination on
// the process-wide worker budget (one goroutine total when parallel is
// false), returning one cell per combination in enumeration order:
// sessions outermost, widths innermost. Extra opts apply to every cell
// before the grid dimensions. The first error (or context cancellation)
// stops new cells from being claimed; in-flight cells finish, and the
// partially-filled grid is returned with that error.
func RunGrid(ctx context.Context, sessions []*Session, widths []int, layouts, engines []string, parallel bool, onCell func(done, total int), opts ...Option) ([]GridCell, error) {
	type dim struct {
		s              *Session
		layout, engine string
		width          int
	}
	var jobs []dim
	for _, s := range sessions {
		for _, l := range layouts {
			for _, e := range engines {
				for _, w := range widths {
					jobs = append(jobs, dim{s, l, e, w})
				}
			}
		}
	}
	// Identity fields are filled for every cell up front, so a grid cut
	// short by an error or cancellation still tells the caller exactly
	// which combinations were never reached (their Report stays nil).
	cells := make([]GridCell, len(jobs))
	for i, j := range jobs {
		cells[i] = GridCell{Benchmark: j.s.Benchmark(), Layout: j.layout, Engine: j.engine, Width: j.width}
	}
	var done atomic.Int64
	err := par.Do(ctx, len(jobs), parallel, func(i int) error {
		j := jobs[i]
		runOpts := append(slices.Clone(opts),
			WithWidth(j.width), WithLayout(j.layout), WithEngine(j.engine))
		rep, err := j.s.RunWith(ctx, runOpts...)
		if err != nil {
			cells[i].Error = err.Error()
			return fmt.Errorf("%s/%s/%s w=%d: %w", j.s.Benchmark(), j.layout, j.engine, j.width, err)
		}
		cells[i].Report = rep
		if onCell != nil {
			onCell(int(done.Add(1)), len(jobs))
		}
		return nil
	})
	return cells, err
}

// RunRequest is the body of POST /v1/runs: one simulation configuration.
// Zero-valued fields keep the session defaults (streams engine, base
// layout, width 8, seed 99, 2M instructions), exactly as the corresponding
// session option would.
type RunRequest struct {
	Benchmark       string `json:"benchmark"`
	Engine          string `json:"engine,omitempty"`
	Layout          string `json:"layout,omitempty"`
	Width           int    `json:"width,omitempty"`
	Seed            uint64 `json:"seed,omitempty"`
	TrainSeed       uint64 `json:"train_seed,omitempty"`
	Insts           uint64 `json:"insts,omitempty"`
	TrainInsts      uint64 `json:"train_insts,omitempty"`
	MaxInsts        uint64 `json:"max_insts,omitempty"`
	Shards          int    `json:"shards,omitempty"`
	Warmup          uint64 `json:"warmup,omitempty"`
	ColdShards      bool   `json:"cold_shards,omitempty"`
	ICacheLineBytes int    `json:"icache_line_bytes,omitempty"`
}

func (r *RunRequest) validate() error {
	if r.Benchmark == "" {
		return errors.New("missing benchmark")
	}
	if !slices.Contains(Benchmarks(), r.Benchmark) {
		return fmt.Errorf("unknown benchmark %q", r.Benchmark)
	}
	if r.Engine != "" && !slices.Contains(Engines(), r.Engine) {
		return fmt.Errorf("unknown engine %q", r.Engine)
	}
	if r.Layout != "" {
		if err := checkLayout(r.Layout); err != nil {
			return err
		}
	}
	if r.Width < 0 {
		return fmt.Errorf("negative width %d", r.Width)
	}
	if r.Shards < 0 {
		return fmt.Errorf("negative shards %d", r.Shards)
	}
	return nil
}

// runOptions maps the per-run fields onto session options (preparation
// fields are the session's own, via the cache key).
func (r *RunRequest) runOptions() []Option {
	var opts []Option
	if r.Engine != "" {
		opts = append(opts, WithEngine(r.Engine))
	}
	if r.Layout != "" {
		opts = append(opts, WithLayout(r.Layout))
	}
	if r.Width > 0 {
		opts = append(opts, WithWidth(r.Width))
	}
	if r.MaxInsts > 0 {
		opts = append(opts, WithMaxInstructions(r.MaxInsts))
	}
	if r.Shards > 0 {
		opts = append(opts, WithShards(r.Shards))
	}
	if r.Warmup > 0 {
		opts = append(opts, WithWarmup(r.Warmup))
	}
	if r.ColdShards {
		opts = append(opts, WithColdShards())
	}
	if r.ICacheLineBytes > 0 {
		opts = append(opts, WithICacheLineBytes(r.ICacheLineBytes))
	}
	return opts
}

// SweepRequest is the body of POST /v1/sweeps: a benchmark × layout ×
// engine × width grid run as one job. Empty dimensions default to the full
// axis (every benchmark, both layouts, every registered engine, width 8).
// The scalar fields configure every cell, like RunRequest.
type SweepRequest struct {
	Benchmarks []string `json:"benchmarks,omitempty"`
	Layouts    []string `json:"layouts,omitempty"`
	Engines    []string `json:"engines,omitempty"`
	Widths     []int    `json:"widths,omitempty"`

	Seed       uint64 `json:"seed,omitempty"`
	TrainSeed  uint64 `json:"train_seed,omitempty"`
	Insts      uint64 `json:"insts,omitempty"`
	TrainInsts uint64 `json:"train_insts,omitempty"`
	MaxInsts   uint64 `json:"max_insts,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	Warmup     uint64 `json:"warmup,omitempty"`
	ColdShards bool   `json:"cold_shards,omitempty"`
}

// normalize fills defaulted axes and validates every dimension value.
func (r *SweepRequest) normalize() error {
	if len(r.Benchmarks) == 0 {
		r.Benchmarks = Benchmarks()
	}
	for _, b := range r.Benchmarks {
		if !slices.Contains(Benchmarks(), b) {
			return fmt.Errorf("unknown benchmark %q", b)
		}
	}
	if len(r.Layouts) == 0 {
		r.Layouts = Layouts()
	}
	for _, l := range r.Layouts {
		if err := checkLayout(l); err != nil {
			return err
		}
	}
	if len(r.Engines) == 0 {
		r.Engines = Engines()
	}
	for _, e := range r.Engines {
		if !slices.Contains(Engines(), e) {
			return fmt.Errorf("unknown engine %q", e)
		}
	}
	if len(r.Widths) == 0 {
		r.Widths = []int{8}
	}
	for _, w := range r.Widths {
		if w <= 0 {
			return fmt.Errorf("invalid width %d", w)
		}
	}
	if r.Shards < 0 {
		return fmt.Errorf("negative shards %d", r.Shards)
	}
	return nil
}

// cellOptions maps the scalar fields onto per-cell session options.
func (r *SweepRequest) cellOptions() []Option {
	var opts []Option
	if r.MaxInsts > 0 {
		opts = append(opts, WithMaxInstructions(r.MaxInsts))
	}
	if r.Shards > 0 {
		opts = append(opts, WithShards(r.Shards))
	}
	if r.Warmup > 0 {
		opts = append(opts, WithWarmup(r.Warmup))
	}
	if r.ColdShards {
		opts = append(opts, WithColdShards())
	}
	return opts
}

// prepSpec is the session-cache key: every field that shapes a session's
// prepared artifacts (program, profile, both layouts). Requests agreeing
// on these share one cached session — and therefore skip trace, profile
// and layout preparation — whatever their engine, width or layout choice,
// since both layouts live inside the session.
type prepSpec struct {
	benchmark         string
	seed, trainSeed   uint64
	insts, trainInsts uint64
}

// normalized resolves zero fields to the session defaults so "default by
// omission" and "default spelled out" share one cache entry. trainInsts
// stays 0 when unset: the session derives its own default (a quarter of
// the trace length) at preparation time, so the rule lives in one place.
func (p prepSpec) normalized() prepSpec {
	if p.seed == 0 {
		p.seed = defaultSeed
	}
	if p.trainSeed == 0 {
		p.trainSeed = defaultTrainSeed
	}
	if p.insts == 0 {
		p.insts = defaultInsts
	}
	return p
}

func (p prepSpec) options() []Option {
	opts := []Option{
		WithSeed(p.seed),
		WithTrainSeed(p.trainSeed),
		WithInstructions(p.insts),
	}
	if p.trainInsts > 0 {
		opts = append(opts, WithTrainInstructions(p.trainInsts))
	}
	return opts
}

func (r *RunRequest) prepSpec() prepSpec {
	return prepSpec{r.Benchmark, r.Seed, r.TrainSeed, r.Insts, r.TrainInsts}.normalized()
}

func (r *SweepRequest) prepSpec(benchmark string) prepSpec {
	return prepSpec{benchmark, r.Seed, r.TrainSeed, r.Insts, r.TrainInsts}.normalized()
}

// maxCachedSessions bounds the session cache: enough for a broad working
// set (the full 11-benchmark suite at several seed/length configurations)
// while keeping a long-lived daemon's prepared-artifact memory bounded
// against clients that sweep the key space (e.g. a fresh seed per
// request).
const maxCachedSessions = 64

// sessionCache shares prepared sessions across jobs, least-recently-used
// beyond its bound. Sessions are safe for concurrent RunWith, so two jobs
// over the same benchmark and seeds reuse one preparation and run
// simultaneously; an evicted session keeps serving jobs already holding
// it and is garbage-collected when they finish.
type sessionCache struct {
	mu  sync.Mutex
	cap int
	m   map[prepSpec]*Session
	use []prepSpec // LRU order, least recently used first
}

func (c *sessionCache) get(spec prepSpec) *Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		c.cap = maxCachedSessions
	}
	if s, ok := c.m[spec]; ok {
		for i, k := range c.use {
			if k == spec {
				c.use = append(append(c.use[:i:i], c.use[i+1:]...), spec)
				break
			}
		}
		return s
	}
	if c.m == nil {
		c.m = map[prepSpec]*Session{}
	}
	s := New(spec.benchmark, spec.options()...)
	c.m[spec] = s
	c.use = append(c.use, spec)
	for len(c.use) > c.cap {
		delete(c.m, c.use[0])
		c.use = c.use[1:]
	}
	return s
}

func (c *sessionCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// jobFunc executes one job under its context, returning a report (run
// jobs) or cells (sweep jobs).
type jobFunc func(ctx context.Context) (*Report, []GridCell, error)

// job is one queued or executing unit of service work.
type job struct {
	id   string
	kind string // "run" or "sweep"

	ctx    context.Context
	cancel context.CancelFunc
	run    jobFunc
	done   chan struct{} // closed on reaching a terminal state

	mu       sync.Mutex
	state    JobState
	enqueued time.Time
	started  time.Time
	finished time.Time
	report   *Report
	cells    []GridCell
	err      error

	pmu        sync.Mutex
	shardRet   map[int]uint64 // retired per reporting shard (key 0 unsharded)
	total      uint64
	cellsDone  int
	cellsTotal int
}

// noteProgress records a session progress callback; sharded callbacks
// arrive concurrently, one per interval.
func (j *job) noteProgress(p Progress) {
	j.pmu.Lock()
	if j.shardRet == nil {
		j.shardRet = map[int]uint64{}
	}
	j.shardRet[p.Shard] = p.Retired
	j.total = p.Total
	j.pmu.Unlock()
}

// noteCell records sweep-cell completion.
func (j *job) noteCell(done, total int) {
	j.pmu.Lock()
	if done > j.cellsDone {
		j.cellsDone = done
	}
	j.cellsTotal = total
	j.pmu.Unlock()
}

// tryStart moves queued → running; false when the job was cancelled while
// queued (it must not run).
func (j *job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(state JobState, rep *Report, cells []GridCell, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.finished = time.Now()
	j.report = rep
	j.cells = cells
	j.err = err
	j.mu.Unlock()
	close(j.done)
}

// envelope snapshots the job as its public resource representation.
func (j *job) envelope() *JobEnvelope {
	now := time.Now()
	j.mu.Lock()
	env := &JobEnvelope{
		ID:         j.id,
		Kind:       j.kind,
		State:      j.state,
		EnqueuedAt: j.enqueued,
		StartedAt:  j.started,
		FinishedAt: j.finished,
	}
	if !j.started.IsZero() {
		env.WaitSeconds = j.started.Sub(j.enqueued).Seconds()
		end := now
		if !j.finished.IsZero() {
			end = j.finished
		}
		env.RunSeconds = end.Sub(j.started).Seconds()
	}
	if j.state.Terminal() {
		env.Report = j.report
		env.Cells = j.cells
		if j.err != nil {
			env.Error = j.err.Error()
		}
	}
	j.mu.Unlock()

	j.pmu.Lock()
	var retired uint64
	for _, r := range j.shardRet {
		retired += r
	}
	if retired > 0 || j.total > 0 || j.cellsTotal > 0 {
		env.Progress = &JobProgress{
			Retired:    retired,
			Total:      j.total,
			CellsDone:  j.cellsDone,
			CellsTotal: j.cellsTotal,
		}
	}
	j.pmu.Unlock()
	return env
}

// jobManager owns the queue, the registry and the worker pool.
type jobManager struct {
	workers int
	retain  int // terminal jobs kept in the registry

	baseCtx context.Context
	stopAll context.CancelFunc

	queue    chan *job
	slotFree chan struct{}  // pulsed when an extra job runner finishes
	wg       sync.WaitGroup // dispatcher + spawned job runners

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	done     []string // terminal job ids, oldest first, for eviction
	nextID   int

	spawned atomic.Int64 // token-held extra job runners in flight

	sessions sessionCache
}

func newJobManager(queueDepth, workers, retain int) *jobManager {
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if retain <= 0 {
		retain = 1024
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &jobManager{
		workers:  workers,
		retain:   retain,
		baseCtx:  ctx,
		stopAll:  cancel,
		queue:    make(chan *job, queueDepth),
		slotFree: make(chan struct{}, 1),
		jobs:     map[string]*job{},
	}
	m.wg.Add(1)
	go m.dispatch()
	return m
}

// submit creates a job (build receives it so run closures can reference
// their own job for progress reporting) and enqueues it, rejecting when
// draining or full.
func (m *jobManager) submit(kind string, build func(*job) jobFunc) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	m.nextID++
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &job{
		id:       fmt.Sprintf("%s-%06d", kind, m.nextID),
		kind:     kind,
		state:    JobQueued,
		enqueued: time.Now(),
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
	}
	j.run = build(j)
	select {
	case m.queue <- j:
	default:
		cancel()
		return nil, ErrQueueFull
	}
	m.jobs[j.id] = j
	return j, nil
}

// newRunJob validates and enqueues a single-configuration run.
func (m *jobManager) newRunJob(req RunRequest) (*job, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	return m.submit("run", func(j *job) jobFunc {
		return func(ctx context.Context) (*Report, []GridCell, error) {
			sess := m.sessions.get(req.prepSpec())
			opts := append(req.runOptions(), WithProgress(0, j.noteProgress))
			rep, err := sess.RunWith(ctx, opts...)
			return rep, nil, err
		}
	})
}

// newSweepJob validates and enqueues a grid sweep as one job.
func (m *jobManager) newSweepJob(req SweepRequest) (*job, error) {
	if err := req.normalize(); err != nil {
		return nil, err
	}
	total := len(req.Benchmarks) * len(req.Layouts) * len(req.Engines) * len(req.Widths)
	return m.submit("sweep", func(j *job) jobFunc {
		j.cellsTotal = total
		return func(ctx context.Context) (*Report, []GridCell, error) {
			sessions := make([]*Session, len(req.Benchmarks))
			for i, b := range req.Benchmarks {
				sessions[i] = m.sessions.get(req.prepSpec(b))
			}
			cells, err := RunGrid(ctx, sessions, req.Widths, req.Layouts, req.Engines,
				true, j.noteCell, req.cellOptions()...)
			return nil, cells, err
		}
	})
}

// get returns a job by id (nil when unknown).
func (m *jobManager) get(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// cancelJob cancels one job: a queued job goes terminal immediately and
// never runs; a running job has its context cancelled and finishes as
// cancelled once the simulation observes it (its shard workers release
// their pool tokens on the way out). Terminal jobs are untouched.
func (m *jobManager) cancelJob(j *job) {
	j.mu.Lock()
	if j.state == JobQueued {
		j.state = JobCancelled
		j.finished = time.Now()
		j.err = context.Canceled
		j.mu.Unlock()
		j.cancel()
		close(j.done)
		m.retire(j)
		return
	}
	j.mu.Unlock()
	j.cancel()
}

// retire records a terminal job for bounded retention: the registry keeps
// the most recent `retain` finished jobs (their envelopes, reports and
// sweep cells) and evicts the oldest beyond that, so a long-lived daemon's
// memory is bounded however many jobs it has served. Evicted ids answer
// 404; a durable result store is a future subsystem.
func (m *jobManager) retire(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done = append(m.done, j.id)
	for len(m.done) > m.retain {
		delete(m.jobs, m.done[0])
		m.done = m.done[1:]
	}
}

// counts tallies job states for the health surface.
func (m *jobManager) counts() (queued, running, terminal int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		s := j.state
		j.mu.Unlock()
		switch s {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		default:
			terminal++
		}
	}
	return
}

// dispatch drains the queue, placing each job on a worker.
func (m *jobManager) dispatch() {
	defer m.wg.Done()
	for j := range m.queue {
		m.place(j)
	}
}

// place runs one job. When the worker cap and the par pool both allow,
// the job is handed to an extra goroutine holding one pool token for the
// job's duration, so concurrent jobs and the shard workers inside them
// draw from the same GOMAXPROCS budget: up to `workers` jobs run at once,
// each on its own token. The dispatcher runs a job inline (as the
// budget-free caller) only while no runner is in flight — that keeps a
// zero-token box progressing without ever parking a long-running job on
// the dispatcher while freed workers sit idle; with runners in flight it
// instead waits for capacity (a runner finishing, or a token returned
// mid-job by a shard fan-out) and retries.
func (m *jobManager) place(j *job) {
	for {
		select {
		case <-j.done:
			return // cancelled while queued: don't wait for capacity
		default:
		}
		if int(m.spawned.Load()) < m.workers {
			if release, ok := par.TryHold(); ok {
				m.spawned.Add(1)
				m.wg.Add(1)
				go func() {
					defer m.wg.Done()
					m.runJob(j)
					release()
					m.spawned.Add(-1)
					select {
					case m.slotFree <- struct{}{}:
					default:
					}
				}()
				return
			}
		}
		if m.spawned.Load() == 0 {
			m.runJob(j)
			return
		}
		select {
		case <-m.slotFree:
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// runJob executes one job and records its terminal state. A cancelled
// run may still carry a partial report (Aborted set), which is preserved.
func (m *jobManager) runJob(j *job) {
	defer j.cancel()
	if !j.tryStart() {
		return // cancelled while queued
	}
	rep, cells, err := j.run(j.ctx)
	switch {
	case err == nil:
		j.finish(JobDone, rep, cells, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.finish(JobCancelled, rep, cells, err)
	default:
		j.finish(JobFailed, rep, cells, err)
	}
	m.retire(j)
}

// shutdown drains: no new submissions, queued and running jobs complete,
// workers exit. When ctx expires first, every remaining job is cancelled
// and shutdown still waits for the workers to unwind (no goroutine
// leaks), returning ctx's error.
func (m *jobManager) shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		close(m.queue)
	}
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		m.stopAll()
		return nil
	case <-ctx.Done():
		m.stopAll()
		<-done
		return ctx.Err()
	}
}
