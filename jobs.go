// Job execution for the streamfetchd service: a bounded queue of run and
// sweep jobs drained by a worker pool that shares the process-wide
// internal/par budget with intra-job shard workers, a session cache that
// amortizes preparation (program synthesis, profiling, layouts) across
// requests, and the grid sweep runner the service shares with
// internal/experiments.
//
// Concurrency model: every concurrent job holds one par token while it
// runs, and sharded runs inside a job draw their extra shard workers from
// the same pool; only when the pool is empty and nothing is in flight
// does the dispatcher run a single job inline as the budget-free caller,
// which keeps a zero-token (one core) box progressing. Total simulation
// concurrency therefore never exceeds GOMAXPROCS, however jobs, sweeps
// and shards stack.
package streamfetch

import (
	"cmp"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"math"

	"streamfetch/internal/metrics"
	"streamfetch/internal/par"
	"streamfetch/internal/retry"
	"streamfetch/internal/slo"
	"streamfetch/internal/store"
)

// Submission errors, mapped to HTTP statuses by the server (503, 429 and
// 500).
var (
	ErrDraining  = errors.New("streamfetch: server is draining, not accepting jobs")
	ErrQueueFull = errors.New("streamfetch: job queue is full")
	// ErrStore wraps a journal write that failed at submission time: the
	// job was not accepted, because an acknowledged job must be durable.
	// Its persistent form flips the server into degraded mode, after
	// which submissions are accepted from memory instead (see Health).
	ErrStore = errors.New("streamfetch: store write failed")
)

// Job-robustness causes: a job cut down by its execution deadline or by
// the no-progress watchdog finishes as a terminal failed envelope naming
// which tripwire fired (distinct from a client cancellation, which
// finishes as cancelled).
var (
	errJobDeadline = errors.New("streamfetch: job deadline exceeded")
	errJobStalled  = errors.New("streamfetch: job made no progress within the watchdog window")
)

// InfeasibleError sheds a submission whose deadline the daemon already
// knows it cannot meet: the queue-delay estimate plus the cost model's
// predicted execution time exceeds deadline_ms, so the job is rejected
// up front (HTTP 422, prediction in the body) instead of accepted only
// to fail at the deadline. Shed submissions are never journaled — no
// durability promise was made.
type InfeasibleError struct {
	PredictedSeconds  float64 `json:"predicted_seconds"`
	QueueDelaySeconds float64 `json:"queue_delay_seconds"`
	DeadlineSeconds   float64 `json:"deadline_seconds"`
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf(
		"streamfetch: deadline infeasible: predicted %.3fs + queue delay %.3fs exceeds deadline %.3fs",
		e.PredictedSeconds, e.QueueDelaySeconds, e.DeadlineSeconds)
}

// GridCell is one (benchmark, layout, engine, width) outcome of RunGrid.
// Report is nil when the cell failed (Error says why) or was never reached
// because an earlier cell failed or the context was cancelled.
type GridCell struct {
	Benchmark string  `json:"benchmark"`
	Layout    string  `json:"layout"`
	Engine    string  `json:"engine"`
	Width     int     `json:"width"`
	Report    *Report `json:"report,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// RunGrid runs every (session × layout × engine × width) combination on
// the process-wide worker budget (one goroutine total when parallel is
// false), returning one cell per combination in enumeration order:
// sessions outermost, widths innermost. Extra opts apply to every cell
// before the grid dimensions. The first error (or context cancellation)
// stops new cells from being claimed; in-flight cells finish, and the
// partially-filled grid is returned with that error.
func RunGrid(ctx context.Context, sessions []*Session, widths []int, layouts, engines []string, parallel bool, onCell func(done, total int), opts ...Option) ([]GridCell, error) {
	type dim struct {
		s              *Session
		layout, engine string
		width          int
	}
	var jobs []dim
	for _, s := range sessions {
		for _, l := range layouts {
			for _, e := range engines {
				for _, w := range widths {
					jobs = append(jobs, dim{s, l, e, w})
				}
			}
		}
	}
	// Identity fields are filled for every cell up front, so a grid cut
	// short by an error or cancellation still tells the caller exactly
	// which combinations were never reached (their Report stays nil).
	cells := make([]GridCell, len(jobs))
	for i, j := range jobs {
		cells[i] = GridCell{Benchmark: j.s.Benchmark(), Layout: j.layout, Engine: j.engine, Width: j.width}
	}
	var done atomic.Int64
	err := par.Do(ctx, len(jobs), parallel, func(i int) error {
		j := jobs[i]
		runOpts := append(slices.Clone(opts),
			WithWidth(j.width), WithLayout(j.layout), WithEngine(j.engine))
		rep, err := j.s.RunWith(ctx, runOpts...)
		if err != nil {
			cells[i].Error = err.Error()
			// A cell that completed with an error is still a completed
			// cell: it must tick the progress callback, or a sweep
			// grinding through erroring cells looks stalled (the service
			// watchdog would reap it) and cells_done can never reach
			// cells_total.
			if onCell != nil {
				onCell(int(done.Add(1)), len(jobs))
			}
			return fmt.Errorf("%s/%s/%s w=%d: %w", j.s.Benchmark(), j.layout, j.engine, j.width, err)
		}
		cells[i].Report = rep
		if onCell != nil {
			onCell(int(done.Add(1)), len(jobs))
		}
		return nil
	})
	return cells, err
}

// RunRequest is the body of POST /v1/runs: one simulation configuration.
// Zero-valued fields keep the session defaults (streams engine, base
// layout, width 8, seed 99, 2M instructions), exactly as the corresponding
// session option would.
type RunRequest struct {
	Benchmark       string `json:"benchmark"`
	Engine          string `json:"engine,omitempty"`
	Layout          string `json:"layout,omitempty"`
	Width           int    `json:"width,omitempty"`
	Seed            uint64 `json:"seed,omitempty"`
	TrainSeed       uint64 `json:"train_seed,omitempty"`
	Insts           uint64 `json:"insts,omitempty"`
	TrainInsts      uint64 `json:"train_insts,omitempty"`
	MaxInsts        uint64 `json:"max_insts,omitempty"`
	Shards          int    `json:"shards,omitempty"`
	Warmup          uint64 `json:"warmup,omitempty"`
	ColdShards      bool   `json:"cold_shards,omitempty"`
	ICacheLineBytes int    `json:"icache_line_bytes,omitempty"`
	// Samples > 0 switches the run to sampled mode (WithSampling): that
	// many measure windows of SampleInsts instructions each, merged with
	// an IPC confidence interval instead of simulating the whole trace.
	// Shards is then ignored; Warmup and ColdShards shape each window.
	Samples     int    `json:"samples,omitempty"`
	SampleInsts uint64 `json:"sample_insts,omitempty"`
	// TimeoutMS bounds the job's execution time (queue wait excluded):
	// past it the run aborts and the job finishes failed with its partial
	// report. 0 defers to the server's -max-job-time cap; a value above
	// the cap is clamped to it. Execution policy, not result identity —
	// requests differing only here share one content key, coalesce onto
	// one job (the first submitter's timeout governs it), and share
	// cached results.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Priority is the job's scheduling class: higher runs first, equal
	// priorities stay FIFO (0, the default, is the normal class; negative
	// values queue behind it). Execution policy like TimeoutMS — excluded
	// from the content key, and a coalesced submission inherits the
	// leader's class.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS is the SLO deadline in milliseconds from submission. A
	// submission whose predicted completion (queue-delay estimate plus
	// predicted execution cost, see the slo package) cannot meet it is
	// shed up front with HTTP 422 carrying the prediction, instead of
	// being accepted only to fail. Within the queue, tighter deadlines
	// run first inside a priority class. 0 means no deadline. Execution
	// policy: excluded from the content key.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

func (r *RunRequest) validate() error {
	if r.Benchmark == "" {
		return errors.New("missing benchmark")
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms %d", r.TimeoutMS)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("negative deadline_ms %d", r.DeadlineMS)
	}
	if !slices.Contains(Benchmarks(), r.Benchmark) {
		return fmt.Errorf("unknown benchmark %q", r.Benchmark)
	}
	if r.Engine != "" && !slices.Contains(Engines(), r.Engine) {
		return fmt.Errorf("unknown engine %q", r.Engine)
	}
	if r.Layout != "" {
		if err := checkLayout(r.Layout); err != nil {
			return err
		}
	}
	if r.Width < 0 {
		return fmt.Errorf("negative width %d", r.Width)
	}
	if r.Shards < 0 {
		return fmt.Errorf("negative shards %d", r.Shards)
	}
	if r.Samples < 0 {
		return fmt.Errorf("negative samples %d", r.Samples)
	}
	if r.Samples > 0 && r.SampleInsts == 0 {
		return errors.New("samples need a positive sample_insts window")
	}
	return nil
}

// runOptions maps the per-run fields onto session options (preparation
// fields are the session's own, via the cache key).
func (r *RunRequest) runOptions() []Option {
	var opts []Option
	if r.Engine != "" {
		opts = append(opts, WithEngine(r.Engine))
	}
	if r.Layout != "" {
		opts = append(opts, WithLayout(r.Layout))
	}
	if r.Width > 0 {
		opts = append(opts, WithWidth(r.Width))
	}
	if r.MaxInsts > 0 {
		opts = append(opts, WithMaxInstructions(r.MaxInsts))
	}
	if r.Shards > 0 {
		opts = append(opts, WithShards(r.Shards))
	}
	if r.Warmup > 0 {
		opts = append(opts, WithWarmup(r.Warmup))
	}
	if r.ColdShards {
		opts = append(opts, WithColdShards())
	}
	if r.ICacheLineBytes > 0 {
		opts = append(opts, WithICacheLineBytes(r.ICacheLineBytes))
	}
	if r.Samples > 0 {
		opts = append(opts, WithSampling(r.Samples, r.SampleInsts))
	}
	return opts
}

// SweepRequest is the body of POST /v1/sweeps: a benchmark × layout ×
// engine × width grid run as one job. Empty dimensions default to the full
// axis (every benchmark, both layouts, every registered engine, width 8).
// The scalar fields configure every cell, like RunRequest.
type SweepRequest struct {
	Benchmarks []string `json:"benchmarks,omitempty"`
	Layouts    []string `json:"layouts,omitempty"`
	Engines    []string `json:"engines,omitempty"`
	Widths     []int    `json:"widths,omitempty"`

	Seed       uint64 `json:"seed,omitempty"`
	TrainSeed  uint64 `json:"train_seed,omitempty"`
	Insts      uint64 `json:"insts,omitempty"`
	TrainInsts uint64 `json:"train_insts,omitempty"`
	MaxInsts   uint64 `json:"max_insts,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	Warmup     uint64 `json:"warmup,omitempty"`
	ColdShards bool   `json:"cold_shards,omitempty"`
	// TimeoutMS bounds the whole sweep's execution time; see
	// RunRequest.TimeoutMS for the semantics.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Priority and DeadlineMS are the sweep's scheduling class and SLO
	// deadline; see the RunRequest fields of the same names. The deadline
	// covers the whole grid (predicted cost sums over cells).
	Priority   int   `json:"priority,omitempty"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// normalize fills defaulted axes and validates every dimension value.
func (r *SweepRequest) normalize() error {
	if r.TimeoutMS < 0 {
		return fmt.Errorf("negative timeout_ms %d", r.TimeoutMS)
	}
	if r.DeadlineMS < 0 {
		return fmt.Errorf("negative deadline_ms %d", r.DeadlineMS)
	}
	if len(r.Benchmarks) == 0 {
		r.Benchmarks = Benchmarks()
	}
	for _, b := range r.Benchmarks {
		if !slices.Contains(Benchmarks(), b) {
			return fmt.Errorf("unknown benchmark %q", b)
		}
	}
	if len(r.Layouts) == 0 {
		r.Layouts = Layouts()
	}
	for _, l := range r.Layouts {
		if err := checkLayout(l); err != nil {
			return err
		}
	}
	if len(r.Engines) == 0 {
		r.Engines = Engines()
	}
	for _, e := range r.Engines {
		if !slices.Contains(Engines(), e) {
			return fmt.Errorf("unknown engine %q", e)
		}
	}
	if len(r.Widths) == 0 {
		r.Widths = []int{8}
	}
	for _, w := range r.Widths {
		if w <= 0 {
			return fmt.Errorf("invalid width %d", w)
		}
	}
	if r.Shards < 0 {
		return fmt.Errorf("negative shards %d", r.Shards)
	}
	return nil
}

// cellOptions maps the scalar fields onto per-cell session options.
func (r *SweepRequest) cellOptions() []Option {
	var opts []Option
	if r.MaxInsts > 0 {
		opts = append(opts, WithMaxInstructions(r.MaxInsts))
	}
	if r.Shards > 0 {
		opts = append(opts, WithShards(r.Shards))
	}
	if r.Warmup > 0 {
		opts = append(opts, WithWarmup(r.Warmup))
	}
	if r.ColdShards {
		opts = append(opts, WithColdShards())
	}
	return opts
}

// prepSpec is the session-cache key: every field that shapes a session's
// prepared artifacts (program, profile, both layouts). Requests agreeing
// on these share one cached session — and therefore skip trace, profile
// and layout preparation — whatever their engine, width or layout choice,
// since both layouts live inside the session.
type prepSpec struct {
	benchmark         string
	seed, trainSeed   uint64
	insts, trainInsts uint64
}

// normalized resolves zero fields to the session defaults so "default by
// omission" and "default spelled out" share one cache entry. trainInsts
// stays 0 when unset: the session derives its own default (a quarter of
// the trace length) at preparation time, so the rule lives in one place.
func (p prepSpec) normalized() prepSpec {
	if p.seed == 0 {
		p.seed = defaultSeed
	}
	if p.trainSeed == 0 {
		p.trainSeed = defaultTrainSeed
	}
	if p.insts == 0 {
		p.insts = defaultInsts
	}
	return p
}

func (p prepSpec) options() []Option {
	opts := []Option{
		WithSeed(p.seed),
		WithTrainSeed(p.trainSeed),
		WithInstructions(p.insts),
	}
	if p.trainInsts > 0 {
		opts = append(opts, WithTrainInstructions(p.trainInsts))
	}
	return opts
}

func (r *RunRequest) prepSpec() prepSpec {
	return prepSpec{r.Benchmark, r.Seed, r.TrainSeed, r.Insts, r.TrainInsts}.normalized()
}

func (r *SweepRequest) prepSpec(benchmark string) prepSpec {
	return prepSpec{benchmark, r.Seed, r.TrainSeed, r.Insts, r.TrainInsts}.normalized()
}

// runKeySpec is the canonical identity of a run's output: every semantic
// field of a RunRequest with defaults resolved, so "default by omission"
// and "default spelled out" hash to one content key. Runs are
// deterministic for a fixed spec — same spec, byte-identical Report —
// which is what makes the key sound as a cache address and a coalescing
// handle. V versions the schema: bump it when report-affecting semantics
// change so stale blobs miss instead of serving wrong-shaped results.
type runKeySpec struct {
	V          int    `json:"v"`
	Kind       string `json:"kind"`
	Benchmark  string `json:"benchmark"`
	Engine     string `json:"engine"`
	Layout     string `json:"layout"`
	Width      int    `json:"width"`
	Seed       uint64 `json:"seed"`
	TrainSeed  uint64 `json:"train_seed"`
	Insts      uint64 `json:"insts"`
	TrainInsts uint64 `json:"train_insts"`
	MaxInsts   uint64 `json:"max_insts"`
	Shards     int    `json:"shards"`
	Warmup     uint64 `json:"warmup"`
	ColdShards bool   `json:"cold_shards"`
	LineBytes  int    `json:"line_bytes"`
	// Sampled mode. omitempty keeps non-sampled requests hashing exactly
	// as they did before these fields existed, preserving cached results.
	Samples     int    `json:"samples,omitempty"`
	SampleInsts uint64 `json:"sample_insts,omitempty"`
	// FwarmV versions the functional-warming semantics (2 = the prefix
	// replay trains the engine's commit-side state, not just caches and
	// the address generator). Set only for runs that functionally warm a
	// prefix; omitempty keeps every other key — and its cached result —
	// intact across the semantics change.
	FwarmV int `json:"fwarm_v,omitempty"`
}

// contentKey hashes the request's normalized semantic fields. Call only
// after validate.
func (r *RunRequest) contentKey() string {
	p := r.prepSpec()
	k := runKeySpec{
		V:    1,
		Kind: "run",

		Benchmark:  p.benchmark,
		Seed:       p.seed,
		TrainSeed:  p.trainSeed,
		Insts:      p.insts,
		TrainInsts: p.trainInsts,

		Engine:     cmp.Or(r.Engine, defaultEngine),
		Layout:     cmp.Or(r.Layout, defaultLayout),
		Width:      cmp.Or(r.Width, defaultWidth),
		MaxInsts:   r.MaxInsts,
		Shards:     max(r.Shards, 1),
		Warmup:     r.Warmup,
		ColdShards: r.ColdShards,
		LineBytes:  r.ICacheLineBytes,

		Samples:     max(r.Samples, 0),
		SampleInsts: r.SampleInsts,
	}
	if k.Samples > 0 {
		// Sampling replaces sharding: the shard count is ignored, while
		// Warmup and ColdShards still shape each sampled window.
		k.Shards = 1
	} else {
		k.SampleInsts = 0
		// Warmup and cold-shard mode only shape sharded runs; an unsharded
		// run ignores them, so they must not split its key space.
		if k.Shards <= 1 {
			k.Warmup = 0
			k.ColdShards = false
		}
	}
	if !k.ColdShards && (k.Shards > 1 || k.Samples > 0) {
		k.FwarmV = 2
	}
	return store.Key(k)
}

// sweepKeySpec is the canonical identity of a sweep's cells. Axis order
// is semantic (cells return in enumeration order), so the slices hash
// as given — after normalize has resolved empty axes to the full lists.
type sweepKeySpec struct {
	V          int      `json:"v"`
	Kind       string   `json:"kind"`
	Benchmarks []string `json:"benchmarks"`
	Layouts    []string `json:"layouts"`
	Engines    []string `json:"engines"`
	Widths     []int    `json:"widths"`
	Seed       uint64   `json:"seed"`
	TrainSeed  uint64   `json:"train_seed"`
	Insts      uint64   `json:"insts"`
	TrainInsts uint64   `json:"train_insts"`
	MaxInsts   uint64   `json:"max_insts"`
	Shards     int      `json:"shards"`
	Warmup     uint64   `json:"warmup"`
	ColdShards bool     `json:"cold_shards"`
	// FwarmV mirrors runKeySpec.FwarmV for sharded sweep cells.
	FwarmV int `json:"fwarm_v,omitempty"`
}

// contentKey hashes the sweep's normalized identity. Call only after
// normalize (which fills defaulted axes).
func (r *SweepRequest) contentKey() string {
	p := r.prepSpec(r.Benchmarks[0])
	k := sweepKeySpec{
		V:    1,
		Kind: "sweep",

		Benchmarks: r.Benchmarks,
		Layouts:    r.Layouts,
		Engines:    r.Engines,
		Widths:     r.Widths,

		Seed:       p.seed,
		TrainSeed:  p.trainSeed,
		Insts:      p.insts,
		TrainInsts: p.trainInsts,
		MaxInsts:   r.MaxInsts,
		Shards:     max(r.Shards, 1),
		Warmup:     r.Warmup,
		ColdShards: r.ColdShards,
	}
	if k.Shards <= 1 {
		k.Warmup = 0
		k.ColdShards = false
	}
	if !k.ColdShards && k.Shards > 1 {
		k.FwarmV = 2
	}
	return store.Key(k)
}

// maxCachedSessions is the default session-cache bound
// (WithSessionCacheSize overrides it): enough for a broad working set
// (the full 11-benchmark suite at several seed/length configurations)
// while keeping a long-lived daemon's prepared-artifact memory bounded
// against clients that sweep the key space (e.g. a fresh seed per
// request).
const maxCachedSessions = 64

// sessionCache shares prepared sessions across jobs, least-recently-used
// beyond its bound. Sessions are safe for concurrent RunWith, so two jobs
// over the same benchmark and seeds reuse one preparation and run
// simultaneously; an evicted session keeps serving jobs already holding
// it and is garbage-collected when they finish.
type sessionCache struct {
	mu  sync.Mutex
	cap int
	m   map[prepSpec]*Session
	use []prepSpec // LRU order, least recently used first
}

func (c *sessionCache) get(spec prepSpec) *Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		c.cap = maxCachedSessions
	}
	if s, ok := c.m[spec]; ok {
		for i, k := range c.use {
			if k == spec {
				c.use = append(append(c.use[:i:i], c.use[i+1:]...), spec)
				break
			}
		}
		return s
	}
	if c.m == nil {
		c.m = map[prepSpec]*Session{}
	}
	s := New(spec.benchmark, spec.options()...)
	c.m[spec] = s
	c.use = append(c.use, spec)
	for len(c.use) > c.cap {
		delete(c.m, c.use[0])
		c.use = c.use[1:]
	}
	return s
}

func (c *sessionCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func (c *sessionCache) capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return maxCachedSessions
	}
	return c.cap
}

// jobFunc executes one job under its context, returning a report (run
// jobs) or cells (sweep jobs).
type jobFunc func(ctx context.Context) (*Report, []GridCell, error)

// job is one queued or executing unit of service work.
type job struct {
	id   string
	kind string // "run" or "sweep"
	// key is the content hash of the normalized request (the store-cache
	// address of its result); reqJSON the submitted body, journaled so a
	// restart can re-enqueue the job.
	key     string
	reqJSON json.RawMessage

	ctx    context.Context
	cancel context.CancelFunc
	// abort cancels ctx with an explanatory cause (deadline, watchdog
	// stall), so runJob can tell policy cut-downs from client cancels.
	abort context.CancelCauseFunc
	run   jobFunc
	done  chan struct{} // closed on reaching a terminal state
	// timeout is the job's effective execution budget (request timeout_ms
	// clamped by the server cap; 0 = unbounded), applied from start, not
	// enqueue. lastAdvance is the unix-nano time of the last measurable
	// progress (retired instructions or completed cells; set at start),
	// read by the watchdog.
	timeout     time.Duration
	lastAdvance atomic.Int64

	// Admission policy and prediction, fixed at submit: the scheduling
	// class and absolute SLO deadline ordering the queue (see jobOrder),
	// the submission sequence breaking ties FIFO, and the cost model's
	// predicted execution work-seconds plus the queue-delay estimate at
	// acceptance (surfaced on the envelope).
	priority      int
	deadline      time.Time
	seq           int
	predictedSecs float64
	queueDelay    float64

	mu       sync.Mutex
	state    JobState
	enqueued time.Time
	started  time.Time
	finished time.Time
	report   *Report
	cells    []GridCell
	err      error
	// timings is the finished job's per-stage breakdown (cells summed for
	// a sweep, queue wait included); set just before finish.
	timings *Timings
	// cached marks a job answered from the result cache (terminal at
	// submission, never enqueued); userCancel distinguishes an explicit
	// DELETE from a shutdown interruption — only the former journals a
	// terminal record, so interrupted jobs re-run after a restart.
	cached     bool
	userCancel bool
	// restored is the terminal envelope recovered from the journal for
	// jobs that finished in a previous process generation; when set it is
	// served as-is.
	restored *JobEnvelope

	pmu        sync.Mutex
	shardRet   map[int]uint64 // retired per reporting shard (key 0 unsharded)
	total      uint64
	cellsDone  int
	cellsTotal int
}

// noteProgress records a session progress callback; sharded callbacks
// arrive concurrently, one per interval. Only an advancing retired count
// feeds the watchdog: the simulator also fires callbacks on a cycle
// cadence so stalls stay cancellable, and those must not look like
// progress.
func (j *job) noteProgress(p Progress) {
	j.pmu.Lock()
	if j.shardRet == nil {
		j.shardRet = map[int]uint64{}
	}
	if p.Retired > j.shardRet[p.Shard] {
		j.lastAdvance.Store(time.Now().UnixNano())
	}
	j.shardRet[p.Shard] = p.Retired
	j.total = p.Total
	j.pmu.Unlock()
}

// noteCell records sweep-cell completion.
func (j *job) noteCell(done, total int) {
	j.pmu.Lock()
	if done > j.cellsDone {
		j.cellsDone = done
		j.lastAdvance.Store(time.Now().UnixNano())
	}
	j.cellsTotal = total
	j.pmu.Unlock()
}

// tryStart moves queued → running; false when the job was cancelled while
// queued (it must not run).
func (j *job) tryStart() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != JobQueued {
		return false
	}
	j.state = JobRunning
	j.started = time.Now()
	// Preparation (synthesis, profiling, layouts) precedes the first
	// progress callback; starting the watchdog clock here keeps it from
	// counting queue wait against the job.
	j.lastAdvance.Store(j.started.UnixNano())
	return true
}

// finish moves the job to a terminal state exactly once.
func (j *job) finish(state JobState, rep *Report, cells []GridCell, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.finished = time.Now()
	j.report = rep
	j.cells = cells
	j.err = err
	j.mu.Unlock()
	close(j.done)
}

// envelope snapshots the job as its public resource representation.
func (j *job) envelope() *JobEnvelope {
	now := time.Now()
	j.mu.Lock()
	if j.restored != nil {
		env := *j.restored
		j.mu.Unlock()
		return &env
	}
	env := &JobEnvelope{
		ID:                j.id,
		Kind:              j.kind,
		State:             j.state,
		Key:               j.key,
		Cached:            j.cached,
		EnqueuedAt:        j.enqueued,
		StartedAt:         j.started,
		FinishedAt:        j.finished,
		PredictedSeconds:  j.predictedSecs,
		QueueDelaySeconds: j.queueDelay,
	}
	if !j.started.IsZero() {
		env.WaitSeconds = j.started.Sub(j.enqueued).Seconds()
		end := now
		if !j.finished.IsZero() {
			end = j.finished
		}
		env.RunSeconds = end.Sub(j.started).Seconds()
	}
	if j.state.Terminal() {
		env.Report = j.report
		env.Cells = j.cells
		env.Timings = j.timings
		if j.err != nil {
			env.Error = j.err.Error()
		}
	}
	j.mu.Unlock()

	j.pmu.Lock()
	var retired uint64
	for _, r := range j.shardRet {
		retired += r
	}
	if retired > 0 || j.total > 0 || j.cellsTotal > 0 {
		env.Progress = &JobProgress{
			Retired:    retired,
			Total:      j.total,
			CellsDone:  j.cellsDone,
			CellsTotal: j.cellsTotal,
		}
	}
	j.pmu.Unlock()
	return env
}

// jobManager owns the queue, the registry, the worker pool and the
// durability store.
type jobManager struct {
	workers int
	retain  int // terminal jobs kept in the registry

	baseCtx context.Context
	stopAll context.CancelFunc

	// queue orders admitted jobs by (priority, deadline, arrival);
	// queueCap bounds admissions (the heap itself is unbounded so
	// recovery and internal re-offers never block).
	queue    *jobQueue
	queueCap int
	// admitting counts submissions that have reserved a queue slot but
	// are still journaling outside the lock; the fullness check counts
	// them so the capacity promise holds without holding m.mu across
	// store I/O. Guarded by m.mu.
	admitting int

	slotFree chan struct{}  // pulsed when an extra job runner finishes
	wg       sync.WaitGroup // dispatcher + spawned job runners

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	done     []string        // terminal job ids, oldest first, for eviction
	inflight map[string]*job // non-terminal jobs by content key, for coalescing
	nextID   int

	spawned atomic.Int64 // token-held extra job runners in flight

	sessions sessionCache

	store     store.Store
	ownStore  bool // close the store at shutdown (we opened it)
	closeOnce sync.Once

	// Job-robustness policy (see WithMaxJobTime / WithWatchdog) and the
	// goroutines that enforce it: the watchdog scanning for stalled jobs
	// and the probe testing a degraded store for recovery. They outlive
	// the worker pool's WaitGroup on purpose — m.wg is waited before
	// stopAll during a clean drain, and these loops only exit on stopAll.
	maxJobTime time.Duration
	watchdog   time.Duration
	probeEvery time.Duration
	auxWG      sync.WaitGroup

	// Degraded mode: flipped by a persistently failing store write, cleared
	// by any later successful write (including the probe's). While set,
	// submissions skip the journal and are accepted from memory — explicit
	// availability-over-durability, surfaced on /healthz.
	retryPolicy    retry.Policy
	degraded       atomic.Bool
	dmu            sync.Mutex // guards lastStoreErr/lastStoreErrAt
	lastStoreErr   error
	lastStoreErrAt time.Time

	hits      atomic.Int64 // submissions answered from the result cache
	misses    atomic.Int64 // submissions that enqueued a simulation
	coalesced atomic.Int64 // submissions folded into an in-flight twin
	storeErrs atomic.Int64 // store writes that failed after retries
	retries   atomic.Int64 // individual store-write retry attempts

	// Warm-state checkpoint outcomes summed over every executed job
	// (see WithCheckpoints): intervals restored from the store versus
	// intervals that warmed functionally and published a checkpoint.
	ckptHits   atomic.Int64
	ckptMisses atomic.Int64

	// SLO admission: the online cost model predicting execution time per
	// (engine, width, mode), the count of deadline-infeasible submissions
	// shed up front, and the EWMA of |actual−predicted|/predicted over
	// finished predicted jobs (smoothed the same way as the model's
	// rates; pmu guards it).
	slo  *slo.Model
	shed atomic.Int64
	pmu  sync.Mutex
	// predErr < 0 means "no finished predicted job yet".
	predErr float64

	// met is the /metrics registry: scrape-time views over the counters
	// above plus the stage-latency histograms fed by finished jobs.
	met          *metrics.Registry
	stageSeconds map[string]*metrics.Histogram
	predErrGauge *metrics.Gauge

	// runHook, when set, observes each job body that actually executes a
	// simulation (test seam for coalescing/caching assertions: coalesced
	// and cached submissions never trigger it). Set before any
	// submission.
	runHook func(kind string)
}

// newJobManager builds the manager and replays the store's journal:
// terminal jobs are registered so their results keep serving, journaled
// unfinished jobs are re-enqueued ahead of any new submission. The queue
// is sized to hold the full recovery debt even when it exceeds
// queueDepth, so a restart never drops journaled work.
func newJobManager(cfg serverConfig, st store.Store, ownStore bool) (*jobManager, error) {
	queueDepth, workers, retain := cfg.queueDepth, cfg.workers, cfg.retainJobs
	if queueDepth <= 0 {
		queueDepth = 64
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if retain <= 0 {
		retain = 1024
	}
	recs, err := st.Recover()
	if err != nil {
		return nil, err
	}
	pending := 0
	for _, rec := range recs {
		if !store.Terminal(rec.State) {
			pending++
		}
	}
	probeEvery := cfg.probeEvery
	if probeEvery <= 0 {
		probeEvery = 2 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &jobManager{
		workers: workers,
		retain:  retain,
		baseCtx: ctx,
		stopAll: cancel,
		queue:   newJobQueue(),
		// Sized to hold the full recovery debt even when it exceeds
		// queueDepth, so a restart never drops journaled work.
		queueCap:    max(queueDepth, pending),
		slotFree:    make(chan struct{}, 1),
		jobs:        map[string]*job{},
		inflight:    map[string]*job{},
		store:       st,
		ownStore:    ownStore,
		maxJobTime:  cfg.maxJobTime,
		watchdog:    cfg.watchdog,
		probeEvery:  probeEvery,
		retryPolicy: retry.Default(),
		slo:         slo.NewModel(),
		predErr:     -1,
	}
	m.initMetrics()
	m.sessions.cap = cfg.sessionCap
	for _, rec := range recs {
		m.restore(rec)
	}
	m.trimDoneLocked() // recovered terminal jobs count against retention
	m.wg.Add(1)
	go m.dispatch()
	m.auxWG.Add(1)
	go m.probeLoop()
	if m.watchdog > 0 {
		m.auxWG.Add(1)
		go m.watchdogLoop()
	}
	return m, nil
}

// jobSeq extracts the numeric suffix of a job id ("run-000042" → 42).
func jobSeq(id string) (int, bool) {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(id[i+1:])
	return n, err == nil
}

// restore registers one recovered journal record: the terminal envelope
// of a finished job, or a re-enqueued job rebuilt from its journaled
// request. Runs before the dispatcher starts, so no locking.
func (m *jobManager) restore(rec store.JournalRecord) {
	if _, dup := m.jobs[rec.ID]; dup {
		return
	}
	if n, ok := jobSeq(rec.ID); ok && n > m.nextID {
		m.nextID = n
	}
	if store.Terminal(rec.State) {
		var env JobEnvelope
		if json.Unmarshal(rec.Envelope, &env) != nil || env.ID == "" {
			return // pre-seal noise; nothing servable
		}
		j := &job{id: rec.ID, kind: rec.Kind, key: rec.Key,
			state: JobState(rec.State), restored: &env, done: closedChan()}
		m.jobs[rec.ID] = j
		m.done = append(m.done, rec.ID)
		return
	}

	// An accepted job with no terminal record is owed a run. If its
	// result landed in the cache meanwhile (a twin completed, or the
	// process died between the blob write and the terminal journal
	// record), answer from the cache instead of re-simulating.
	if rec.Key != "" {
		if blob, ok, err := m.store.GetBlob(rec.Key); err == nil && ok {
			if j := m.cachedJob(rec.ID, rec.Kind, rec.Key, blob); j != nil {
				m.hits.Add(1)
				m.jobs[rec.ID] = j
				m.done = append(m.done, rec.ID)
				m.journal(j, JobDone)
				return
			}
		}
	}

	var build func(*job) jobFunc
	var pol jobPolicy
	switch rec.Kind {
	case "run":
		var req RunRequest
		if json.Unmarshal(rec.Request, &req) == nil && req.validate() == nil {
			build = m.runJobFunc(req)
			pol = m.runPolicy(&req, rec.Time)
		}
	case "sweep":
		var req SweepRequest
		if json.Unmarshal(rec.Request, &req) == nil && req.normalize() == nil {
			build = m.sweepJobFunc(req)
			pol = m.sweepPolicy(&req, rec.Time)
		}
	}
	ctx, abort := context.WithCancelCause(m.baseCtx)
	j := &job{
		id:       rec.ID,
		kind:     rec.Kind,
		key:      rec.Key,
		reqJSON:  rec.Request,
		state:    JobQueued,
		enqueued: rec.Time,
		ctx:      ctx,
		cancel:   func() { abort(context.Canceled) },
		abort:    abort,
		done:     make(chan struct{}),
		// Recovered jobs keep their journaled policy: the original
		// priority, the deadline anchored at the original submission
		// time (an already-blown deadline just sorts first and runs —
		// the job was accepted; recovery must not shed it), and the
		// original arrival order via the id sequence.
		priority:      pol.priority,
		deadline:      pol.deadline,
		predictedSecs: pol.predicted,
	}
	if n, ok := jobSeq(rec.ID); ok {
		j.seq = n
	}
	if build == nil {
		// The journaled request no longer parses or validates (schema
		// drift, disk corruption inside an intact line): surface a failed
		// terminal job rather than dropping the id.
		j.cancel()
		j.state = JobFailed
		j.finished = time.Now()
		j.err = errors.New("streamfetch: journaled request is not recoverable")
		close(j.done)
		m.jobs[rec.ID] = j
		m.done = append(m.done, rec.ID)
		m.journal(j, JobFailed)
		return
	}
	j.run = build(j)
	m.jobs[rec.ID] = j
	if rec.Key != "" {
		m.inflight[rec.Key] = j
	}
	m.queue.push(j)
}

// closedChan returns an already-closed done channel for jobs that are
// terminal at construction.
func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}

// cachedJob builds a terminal job from a cached result blob, or nil when
// the blob does not decode as the kind's payload.
func (m *jobManager) cachedJob(id, kind, key string, blob []byte) *job {
	j := &job{
		id:     id,
		kind:   kind,
		key:    key,
		state:  JobDone,
		cached: true,
		done:   closedChan(),
	}
	now := time.Now()
	j.enqueued, j.finished = now, now
	switch kind {
	case "run":
		var rep Report
		if json.Unmarshal(blob, &rep) != nil || rep.Benchmark == "" {
			return nil
		}
		j.report = &rep
	case "sweep":
		var cells []GridCell
		if json.Unmarshal(blob, &cells) != nil || len(cells) == 0 {
			return nil
		}
		j.cells = cells
	default:
		return nil
	}
	return j
}

// storeWrite runs one store write under the retry policy: transient
// failures back off and retry, exhausting the policy counts a store
// error and flips the server degraded, and any success — a later job's
// write or the probe's — clears degraded mode again.
func (m *jobManager) storeWrite(fn func() error) error {
	err := retry.Do(m.baseCtx, m.retryPolicy, fn, func(error) { m.retries.Add(1) })
	if err != nil {
		m.storeErrs.Add(1)
		m.dmu.Lock()
		m.lastStoreErr, m.lastStoreErrAt = err, time.Now()
		m.dmu.Unlock()
		m.degraded.Store(true)
		return err
	}
	m.degraded.Store(false)
	return nil
}

// storeHealth snapshots the degraded-mode surface for /healthz. The last
// error stays visible after recovery — it says what went wrong, degraded
// says whether it still is.
func (m *jobManager) storeHealth() (degraded bool, lastErr string, lastAt time.Time) {
	m.dmu.Lock()
	defer m.dmu.Unlock()
	if m.lastStoreErr != nil {
		lastErr = m.lastStoreErr.Error()
	}
	return m.degraded.Load(), lastErr, m.lastStoreErrAt
}

// journal appends one record for the job's current state, counting (not
// failing on) write errors: past acceptance, a degraded store must not
// take down serving. Terminal records carry the envelope, non-terminal
// ones the request.
func (m *jobManager) journal(j *job, state JobState) {
	rec := store.JournalRecord{
		ID:    j.id,
		Kind:  j.kind,
		Key:   j.key,
		State: string(state),
		Time:  time.Now(),
	}
	if state.Terminal() {
		env, err := json.Marshal(j.envelope())
		if err != nil {
			m.storeErrs.Add(1)
			return
		}
		rec.Envelope = env
	} else {
		rec.Request = j.reqJSON
	}
	m.storeWrite(func() error { return m.store.Journal(rec) })
}

// jobPolicy is a submission's execution policy resolved at admission:
// scheduling class, absolute SLO deadline (zero = none) and the cost
// model's predicted execution work-seconds.
type jobPolicy struct {
	priority  int
	deadline  time.Time
	predicted float64
}

// sloKey buckets the request for the cost model: engine, width and
// execution shape, with the session defaults resolved.
func (r *RunRequest) sloKey() slo.Key {
	mode := slo.ModePlain
	switch {
	case r.Samples > 0:
		mode = slo.ModeSampled
	case r.Shards > 1:
		mode = slo.ModeSharded
	}
	return slo.Key{
		Engine: cmp.Or(r.Engine, defaultEngine),
		Width:  cmp.Or(r.Width, defaultWidth),
		Mode:   mode,
	}
}

// workInsts estimates how many instructions the run will simulate: the
// trace length, cut by max_insts, or the sampled windows' coverage
// (lead-ins included) for sampled runs.
func (r *RunRequest) workInsts() uint64 {
	n := r.prepSpec().insts
	if r.MaxInsts > 0 && r.MaxInsts < n {
		n = r.MaxInsts
	}
	if r.Samples > 0 {
		if w := uint64(r.Samples) * (r.SampleInsts + r.Warmup); w < n {
			n = w
		}
	}
	return n
}

// runPolicy resolves a run submission's admission policy at time at.
func (m *jobManager) runPolicy(r *RunRequest, at time.Time) jobPolicy {
	pol := jobPolicy{
		priority:  r.Priority,
		predicted: m.slo.Predict(r.sloKey(), r.workInsts()),
	}
	if r.DeadlineMS > 0 {
		pol.deadline = at.Add(msToDuration(r.DeadlineMS))
	}
	return pol
}

// sweepPolicy resolves a sweep's admission policy: predicted cost sums
// over the grid's cells (serial work-seconds — a conservative bound; the
// queue-delay estimate is what accounts for worker parallelism). r must
// be normalized.
func (m *jobManager) sweepPolicy(r *SweepRequest, at time.Time) jobPolicy {
	mode := slo.ModePlain
	if r.Shards > 1 {
		mode = slo.ModeSharded
	}
	var total float64
	for _, b := range r.Benchmarks {
		n := r.prepSpec(b).insts
		if r.MaxInsts > 0 && r.MaxInsts < n {
			n = r.MaxInsts
		}
		for _, e := range r.Engines {
			for _, w := range r.Widths {
				total += m.slo.Predict(slo.Key{Engine: e, Width: w, Mode: mode}, n) *
					float64(len(r.Layouts))
			}
		}
	}
	pol := jobPolicy{priority: r.Priority, predicted: total}
	if r.DeadlineMS > 0 {
		pol.deadline = at.Add(msToDuration(r.DeadlineMS))
	}
	return pol
}

// queueEstimateLocked sums the predicted backlog: full predicted cost
// for queued jobs, the predicted remainder for running ones. delay is
// the backlog spread over the worker pool — the expected wait a new
// submission sees. Callers hold m.mu.
func (m *jobManager) queueEstimateLocked() (backlog, delay float64) {
	now := time.Now()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case JobQueued:
			backlog += j.predictedSecs
		case JobRunning:
			if rem := j.predictedSecs - now.Sub(j.started).Seconds(); rem > 0 {
				backlog += rem
			}
		}
		j.mu.Unlock()
	}
	return backlog, backlog / float64(max(m.workers, 1))
}

// queueEstimate is queueEstimateLocked for callers not holding m.mu.
func (m *jobManager) queueEstimate() (backlog, delay float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.queueEstimateLocked()
}

// submit accepts one job: answered from the result cache (terminal
// immediately, never enqueued), coalesced onto an identical in-flight
// job (same job returned), or journaled and enqueued as a fresh job —
// rejecting when draining, deadline-infeasible or full. build receives
// the job so run closures can reference it for progress reporting.
//
// Store writes happen outside m.mu: the journal retries with backoff
// when the store misbehaves, and holding the registry lock across that
// would convoy every poll, cancel and /healthz behind disk I/O. The
// queue-capacity promise survives the unlock through the admitting
// reservation; the cost is a small window where an identical twin
// submitted mid-journal starts its own job instead of coalescing
// (benign: both run, persist's inflight guard keeps the registry
// consistent).
func (m *jobManager) submit(kind, key string, reqJSON []byte, pol jobPolicy, build func(*job) jobFunc) (*job, error) {
	// Cache lookup outside the registry lock: blob reads may touch disk.
	var cachedBlob []byte
	if key != "" {
		if blob, ok, err := m.store.GetBlob(key); err == nil && ok {
			cachedBlob = blob
		}
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if leader := m.inflight[key]; leader != nil && key != "" {
		// An identical job is queued or running: one simulation, fan-out
		// of the result. The submitter shares the leader's id (and its
		// cancellation — DELETE cancels for every submitter).
		m.coalesced.Add(1)
		m.mu.Unlock()
		return leader, nil
	}
	m.nextID++
	seq := m.nextID
	id := fmt.Sprintf("%s-%06d", kind, seq)

	if cachedBlob != nil {
		if j := m.cachedJob(id, kind, key, cachedBlob); j != nil {
			m.hits.Add(1)
			m.jobs[id] = j
			m.done = append(m.done, id)
			m.trimDoneLocked()
			m.mu.Unlock()
			m.journal(j, JobDone) // restarts keep serving it
			return j, nil
		}
	}

	// Admission control: a deadline the daemon already knows it cannot
	// meet is shed now — before any durability promise — with the
	// prediction in the error. An accepted-then-failed deadline would
	// cost a queue slot, a journal record and a simulation for nothing.
	_, delay := m.queueEstimateLocked()
	if !pol.deadline.IsZero() {
		deadlineSecs := time.Until(pol.deadline).Seconds()
		if delay+pol.predicted > deadlineSecs {
			m.shed.Add(1)
			m.mu.Unlock()
			return nil, &InfeasibleError{
				PredictedSeconds:  pol.predicted,
				QueueDelaySeconds: delay,
				DeadlineSeconds:   deadlineSecs,
			}
		}
	}

	// Only this lock admits producers, so a spot measured now cannot be
	// taken by anyone else; the dispatcher only drains. admitting covers
	// submissions journaling outside the lock below — reserved but not
	// yet queued. Checking before journaling keeps rejected submissions
	// out of the journal: a journaled job is a promise to run it.
	if m.queue.len()+m.admitting >= m.queueCap {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	m.admitting++
	degraded := m.degraded.Load()
	m.mu.Unlock()

	ctx, abort := context.WithCancelCause(m.baseCtx)
	j := &job{
		id:            id,
		kind:          kind,
		key:           key,
		reqJSON:       reqJSON,
		state:         JobQueued,
		enqueued:      time.Now(),
		ctx:           ctx,
		cancel:        func() { abort(context.Canceled) },
		abort:         abort,
		done:          make(chan struct{}),
		priority:      pol.priority,
		deadline:      pol.deadline,
		seq:           seq,
		predictedSecs: pol.predicted,
		queueDelay:    delay,
	}
	j.run = build(j)

	var storeErr error
	if degraded {
		// Degraded mode, already declared on /healthz: accept from memory
		// without the journal write that would fail anyway. Availability
		// over durability — the job will not survive a restart. The probe
		// (and every later store write) keeps testing for recovery.
	} else {
		storeErr = m.storeWrite(func() error {
			return m.store.Journal(store.JournalRecord{
				ID: id, Kind: kind, Key: key, State: string(JobQueued),
				Time: j.enqueued, Request: reqJSON,
			})
		})
	}

	m.mu.Lock()
	m.admitting--
	if storeErr != nil {
		// The 202 is a durability promise; without the journal record the
		// job would silently vanish in a crash. Refuse this one — the
		// failure flipped the server degraded, so the next submission is
		// accepted memory-only under the declared policy.
		m.mu.Unlock()
		j.cancel()
		return nil, fmt.Errorf("%w: %v", ErrStore, storeErr)
	}
	if m.draining {
		// Drain flipped during the journaling window: this process will
		// never run the job. Refuse the submission and retract the queued
		// journal record with a terminal cancelled one, so a restart does
		// not resurrect a job whose submitter was told no.
		m.mu.Unlock()
		j.cancel()
		j.mu.Lock()
		j.state = JobCancelled
		j.finished = time.Now()
		j.err = ErrDraining
		j.mu.Unlock()
		close(j.done)
		if !degraded {
			m.journal(j, JobCancelled)
		}
		return nil, ErrDraining
	}
	m.jobs[id] = j
	if key != "" {
		m.inflight[key] = j
	}
	m.misses.Add(1)
	m.mu.Unlock()
	m.queue.push(j)
	return j, nil
}

// msToDuration converts validated (non-negative) milliseconds to a
// Duration, saturating instead of overflowing: time.Duration(ms) *
// time.Millisecond wraps negative past ~9.2e12 ms, which would read as
// "tighter than any cap" in one place and "unbounded" in another.
func msToDuration(ms int64) time.Duration {
	const maxMS = int64(math.MaxInt64) / int64(time.Millisecond)
	if ms > maxMS {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(ms) * time.Millisecond
}

// effTimeout resolves a request's timeout_ms against the server cap: the
// tighter of the two wins; 0 means unbounded.
func (m *jobManager) effTimeout(ms int64) time.Duration {
	d := msToDuration(ms)
	if m.maxJobTime > 0 && (d == 0 || d > m.maxJobTime) {
		d = m.maxJobTime
	}
	return d
}

// useCheckpoints decides whether a job's runs should share the daemon's
// store for warm-state checkpoints. Gated on a timed warmup lead-in:
// with warmup > 0 a checkpoint-restored interval is byte-identical to a
// functionally warmed one, so the content-keyed result cache stays sound
// (reports differ at most in their checkpoint hit/miss counters);
// without warmup a restored interval's supply path can differ by a
// cycle, which would let store state leak into cached results.
func (m *jobManager) useCheckpoints(warmup uint64, shards, samples int) bool {
	return warmup > 0 && (shards > 1 || samples > 0)
}

// runJobFunc builds the executable body of a single-configuration run.
func (m *jobManager) runJobFunc(req RunRequest) func(*job) jobFunc {
	return func(j *job) jobFunc {
		j.timeout = m.effTimeout(req.TimeoutMS)
		return func(ctx context.Context) (*Report, []GridCell, error) {
			if h := m.runHook; h != nil {
				h("run")
			}
			sess := m.sessions.get(req.prepSpec())
			opts := append(req.runOptions(),
				WithProgress(0, j.noteProgress), WithStageTimings())
			if m.useCheckpoints(req.Warmup, req.Shards, req.Samples) {
				opts = append(opts, WithCheckpoints(m.store))
			}
			rep, err := sess.RunWith(ctx, opts...)
			if rep != nil {
				m.ckptHits.Add(int64(rep.CheckpointHits))
				m.ckptMisses.Add(int64(rep.CheckpointMisses))
			}
			// Feed the cost model with the measured rate so the next
			// prediction for this (engine, width, mode) reflects this
			// machine. Aborted or failed runs are not representative.
			if err == nil && rep != nil && !rep.Aborted && rep.Timings != nil {
				m.slo.Observe(req.sloKey(), rep.Retired, rep.Timings.workSeconds())
			}
			return rep, nil, err
		}
	}
}

// sweepJobFunc builds the executable body of a grid sweep. req must be
// normalized.
func (m *jobManager) sweepJobFunc(req SweepRequest) func(*job) jobFunc {
	total := len(req.Benchmarks) * len(req.Layouts) * len(req.Engines) * len(req.Widths)
	return func(j *job) jobFunc {
		j.cellsTotal = total
		j.timeout = m.effTimeout(req.TimeoutMS)
		return func(ctx context.Context) (*Report, []GridCell, error) {
			if h := m.runHook; h != nil {
				h("sweep")
			}
			sessions := make([]*Session, len(req.Benchmarks))
			for i, b := range req.Benchmarks {
				sessions[i] = m.sessions.get(req.prepSpec(b))
			}
			cellOpts := append(req.cellOptions(), WithStageTimings())
			if m.useCheckpoints(req.Warmup, req.Shards, 0) {
				cellOpts = append(cellOpts, WithCheckpoints(m.store))
			}
			cells, err := RunGrid(ctx, sessions, req.Widths, req.Layouts, req.Engines,
				true, j.noteCell, cellOpts...)
			mode := slo.ModePlain
			if req.Shards > 1 {
				mode = slo.ModeSharded
			}
			for _, c := range cells {
				if c.Report != nil {
					m.ckptHits.Add(int64(c.Report.CheckpointHits))
					m.ckptMisses.Add(int64(c.Report.CheckpointMisses))
					// Each completed cell is one observation for its own
					// (engine, width) bucket — a sweep trains the model
					// across the whole grid in one job.
					if c.Report.Timings != nil && !c.Report.Aborted && c.Error == "" {
						m.slo.Observe(slo.Key{Engine: c.Engine, Width: c.Width, Mode: mode},
							c.Report.Retired, c.Report.Timings.workSeconds())
					}
				}
			}
			return nil, cells, err
		}
	}
}

// newRunJob validates and submits a single-configuration run.
func (m *jobManager) newRunJob(req RunRequest) (*job, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return m.submit("run", req.contentKey(), reqJSON,
		m.runPolicy(&req, time.Now()), m.runJobFunc(req))
}

// newSweepJob validates and submits a grid sweep as one job.
func (m *jobManager) newSweepJob(req SweepRequest) (*job, error) {
	if err := req.normalize(); err != nil {
		return nil, err
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return m.submit("sweep", req.contentKey(), reqJSON,
		m.sweepPolicy(&req, time.Now()), m.sweepJobFunc(req))
}

// get returns a job by id (nil when unknown).
func (m *jobManager) get(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// cancelJob cancels one job on a client's explicit request: a queued job
// goes terminal immediately and never runs; a running job has its
// context cancelled and finishes as cancelled once the simulation
// observes it (its shard workers release their pool tokens on the way
// out). Terminal jobs are untouched. A coalesced job is one job: DELETE
// cancels it for every submitter that shares its id.
func (m *jobManager) cancelJob(j *job) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.userCancel = true
	if j.state == JobQueued {
		j.state = JobCancelled
		j.finished = time.Now()
		j.err = context.Canceled
		j.mu.Unlock()
		if j.cancel != nil {
			j.cancel()
		}
		close(j.done)
		m.persist(j)
		m.retire(j)
		return
	}
	j.mu.Unlock()
	j.cancel()
}

// retire records a terminal job for bounded retention: the registry keeps
// the most recent `retain` finished jobs (their envelopes, reports and
// sweep cells) and evicts the oldest beyond that, so a long-lived daemon's
// memory is bounded however many jobs it has served. Evicted ids answer
// 404 from this process — a daemon on a filesystem store serves them
// again after a restart, which replays the journal's terminal envelopes.
func (m *jobManager) retire(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done = append(m.done, j.id)
	m.trimDoneLocked()
}

// trimDoneLocked evicts terminal jobs beyond the retention bound,
// oldest first. Callers hold m.mu (or run before the dispatcher starts).
func (m *jobManager) trimDoneLocked() {
	for len(m.done) > m.retain {
		delete(m.jobs, m.done[0])
		m.done = m.done[1:]
	}
}

// persist makes a terminal job durable: its result blob lands in the
// content-addressed cache (successful jobs only — partial or failed
// output must never be served as a hit) and its envelope is journaled so
// a restart keeps serving it. The one exception is a job cancelled by
// shutdown rather than by a client: it stays journaled as accepted, which
// is exactly what makes a restarted daemon re-enqueue and finish it.
// Also releases the job's coalescing slot.
func (m *jobManager) persist(j *job) {
	j.mu.Lock()
	state, userCancel := j.state, j.userCancel
	rep, cells := j.report, j.cells
	j.mu.Unlock()

	if j.key != "" {
		m.mu.Lock()
		if m.inflight[j.key] == j {
			delete(m.inflight, j.key)
		}
		m.mu.Unlock()
	}

	if state == JobCancelled && !userCancel && m.baseCtx.Err() != nil {
		return // interrupted by shutdown: the journal still owes it a run
	}

	if state == JobDone && j.key != "" {
		var blob []byte
		var err error
		switch {
		case j.kind == "run" && rep != nil && !rep.Aborted:
			blob, err = json.MarshalIndent(rep, "", "  ")
		case j.kind == "sweep" && len(cells) > 0:
			blob, err = json.MarshalIndent(cells, "", "  ")
		}
		if err == nil && blob != nil {
			payload := append(blob, '\n')
			m.storeWrite(func() error { return m.store.PutBlob(j.key, payload) })
		} else if err != nil {
			m.storeErrs.Add(1)
		}
	}
	m.journal(j, state)
}

// counts tallies job states for the health surface.
func (m *jobManager) counts() (queued, running, terminal int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		s := j.state
		j.mu.Unlock()
		switch s {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		default:
			terminal++
		}
	}
	return
}

// dispatch drains the queue in priority order, placing each job on a
// worker.
func (m *jobManager) dispatch() {
	defer m.wg.Done()
	for {
		j, ok := m.queue.pop()
		if !ok {
			return
		}
		m.place(j)
	}
}

// place runs one job. When the worker cap and the par pool both allow,
// the job is handed to an extra goroutine holding one pool token for the
// job's duration, so concurrent jobs and the shard workers inside them
// draw from the same GOMAXPROCS budget: up to `workers` jobs run at once,
// each on its own token. The dispatcher runs a job inline (as the
// budget-free caller) only while no runner is in flight — that keeps a
// zero-token box progressing without ever parking a long-running job on
// the dispatcher while freed workers sit idle; with runners in flight it
// instead waits for capacity (a runner finishing, or a token returned
// mid-job by a shard fan-out) and retries.
func (m *jobManager) place(j *job) {
	for {
		// While waiting for capacity the dispatcher holds j outside the
		// queue; a higher-priority arrival must not wait behind it. Each
		// pass re-offers the held job: if something now orders ahead of
		// it, run that instead and re-queue j (swap is a no-op otherwise).
		j = m.queue.swap(j)
		select {
		case <-j.done:
			return // cancelled while queued: don't wait for capacity
		default:
		}
		if int(m.spawned.Load()) < m.workers {
			if release, ok := par.TryHold(); ok {
				m.spawned.Add(1)
				m.wg.Add(1)
				go func() {
					defer m.wg.Done()
					m.runJob(j)
					release()
					m.spawned.Add(-1)
					select {
					case m.slotFree <- struct{}{}:
					default:
					}
				}()
				return
			}
		}
		if m.spawned.Load() == 0 {
			m.runJob(j)
			return
		}
		select {
		case <-m.slotFree:
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// runJob executes one job and records its terminal state. A cancelled or
// cut-down run may still carry a partial report (Aborted set), which is
// preserved. The body runs behind a recover barrier: an engine panic
// fails that job — stack in its envelope — without taking the daemon
// down.
func (m *jobManager) runJob(j *job) {
	defer j.cancel()
	if !j.tryStart() {
		return // cancelled while queued
	}
	runCtx := j.ctx
	if j.timeout > 0 {
		var stop context.CancelFunc
		runCtx, stop = context.WithTimeoutCause(j.ctx, j.timeout, errJobDeadline)
		defer stop()
	}
	rep, cells, err := m.guardedRun(j, runCtx)
	// Timings go on the job before finish so the terminal envelope — and
	// the journal record persist writes from it — carries them.
	j.setTimings(buildTimings(j, rep, cells))
	switch {
	case err == nil:
		j.finish(JobDone, rep, cells, nil)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The context ended the run; its cause says who pulled the plug.
		// Policy cut-downs — the execution deadline, the no-progress
		// watchdog — are failures carrying the partial aborted report; a
		// plain cancellation is the client's (or shutdown's) own doing.
		cause := context.Cause(runCtx)
		switch {
		case errors.Is(cause, errJobDeadline):
			j.finish(JobFailed, rep, cells, fmt.Errorf("%w (%s)", errJobDeadline, j.timeout))
		case errors.Is(cause, errJobStalled):
			j.finish(JobFailed, rep, cells, cause)
		default:
			j.finish(JobCancelled, rep, cells, err)
		}
	default:
		j.finish(JobFailed, rep, cells, err)
	}
	m.observeFinished(j)
	m.persist(j)
	m.retire(j)
}

// buildTimings assembles a finished job's per-stage breakdown: the run
// report's stage timings (or the sum over sweep cells) plus the queue
// wait the daemon itself measured.
func buildTimings(j *job, rep *Report, cells []GridCell) *Timings {
	tm := &Timings{}
	if rep != nil {
		tm.Add(rep.Timings)
	}
	for _, c := range cells {
		if c.Report != nil {
			tm.Add(c.Report.Timings)
		}
	}
	j.mu.Lock()
	if !j.started.IsZero() {
		tm.QueueSeconds = j.started.Sub(j.enqueued).Seconds()
	}
	j.mu.Unlock()
	return tm
}

func (j *job) setTimings(tm *Timings) {
	j.mu.Lock()
	j.timings = tm
	j.mu.Unlock()
}

// observeFinished feeds a terminal job into the /metrics surface: stage
// latencies into the histograms, and — for completed predicted jobs —
// the relative prediction error into its EWMA gauge.
func (m *jobManager) observeFinished(j *job) {
	j.mu.Lock()
	tm := j.timings
	state := j.state
	predicted := j.predictedSecs
	j.mu.Unlock()
	if tm == nil {
		return
	}
	for stage, v := range map[string]float64{
		"queue":   tm.QueueSeconds,
		"prepare": tm.PrepareSeconds,
		"warmup":  tm.WarmupSeconds,
		"measure": tm.MeasureSeconds,
		"merge":   tm.MergeSeconds,
	} {
		if h := m.stageSeconds[stage]; h != nil {
			h.Observe(v)
		}
	}
	if state != JobDone || predicted <= 0 {
		return
	}
	actual := tm.workSeconds()
	if actual <= 0 {
		return
	}
	ratio := math.Abs(actual-predicted) / predicted
	m.pmu.Lock()
	if m.predErr < 0 {
		m.predErr = ratio
	} else {
		m.predErr = 0.3*ratio + 0.7*m.predErr
	}
	v := m.predErr
	m.pmu.Unlock()
	if m.predErrGauge != nil {
		m.predErrGauge.Set(v)
	}
}

// guardedRun invokes the job body, converting a panic on this goroutine
// into an error carrying the stack. Panics on shard and sweep-cell worker
// goroutines are converted the same way inside internal/par, so every
// execution path of a job is covered.
func (m *jobManager) guardedRun(j *job, ctx context.Context) (rep *Report, cells []GridCell, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("streamfetch: job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	return j.run(ctx)
}

// watchdogLoop cancels running jobs that report no measurable progress —
// no retired instructions, no completed sweep cells — for a full window:
// a wedged engine or pathological configuration fails fast instead of
// occupying a worker until (or past) any deadline.
func (m *jobManager) watchdogLoop() {
	defer m.auxWG.Done()
	tick := max(m.watchdog/4, 10*time.Millisecond)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-t.C:
		}
		cutoff := time.Now().Add(-m.watchdog).UnixNano()
		m.mu.Lock()
		var stalled []*job
		for _, j := range m.jobs {
			j.mu.Lock()
			running := j.state == JobRunning
			j.mu.Unlock()
			if running && j.lastAdvance.Load() < cutoff {
				stalled = append(stalled, j)
			}
		}
		m.mu.Unlock()
		for _, j := range stalled {
			j.abort(errJobStalled)
		}
	}
}

// probeLoop tests a degraded store for recovery: while degraded it
// periodically journals a probe record, and the first success (via
// storeWrite) flips the server healthy again. The probe record is
// terminal with no envelope, so restarts replay it as noise.
func (m *jobManager) probeLoop() {
	defer m.auxWG.Done()
	t := time.NewTicker(m.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case <-t.C:
		}
		if !m.degraded.Load() {
			continue
		}
		m.storeWrite(func() error {
			return m.store.Journal(store.JournalRecord{
				ID: "store-probe", Kind: "probe",
				State: string(JobDone), Time: time.Now(),
			})
		})
	}
}

// shutdown drains: no new submissions, queued and running jobs complete,
// workers exit. When ctx expires first, every remaining job is cancelled
// and shutdown still waits for the workers to unwind (no goroutine
// leaks), returning ctx's error.
func (m *jobManager) shutdown(ctx context.Context) error {
	m.mu.Lock()
	if !m.draining {
		m.draining = true
		m.queue.close()
	}
	m.mu.Unlock()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		m.stopAll()
	case <-ctx.Done():
		m.stopAll()
		<-done
		err = ctx.Err()
	}
	// stopAll also releases the probe and watchdog loops, which outlive
	// the worker pool by design; wait for them before touching the store.
	m.auxWG.Wait()
	// Workers have unwound: nothing journals or reads blobs anymore, so a
	// store we opened can close (one installed via WithStore belongs to
	// the caller).
	if m.ownStore {
		m.closeOnce.Do(func() {
			if cerr := m.store.Close(); cerr != nil && err == nil {
				err = cerr
			}
		})
	}
	return err
}
