// The /metrics surface: a dependency-free Prometheus-text view over the
// job manager. Everything here is either a scrape-time callback reading
// the counters the manager already keeps (so the hot path pays nothing
// for being observable) or a histogram fed once per finished job.
package streamfetch

import (
	"sync/atomic"
	"time"

	"streamfetch/internal/metrics"
)

// stageBuckets spans the latencies jobs actually see, from sub-ms queue
// waits on an idle daemon to multi-minute sweeps.
var stageBuckets = []float64{0.001, 0.005, 0.02, 0.1, 0.5, 2.5, 10, 60, 300}

// initMetrics builds the /metrics registry. Called once from
// newJobManager, before any job can finish.
func (m *jobManager) initMetrics() {
	r := metrics.NewRegistry()
	m.met = r

	m.stageSeconds = map[string]*metrics.Histogram{}
	for _, stage := range []string{"queue", "prepare", "warmup", "measure", "merge"} {
		m.stageSeconds[stage] = r.Histogram(
			"streamfetch_stage_seconds",
			"Per-stage latency of finished jobs, labelled by pipeline stage.",
			stageBuckets, metrics.L("stage", stage))
	}
	m.predErrGauge = r.Gauge(
		"streamfetch_slo_prediction_error_ratio",
		"EWMA of |actual-predicted|/predicted execution time over finished predicted jobs.")

	counter := func(name, help string, v *atomic.Int64) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("streamfetch_cache_hits_total",
		"Submissions answered from the content-addressed result cache.", &m.hits)
	counter("streamfetch_cache_misses_total",
		"Submissions that enqueued a simulation.", &m.misses)
	counter("streamfetch_coalesced_total",
		"Submissions folded onto an identical in-flight job.", &m.coalesced)
	counter("streamfetch_shed_total",
		"Submissions shed at admission as deadline-infeasible.", &m.shed)
	counter("streamfetch_store_errors_total",
		"Store writes that failed after exhausting retries.", &m.storeErrs)
	counter("streamfetch_store_retries_total",
		"Individual store-write retry attempts.", &m.retries)
	counter("streamfetch_checkpoint_hits_total",
		"Warm-state checkpoint restores across executed jobs.", &m.ckptHits)
	counter("streamfetch_checkpoint_misses_total",
		"Intervals that warmed functionally and published a checkpoint.", &m.ckptMisses)

	r.GaugeFunc("streamfetch_store_degraded",
		"1 while the store is degraded (journal writes failing), else 0.",
		func() float64 {
			if m.degraded.Load() {
				return 1
			}
			return 0
		})
	r.GaugeFunc("streamfetch_queue_depth",
		"Jobs waiting in the admission queue.",
		func() float64 { return float64(m.queue.len()) })
	r.GaugeFunc("streamfetch_queue_capacity",
		"Admission queue capacity.",
		func() float64 { return float64(m.queueCap) })
	r.GaugeFunc("streamfetch_workers",
		"Concurrent job execution cap.",
		func() float64 { return float64(m.workers) })
	r.GaugeFunc("streamfetch_queue_delay_seconds",
		"Predicted wait a new submission sees: backlog work spread over the workers.",
		func() float64 { _, d := m.queueEstimate(); return d })
	r.GaugeFunc("streamfetch_predicted_backlog_seconds",
		"Sum of predicted execution work-seconds over queued and running jobs.",
		func() float64 { b, _ := m.queueEstimate(); return b })
	r.GaugeFunc("streamfetch_sessions_cached",
		"Prepared sessions held by the LRU cache.",
		func() float64 { return float64(m.sessions.size()) })

	for _, st := range []struct {
		state string
		pick  func(q, r, t int) int
	}{
		{"queued", func(q, _, _ int) int { return q }},
		{"running", func(_, r, _ int) int { return r }},
		{"terminal", func(_, _, t int) int { return t }},
	} {
		pick := st.pick
		r.GaugeFunc("streamfetch_jobs",
			"Jobs in the registry by state.",
			func() float64 { return float64(pick(m.counts())) },
			metrics.L("state", st.state))
	}

	startedAt := time.Now()
	r.GaugeFunc("streamfetch_uptime_seconds",
		"Seconds since the job manager started.",
		func() float64 { return time.Since(startedAt).Seconds() })
}
