// The streamfetchd HTTP/JSON surface: long-lived service access to the
// session API, so preparation (program synthesis, profiling, layouts,
// decode tables) is paid once per configuration and amortized across many
// requests, the way a serving deployment would want it.
//
//	POST   /v1/runs        submit one simulation        → 202 JobEnvelope
//	POST   /v1/sweeps      submit a grid sweep          → 202 JobEnvelope
//	GET    /v1/runs/{id}   poll any job                 → 200 JobEnvelope
//	DELETE /v1/runs/{id}   cancel a job                 → 200 JobEnvelope
//	GET    /v1/engines     axes: engines, benchmarks, layouts
//	GET    /healthz        queue, worker and pool saturation metrics
//
// (/v1/sweeps/{id} is an alias for /v1/runs/{id}: every job lives in one
// registry.) Submissions during shutdown get 503, a full queue 429, and
// both carry a JSON {"error": ...} body.
package streamfetch

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"

	"streamfetch/internal/par"
)

// ServerOption configures a Server.
type ServerOption func(*serverConfig)

type serverConfig struct {
	queueDepth int
	workers    int
	retainJobs int
}

// WithQueueDepth bounds the pending-job queue (default 64). A submission
// that would exceed it is rejected with ErrQueueFull (HTTP 429) instead of
// queueing unboundedly.
func WithQueueDepth(n int) ServerOption {
	return func(c *serverConfig) { c.queueDepth = n }
}

// WithWorkers caps concurrently executing jobs (default GOMAXPROCS). Each
// concurrent job holds one internal/par token, so jobs and the shard
// workers inside them never oversubscribe the process-wide budget; when
// the pool has fewer free tokens than the cap, the free-token count is the
// effective cap — except that one job always runs, token-free on the
// dispatcher, when nothing else is in flight, so a zero-token box (one
// core) still makes progress.
func WithWorkers(n int) ServerOption {
	return func(c *serverConfig) { c.workers = n }
}

// WithJobRetention bounds how many finished jobs (their envelopes, reports
// and sweep cells) stay pollable (default 1024). Older terminal jobs are
// evicted oldest-first and answer 404, keeping a long-lived daemon's
// memory bounded however many jobs it serves.
func WithJobRetention(n int) ServerOption {
	return func(c *serverConfig) { c.retainJobs = n }
}

// Server is the streamfetchd service: a job queue, a worker pool and a
// session cache behind an http.Handler. Create with NewServer, mount
// Handler, and Shutdown to drain.
type Server struct {
	mgr *jobManager
	mux *http.ServeMux
}

// NewServer builds a service instance and starts its worker pool.
func NewServer(opts ...ServerOption) *Server {
	cfg := serverConfig{queueDepth: 64, workers: runtime.GOMAXPROCS(0), retainJobs: 1024}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Server{mgr: newJobManager(cfg.queueDepth, cfg.workers, cfg.retainJobs)}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/engines", s.handleEngines)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: new submissions are rejected with 503
// immediately, queued and in-flight jobs run to completion, and every
// worker goroutine exits before return. If ctx expires first, remaining
// jobs are cancelled (they finish as cancelled, releasing their pool
// tokens) and ctx's error is returned once the workers have unwound.
// Polling endpoints keep answering throughout, so clients can collect
// results while the service drains.
func (s *Server) Shutdown(ctx context.Context) error { return s.mgr.shutdown(ctx) }

// Health is the GET /healthz body: liveness plus the saturation metrics
// that matter for capacity (queue fill and par-pool usage).
type Health struct {
	Status     string `json:"status"` // "ok" or "draining"
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Workers    int    `json:"workers"`

	JobsQueued   int `json:"jobs_queued"`
	JobsRunning  int `json:"jobs_running"`
	JobsFinished int `json:"jobs_finished"`

	Sessions int `json:"sessions"`

	// ParInUse is the claimed extra-worker tokens of the process-wide
	// simulation pool; ParBudget its capacity (GOMAXPROCS-1 by default).
	// Total simulation concurrency is at most ParInUse+1.
	ParInUse  int `json:"par_in_use"`
	ParBudget int `json:"par_budget"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.mgr
	m.mu.Lock()
	status := "ok"
	if m.draining {
		status = "draining"
	}
	depth := len(m.queue)
	capQ := cap(m.queue)
	m.mu.Unlock()
	queued, running, finished := m.counts()
	writeJSON(w, http.StatusOK, Health{
		Status:       status,
		QueueDepth:   depth,
		QueueCap:     capQ,
		Workers:      m.workers,
		JobsQueued:   queued,
		JobsRunning:  running,
		JobsFinished: finished,
		Sessions:     m.sessions.size(),
		ParInUse:     par.InUse(),
		ParBudget:    par.Budget(),
	})
}

func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Engines    []string `json:"engines"`
		Benchmarks []string `json:"benchmarks"`
		Layouts    []string `json:"layouts"`
	}{Engines(), Benchmarks(), Layouts()})
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, err := s.mgr.newRunJob(req)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.envelope())
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, err := s.mgr.newSweepJob(req)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.envelope())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.mgr.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	writeJSON(w, http.StatusOK, j.envelope())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.mgr.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	s.mgr.cancelJob(j)
	writeJSON(w, http.StatusOK, j.envelope())
}

// submitStatus maps a submission error to its HTTP status: shutdown 503,
// backpressure 429, anything else a client error.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	default:
		return http.StatusBadRequest
	}
}

// decodeBody strictly decodes a JSON request body, rejecting unknown
// fields so config typos fail loudly instead of silently running defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed write means the client went away; there is no one to tell.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
