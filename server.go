// The streamfetchd HTTP/JSON surface: long-lived service access to the
// session API, so preparation (program synthesis, profiling, layouts,
// decode tables) is paid once per configuration and amortized across many
// requests, the way a serving deployment would want it.
//
//	POST   /v1/runs        submit one simulation        → 202 JobEnvelope (200 on cache hit)
//	POST   /v1/sweeps      submit a grid sweep          → 202 JobEnvelope (200 on cache hit)
//	GET    /v1/runs/{id}   poll any job                 → 200 JobEnvelope
//	DELETE /v1/runs/{id}   cancel a job                 → 200 JobEnvelope
//	GET    /v1/engines     axes: engines, benchmarks, layouts
//	GET    /healthz        queue, worker, pool and store metrics
//	GET    /metrics        Prometheus text exposition
//
// (/v1/sweeps/{id} is an alias for /v1/runs/{id}: every job lives in one
// registry.) Submissions during shutdown get 503, a full queue 429, a
// deadline the server predicts it cannot meet 422 (the body carries the
// prediction; see RunRequest.DeadlineMS), and all carry a JSON
// {"error": ...} body.
//
// Runs are deterministic for a fixed configuration and seed, so the
// service answers repeats instead of recomputing them: a submission whose
// normalized request matches an in-flight job coalesces onto it (same job
// id, one simulation, shared result — cancelling it cancels for every
// submitter), and one matching a stored terminal result is answered
// immediately from the content-addressed cache (a fresh terminal job, 200,
// Cached set, never enqueued). With a filesystem store (WithStoreDir)
// accepted jobs are journaled durably before the 202: a restarted daemon
// re-enqueues journaled unfinished jobs and keeps serving terminal ones
// from disk.
package streamfetch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"streamfetch/internal/metrics"
	"streamfetch/internal/par"
	"streamfetch/internal/store"
)

// Server is the streamfetchd service: a job queue, a worker pool, a
// session cache and a durability store behind an http.Handler. Create
// with NewServer, mount Handler, and Shutdown to drain.
type Server struct {
	mgr *jobManager
	mux *http.ServeMux
}

// NewServer builds a service instance and starts its worker pool,
// recovering any journaled state from the configured store first: jobs
// journaled as accepted but never finished are re-enqueued, terminal jobs
// keep serving their results. The store is, in precedence order, the one
// installed by WithStore, a filesystem store at the WithStoreDir path, a
// filesystem store in a fresh subdirectory of $STREAMFETCH_STORE_DIR
// (a testing knob that exercises the durable backend without sharing
// state between servers), or an in-memory store.
func NewServer(opts ...ServerOption) (*Server, error) {
	cfg := serverConfig{
		queueDepth: 64,
		workers:    runtime.GOMAXPROCS(0),
		retainJobs: 1024,
		sessionCap: maxCachedSessions,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	st, ownStore, err := openStore(&cfg)
	if err != nil {
		return nil, err
	}
	mgr, err := newJobManager(cfg, st, ownStore)
	if err != nil {
		if ownStore {
			st.Close()
		}
		return nil, err
	}
	s := &Server{mgr: mgr}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/engines", s.handleEngines)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// openStore resolves the configured durability backend. The second
// return reports ownership: a store the server opened itself is closed at
// shutdown, one installed via WithStore belongs to the caller.
func openStore(cfg *serverConfig) (store.Store, bool, error) {
	switch {
	case cfg.store != nil:
		return cfg.store, false, nil
	case cfg.storeDir != "":
		st, err := store.Open(cfg.storeDir)
		if err != nil {
			return nil, false, err
		}
		return st, true, nil
	}
	if dir := os.Getenv("STREAMFETCH_STORE_DIR"); dir != "" {
		// Testing knob: exercise the filesystem backend for every server
		// without sharing journals (and job ids) between them — each
		// server gets a fresh subdirectory. Restart/resume needs a stable
		// path: use WithStoreDir.
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return nil, false, fmt.Errorf("streamfetch: store dir: %w", err)
		}
		sub, err := os.MkdirTemp(dir, "streamfetchd-*")
		if err != nil {
			return nil, false, fmt.Errorf("streamfetch: store dir: %w", err)
		}
		st, err := store.Open(sub)
		if err != nil {
			return nil, false, err
		}
		return st, true, nil
	}
	return store.NewMem(), true, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: new submissions are rejected with 503
// immediately, queued and in-flight jobs run to completion, and every
// worker goroutine exits before return. If ctx expires first, remaining
// jobs are cancelled (they finish as cancelled, releasing their pool
// tokens) and ctx's error is returned once the workers have unwound.
// Polling endpoints keep answering throughout, so clients can collect
// results while the service drains.
func (s *Server) Shutdown(ctx context.Context) error { return s.mgr.shutdown(ctx) }

// Health is the GET /healthz body: liveness plus the saturation metrics
// that matter for capacity (queue fill and par-pool usage).
type Health struct {
	Status     string `json:"status"` // "ok" or "draining"
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Workers    int    `json:"workers"`

	// The SLO surface: PredictedBacklogSeconds sums the cost model's
	// predicted execution work-seconds over queued and running jobs;
	// QueueDelaySeconds spreads that over the workers — the wait a new
	// submission should expect, and the figure admission control holds
	// against deadline_ms. JobsShed counts submissions rejected up front
	// as deadline-infeasible.
	PredictedBacklogSeconds float64 `json:"predicted_backlog_seconds"`
	QueueDelaySeconds       float64 `json:"queue_delay_seconds"`
	JobsShed                int64   `json:"jobs_shed,omitempty"`

	JobsQueued   int `json:"jobs_queued"`
	JobsRunning  int `json:"jobs_running"`
	JobsFinished int `json:"jobs_finished"`

	Sessions   int `json:"sessions"`
	SessionCap int `json:"session_cap"`

	// ParInUse is the claimed extra-worker tokens of the process-wide
	// simulation pool; ParBudget its capacity (GOMAXPROCS-1 by default).
	// Total simulation concurrency is at most ParInUse+1.
	ParInUse  int `json:"par_in_use"`
	ParBudget int `json:"par_budget"`

	// The durability/cache surface. Store names the backend ("mem",
	// "fs"); StoreHits counts submissions answered from the
	// content-addressed result cache without enqueuing a simulation,
	// StoreMisses submissions that enqueued one, and StoreCoalesced
	// submissions folded into an identical in-flight job (one
	// simulation, shared result). StoreJournalDepth is the journaled
	// jobs not yet terminal (what a restart would re-enqueue),
	// StoreBlobs/StoreBytes the cached results and the store's total
	// footprint on disk (or in memory for the "mem" backend).
	// StoreErrors counts store writes that failed after exhausting the
	// retry policy, StoreRetries the individual retry attempts behind
	// them; serving continues, durability is degraded.
	Store             string `json:"store"`
	StoreHits         int64  `json:"store_hits"`
	StoreMisses       int64  `json:"store_misses"`
	StoreCoalesced    int64  `json:"store_coalesced"`
	StoreJournalDepth int    `json:"store_journal_depth"`
	StoreBlobs        int    `json:"store_blobs"`
	StoreBytes        int64  `json:"store_bytes"`
	StoreErrors       int64  `json:"store_errors,omitempty"`
	StoreRetries      int64  `json:"store_retries,omitempty"`

	// Warm-state checkpointing (summed over executed jobs that ran with
	// checkpoints): CheckpointHits counts trace intervals that restored
	// their warm state from the store in O(state), CheckpointMisses
	// intervals that functionally replayed their prefix and published a
	// checkpoint for the next run. A warming hit rate near 1 means the
	// O(shards × prefix) term is gone for the current workload mix.
	CheckpointHits   int64 `json:"checkpoint_hits,omitempty"`
	CheckpointMisses int64 `json:"checkpoint_misses,omitempty"`

	// Degraded mode: StoreDegraded reports that store writes are
	// persistently failing and the server has fallen back to memory-only
	// acceptance — submissions succeed but do not survive a restart, and
	// a background probe keeps testing the store until a write lands.
	// StoreLastError/StoreLastErrorTime describe the most recent failure
	// (kept after recovery as forensics; StoreDegraded says whether it is
	// still happening).
	StoreDegraded      bool      `json:"store_degraded,omitempty"`
	StoreLastError     string    `json:"store_last_error,omitempty"`
	StoreLastErrorTime time.Time `json:"store_last_error_time,omitzero"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	m := s.mgr
	m.mu.Lock()
	status := "ok"
	if m.draining {
		status = "draining"
	}
	depth := m.queue.len() + m.admitting
	capQ := m.queueCap
	backlog, delay := m.queueEstimateLocked()
	m.mu.Unlock()
	queued, running, finished := m.counts()
	// A stats failure (e.g. the store dir vanished) degrades the store
	// fields to zero rather than failing the liveness probe.
	stats, statsErr := m.store.Stats()
	errs := m.storeErrs.Load()
	if statsErr != nil {
		errs++
	}
	degraded, lastErr, lastErrAt := m.storeHealth()
	// Only saturation fails the probe: a full queue means new work has
	// nowhere to go, so load balancers should back off. A degraded store
	// is reported but keeps the 200 — the server is still serving.
	code := http.StatusOK
	if depth >= capQ {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, Health{
		Status:                  status,
		QueueDepth:              depth,
		QueueCap:                capQ,
		Workers:                 m.workers,
		PredictedBacklogSeconds: backlog,
		QueueDelaySeconds:       delay,
		JobsShed:                m.shed.Load(),
		JobsQueued:              queued,
		JobsRunning:             running,
		JobsFinished:            finished,
		Sessions:                m.sessions.size(),
		SessionCap:              m.sessions.capacity(),
		ParInUse:                par.InUse(),
		ParBudget:               par.Budget(),
		Store:                   m.store.Name(),
		StoreHits:               m.hits.Load(),
		StoreMisses:             m.misses.Load(),
		StoreCoalesced:          m.coalesced.Load(),
		StoreJournalDepth:       stats.JournalDepth,
		StoreBlobs:              stats.Blobs,
		StoreBytes:              stats.Bytes,
		StoreErrors:             errs,
		StoreRetries:            m.retries.Load(),
		CheckpointHits:          m.ckptHits.Load(),
		CheckpointMisses:        m.ckptMisses.Load(),
		StoreDegraded:           degraded,
		StoreLastError:          lastErr,
		StoreLastErrorTime:      lastErrAt,
	})
}

// handleMetrics serves the Prometheus text exposition: the health
// counters as scrape-time views plus the per-stage latency histograms
// and the prediction-error gauge fed by finished jobs.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	// A failed write means the scraper went away; there is no one to tell.
	_ = s.mgr.met.WriteText(w)
}

func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Engines    []string `json:"engines"`
		Benchmarks []string `json:"benchmarks"`
		Layouts    []string `json:"layouts"`
	}{Engines(), Benchmarks(), Layouts()})
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, err := s.mgr.newRunJob(req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, acceptStatus(j), j.envelope())
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	j, err := s.mgr.newSweepJob(req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	writeJSON(w, acceptStatus(j), j.envelope())
}

// acceptStatus picks the submission status: 202 for a job that still has
// work ahead of it (fresh or coalesced onto an in-flight twin), 200 for a
// store-cache hit whose envelope already carries the terminal result.
func acceptStatus(j *job) int {
	j.mu.Lock()
	cached := j.cached
	j.mu.Unlock()
	if cached {
		return http.StatusOK
	}
	return http.StatusAccepted
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.mgr.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	writeJSON(w, http.StatusOK, j.envelope())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.mgr.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job id"))
		return
	}
	s.mgr.cancelJob(j)
	writeJSON(w, http.StatusOK, j.envelope())
}

// submitStatus maps a submission error to its HTTP status: shutdown 503,
// backpressure 429, an infeasible deadline 422, a failed durability
// write 500, anything else a client error.
func submitStatus(err error) int {
	var inf *InfeasibleError
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.As(err, &inf):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrStore):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// writeSubmitError renders a submission rejection. A deadline-infeasible
// shed carries the server's prediction alongside the error, so the
// client can resubmit with a feasible deadline (or drop the request)
// without a second round trip.
func writeSubmitError(w http.ResponseWriter, err error) {
	var inf *InfeasibleError
	if errors.As(err, &inf) {
		writeJSON(w, http.StatusUnprocessableEntity, struct {
			Error string `json:"error"`
			*InfeasibleError
		}{err.Error(), inf})
		return
	}
	writeError(w, submitStatus(err), err)
}

// decodeBody strictly decodes a JSON request body, rejecting unknown
// fields so config typos fail loudly instead of silently running defaults.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed write means the client went away; there is no one to tell.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
