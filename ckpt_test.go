package streamfetch_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"streamfetch"
	"streamfetch/internal/store"
)

// ckptSession is the shared configuration for checkpoint differentials:
// sharded and warmed, so every mid-trace shard has both a functional-
// warming prefix (the checkpointable part) and a timed lead-in.
func ckptSession(engine string) *streamfetch.Session {
	return streamfetch.New("164.gzip",
		streamfetch.WithEngine(engine),
		streamfetch.WithInstructions(300_000),
		streamfetch.WithShards(3),
		streamfetch.WithWarmup(30_000),
	)
}

// stripCkpt clears the checkpoint outcome counters, the only report
// fields allowed to differ between a functionally warmed run and a
// checkpoint-restored one.
func stripCkpt(rep *streamfetch.Report) *streamfetch.Report {
	c := *rep
	c.CheckpointHits, c.CheckpointMisses = 0, 0
	return &c
}

func sameReport(t *testing.T, label string, got, want *streamfetch.Report) {
	t.Helper()
	if g, w := reportJSON(t, got), reportJSON(t, want); !bytes.Equal(g, w) {
		t.Errorf("%s diverged\ngot:\n%s\nwant:\n%s", label, g, w)
	}
}

// TestCheckpointRestoreDifferential is the core contract, per engine:
// (1) running with a cold checkpoint store changes nothing about the
// simulation (byte-identical to a run without checkpoints) and records
// one miss per mid-trace shard; (2) re-running against the now-warm
// store restores every boundary (one hit per mid-trace shard, zero
// misses) and still produces byte-identical simulation counters — the
// O(prefix) replay is gone, the physics is not.
func TestCheckpointRestoreDifferential(t *testing.T) {
	ctx := context.Background()
	// benchEngines, not Engines: the chaos tests runtime-register
	// deliberately stalling/panicking engines that must not be swept
	// into the differential when the whole package runs.
	for _, engine := range benchEngines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			t.Parallel()
			s := ckptSession(engine)
			plain, err := s.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if plain.CheckpointHits != 0 || plain.CheckpointMisses != 0 {
				t.Fatalf("checkpoint counters on a checkpoint-free run: %d/%d",
					plain.CheckpointHits, plain.CheckpointMisses)
			}

			st := store.NewMem()
			cold, err := s.RunWith(ctx, streamfetch.WithCheckpoints(st))
			if err != nil {
				t.Fatal(err)
			}
			if cold.CheckpointHits != 0 || cold.CheckpointMisses != 2 {
				t.Fatalf("cold run counters hits=%d misses=%d, want 0/2",
					cold.CheckpointHits, cold.CheckpointMisses)
			}
			sameReport(t, "cold checkpointed run vs plain", stripCkpt(cold), plain)

			warm, err := s.RunWith(ctx, streamfetch.WithCheckpoints(st))
			if err != nil {
				t.Fatal(err)
			}
			if warm.CheckpointHits != 2 || warm.CheckpointMisses != 0 {
				t.Fatalf("warm run counters hits=%d misses=%d, want 2/0",
					warm.CheckpointHits, warm.CheckpointMisses)
			}
			sameReport(t, "restored run vs plain", stripCkpt(warm), plain)
		})
	}
}

// mangleStore corrupts every blob it serves, exercising the
// torn-checkpoint path end to end.
type mangleStore struct {
	store.Store
	mangle func([]byte) []byte
}

func (m *mangleStore) GetBlob(key string) ([]byte, bool, error) {
	b, ok, err := m.Store.GetBlob(key)
	if ok && err == nil {
		b = m.mangle(append([]byte(nil), b...))
	}
	return b, ok, err
}

// TestCheckpointCorruptBlobCleanMiss: corrupt and truncated snapshots
// are clean misses — the run falls back to functional warming, produces
// the exact plain-run report, and never errors or panics.
func TestCheckpointCorruptBlobCleanMiss(t *testing.T) {
	ctx := context.Background()
	s := ckptSession("streams")
	plain, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	mangles := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/3] },
		"flipped":   func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b },
		"emptied":   func(b []byte) []byte { return nil },
	}
	for name, fn := range mangles {
		t.Run(name, func(t *testing.T) {
			st := &mangleStore{Store: store.NewMem(), mangle: fn}
			// First run populates; the blobs are mangled only on read.
			if _, err := s.RunWith(ctx, streamfetch.WithCheckpoints(st)); err != nil {
				t.Fatal(err)
			}
			rep, err := s.RunWith(ctx, streamfetch.WithCheckpoints(st))
			if err != nil {
				t.Fatal(err)
			}
			if rep.CheckpointHits != 0 || rep.CheckpointMisses != 2 {
				t.Fatalf("%s blobs: hits=%d misses=%d, want clean misses 0/2",
					name, rep.CheckpointHits, rep.CheckpointMisses)
			}
			sameReport(t, "run over "+name+" blobs vs plain", stripCkpt(rep), plain)
		})
	}
}

// TestCheckpointKeyInvalidation: checkpoints never leak across
// preparation inputs — a different seed, engine or width misses cleanly
// on a store populated by another configuration.
func TestCheckpointKeyInvalidation(t *testing.T) {
	ctx := context.Background()
	st := store.NewMem()
	if _, err := ckptSession("streams").RunWith(ctx, streamfetch.WithCheckpoints(st)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []streamfetch.Option
	}{
		{"seed", []streamfetch.Option{streamfetch.WithSeed(123)}},
		{"engine", []streamfetch.Option{streamfetch.WithEngine("ev8")}},
		{"width", []streamfetch.Option{streamfetch.WithWidth(4)}},
		{"layout", []streamfetch.Option{streamfetch.WithOptimizedLayout()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]streamfetch.Option{streamfetch.WithCheckpoints(st)}, tc.opts...)
			rep, err := ckptSession("streams").RunWith(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if rep.CheckpointHits != 0 {
				t.Fatalf("changed %s yet restored %d checkpoints from the old store",
					tc.name, rep.CheckpointHits)
			}
			if rep.CheckpointMisses == 0 {
				t.Fatalf("changed %s ran without checkpointing at all", tc.name)
			}
		})
	}
	// Same configuration still hits: the invalidation above is keying,
	// not a broken store.
	rep, err := ckptSession("streams").RunWith(ctx, streamfetch.WithCheckpoints(st))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointHits != 2 {
		t.Fatalf("identical configuration hit %d of 2 checkpoints", rep.CheckpointHits)
	}
}

// TestCheckpointInapplicable: configurations with no stable trace
// identity or no warmable prefix run checkpoint-free even with a store
// installed.
func TestCheckpointInapplicable(t *testing.T) {
	ctx := context.Background()
	st := store.NewMem()

	// In-memory trace: no stable identity.
	gen := streamfetch.New("164.gzip", streamfetch.WithInstructions(100_000))
	tr, err := gen.Trace()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := streamfetch.New("164.gzip",
		streamfetch.WithTrace(tr),
		streamfetch.WithShards(2),
		streamfetch.WithWarmup(10_000),
		streamfetch.WithCheckpoints(st),
	).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointHits != 0 || rep.CheckpointMisses != 0 {
		t.Fatalf("in-memory trace checkpointed: hits=%d misses=%d",
			rep.CheckpointHits, rep.CheckpointMisses)
	}

	// Cold shards: the prefix is skipped, nothing to capture.
	rep, err = streamfetch.New("164.gzip",
		streamfetch.WithInstructions(100_000),
		streamfetch.WithShards(2),
		streamfetch.WithWarmup(10_000),
		streamfetch.WithColdShards(),
		streamfetch.WithCheckpoints(st),
	).Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointHits != 0 || rep.CheckpointMisses != 0 {
		t.Fatalf("cold shards checkpointed: hits=%d misses=%d",
			rep.CheckpointHits, rep.CheckpointMisses)
	}
}

// TestSampledIPCWithinCI: on the golden 2M-instruction configuration,
// the sampled IPC estimate lands within its own reported 95% confidence
// interval of the full run's IPC, and the report carries the sampling
// fields.
func TestSampledIPCWithinCI(t *testing.T) {
	ctx := context.Background()
	s := streamfetch.New("164.gzip") // golden defaults: streams/base/w8/2M
	full, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := s.RunWith(ctx,
		streamfetch.WithSampling(10, 50_000),
		streamfetch.WithWarmup(20_000),
	)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Samples != 10 || sampled.SampleInsts != 50_000 {
		t.Fatalf("sampling fields samples=%d sample_insts=%d",
			sampled.Samples, sampled.SampleInsts)
	}
	if sampled.IPCCI95 <= 0 {
		t.Fatalf("sampled run reports no confidence interval (ipc_ci95=%g)", sampled.IPCCI95)
	}
	if len(sampled.Intervals) != 10 {
		t.Fatalf("sampled run reports %d interval rows, want 10", len(sampled.Intervals))
	}
	if sampled.TraceInsts >= full.TraceInsts/2 {
		t.Fatalf("sampled coverage %d of %d: windows cover too much to be a sample",
			sampled.TraceInsts, full.TraceInsts)
	}
	if diff := math.Abs(sampled.IPC - full.IPC); diff > sampled.IPCCI95 {
		t.Fatalf("sampled IPC %.4f vs full %.4f: off by %.4f, beyond the stated CI %.4f",
			sampled.IPC, full.IPC, diff, sampled.IPCCI95)
	}
}

// TestSampledWithCheckpoints: sampled windows restore from checkpoints
// like shards do — the second run hits every window boundary and the
// merged report matches the first byte for byte outside the checkpoint
// counters.
func TestSampledWithCheckpoints(t *testing.T) {
	ctx := context.Background()
	st := store.NewMem()
	s := streamfetch.New("164.gzip", streamfetch.WithInstructions(400_000))
	opts := []streamfetch.Option{
		streamfetch.WithSampling(4, 20_000),
		streamfetch.WithWarmup(10_000),
		streamfetch.WithCheckpoints(st),
	}
	first, err := s.RunWith(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if first.CheckpointMisses != 4 || first.CheckpointHits != 0 {
		t.Fatalf("first sampled run hits=%d misses=%d, want 0/4",
			first.CheckpointHits, first.CheckpointMisses)
	}
	second, err := s.RunWith(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if second.CheckpointHits != 4 || second.CheckpointMisses != 0 {
		t.Fatalf("second sampled run hits=%d misses=%d, want 4/0",
			second.CheckpointHits, second.CheckpointMisses)
	}
	sameReport(t, "restored sampled run vs first", stripCkpt(second), stripCkpt(first))
}

// TestSampledDegenerate: a window at least as long as the trace
// degenerates to one full interval — the estimate is exact, the CI
// zero.
func TestSampledDegenerate(t *testing.T) {
	ctx := context.Background()
	s := streamfetch.New("164.gzip", streamfetch.WithInstructions(100_000))
	full, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunWith(ctx, streamfetch.WithSampling(5, 1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples != 1 || rep.IPCCI95 != 0 {
		t.Fatalf("degenerate sampling samples=%d ci=%g, want 1 and 0", rep.Samples, rep.IPCCI95)
	}
	if rep.Retired != full.Retired || rep.Cycles != full.Cycles {
		t.Fatalf("degenerate sample (retired %d, cycles %d) differs from full (%d, %d)",
			rep.Retired, rep.Cycles, full.Retired, full.Cycles)
	}
}

// TestSampledValidation: sampling without a window length is rejected.
func TestSampledValidation(t *testing.T) {
	_, err := streamfetch.New("164.gzip").RunWith(context.Background(),
		streamfetch.WithSampling(4, 0))
	if err == nil {
		t.Fatal("sampling with zero window length accepted")
	}
}
