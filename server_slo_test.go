package streamfetch_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streamfetch"
	"streamfetch/internal/store"
	"streamfetch/internal/store/faultstore"
)

// TestServiceSLOAdmission: a submission whose deadline the cost model
// already rules out is shed up front — 422, never enqueued, never
// journaled — with the prediction in the body; a feasible one is
// accepted with the prediction on its envelope and finishes with a
// per-stage timing breakdown.
func TestServiceSLOAdmission(t *testing.T) {
	srv := newTestServer(t, streamfetch.WithWorkers(2))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	// 30k instructions at any plausible rate take far longer than 1ms.
	req := streamfetch.RunRequest{Benchmark: "164.gzip", Insts: 30_000, Seed: 41, DeadlineMS: 1}
	var shed struct {
		Error             string  `json:"error"`
		PredictedSeconds  float64 `json:"predicted_seconds"`
		QueueDelaySeconds float64 `json:"queue_delay_seconds"`
		DeadlineSeconds   float64 `json:"deadline_seconds"`
	}
	if code := sc.do("POST", "/v1/runs", req, &shed); code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible deadline: status %d, want 422", code)
	}
	if shed.Error == "" || shed.PredictedSeconds <= 0 {
		t.Fatalf("shed body must carry the prediction: %+v", shed)
	}
	var h streamfetch.Health
	if code := sc.do("GET", "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", code)
	}
	if h.JobsQueued != 0 || h.StoreMisses != 0 {
		t.Errorf("shed submission leaked into the queue: queued=%d misses=%d", h.JobsQueued, h.StoreMisses)
	}
	if h.JobsShed < 1 {
		t.Errorf("jobs_shed = %d, want ≥1", h.JobsShed)
	}

	req.DeadlineMS = 600_000
	env := sc.submit("/v1/runs", req)
	if env.PredictedSeconds <= 0 {
		t.Errorf("accepted envelope predicted_seconds = %v, want > 0", env.PredictedSeconds)
	}
	got := sc.await(env.ID, time.Minute)
	if got.State != streamfetch.JobDone {
		t.Fatalf("job finished %s (error %q), want done", got.State, got.Error)
	}
	if got.Timings == nil || got.Timings.MeasureSeconds <= 0 {
		t.Fatalf("terminal envelope timings = %+v, want a measure stage > 0", got.Timings)
	}
	if got.Timings.QueueSeconds < 0 {
		t.Errorf("negative queue time %v", got.Timings.QueueSeconds)
	}
	if got.Report == nil || got.Report.Timings == nil {
		t.Error("service report lost its stage timings")
	}
}

// TestServicePriorityOrdering: with one worker occupied, a later
// high-priority submission overtakes an earlier normal one — including
// the job the dispatcher already holds while waiting for capacity.
func TestServicePriorityOrdering(t *testing.T) {
	srv := newTestServer(t, streamfetch.WithWorkers(1))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	blocker := sc.submit("/v1/runs", streamfetch.RunRequest{
		Benchmark: "164.gzip", Insts: 1_000_000, Seed: 31})
	low := sc.submit("/v1/runs", streamfetch.RunRequest{
		Benchmark: "164.gzip", Insts: 20_000, Seed: 32})
	high := sc.submit("/v1/runs", streamfetch.RunRequest{
		Benchmark: "164.gzip", Insts: 20_000, Seed: 33, Priority: 5})

	lowGot := sc.await(low.ID, 2*time.Minute)
	highGot := sc.await(high.ID, 2*time.Minute)
	sc.await(blocker.ID, 2*time.Minute)
	if lowGot.State != streamfetch.JobDone || highGot.State != streamfetch.JobDone {
		t.Fatalf("jobs finished %s/%s, want done/done", lowGot.State, highGot.State)
	}
	if !highGot.StartedAt.Before(lowGot.StartedAt) {
		t.Errorf("high-priority job started %s, after the normal one at %s",
			highGot.StartedAt.Format(time.RFC3339Nano), lowGot.StartedAt.Format(time.RFC3339Nano))
	}
}

// checkPrometheusText validates Prometheus text exposition format 0.0.4:
// well-formed HELP/TYPE comments, every sample line shaped
// name{labels} value with a parseable value, and every sample's family
// declared by a TYPE line (histograms via their _bucket/_sum/_count
// suffixes).
func checkPrometheusText(t *testing.T, body string) {
	t.Helper()
	metaRe := regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*)( .*)?$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (\S+)$`)
	typed := map[string]string{}
	for i, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			mm := metaRe.FindStringSubmatch(line)
			if mm == nil {
				t.Fatalf("line %d: malformed comment %q", i+1, line)
			}
			if mm[1] == "TYPE" {
				typ := strings.TrimSpace(mm[3])
				if typ != "counter" && typ != "gauge" && typ != "histogram" {
					t.Fatalf("line %d: unknown TYPE %q", i+1, typ)
				}
				typed[mm[2]] = typ
			}
			continue
		}
		sm := sampleRe.FindStringSubmatch(line)
		if sm == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		if _, err := strconv.ParseFloat(sm[len(sm)-1], 64); err != nil {
			t.Fatalf("line %d: unparseable value in %q: %v", i+1, line, err)
		}
		base := sm[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed := strings.TrimSuffix(base, suffix); trimmed != base && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if typed[base] == "" {
			t.Fatalf("line %d: sample %q has no TYPE declaration", i+1, sm[1])
		}
	}
	if len(typed) == 0 {
		t.Fatal("exposition declared no metric families")
	}
}

// TestMetricsExposition: after a job completes, GET /metrics serves
// valid Prometheus text carrying the health counters and the per-stage
// latency histograms.
func TestMetricsExposition(t *testing.T) {
	srv := newTestServer(t, streamfetch.WithWorkers(2))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	env := sc.submit("/v1/runs", streamfetch.RunRequest{
		Benchmark: "164.gzip", Insts: 20_000, Seed: 51})
	if got := sc.await(env.ID, time.Minute); got.State != streamfetch.JobDone {
		t.Fatalf("job finished %s (error %q), want done", got.State, got.Error)
	}

	resp, err := sc.c.Get(sc.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text 0.0.4", ct)
	}
	body := string(raw)
	checkPrometheusText(t, body)
	for _, want := range []string{
		`streamfetch_stage_seconds_bucket{stage="measure",le="+Inf"}`,
		`streamfetch_stage_seconds_count{stage="queue"}`,
		"streamfetch_cache_misses_total 1",
		`streamfetch_jobs{state="terminal"} 1`,
		"streamfetch_queue_capacity",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// slowJournalStore delays Journal calls by the configured amount,
// widening the window a submission spends inside store I/O so the test
// below can probe what else blocks behind it.
type slowJournalStore struct {
	store.Store
	delayMS atomic.Int64
}

func (s *slowJournalStore) Journal(rec store.JournalRecord) error {
	if d := s.delayMS.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Millisecond)
	}
	return s.Store.Journal(rec)
}

// TestDegradedStoreSubmitLatency: while a submission is stuck retrying a
// failing journal write, polling an existing job and /healthz must stay
// fast. The registry lock used to be held across the whole retry/backoff
// sequence, convoying every read behind broken store I/O.
func TestDegradedStoreSubmitLatency(t *testing.T) {
	fst := faultstore.Wrap(store.NewMem())
	slow := &slowJournalStore{Store: fst}
	srv := newTestServer(t,
		streamfetch.WithWorkers(2),
		streamfetch.WithStore(slow),
		// Keep the recovery probe out of the way: this test owns the
		// store's failure schedule.
		streamfetch.WithStoreProbeInterval(time.Hour))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	// A healthy-store job to poll against.
	env := sc.submit("/v1/runs", streamfetch.RunRequest{
		Benchmark: "164.gzip", Insts: 20_000, Seed: 61})
	if got := sc.await(env.ID, time.Minute); got.State != streamfetch.JobDone {
		t.Fatalf("job finished %s (error %q), want done", got.State, got.Error)
	}

	// Now every journal write fails after a 150ms stall: a fresh
	// submission sits in retry-with-backoff for several hundred ms.
	fst.FailAll(faultstore.OpJournal, errors.New("injected: journal failed"))
	slow.delayMS.Store(150)
	submitDone := make(chan int, 1)
	go func() {
		code := sc.do("POST", "/v1/runs", streamfetch.RunRequest{
			Benchmark: "164.gzip", Insts: 20_000, Seed: 62}, nil)
		submitDone <- code
	}()
	time.Sleep(50 * time.Millisecond) // let the submission enter the journal write

	const bound = 250 * time.Millisecond
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/runs/" + env.ID},
		{"GET", "/healthz"},
	} {
		start := time.Now()
		if code := sc.do(probe.method, probe.path, nil, nil); code != http.StatusOK {
			t.Fatalf("%s %s during degraded submit: status %d", probe.method, probe.path, code)
		}
		if took := time.Since(start); took > bound {
			t.Errorf("%s %s took %s while a submission was stuck in store I/O (bound %s)",
				probe.method, probe.path, took, bound)
		}
	}

	select {
	case code := <-submitDone:
		// First failure after retries: refused with 500, and the server is
		// degraded from here on.
		if code != http.StatusInternalServerError {
			t.Fatalf("submission against failing store: status %d, want 500", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("submission never returned")
	}
	slow.delayMS.Store(0)

	var h streamfetch.Health
	if code := sc.do("GET", "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", code)
	}
	if !h.StoreDegraded {
		t.Error("server not degraded after the failed journal write")
	}

	// Degraded mode accepts memory-only without touching the journal.
	env2 := sc.submit("/v1/runs", streamfetch.RunRequest{
		Benchmark: "164.gzip", Insts: 20_000, Seed: 63})
	if got := sc.await(env2.ID, time.Minute); got.State != streamfetch.JobDone {
		t.Fatalf("degraded-mode job finished %s (error %q), want done", got.State, got.Error)
	}
}
