package streamfetch

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func shutdownServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}

// TestSubmitCoalescing: identical concurrent submissions collapse onto one
// job that simulates once; distinct requests stay distinct; and once the
// leader finishes, an identical resubmission is a cache hit that serves a
// byte-identical report without simulating again.
func TestSubmitCoalescing(t *testing.T) {
	srv, err := NewServer(WithWorkers(2), WithQueueDepth(16))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownServer(t, srv) })

	// Gate the leader's body so it stays in flight until every submitter
	// has arrived — coalescing is then deterministic, not a race against
	// a fast simulation.
	var runs atomic.Int64
	release := make(chan struct{})
	var releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	srv.mgr.runHook = func(string) {
		runs.Add(1)
		<-release
	}

	req := RunRequest{Benchmark: "164.gzip", Engine: "streams", Layout: "base", Insts: 50_000, Seed: 5}
	const n = 6
	jobs := make([]*job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := srv.mgr.newRunJob(req)
			if err != nil {
				t.Errorf("submission %d: %v", i, err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	releaseOnce.Do(func() { close(release) })

	for i, j := range jobs {
		if j == nil {
			t.Fatalf("submission %d failed", i)
		}
		if j != jobs[0] {
			t.Fatalf("submission %d got job %s, want coalesced onto %s", i, j.id, jobs[0].id)
		}
	}
	<-jobs[0].done
	leader := jobs[0].envelope()
	if leader.State != JobDone {
		t.Fatalf("leader finished %s (error %q), want done", leader.State, leader.Error)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d identical submissions ran %d simulations, want exactly 1", n, got)
	}
	if got := srv.mgr.coalesced.Load(); got != n-1 {
		t.Errorf("coalesced counter = %d, want %d", got, n-1)
	}

	// A different seed is a different content key: fresh job, fresh run.
	req2 := req
	req2.Seed = 6
	j2, err := srv.mgr.newRunJob(req2)
	if err != nil {
		t.Fatal(err)
	}
	if j2 == jobs[0] {
		t.Fatal("distinct request coalesced onto an unrelated job")
	}
	<-j2.done
	if got := runs.Load(); got != 2 {
		t.Fatalf("distinct request should simulate: runs = %d, want 2", got)
	}

	// The leader is terminal now: an identical resubmission must be a
	// cache hit — terminal immediately, never enqueued, no simulation —
	// and its report must be byte-identical to the leader's.
	j3, err := srv.mgr.newRunJob(req)
	if err != nil {
		t.Fatal(err)
	}
	env := j3.envelope()
	if !env.Cached || env.State != JobDone {
		t.Fatalf("resubmission envelope: cached=%v state=%s, want cached done", env.Cached, env.State)
	}
	if !env.StartedAt.IsZero() {
		t.Error("cached job has a start time; it must never run")
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("cache hit triggered a simulation: runs = %d, want 2", got)
	}
	if got := srv.mgr.hits.Load(); got != 1 {
		t.Errorf("cache hit counter = %d, want 1", got)
	}
	var gotBuf, wantBuf bytes.Buffer
	if err := env.Report.WriteJSON(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if err := leader.Report.WriteJSON(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Errorf("cached report diverged from the run that produced it\ncached:\n%s\nrun:\n%s",
			gotBuf.Bytes(), wantBuf.Bytes())
	}
}

// TestWithSessionCacheSize: the option bounds the prepared-session LRU,
// the default holds without it, and non-positive sizes are rejected at
// construction.
func TestWithSessionCacheSize(t *testing.T) {
	srv, err := NewServer(WithSessionCacheSize(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.mgr.sessions.capacity(); got != 3 {
		t.Errorf("session cache capacity = %d, want 3", got)
	}
	shutdownServer(t, srv)

	srv, err = NewServer()
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.mgr.sessions.capacity(); got != maxCachedSessions {
		t.Errorf("default session cache capacity = %d, want %d", got, maxCachedSessions)
	}
	shutdownServer(t, srv)

	for _, n := range []int{0, -1} {
		if _, err := NewServer(WithSessionCacheSize(n)); err == nil {
			t.Errorf("WithSessionCacheSize(%d) accepted, want error", n)
		}
	}
}
