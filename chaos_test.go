// Chaos tests for the service's job-isolation promises, driven through
// the public HTTP surface: an engine panic fails only its own job (with
// the stack in the envelope) while the daemon keeps serving, per-job
// deadlines fail overrunning jobs with their partial reports, the
// watchdog reaps jobs that stop making progress, and /healthz returns
// 503 only for queue saturation.
//
// The chaos engines register at test time, not init time: init-registered
// engines would leak into every sweep over Engines(), including the CI
// bench smoke run.
package streamfetch_test

import (
	"context"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"streamfetch"
	"streamfetch/internal/frontend"
	"streamfetch/internal/isa"
)

// chaosEngine is a deliberately misbehaving fetch engine: "panic" mode
// panics on the first cycle, "stall" mode fetches nothing forever.
type chaosEngine struct{ mode string }

func (e *chaosEngine) Name() string { return "chaos-" + e.mode }

func (e *chaosEngine) Cycle(out []frontend.FetchedInst) []frontend.FetchedInst {
	if e.mode == "panic" {
		panic("chaos: injected engine panic")
	}
	return out // stall: never fetch, never retire
}

func (e *chaosEngine) Redirect(isa.Addr, bool)         {}
func (e *chaosEngine) Commit(frontend.Committed)       {}
func (e *chaosEngine) FetchStats() frontend.FetchStats { return frontend.FetchStats{} }

var chaosEnginesOnce sync.Once

func registerChaosEngines() {
	chaosEnginesOnce.Do(func() {
		for _, mode := range []string{"panic", "stall"} {
			mode := mode
			frontend.Register("chaos-"+mode, func(frontend.BuildEnv, any) (frontend.Engine, error) {
				return &chaosEngine{mode: mode}, nil
			})
		}
	})
}

// waitRunning polls a job until it is running with retired instructions —
// the point past which it is guaranteed to carry a partial report.
func waitRunning(sc *serviceClient, id string, timeout time.Duration) {
	sc.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var env streamfetch.JobEnvelope
		sc.do("GET", "/v1/runs/"+id, nil, &env)
		if env.State == streamfetch.JobRunning && env.Progress != nil && env.Progress.Retired > 0 {
			return
		}
		if env.State.Terminal() {
			sc.t.Fatalf("job %s reached %s (error %q) before running", id, env.State, env.Error)
		}
		if time.Now().After(deadline) {
			sc.t.Fatalf("job %s never started retiring within %s", id, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosEnginePanic: a panicking engine fails its own job — terminal
// failed envelope carrying the panic message and stack — and nothing
// else: the daemon keeps accepting and finishing jobs, and shutdown
// leaves zero leaked goroutines. Covered for both the unsharded path
// (panic on the job goroutine) and the sharded path (panic on a par
// worker).
func TestChaosEnginePanic(t *testing.T) {
	registerChaosEngines()
	before := runtime.NumGoroutine()
	srv := newTestServer(t, streamfetch.WithQueueDepth(8), streamfetch.WithWorkers(2))
	sc := newServiceClient(t, srv)

	req := streamfetch.RunRequest{
		Benchmark: "164.gzip", Engine: "chaos-panic", Layout: "base",
		Width: 4, Insts: 20_000, Seed: 81,
	}
	cases := []struct {
		name   string
		shards int
	}{
		{"unsharded", 0},
		{"sharded", 2},
	}
	for _, tc := range cases {
		r := req
		r.Shards = tc.shards
		r.Seed += uint64(tc.shards) // distinct jobs, no coalescing
		env := sc.submit("/v1/runs", r)
		got := sc.await(env.ID, 2*time.Minute)
		if got.State != streamfetch.JobFailed {
			t.Fatalf("%s: panicking job finished %s, want failed", tc.name, got.State)
		}
		if !strings.Contains(got.Error, "panicked") || !strings.Contains(got.Error, "chaos: injected engine panic") {
			t.Errorf("%s: envelope error misses the panic: %q", tc.name, got.Error)
		}
		if !strings.Contains(got.Error, "goroutine") {
			t.Errorf("%s: envelope error carries no stack trace: %q", tc.name, got.Error)
		}
	}

	// The daemon survived both panics: a healthy job still runs to done
	// and the health probe answers 200.
	ok := streamfetch.RunRequest{
		Benchmark: "164.gzip", Engine: "streams", Layout: "base",
		Width: 4, Insts: 20_000, Seed: 85,
	}
	env := sc.submit("/v1/runs", ok)
	if got := sc.await(env.ID, 2*time.Minute); got.State != streamfetch.JobDone || got.Report == nil {
		t.Fatalf("post-panic job finished %s (report %v), want done", got.State, got.Report != nil)
	}
	if code := sc.do("GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz after engine panics: %d, want 200", code)
	}

	// Zero leaked goroutines: the panicked jobs' workers, shard workers
	// and watchers are all gone once the server drains.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	sc.ts.Close()
	sc.c.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("%d goroutines before, %d after shutdown:\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosJobDeadline: a job that outruns its budget — the request's
// timeout_ms or the server's max-job-time cap — finishes failed with the
// deadline in its error and its partial, Aborted report attached.
func TestChaosJobDeadline(t *testing.T) {
	long := streamfetch.RunRequest{
		Benchmark: "164.gzip", Engine: "streams", Layout: "base",
		Width: 4, Insts: 500_000_000, Seed: 94,
	}

	// warm runs the long configuration once and cancels it mid-flight, so
	// the session (trace, profile, layouts) is prepared and cached and the
	// timed run below spends its whole budget simulating — guaranteeing
	// retired instructions, hence a partial report.
	warm := func(t *testing.T, sc *serviceClient) {
		t.Helper()
		env := sc.submit("/v1/runs", long)
		waitRunning(sc, env.ID, 30*time.Second)
		sc.do("DELETE", "/v1/runs/"+env.ID, nil, nil)
		sc.await(env.ID, 30*time.Second)
	}
	check := func(t *testing.T, got *streamfetch.JobEnvelope) {
		t.Helper()
		if got.State != streamfetch.JobFailed {
			t.Fatalf("overrunning job finished %s (error %q), want failed", got.State, got.Error)
		}
		if !strings.Contains(got.Error, "deadline") {
			t.Errorf("envelope error misses the deadline: %q", got.Error)
		}
		if got.Report == nil || !got.Report.Aborted {
			t.Fatalf("overrunning job should carry a partial aborted report, got %+v", got.Report)
		}
		if got.Report.Retired == 0 || got.Report.Retired >= long.Insts {
			t.Errorf("partial report retired %d of %d instructions", got.Report.Retired, long.Insts)
		}
	}

	t.Run("timeout_ms", func(t *testing.T) {
		srv := newTestServer(t, streamfetch.WithQueueDepth(4), streamfetch.WithWorkers(1))
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		sc := newServiceClient(t, srv)
		warm(t, sc)

		timed := long
		timed.TimeoutMS = 300
		env := sc.submit("/v1/runs", timed)
		check(t, sc.await(env.ID, 30*time.Second))
	})

	t.Run("max_job_time", func(t *testing.T) {
		// The server-wide cap governs even a request asking for far more:
		// timeout_ms above the cap is clamped to it, so on a 400ms-capped
		// server a ten-minute ask still dies in under a second. (The
		// report stays optional here: the budget may expire while the
		// session is still preparing, before anything retires.)
		srv := newTestServer(t, streamfetch.WithQueueDepth(4), streamfetch.WithWorkers(1),
			streamfetch.WithMaxJobTime(400*time.Millisecond))
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		sc := newServiceClient(t, srv)
		capped := long
		capped.TimeoutMS = 600_000 // a ten-minute ask, clamped to the 400ms cap
		env := sc.submit("/v1/runs", capped)
		got := sc.await(env.ID, 30*time.Second)
		if got.State != streamfetch.JobFailed || !strings.Contains(got.Error, "deadline") {
			t.Fatalf("capped job finished %s (error %q), want deadline failure", got.State, got.Error)
		}
		if got.Report != nil && !got.Report.Aborted {
			t.Errorf("capped job carries a non-aborted report: %+v", got.Report)
		}
	})
}

// TestChaosWatchdog: a job whose engine cycles forever without retiring
// anything is cancelled by the watchdog and finishes failed with the
// no-progress error — it does not pin its worker slot until the deadline.
func TestChaosWatchdog(t *testing.T) {
	registerChaosEngines()
	srv := newTestServer(t, streamfetch.WithQueueDepth(4), streamfetch.WithWorkers(1),
		streamfetch.WithWatchdog(250*time.Millisecond))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	req := streamfetch.RunRequest{
		Benchmark: "164.gzip", Engine: "chaos-stall", Layout: "base",
		Width: 4, Insts: 20_000, Seed: 88,
	}
	env := sc.submit("/v1/runs", req)
	got := sc.await(env.ID, 30*time.Second)
	if got.State != streamfetch.JobFailed {
		t.Fatalf("stalled job finished %s (error %q), want failed", got.State, got.Error)
	}
	if !strings.Contains(got.Error, "no progress") {
		t.Errorf("envelope error misses the watchdog verdict: %q", got.Error)
	}

	// The reaped job released its worker slot: the next job runs to done.
	ok := req
	ok.Engine = "streams"
	env = sc.submit("/v1/runs", ok)
	if got := sc.await(env.ID, 2*time.Minute); got.State != streamfetch.JobDone {
		t.Fatalf("post-watchdog job finished %s, want done", got.State)
	}
}

// TestChaosHealthzSaturation: /healthz degrades to 503 exactly when the
// submission queue is saturated — the one condition under which a load
// balancer should stop routing here — and recovers to 200 once the queue
// drains. Store degradation, by contrast, keeps the probe at 200 (covered
// by TestChaosDegradedStore).
func TestChaosHealthzSaturation(t *testing.T) {
	srv := newTestServer(t, streamfetch.WithQueueDepth(2), streamfetch.WithWorkers(1))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	if code := sc.do("GET", "/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz on an idle server: %d, want 200", code)
	}

	// Fill the service: one job running on the single worker, one in the
	// dispatcher's placement slot, and the queue channel packed behind
	// them. Distinct seeds keep the submissions from coalescing.
	long := streamfetch.RunRequest{
		Benchmark: "164.gzip", Engine: "streams", Layout: "base",
		Width: 4, Insts: 500_000_000, Seed: 91,
	}
	var ids []string
	saturated := false
	var health streamfetch.Health
	for i := 0; i < 12 && !saturated; i++ {
		r := long
		r.Seed += uint64(i)
		var env streamfetch.JobEnvelope
		switch code := sc.do("POST", "/v1/runs", r, &env); code {
		case http.StatusAccepted:
			ids = append(ids, env.ID)
		case http.StatusTooManyRequests:
			// Full queue: the health probe must already be failing.
		default:
			t.Fatalf("submission %d: status %d", i, code)
		}
		if code := sc.do("GET", "/healthz", nil, &health); code == http.StatusServiceUnavailable {
			saturated = true
		} else {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if !saturated {
		t.Fatalf("healthz never reported saturation with %d pending submissions", len(ids))
	}
	if health.QueueDepth < health.QueueCap {
		t.Errorf("saturated healthz reports depth %d below cap %d", health.QueueDepth, health.QueueCap)
	}
	if health.Status != "ok" {
		t.Errorf("saturated healthz status %q: saturation is load, not shutdown", health.Status)
	}

	// Drain: cancel everything, then the probe recovers.
	for _, id := range ids {
		sc.do("DELETE", "/v1/runs/"+id, nil, nil)
	}
	for _, id := range ids {
		sc.await(id, 30*time.Second)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if code := sc.do("GET", "/healthz", nil, nil); code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz still failing after the queue drained")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
