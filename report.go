package streamfetch

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
	"streamfetch/internal/sim"
)

// CacheReport summarizes one cache's activity.
type CacheReport struct {
	Accesses uint64  `json:"accesses"`
	Misses   uint64  `json:"misses"`
	MissRate float64 `json:"miss_rate"`
}

// FetchReport summarizes front-end delivery statistics.
type FetchReport struct {
	Delivered        uint64  `json:"delivered"`
	Cycles           uint64  `json:"cycles"`
	DeliveryCycles   uint64  `json:"delivery_cycles"`
	Units            uint64  `json:"units"`
	UnitInsts        uint64  `json:"unit_insts"`
	PredictorLookups uint64  `json:"predictor_lookups"`
	PredictorHits    uint64  `json:"predictor_hits"`
	MeanUnitLen      float64 `json:"mean_unit_len"`
	FetchIPC         float64 `json:"fetch_ipc"`
}

// Report is the structured outcome of one simulation run: the sim.Result
// metrics plus the run's identity (benchmark, engine, layout, width, seed),
// marshallable to JSON.
type Report struct {
	Benchmark  string `json:"benchmark"`
	Engine     string `json:"engine"`
	Layout     string `json:"layout"`
	Width      int    `json:"width"`
	Seed       uint64 `json:"seed,omitempty"`
	TraceInsts uint64 `json:"trace_insts"`
	CodeBytes  int    `json:"code_bytes"`
	Aborted    bool   `json:"aborted,omitempty"`

	Cycles  uint64  `json:"cycles"`
	Retired uint64  `json:"retired"`
	IPC     float64 `json:"ipc"`

	Branches      uint64            `json:"branches"`
	Mispredicted  uint64            `json:"mispredicted"`
	MispredRate   float64           `json:"mispred_rate"`
	MispredByType map[string]uint64 `json:"mispred_by_type,omitempty"`
	Misfetches    uint64            `json:"misfetches"`

	FetchIPC float64     `json:"fetch_ipc"`
	Fetch    FetchReport `json:"fetch"`

	ICache CacheReport `json:"icache"`
	DCache CacheReport `json:"dcache"`
	L2     CacheReport `json:"l2"`

	// Sharded runs only (WithShards > 1): the interval count, the
	// requested per-interval warmup, and one row per simulated interval.
	// The top-level counters are the merged totals; cycle-derived figures
	// aggregate as merged retired over merged cycles.
	Shards      int              `json:"shards,omitempty"`
	WarmupInsts uint64           `json:"warmup_insts,omitempty"`
	Intervals   []IntervalReport `json:"intervals,omitempty"`

	// Checkpointed runs only (WithCheckpoints): how many intervals
	// restored their warm state from the store versus warming
	// functionally (and publishing a checkpoint). Both zero when
	// checkpointing was off or no interval had a warmable prefix.
	CheckpointHits   uint64 `json:"checkpoint_hits,omitempty"`
	CheckpointMisses uint64 `json:"checkpoint_misses,omitempty"`

	// Sampled runs only (WithSampling): the window count actually
	// simulated, the per-window length, and the 95% confidence
	// half-width on IPC estimated from the per-window spread. Counters
	// in a sampled report cover only the sampled windows (TraceInsts is
	// the sampled coverage): they are estimates, not exact totals.
	Samples     int     `json:"samples,omitempty"`
	SampleInsts uint64  `json:"sample_insts,omitempty"`
	IPCCI95     float64 `json:"ipc_ci95,omitempty"`

	// Timings carries the run's per-stage wall clock when the session
	// opted in via WithStageTimings — wall-clock telemetry, not result
	// identity: two runs of one configuration share a content key and
	// differ here, like the checkpoint counters above. nil (and absent
	// from JSON) when timing was off, which keeps default runs
	// byte-identical to their golden reports.
	Timings *Timings `json:"timings,omitempty"`
}

// Timings is the per-stage wall-clock breakdown of one run or job,
// designed to land in CSVs and JSON dashboards as-is. Queue is filled by
// the daemon (time between acceptance and start); the session fills the
// rest. Warmup and Measure are summed across a sharded run's parallel
// intervals — per-stage work-seconds, not elapsed wall time — so the
// attribution stays meaningful whatever the parallelism. For a
// checkpoint-restored or unwarmed interval the whole simulation counts
// as Measure.
type Timings struct {
	PrepareSeconds float64 `json:"prepare_seconds,omitempty"`
	QueueSeconds   float64 `json:"queue_seconds,omitempty"`
	WarmupSeconds  float64 `json:"warmup_seconds,omitempty"`
	MeasureSeconds float64 `json:"measure_seconds,omitempty"`
	MergeSeconds   float64 `json:"merge_seconds,omitempty"`
}

// Add accumulates o into t (used to aggregate sweep cells).
func (t *Timings) Add(o *Timings) {
	if o == nil {
		return
	}
	t.PrepareSeconds += o.PrepareSeconds
	t.QueueSeconds += o.QueueSeconds
	t.WarmupSeconds += o.WarmupSeconds
	t.MeasureSeconds += o.MeasureSeconds
	t.MergeSeconds += o.MergeSeconds
}

// workSeconds is the simulation work the SLO cost model predicts:
// warming plus measuring, excluding preparation (amortized by the
// session cache) and queueing.
func (t *Timings) workSeconds() float64 {
	return t.WarmupSeconds + t.MeasureSeconds
}

// TimingsCSVHeader is the column header matching Timings.CSVRow.
func TimingsCSVHeader() string {
	return "prepare_seconds,queue_seconds,warmup_seconds,measure_seconds,merge_seconds"
}

// CSVRow renders the stages as one CSV row in header order.
func (t *Timings) CSVRow() string {
	return fmt.Sprintf("%.6f,%.6f,%.6f,%.6f,%.6f",
		t.PrepareSeconds, t.QueueSeconds, t.WarmupSeconds, t.MeasureSeconds, t.MergeSeconds)
}

// IntervalReport is one trace interval of a sharded run.
type IntervalReport struct {
	Index int `json:"index"`
	// StartInsts is the measure-window start position in CFG-level trace
	// instructions; Insts is the window's measured length and WarmupInsts
	// the lead-in actually delivered (block-snapped, so it can exceed the
	// request by less than one block; 0 for the head interval).
	StartInsts  uint64 `json:"start_insts"`
	Insts       uint64 `json:"insts"`
	WarmupInsts uint64 `json:"warmup_insts"`

	Cycles         uint64  `json:"cycles"`
	Retired        uint64  `json:"retired"`
	IPC            float64 `json:"ipc"`
	MispredRate    float64 `json:"mispred_rate"`
	FetchIPC       float64 `json:"fetch_ipc"`
	ICacheMissRate float64 `json:"icache_miss_rate"`
}

// newReport lifts a sim.Result into the public report shape. traceInsts is
// the trace's total instruction count when the source knew it (materialized
// traces, fully-drained generators and file footers); for a run cut short
// mid-stream it is the count supplied so far, or 0 when unknown.
func newReport(benchmark string, lay *layout.Layout, traceInsts uint64, seed uint64, res sim.Result) *Report {
	rep := &Report{
		Benchmark:  benchmark,
		Engine:     res.Engine,
		Layout:     lay.Name,
		Width:      res.Width,
		Seed:       seed,
		TraceInsts: traceInsts,
		CodeBytes:  lay.CodeSize(),
		Aborted:    res.Aborted,

		Cycles:  res.Cycles,
		Retired: res.Retired,
		IPC:     res.IPC,

		Branches:     res.Branches,
		Mispredicted: res.Mispredicted,
		MispredRate:  res.MispredRate,
		Misfetches:   res.Misfetches,

		FetchIPC: res.FetchIPC,
		Fetch: FetchReport{
			Delivered:        res.Fetch.Delivered,
			Cycles:           res.Fetch.Cycles,
			DeliveryCycles:   res.Fetch.DeliveryCycles,
			Units:            res.Fetch.Units,
			UnitInsts:        res.Fetch.UnitInsts,
			PredictorLookups: res.Fetch.PredictorLookups,
			PredictorHits:    res.Fetch.PredictorHits,
			MeanUnitLen:      res.Fetch.MeanUnitLen(),
			FetchIPC:         res.Fetch.FetchIPC(),
		},
		ICache: CacheReport{res.ICache.Accesses, res.ICache.Misses, res.ICache.MissRate()},
		DCache: CacheReport{res.DCache.Accesses, res.DCache.Misses, res.DCache.MissRate()},
		L2:     CacheReport{res.L2.Accesses, res.L2.Misses, res.L2.MissRate()},
	}
	for i, n := range res.MispredByType {
		if n == 0 {
			continue
		}
		if rep.MispredByType == nil {
			rep.MispredByType = map[string]uint64{}
		}
		rep.MispredByType[isa.BranchType(i).String()] = n
	}
	return rep
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s %-8s %-9s w=%d IPC=%.3f fetchIPC=%.2f mispred=%.2f%% misfetch=%d icacheMiss=%.3f%%",
		r.Benchmark, r.Engine, r.Layout, r.Width, r.IPC, r.FetchIPC,
		100*r.MispredRate, r.Misfetches, 100*r.ICache.MissRate)
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// JobState is the lifecycle state of a service job (see Server).
type JobState string

// Job lifecycle: queued → running → done | failed | cancelled. A queued
// job that is cancelled never runs.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final (no further transitions).
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobProgress is a point-in-time view of a running job's advancement: the
// retired-instruction counters for run jobs (summed over shards for a
// sharded run), the completed-cell counters for sweep jobs.
type JobProgress struct {
	Retired    uint64 `json:"retired,omitempty"`
	Total      uint64 `json:"total,omitempty"`
	CellsDone  int    `json:"cells_done,omitempty"`
	CellsTotal int    `json:"cells_total,omitempty"`
}

// JobEnvelope is the service's job resource: identity, lifecycle state,
// timings, live progress, and — once terminal — the run's Report or the
// sweep's cells. It is what GET /v1/runs/{id} returns at every state.
type JobEnvelope struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"` // "run" or "sweep"
	State JobState `json:"state"`

	// Key is the content hash of the job's normalized request: the
	// store-cache address of its result. Jobs agreeing on Key produce
	// byte-identical results (runs are deterministic for a fixed
	// configuration), which is what makes coalescing and the Report
	// cache sound. Cached marks a job answered from the store without
	// running a simulation.
	Key    string `json:"key,omitempty"`
	Cached bool   `json:"cached,omitempty"`

	EnqueuedAt time.Time `json:"enqueued_at,omitzero"`
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`
	// WaitSeconds is queue latency (enqueue → start); RunSeconds is
	// execution time (start → finish, or → now while running).
	WaitSeconds float64 `json:"wait_seconds,omitempty"`
	RunSeconds  float64 `json:"run_seconds,omitempty"`

	// SLO admission surface: the cost model's predicted execution
	// work-seconds for this job and the queue-delay estimate at the
	// moment it was accepted (see the slo package). Zero — and absent —
	// for cached answers and journal-restored envelopes.
	PredictedSeconds  float64 `json:"predicted_seconds,omitempty"`
	QueueDelaySeconds float64 `json:"queue_delay_seconds,omitempty"`

	// Timings is the finished job's per-stage breakdown (cells summed
	// for a sweep), including the queue stage only the daemon can see.
	Timings *Timings `json:"timings,omitempty"`

	Progress *JobProgress `json:"progress,omitempty"`
	Report   *Report      `json:"report,omitempty"`
	Cells    []GridCell   `json:"cells,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// Experiment is one table or figure of the paper's evaluation in structured
// form: labeled rows of values under named columns, renderable as aligned
// text or JSON.
type Experiment struct {
	Name      string          `json:"name"`
	Title     string          `json:"title"`
	RowHeader string          `json:"row_header,omitempty"`
	Columns   []string        `json:"columns,omitempty"`
	Rows      []ExperimentRow `json:"rows"`
	// Summary holds aggregate rows (e.g. a harmonic mean) kept apart
	// from the data rows so JSON consumers never mistake them for data.
	Summary []ExperimentRow `json:"summary,omitempty"`
	Notes   []string        `json:"notes,omitempty"`

	// Formats holds per-column fmt verbs for text rendering ("" = %.3f);
	// JSON output carries the raw values instead.
	Formats []string `json:"-"`
}

// ExperimentRow is one labeled row: numeric cells first, then any textual
// cells (e.g. Table 1's "paper" column).
type ExperimentRow struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values,omitempty"`
	Text   []string  `json:"text,omitempty"`
}

// AddRow appends a numeric row.
func (e *Experiment) AddRow(label string, values ...float64) {
	e.Rows = append(e.Rows, ExperimentRow{Label: label, Values: values})
}

// AddSummary appends a numeric aggregate row.
func (e *Experiment) AddSummary(label string, values ...float64) {
	e.Summary = append(e.Summary, ExperimentRow{Label: label, Values: values})
}

// WriteJSON writes the experiment as indented JSON.
func (e *Experiment) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// cell renders column j of a row: values first, then text cells.
func (e *Experiment) cell(row ExperimentRow, j int) string {
	if j < len(row.Values) {
		format := "%.3f"
		if j < len(e.Formats) && e.Formats[j] != "" {
			format = e.Formats[j]
		}
		return fmt.Sprintf(format, row.Values[j])
	}
	if k := j - len(row.Values); k < len(row.Text) {
		return row.Text[k]
	}
	return ""
}

// WriteText renders the experiment as an aligned text table: the title,
// a header naming the label column and value columns, one line per row, and
// any notes.
func (e *Experiment) WriteText(w io.Writer) {
	fmt.Fprintln(w, e.Title)
	all := append(append([]ExperimentRow(nil), e.Rows...), e.Summary...)
	labelW := len(e.RowHeader)
	for _, row := range all {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
	}
	colW := make([]int, len(e.Columns))
	for j, name := range e.Columns {
		colW[j] = len(name)
		for _, row := range all {
			if n := len(e.cell(row, j)); n > colW[j] {
				colW[j] = n
			}
		}
	}
	if len(e.Columns) > 0 {
		var b strings.Builder
		fmt.Fprintf(&b, "  %-*s", labelW, e.RowHeader)
		for j, name := range e.Columns {
			fmt.Fprintf(&b, "  %*s", colW[j], name)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	for _, row := range all {
		var b strings.Builder
		fmt.Fprintf(&b, "  %-*s", labelW, row.Label)
		for j := range e.Columns {
			fmt.Fprintf(&b, "  %*s", colW[j], e.cell(row, j))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	for _, note := range e.Notes {
		fmt.Fprintf(w, "  %s\n", note)
	}
}
