// The admission queue for streamfetchd jobs: a priority queue ordered by
// (priority class, earliest deadline, arrival), replacing the FIFO
// channel so a high-priority or deadline-tight submission overtakes the
// backlog instead of waiting out every job ahead of it.
package streamfetch

import (
	"container/heap"
	"sync"
)

// jobOrder sorts a heap of queued jobs: higher priority class first,
// then earliest absolute deadline (no deadline sorts after every
// deadline), then submission order — so equal-policy jobs stay FIFO and
// the queue degenerates to exactly the old behavior when nobody sets
// priority or deadline_ms.
type jobOrder []*job

func (q jobOrder) Len() int { return len(q) }

func (q jobOrder) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if !a.deadline.Equal(b.deadline) {
		if a.deadline.IsZero() {
			return false
		}
		if b.deadline.IsZero() {
			return true
		}
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}

func (q jobOrder) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *jobOrder) Push(x any) { *q = append(*q, x.(*job)) }

func (q *jobOrder) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// jobQueue is the blocking priority queue between submit and the
// dispatcher. close only ends pop's blocking: jobs already queued keep
// draining (shutdown's "queued jobs complete" promise), and internal
// re-offers (see place) still push after close.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   jobOrder
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *jobQueue) push(j *job) {
	q.mu.Lock()
	heap.Push(&q.heap, j)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks for the highest-priority job; (nil, false) once the queue
// is closed and drained.
func (q *jobQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.heap) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.heap) == 0 {
		return nil, false
	}
	return heap.Pop(&q.heap).(*job), true
}

// swap re-offers held against the queue: when a better-ordered job has
// arrived since held was popped, held goes back into the heap and the
// better job is returned. The dispatcher calls this while waiting for
// capacity, so the job it holds hostage cannot starve a later
// higher-priority arrival.
func (q *jobQueue) swap(held *job) *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.heap) == 0 {
		return held
	}
	pair := jobOrder{q.heap[0], held}
	if !pair.Less(0, 1) {
		return held
	}
	top := heap.Pop(&q.heap).(*job)
	heap.Push(&q.heap, held)
	return top
}

func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
