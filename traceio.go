// Public trace I/O: streaming export of a session's trace to the binary
// trace format, and inspection of existing trace artifacts. Both paths are
// incremental — blocks are encoded or decoded as they flow — so traces far
// larger than RAM are written and summarized in constant memory.
package streamfetch

import (
	"context"
	"fmt"
	"io"

	"streamfetch/internal/trace"
)

// TraceInfo summarizes a binary trace artifact.
type TraceInfo struct {
	Name   string `json:"name"`
	Blocks uint64 `json:"blocks"`
	Insts  uint64 `json:"insts"`
	// Seekable reports whether the file carries the chunk index that
	// lets sharded runs seek to an interval instead of decoding linearly
	// (only known when inspecting a file by path).
	Seekable bool `json:"seekable,omitempty"`
}

// MeanBlockLen returns the mean dynamic basic-block length in instructions
// (0 for an empty trace).
func (i TraceInfo) MeanBlockLen() float64 {
	if i.Blocks == 0 {
		return 0
	}
	return float64(i.Insts) / float64(i.Blocks)
}

// writeTraceCheck is how often (in blocks) WriteTrace polls the context.
const writeTraceCheck = 1 << 16

// WriteTrace streams the session's trace source to w in the binary trace
// format without materializing it, so arbitrarily long traces are written
// in memory independent of their length. The context cancels long exports.
func (s *Session) WriteTrace(ctx context.Context, w io.Writer) (TraceInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if s.benchmark == "" {
		return TraceInfo{}, fmt.Errorf("streamfetch: empty benchmark name")
	}
	src, err := s.Source()
	if err != nil {
		return TraceInfo{}, err
	}
	defer src.Close()
	tw, err := trace.NewWriter(w, src.Name())
	if err != nil {
		return TraceInfo{}, err
	}
	// Bind the benchmark program so the writer records the chunk index:
	// the written file then supports seeking sharded replays. The index's
	// instruction offsets come from the program's block lengths, so bind
	// only when the trace actually records this session's benchmark — a
	// foreign trace (replayed from another benchmark's file) is written
	// index-less rather than with silently wrong offsets.
	if src.Name() == s.benchmark {
		if prog, perr := s.Program(); perr == nil {
			tw.BindProgram(prog)
		}
	}
	for {
		if tw.Blocks()%writeTraceCheck == 0 {
			if err := ctx.Err(); err != nil {
				return TraceInfo{}, err
			}
		}
		id, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Append(id); err != nil {
			return TraceInfo{}, err
		}
	}
	if err := src.Close(); err != nil {
		return TraceInfo{}, fmt.Errorf("streamfetch: reading trace: %w", err)
	}
	insts, _ := src.TotalInsts()
	if err := tw.Finish(insts); err != nil {
		return TraceInfo{}, err
	}
	return TraceInfo{
		Name:     src.Name(),
		Blocks:   tw.Blocks(),
		Insts:    insts,
		Seekable: tw.Indexed(),
	}, nil
}

// InspectTrace incrementally decodes a binary trace stream and returns its
// summary without materializing the blocks.
func InspectTrace(r io.Reader) (TraceInfo, error) {
	src, err := trace.NewReader(r)
	if err != nil {
		return TraceInfo{}, err
	}
	var blocks uint64
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		blocks++
	}
	if err := src.Err(); err != nil {
		return TraceInfo{}, err
	}
	insts, _ := src.TotalInsts()
	return TraceInfo{Name: src.Name(), Blocks: blocks, Insts: insts}, nil
}

// InspectTraceFile summarizes a trace file by path, reporting whether it is
// seekable. An indexed file answers from the index without decoding the
// stream; anything else decodes once, like InspectTrace.
func InspectTraceFile(path string) (TraceInfo, error) {
	src, err := trace.Open(path)
	if err != nil {
		return TraceInfo{}, err
	}
	defer src.Close()
	if src.Seekable() {
		insts, _ := src.TotalInsts()
		blocks, _ := src.TotalBlocks()
		return TraceInfo{Name: src.Name(), Blocks: blocks, Insts: insts, Seekable: true}, nil
	}
	var blocks uint64
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		blocks++
	}
	if err := src.Err(); err != nil {
		return TraceInfo{}, err
	}
	insts, _ := src.TotalInsts()
	return TraceInfo{Name: src.Name(), Blocks: blocks, Insts: insts}, nil
}
