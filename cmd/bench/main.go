// Command bench measures raw simulator performance and appends a trajectory
// point to a JSON file (default BENCH_streamfetch.json), so simulator speed
// is tracked across changes the same way the paper's figures are.
//
// Per registered engine it records:
//
//   - sim_insts_per_sec: simulated (retired) instructions per wall-clock
//     second for a full session run (preparation cached, per-run setup
//     included), measured with testing.Benchmark;
//   - loop_allocs_per_1k_insts: heap allocations per 1000 retired
//     instructions inside Processor.Run alone (construction excluded) —
//     the steady-state hot-loop allocation rate, which should stay ~0;
//   - the run's model metrics (IPC, fetch IPC, misprediction rate), so a
//     speedup that silently changed the model is immediately visible;
//
// plus the shard-scaling series (sim-insts/s for one logical run at
// shards in {1, 2, 4} over -shardinsts instructions, with wall-clock
// speedup relative to shards=1 and the host's core count), the
// checkpoint before/after measurement (unless -ckpt=false: single-shot
// vs cold-store vs warm-store sharded wall-clock plus a sampled run;
// see measureCkpt) and, unless -figures=false, the Figure-8 cell:
// harmonic-mean IPC per engine across the benchmark subset on the
// optimized layout.
//
// With -cpuprofile/-memprofile the measurement phase is captured into
// pprof profiles (the CPU profile spans every measurement; the heap
// profile is written at exit after a final GC), so the two-command
// workflow "bench with profiles, then go tool pprof" answers where the
// simulator spends its time.
//
// Usage:
//
//	go run ./cmd/bench [-o BENCH_streamfetch.json] [-label <name>]
//	    [-insts 300000] [-benchmark 164.gzip] [-width 8]
//	    [-set 164.gzip,176.gcc,300.twolf] [-figures=true] [-ckpt=true]
//	    [-shardinsts 4000000] [-cpuprofile cpu.out] [-memprofile mem.out]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"streamfetch"
	"streamfetch/internal/experiments"
	"streamfetch/internal/sim"
	"streamfetch/internal/store"
)

// EnginePoint is one engine's measurements at a trajectory point.
type EnginePoint struct {
	SimInstsPerSec  float64 `json:"sim_insts_per_sec"`
	NsPerRun        int64   `json:"ns_per_run"`
	AllocsPerRun    int64   `json:"allocs_per_run"`
	BytesPerRun     int64   `json:"bytes_per_run"`
	LoopAllocsPer1K float64 `json:"loop_allocs_per_1k_insts"`
	IPC             float64 `json:"ipc"`
	FetchIPC        float64 `json:"fetch_ipc"`
	MispredRate     float64 `json:"mispred_rate"`
}

// ShardPoint is one sharded-run measurement: wall-clock throughput of a
// single logical run split into Shards parallel trace intervals.
type ShardPoint struct {
	Shards         int     `json:"shards"`
	SimInstsPerSec float64 `json:"sim_insts_per_sec"`
	// Speedup is wall-clock relative to the shards=1 run of the same
	// workload (bounded by the machine's usable cores).
	Speedup float64 `json:"speedup"`
	IPC     float64 `json:"ipc"`
	// Timings is the run's per-stage breakdown (warmup/measure summed
	// across parallel intervals), showing where the sharded run's time
	// actually goes as the shard count grows.
	Timings *streamfetch.Timings `json:"timings,omitempty"`
}

// CkptPoint is the checkpoint-mode measurement: the same logical run
// timed three ways — single-shot, sharded against an empty checkpoint
// store (every shard functionally warms its prefix and publishes a
// snapshot), and sharded again against the now-populated store (every
// shard restores in O(state)) — plus one sampled run riding the same
// warm snapshots. The warm/cold ratio is the O(shards × prefix)
// warming term the checkpoints remove; the hit/miss counts prove which
// path each run actually took.
type CkptPoint struct {
	Shards int    `json:"shards"`
	Warmup uint64 `json:"warmup"`

	SingleSecs float64 `json:"single_secs"`
	ColdSecs   float64 `json:"cold_secs"`
	WarmSecs   float64 `json:"warm_secs"`

	ColdMisses uint64 `json:"cold_misses"`
	WarmHits   uint64 `json:"warm_hits"`

	// SpeedupVsCold/SpeedupVsSingle are warm-run wall-clock ratios
	// (>1 means the checkpointed run is faster).
	SpeedupVsCold   float64 `json:"speedup_vs_cold"`
	SpeedupVsSingle float64 `json:"speedup_vs_single"`

	FullIPC float64 `json:"full_ipc"`
	WarmIPC float64 `json:"warm_ipc"`

	// Sampled run: Samples windows of SampleInsts each, restored from
	// the snapshots the warm shard run left behind where boundaries
	// line up, functionally warmed otherwise.
	Samples       int     `json:"samples"`
	SampleInsts   uint64  `json:"sample_insts"`
	SampledSecs   float64 `json:"sampled_secs"`
	SampledIPC    float64 `json:"sampled_ipc"`
	SampledCI95   float64 `json:"sampled_ipc_ci95"`
	SampledHits   uint64  `json:"sampled_hits"`
	SampledMisses uint64  `json:"sampled_misses"`
}

// Point is one trajectory point: everything measured by one bench run.
type Point struct {
	Label     string                 `json:"label,omitempty"`
	Time      string                 `json:"time"`
	Go        string                 `json:"go"`
	GOOS      string                 `json:"goos"`
	GOARCH    string                 `json:"goarch"`
	Cores     int                    `json:"cores,omitempty"`
	Benchmark string                 `json:"benchmark"`
	Width     int                    `json:"width"`
	Insts     uint64                 `json:"insts"`
	Engines   map[string]EnginePoint `json:"engines"`
	// ShardScaling records sim-insts/s for one logical run at shards in
	// {1, 2, 4} over ShardInsts instructions (streams engine, optimized
	// layout); see -shardinsts.
	ShardInsts   uint64       `json:"shard_insts,omitempty"`
	ShardScaling []ShardPoint `json:"shard_scaling,omitempty"`
	// Fig8HarmonicIPC is the Figure-8 cell at the configured width:
	// harmonic-mean IPC per engine across the benchmark set, optimized
	// layout.
	Fig8HarmonicIPC map[string]float64 `json:"fig8_harmonic_ipc,omitempty"`
	// Ckpt is the checkpoint before/after measurement over ShardInsts
	// instructions; see -ckpt.
	Ckpt *CkptPoint `json:"ckpt,omitempty"`
}

// File is the trajectory file: an append-only series of points.
type File struct {
	Schema string  `json:"schema"`
	Points []Point `json:"points"`
}

const schema = "streamfetch-bench/v1"

func main() {
	var (
		out        = flag.String("o", "BENCH_streamfetch.json", "trajectory file to append to")
		label      = flag.String("label", "", "label for this trajectory point (e.g. a PR name)")
		insts      = flag.Uint64("insts", 300_000, "trace length per measured run")
		benchmark  = flag.String("benchmark", "164.gzip", "benchmark for the throughput measurements")
		width      = flag.Int("width", 8, "pipe width")
		set        = flag.String("set", "164.gzip,176.gcc,300.twolf", "benchmark subset for the figure sweep")
		figures    = flag.Bool("figures", true, "also run the Figure-8 harmonic-IPC sweep")
		shardInsts = flag.Uint64("shardinsts", 4_000_000,
			"trace length for the shard-scaling measurement (0 = skip)")
		ckpt = flag.Bool("ckpt", true,
			"measure warm-state checkpoints: single-shot vs cold vs checkpointed 4-shard wall-clock over -shardinsts, plus a sampled run")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the measurements to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	if err := withProfiles(*cpuProfile, *memProfile, func() error {
		return run(*out, *label, *insts, *benchmark, *width, *set, *figures, *shardInsts, *ckpt)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// withProfiles brackets f with the requested pprof captures: the CPU
// profile covers f entirely; the heap profile snapshots live allocations
// after f and a final GC.
func withProfiles(cpuPath, memPath string, f func() error) error {
	if cpuPath != "" {
		cf, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if err := f(); err != nil {
		return err
	}
	if memPath != "" {
		mf, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer mf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return fmt.Errorf("writing heap profile: %w", err)
		}
	}
	return nil
}

func run(out, label string, insts uint64, benchmark string, width int, set string, figures bool, shardInsts uint64, ckpt bool) error {
	ctx := context.Background()
	pt := Point{
		Label:     label,
		Time:      time.Now().UTC().Format(time.RFC3339),
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cores:     runtime.GOMAXPROCS(0),
		Benchmark: benchmark,
		Width:     width,
		Insts:     insts,
		Engines:   map[string]EnginePoint{},
	}

	for _, engine := range streamfetch.Engines() {
		ep, err := measureEngine(ctx, benchmark, engine, width, insts)
		if err != nil {
			return err
		}
		pt.Engines[engine] = ep
		fmt.Printf("%-8s %11.0f sim-insts/s  %7.3f loop-allocs/1k  IPC=%.3f fetchIPC=%.2f\n",
			engine, ep.SimInstsPerSec, ep.LoopAllocsPer1K, ep.IPC, ep.FetchIPC)
	}

	if shardInsts > 0 {
		sp, err := measureShards(ctx, benchmark, width, shardInsts)
		if err != nil {
			return err
		}
		pt.ShardInsts = shardInsts
		pt.ShardScaling = sp
		for _, p := range sp {
			fmt.Printf("shards=%d %11.0f sim-insts/s  speedup %.2fx  IPC=%.3f\n",
				p.Shards, p.SimInstsPerSec, p.Speedup, p.IPC)
		}
	}

	if ckpt && shardInsts > 0 {
		cp, err := measureCkpt(ctx, benchmark, width, shardInsts)
		if err != nil {
			return err
		}
		pt.Ckpt = cp
		fmt.Printf("ckpt single %6.2fs  cold %6.2fs (%d misses)  warm %6.2fs (%d hits)  speedup %.2fx vs cold, %.2fx vs single\n",
			cp.SingleSecs, cp.ColdSecs, cp.ColdMisses, cp.WarmSecs, cp.WarmHits,
			cp.SpeedupVsCold, cp.SpeedupVsSingle)
		fmt.Printf("ckpt sampled %dx%d %6.2fs  IPC %.3f±%.3f (full %.3f)  %d hits/%d misses\n",
			cp.Samples, cp.SampleInsts, cp.SampledSecs, cp.SampledIPC, cp.SampledCI95,
			cp.FullIPC, cp.SampledHits, cp.SampledMisses)
	}

	if figures {
		h, err := figureSweep(ctx, strings.Split(set, ","), width, insts)
		if err != nil {
			return err
		}
		pt.Fig8HarmonicIPC = h
		for _, e := range streamfetch.Engines() {
			fmt.Printf("fig8 %-8s harmonic IPC %.3f\n", e, h[e])
		}
	}

	return appendPoint(out, pt)
}

// measureEngine times full session runs for throughput and measures the
// steady-state allocation rate of the simulation loop alone.
func measureEngine(ctx context.Context, benchmark, engine string, width int, insts uint64) (EnginePoint, error) {
	s := streamfetch.New(benchmark,
		streamfetch.WithInstructions(insts),
		streamfetch.WithWidth(width),
		streamfetch.WithEngine(engine),
		streamfetch.WithOptimizedLayout(),
	)
	if err := s.Prepare(ctx); err != nil {
		return EnginePoint{}, err
	}

	var rep *streamfetch.Report
	var retired uint64
	var runErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		retired = 0
		for i := 0; i < b.N; i++ {
			rep, runErr = s.Run(ctx)
			if runErr != nil {
				b.FailNow()
			}
			retired += rep.Retired
		}
	})
	if runErr != nil {
		return EnginePoint{}, runErr
	}

	loopPer1K, err := measureLoopAllocs(s, engine, width)
	if err != nil {
		return EnginePoint{}, err
	}

	secs := r.T.Seconds()
	ep := EnginePoint{
		NsPerRun:        r.NsPerOp(),
		AllocsPerRun:    r.AllocsPerOp(),
		BytesPerRun:     r.AllocedBytesPerOp(),
		LoopAllocsPer1K: loopPer1K,
		IPC:             rep.IPC,
		FetchIPC:        rep.FetchIPC,
		MispredRate:     rep.MispredRate,
	}
	if secs > 0 {
		ep.SimInstsPerSec = float64(retired) / secs
	}
	return ep, nil
}

// measureLoopAllocs builds one processor, then counts heap allocations
// during Processor.Run alone: the steady-state hot-loop allocation rate,
// excluding construction (caches, predictor tables, decode tables).
func measureLoopAllocs(s *streamfetch.Session, engine string, width int) (per1k float64, err error) {
	lay, err := s.Layout("optimized")
	if err != nil {
		return 0, err
	}
	src, err := s.Source()
	if err != nil {
		return 0, err
	}
	defer src.Close()
	proc, err := sim.New(lay, src, sim.Config{Width: width, Engine: engine})
	if err != nil {
		return 0, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	res := proc.Run()
	runtime.ReadMemStats(&m1)
	if res.Retired == 0 {
		return 0, fmt.Errorf("loop-alloc run retired nothing")
	}
	return float64(m1.Mallocs-m0.Mallocs) / (float64(res.Retired) / 1000), nil
}

// measureShards times one logical run (streams engine, optimized layout)
// at shards in {1, 2, 4}: the wall-clock scaling of interval-sharded
// simulation on this machine. Warmup is 5% of the interval length.
func measureShards(ctx context.Context, benchmark string, width int, insts uint64) ([]ShardPoint, error) {
	s := streamfetch.New(benchmark,
		streamfetch.WithInstructions(insts),
		streamfetch.WithWidth(width),
		streamfetch.WithEngine("streams"),
		streamfetch.WithOptimizedLayout(),
	)
	if err := s.Prepare(ctx); err != nil {
		return nil, err
	}
	var out []ShardPoint
	base := 0.0
	for _, n := range []int{1, 2, 4} {
		start := time.Now()
		rep, err := s.RunWith(ctx,
			streamfetch.WithShards(n),
			streamfetch.WithWarmup(insts/uint64(n)/20),
			streamfetch.WithStageTimings(),
		)
		if err != nil {
			return nil, err
		}
		secs := time.Since(start).Seconds()
		p := ShardPoint{Shards: n, IPC: rep.IPC, Timings: rep.Timings}
		if secs > 0 {
			p.SimInstsPerSec = float64(rep.Retired) / secs
		}
		if n == 1 {
			base = secs
		}
		if secs > 0 && base > 0 {
			p.Speedup = base / secs
		}
		out = append(out, p)
	}
	return out, nil
}

// measureCkpt times the same logical run (streams engine, optimized
// layout, 4 shards, 5% warmup) three ways: single-shot, sharded against
// an empty checkpoint store — each shard functionally warms its prefix
// and publishes a snapshot — and sharded against the populated store,
// where each shard restores its boundary in O(state). It then times a
// sampled run (populate pass first, timed pass restoring) over the same
// trace. Hit/miss counts from the reports prove which path ran.
func measureCkpt(ctx context.Context, benchmark string, width int, insts uint64) (*CkptPoint, error) {
	s := streamfetch.New(benchmark,
		streamfetch.WithInstructions(insts),
		streamfetch.WithWidth(width),
		streamfetch.WithEngine("streams"),
		streamfetch.WithOptimizedLayout(),
	)
	if err := s.Prepare(ctx); err != nil {
		return nil, err
	}

	const shards = 4
	cp := &CkptPoint{Shards: shards, Warmup: insts / shards / 20}
	st := store.NewMem()
	defer st.Close()

	timed := func(opts ...streamfetch.Option) (*streamfetch.Report, float64, error) {
		start := time.Now()
		rep, err := s.RunWith(ctx, opts...)
		return rep, time.Since(start).Seconds(), err
	}

	full, secs, err := timed()
	if err != nil {
		return nil, err
	}
	cp.SingleSecs, cp.FullIPC = secs, full.IPC

	sharded := []streamfetch.Option{
		streamfetch.WithShards(shards),
		streamfetch.WithWarmup(cp.Warmup),
		streamfetch.WithCheckpoints(st),
	}
	cold, secs, err := timed(sharded...)
	if err != nil {
		return nil, err
	}
	cp.ColdSecs, cp.ColdMisses = secs, cold.CheckpointMisses

	warm, secs, err := timed(sharded...)
	if err != nil {
		return nil, err
	}
	cp.WarmSecs, cp.WarmHits, cp.WarmIPC = secs, warm.CheckpointHits, warm.IPC
	if cp.WarmSecs > 0 {
		cp.SpeedupVsCold = cp.ColdSecs / cp.WarmSecs
		cp.SpeedupVsSingle = cp.SingleSecs / cp.WarmSecs
	}

	// Sampled run: window boundaries differ from the shard boundaries,
	// so the first pass publishes its own snapshots and the timed pass
	// restores them — the steady state of repeated sampled sweeps.
	cp.Samples, cp.SampleInsts = 8, insts/40
	sampled := []streamfetch.Option{
		streamfetch.WithSampling(cp.Samples, cp.SampleInsts),
		streamfetch.WithWarmup(cp.SampleInsts / 5),
		streamfetch.WithCheckpoints(st),
	}
	if _, _, err := timed(sampled...); err != nil {
		return nil, err
	}
	samp, secs, err := timed(sampled...)
	if err != nil {
		return nil, err
	}
	cp.SampledSecs, cp.SampledIPC, cp.SampledCI95 = secs, samp.IPC, samp.IPCCI95
	cp.SampledHits, cp.SampledMisses = samp.CheckpointHits, samp.CheckpointMisses
	return cp, nil
}

// figureSweep runs the Figure-8 cell: harmonic-mean IPC per engine over the
// benchmark set, optimized layout.
func figureSweep(ctx context.Context, set []string, width int, insts uint64) (map[string]float64, error) {
	cfg := experiments.DefaultConfig()
	cfg.TraceInsts = insts
	cfg.TrainInsts = insts / 4
	cfg.Benchmarks = set
	benches, err := experiments.Prepare(ctx, cfg)
	if err != nil {
		return nil, err
	}
	cells, err := experiments.Sweep(ctx, benches, width,
		[]string{"optimized"}, streamfetch.Engines(), cfg.Parallel)
	if err != nil {
		return nil, err
	}
	h := experiments.HarmonicIPC(cells)
	out := map[string]float64{}
	for _, e := range streamfetch.Engines() {
		out[e] = h[[2]string{"optimized", e}]
	}
	return out, nil
}

// appendPoint reads the trajectory file (if present), appends pt and writes
// it back, so the file accumulates one point per recorded change.
func appendPoint(path string, pt Point) error {
	var f File
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
	case os.IsNotExist(err):
		// First point: fresh file.
	default:
		return err
	}
	f.Schema = schema
	f.Points = append(f.Points, pt)
	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote trajectory point %d to %s\n", len(f.Points), path)
	return nil
}
