package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenerateAndInspectGolden: generate a small trace, then pin the
// -inspect summary byte-for-byte against a golden. Generation is seeded,
// so block/instruction counts and seekability are deterministic; a change
// here means the generator, the codec or the inspect plumbing moved.
func TestGenerateAndInspectGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gzip_50k.trc")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-bench", "164.gzip", "-insts", "50000", "-seed", "99", "-o", path},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("generate: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.HasPrefix(stdout.String(), "wrote "+path+": 164.gzip") {
		t.Fatalf("generate output: %q", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run(context.Background(), []string{"-inspect", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("inspect: exit %d, stderr: %s", code, stderr.String())
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden_inspect_gzip_50k.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Fatalf("-inspect output diverged from golden\ngot:\n%s\nwant:\n%s",
			stdout.Bytes(), want)
	}
}

// TestRunErrors: the documented failure exits — missing -o, unreadable
// -inspect target, unknown flag — without touching the filesystem.
func TestRunErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-bench", "164.gzip"}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -o: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-inspect", filepath.Join(t.TempDir(), "absent.trc")}, &stdout, &stderr); code != 1 {
		t.Errorf("absent -inspect file: exit %d, want 1", code)
	}
	if stderr.Len() == 0 {
		t.Error("absent -inspect file produced no error output")
	}
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h: exit %d, want 0 (usage is not an error)", code)
	}
}
