// Command tracegen generates benchmark traces and writes them in the binary
// trace format, or inspects existing trace files.
//
// Usage:
//
//	tracegen -bench 164.gzip -insts 2000000 -o gzip.trc
//	tracegen -inspect gzip.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

func main() {
	bench := flag.String("bench", "164.gzip", "benchmark name")
	insts := flag.Uint64("insts", 2_000_000, "dynamic instructions")
	seed := flag.Uint64("seed", 99, "branch behaviour seed (input selection)")
	out := flag.String("o", "", "output trace file")
	inspect := flag.String("inspect", "", "print a summary of an existing trace file")
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace   %s\n", tr.Name)
		fmt.Printf("blocks  %d\n", len(tr.Blocks))
		fmt.Printf("insts   %d\n", tr.Insts)
		if len(tr.Blocks) > 0 {
			fmt.Printf("mean block length %.2f instructions\n",
				float64(tr.Insts)/float64(len(tr.Blocks)))
		}
		return
	}

	params, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog := workload.Generate(params)
	tr := trace.Generate(prog, trace.GenConfig{Seed: *seed, MaxInsts: *insts})

	if *out == "" {
		fmt.Fprintln(os.Stderr, "missing -o output file")
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := tr.Write(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d blocks, %d instructions\n", *out, len(tr.Blocks), tr.Insts)
}
