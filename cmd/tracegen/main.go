// Command tracegen generates benchmark traces and writes them in the binary
// trace format, or inspects existing trace files. It drives the public
// streamfetch session API.
//
// Traces are always encoded as they are generated — constant memory at any
// length, the paper's 300M-instruction scale and beyond — and carry the
// STRMTRC2 chunk index: sharded replays size their intervals from it
// without a pre-scan, and cold-shard replays (streamsim -shards -cold)
// seek straight to their intervals instead of decoding everything before
// them. Legacy index-less files still replay and shard; they just decode
// linearly.
//
// Usage:
//
//	tracegen -bench 164.gzip -insts 2000000 -o gzip.trc
//	tracegen -bench 176.gcc -insts 300000000 -o gcc.trc
//	tracegen -inspect gzip.trc
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"streamfetch"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first interrupt cancels the context (which stops an
		// export), restore the default handler so a second Ctrl-C kills
		// the process even mid-generation.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command minus process concerns (signals, exit), so
// tests drive it with flag slices and buffers instead of spawning the
// binary. It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "164.gzip", "benchmark name")
	insts := fs.Uint64("insts", 2_000_000, "dynamic instructions")
	seed := fs.Uint64("seed", 99, "branch behaviour seed (input selection)")
	out := fs.String("o", "", "output trace file")
	fs.Bool("stream", true,
		"deprecated: traces always stream (constant memory, any trace length)")
	inspect := fs.String("inspect", "", "print a summary of an existing trace file")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *inspect != "" {
		info, err := streamfetch.InspectTraceFile(*inspect)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		printInfo(stdout, "trace", info)
		return 0
	}

	if *out == "" {
		fmt.Fprintln(stderr, "missing -o output file")
		return 2
	}

	session := streamfetch.New(*bench,
		streamfetch.WithInstructions(*insts),
		streamfetch.WithSeed(*seed),
	)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	// Blocks flow straight from the seeded CFG walk into the encoder; the
	// session binds its program, so the file carries the seek index.
	info, err := session.WriteTrace(ctx, f)
	if err != nil {
		f.Close()
		os.Remove(*out)
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	printInfo(stdout, fmt.Sprintf("wrote %s:", *out), info)
	return 0
}

func printInfo(w io.Writer, prefix string, info streamfetch.TraceInfo) {
	fmt.Fprintf(w, "%s %s\n", prefix, info.Name)
	fmt.Fprintf(w, "blocks  %d\n", info.Blocks)
	fmt.Fprintf(w, "insts   %d\n", info.Insts)
	if info.Blocks > 0 {
		fmt.Fprintf(w, "mean block length %.2f instructions\n", info.MeanBlockLen())
	}
	if info.Seekable {
		fmt.Fprintln(w, "seekable: yes (chunk index present; sharded replays seek)")
	} else {
		fmt.Fprintln(w, "seekable: no (sharded replays decode linearly)")
	}
}
