// Command tracegen generates benchmark traces and writes them in the binary
// trace format, or inspects existing trace files. It drives the public
// streamfetch session API.
//
// Traces are always encoded as they are generated — constant memory at any
// length, the paper's 300M-instruction scale and beyond — and carry the
// STRMTRC2 chunk index: sharded replays size their intervals from it
// without a pre-scan, and cold-shard replays (streamsim -shards -cold)
// seek straight to their intervals instead of decoding everything before
// them. Legacy index-less files still replay and shard; they just decode
// linearly.
//
// Usage:
//
//	tracegen -bench 164.gzip -insts 2000000 -o gzip.trc
//	tracegen -bench 176.gcc -insts 300000000 -o gcc.trc
//	tracegen -inspect gzip.trc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"streamfetch"
)

func main() {
	bench := flag.String("bench", "164.gzip", "benchmark name")
	insts := flag.Uint64("insts", 2_000_000, "dynamic instructions")
	seed := flag.Uint64("seed", 99, "branch behaviour seed (input selection)")
	out := flag.String("o", "", "output trace file")
	flag.Bool("stream", true,
		"deprecated: traces always stream (constant memory, any trace length)")
	inspect := flag.String("inspect", "", "print a summary of an existing trace file")
	flag.Parse()

	if *inspect != "" {
		info, err := streamfetch.InspectTraceFile(*inspect)
		if err != nil {
			fatal(err)
		}
		printInfo("trace", info)
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "missing -o output file")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first interrupt cancels the context (which stops a
		// -stream export), restore the default handler so a second
		// Ctrl-C kills the process even mid-materialization.
		<-ctx.Done()
		stop()
	}()

	session := streamfetch.New(*bench,
		streamfetch.WithInstructions(*insts),
		streamfetch.WithSeed(*seed),
	)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	// Blocks flow straight from the seeded CFG walk into the encoder; the
	// session binds its program, so the file carries the seek index.
	info, err := session.WriteTrace(ctx, f)
	if err != nil {
		f.Close()
		os.Remove(*out)
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	printInfo(fmt.Sprintf("wrote %s:", *out), info)
}

func printInfo(prefix string, info streamfetch.TraceInfo) {
	fmt.Printf("%s %s\n", prefix, info.Name)
	fmt.Printf("blocks  %d\n", info.Blocks)
	fmt.Printf("insts   %d\n", info.Insts)
	if info.Blocks > 0 {
		fmt.Printf("mean block length %.2f instructions\n", info.MeanBlockLen())
	}
	if info.Seekable {
		fmt.Println("seekable: yes (chunk index present; sharded replays seek)")
	} else {
		fmt.Println("seekable: no (sharded replays decode linearly)")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
