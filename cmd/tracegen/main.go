// Command tracegen generates benchmark traces and writes them in the binary
// trace format, or inspects existing trace files. It drives the public
// streamfetch session API.
//
// With -stream the trace is encoded as it is generated, so traces far
// larger than RAM (the paper's 300M-instruction scale and beyond) are
// written in constant memory. Without it the trace is materialized first,
// which also prints its mean block length.
//
// Usage:
//
//	tracegen -bench 164.gzip -insts 2000000 -o gzip.trc
//	tracegen -bench 176.gcc -insts 300000000 -stream -o gcc.trc
//	tracegen -inspect gzip.trc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"streamfetch"
)

func main() {
	bench := flag.String("bench", "164.gzip", "benchmark name")
	insts := flag.Uint64("insts", 2_000_000, "dynamic instructions")
	seed := flag.Uint64("seed", 99, "branch behaviour seed (input selection)")
	out := flag.String("o", "", "output trace file")
	stream := flag.Bool("stream", false,
		"stream blocks to the output as they are generated (constant memory, any trace length)")
	inspect := flag.String("inspect", "", "print a summary of an existing trace file")
	flag.Parse()

	if *inspect != "" {
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		info, err := streamfetch.InspectTrace(f)
		if err != nil {
			fatal(err)
		}
		printInfo("trace", info)
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "missing -o output file")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first interrupt cancels the context (which stops a
		// -stream export), restore the default handler so a second
		// Ctrl-C kills the process even mid-materialization.
		<-ctx.Done()
		stop()
	}()

	session := streamfetch.New(*bench,
		streamfetch.WithInstructions(*insts),
		streamfetch.WithSeed(*seed),
	)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	var info streamfetch.TraceInfo
	if *stream {
		// Blocks flow straight from the seeded CFG walk into the encoder.
		info, err = session.WriteTrace(ctx, f)
	} else {
		tr, terr := session.Trace()
		err = terr
		if err == nil {
			err = tr.Write(f)
		}
		if err == nil {
			info = streamfetch.TraceInfo{
				Name:   tr.Name,
				Blocks: uint64(len(tr.Blocks)),
				Insts:  tr.Insts,
			}
		}
	}
	if err != nil {
		f.Close()
		os.Remove(*out)
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	printInfo(fmt.Sprintf("wrote %s:", *out), info)
}

func printInfo(prefix string, info streamfetch.TraceInfo) {
	fmt.Printf("%s %s\n", prefix, info.Name)
	fmt.Printf("blocks  %d\n", info.Blocks)
	fmt.Printf("insts   %d\n", info.Insts)
	if info.Blocks > 0 {
		fmt.Printf("mean block length %.2f instructions\n", info.MeanBlockLen())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
