package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunJSONGolden pins the -json output byte-for-byte against the
// repository's golden Report files: the CLI flag plumbing (engine, layout,
// width selection, default insts/seed) must keep producing exactly the
// session-API result, so flag regressions surface without spawning the
// binary.
func TestRunJSONGolden(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		golden string
	}{
		{
			name:   "streams_opt",
			args:   []string{"-bench", "164.gzip", "-engine", "streams", "-width", "8", "-layout", "optimized", "-json"},
			golden: "golden_report_gzip_w8_streams_opt.json",
		},
		{
			name:   "ev8_base",
			args:   []string{"-bench", "164.gzip", "-engine", "ev8", "-width", "8", "-layout", "base", "-json"},
			golden: "golden_report_gzip_w8_ev8_base.json",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var stdout, stderr bytes.Buffer
			if code := run(context.Background(), tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr.String())
			}
			want, err := os.ReadFile(filepath.Join("..", "..", "testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Fatalf("-json output diverged from %s\ngot:\n%s\nwant:\n%s",
					tc.golden, stdout.Bytes(), want)
			}
		})
	}
}

// TestRunList: -list enumerates the suite and engines and exits cleanly.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"164.gzip", "streams", "ev8", "tcache", "ftb"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q:\n%s", want, out)
		}
	}
}

// TestRunBadFlags: unknown flags and unknown benchmarks fail with the
// documented exit codes instead of panicking or succeeding silently.
func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-h"}, &stdout, &stderr); code != 0 {
		t.Errorf("-h: exit %d, want 0 (usage is not an error)", code)
	}
	stderr.Reset()
	if code := run(context.Background(), []string{"-bench", "999.nope", "-insts", "1000"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown benchmark: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if stderr.Len() == 0 {
		t.Error("unknown benchmark produced no error output")
	}
}
