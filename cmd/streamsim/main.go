// Command streamsim runs one simulation through the public streamfetch
// API: a benchmark under a layout with a chosen fetch engine and pipe
// width, printing the full result as text or JSON.
//
// Usage:
//
//	streamsim -bench 164.gzip -engine streams -width 8 -layout optimized \
//	          [-insts 2000000] [-trace file.trc] [-json]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"streamfetch"
)

func main() {
	bench := flag.String("bench", "164.gzip", "benchmark name (see -list)")
	engine := flag.String("engine", "streams",
		"fetch engine: "+strings.Join(streamfetch.Engines(), ", "))
	width := flag.Int("width", 8, "pipe width")
	layoutName := flag.String("layout", "optimized", "code layout: base or optimized")
	insts := flag.Uint64("insts", 2_000_000, "dynamic instructions to simulate")
	traceFile := flag.String("trace", "", "replay a saved trace file instead of generating one")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	list := flag.Bool("list", false, "list benchmarks and engines, then exit")
	flag.Parse()

	if *list {
		fmt.Printf("benchmarks: %s\n", strings.Join(streamfetch.Benchmarks(), ", "))
		fmt.Printf("engines:    %s\n", strings.Join(streamfetch.Engines(), ", "))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first interrupt cancels the context, restore the
		// default handler so a second Ctrl-C kills the process even
		// mid-preparation.
		<-ctx.Done()
		stop()
	}()

	opts := []streamfetch.Option{
		streamfetch.WithEngine(*engine),
		streamfetch.WithWidth(*width),
		streamfetch.WithLayout(*layoutName),
		streamfetch.WithInstructions(*insts),
		// A tight progress cadence keeps even short runs responsive to
		// cancellation.
		streamfetch.WithProgress(16_384, nil),
	}
	if *traceFile != "" {
		opts = append(opts, streamfetch.WithTraceFile(*traceFile))
	}
	rep, err := streamfetch.New(*bench, opts...).Run(ctx)
	if err != nil {
		if rep == nil {
			fmt.Fprintln(os.Stderr, err)
			if errors.Is(err, context.Canceled) {
				os.Exit(130)
			}
			os.Exit(1)
		}
		// Interrupted mid-simulation: report the partial results.
		fmt.Fprintf(os.Stderr, "interrupted: %v (partial results below)\n", err)
	}

	if *asJSON {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Printf("benchmark      %s (%s layout, %s engine, code size %d KB)\n",
			rep.Benchmark, rep.Layout, rep.Engine, rep.CodeBytes/1024)
		fmt.Printf("retired        %d instructions in %d cycles\n", rep.Retired, rep.Cycles)
		fmt.Printf("IPC            %.3f\n", rep.IPC)
		fmt.Printf("fetch IPC      %.2f (mean unit %.1f insts, unit predictor hit %.1f%%)\n",
			rep.FetchIPC, rep.Fetch.MeanUnitLen, hitPct(rep))
		fmt.Printf("branches       %d, mispredicted %.2f%%, decode redirects %d\n",
			rep.Branches, 100*rep.MispredRate, rep.Misfetches)
		fmt.Printf("I-cache miss   %.3f%%   D-cache miss %.2f%%   L2 miss %.2f%%\n",
			100*rep.ICache.MissRate, 100*rep.DCache.MissRate, 100*rep.L2.MissRate)
	}
	if err != nil {
		os.Exit(130)
	}
}

func hitPct(rep *streamfetch.Report) float64 {
	if rep.Fetch.PredictorLookups == 0 {
		return 0
	}
	return 100 * float64(rep.Fetch.PredictorHits) / float64(rep.Fetch.PredictorLookups)
}
