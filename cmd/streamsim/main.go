// Command streamsim runs one simulation through the public streamfetch
// API: a benchmark under a layout with a chosen fetch engine and pipe
// width, printing the full result as text or JSON.
//
// Usage:
//
//	streamsim -bench 164.gzip -engine streams -width 8 -layout optimized \
//	          [-insts 2000000] [-trace file.trc] [-json] \
//	          [-shards 4] [-warmup 100000]
//
// -shards > 1 splits the run into that many trace intervals simulated in
// parallel and merged; -warmup sets each mid-trace interval's
// counters-frozen lead-in. By default shards functionally warm caches
// through their prefix (accuracy); -cold skips the prefix instead
// (speed-maximal, seeking through indexed trace files).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"streamfetch"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first interrupt cancels the context, restore the
		// default handler so a second Ctrl-C kills the process even
		// mid-preparation.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command minus process concerns (signals, exit), so
// tests drive it with flag slices and buffers instead of spawning the
// binary. It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("streamsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "164.gzip", "benchmark name (see -list)")
	engine := fs.String("engine", "streams",
		"fetch engine: "+strings.Join(streamfetch.Engines(), ", "))
	width := fs.Int("width", 8, "pipe width")
	layoutName := fs.String("layout", "optimized", "code layout: base or optimized")
	insts := fs.Uint64("insts", 2_000_000, "dynamic instructions to simulate")
	shards := fs.Int("shards", 1, "trace intervals simulated in parallel and merged")
	warmup := fs.Uint64("warmup", 0, "warmup instructions per mid-trace shard (counters frozen)")
	cold := fs.Bool("cold", false,
		"skip shard prefixes (seek/fast-forward) instead of functionally warming caches through them")
	traceFile := fs.String("trace", "", "replay a saved trace file instead of generating one")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	list := fs.Bool("list", false, "list benchmarks and engines, then exit")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		fmt.Fprintf(stdout, "benchmarks: %s\n", strings.Join(streamfetch.Benchmarks(), ", "))
		fmt.Fprintf(stdout, "engines:    %s\n", strings.Join(streamfetch.Engines(), ", "))
		return 0
	}

	opts := []streamfetch.Option{
		streamfetch.WithEngine(*engine),
		streamfetch.WithWidth(*width),
		streamfetch.WithLayout(*layoutName),
		streamfetch.WithInstructions(*insts),
		streamfetch.WithShards(*shards),
		streamfetch.WithWarmup(*warmup),
	}
	if *cold {
		opts = append(opts, streamfetch.WithColdShards())
	}
	// A tight progress cadence keeps even short runs responsive to
	// cancellation.
	opts = append(opts, streamfetch.WithProgress(16_384, nil))
	if *traceFile != "" {
		opts = append(opts, streamfetch.WithTraceFile(*traceFile))
	}
	rep, err := streamfetch.New(*bench, opts...).Run(ctx)
	if err != nil {
		if rep == nil {
			fmt.Fprintln(stderr, err)
			if errors.Is(err, context.Canceled) {
				return 130
			}
			return 1
		}
		// Interrupted mid-simulation: report the partial results.
		fmt.Fprintf(stderr, "interrupted: %v (partial results below)\n", err)
	}

	if *asJSON {
		if jerr := rep.WriteJSON(stdout); jerr != nil {
			fmt.Fprintln(stderr, jerr)
			return 1
		}
	} else {
		printReport(stdout, rep)
	}
	if err != nil {
		return 130
	}
	return 0
}

func printReport(w io.Writer, rep *streamfetch.Report) {
	fmt.Fprintf(w, "benchmark      %s (%s layout, %s engine, code size %d KB)\n",
		rep.Benchmark, rep.Layout, rep.Engine, rep.CodeBytes/1024)
	fmt.Fprintf(w, "retired        %d instructions in %d cycles\n", rep.Retired, rep.Cycles)
	fmt.Fprintf(w, "IPC            %.3f\n", rep.IPC)
	fmt.Fprintf(w, "fetch IPC      %.2f (mean unit %.1f insts, unit predictor hit %.1f%%)\n",
		rep.FetchIPC, rep.Fetch.MeanUnitLen, hitPct(rep))
	fmt.Fprintf(w, "branches       %d, mispredicted %.2f%%, decode redirects %d\n",
		rep.Branches, 100*rep.MispredRate, rep.Misfetches)
	fmt.Fprintf(w, "I-cache miss   %.3f%%   D-cache miss %.2f%%   L2 miss %.2f%%\n",
		100*rep.ICache.MissRate, 100*rep.DCache.MissRate, 100*rep.L2.MissRate)
	if rep.Shards > 1 {
		fmt.Fprintf(w, "shards         %d (warmup %d insts/shard)\n", rep.Shards, rep.WarmupInsts)
		for _, iv := range rep.Intervals {
			fmt.Fprintf(w, "  shard %-2d @%-12d %8d insts  IPC %.3f  mispred %.2f%%  icacheMiss %.3f%%\n",
				iv.Index, iv.StartInsts, iv.Insts, iv.IPC, 100*iv.MispredRate, 100*iv.ICacheMissRate)
		}
	}
}

func hitPct(rep *streamfetch.Report) float64 {
	if rep.Fetch.PredictorLookups == 0 {
		return 0
	}
	return 100 * float64(rep.Fetch.PredictorHits) / float64(rep.Fetch.PredictorLookups)
}
