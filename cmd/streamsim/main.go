// Command streamsim runs one simulation: a benchmark under a layout with a
// chosen fetch engine and pipe width, printing the full result.
//
// Usage:
//
//	streamsim -bench 164.gzip -engine streams -width 8 -layout optimized \
//	          [-insts 2000000] [-trace file.trc]
package main

import (
	"flag"
	"fmt"
	"os"

	"streamfetch/internal/layout"
	"streamfetch/internal/sim"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

func main() {
	bench := flag.String("bench", "164.gzip", "benchmark name (see workload.Suite)")
	engine := flag.String("engine", "streams", "fetch engine: ev8, ftb, streams, tcache")
	width := flag.Int("width", 8, "pipe width")
	layoutName := flag.String("layout", "optimized", "code layout: base or optimized")
	insts := flag.Uint64("insts", 2_000_000, "dynamic instructions to simulate")
	traceFile := flag.String("trace", "", "replay a saved trace file instead of generating one")
	flag.Parse()

	params, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog := workload.Generate(params)

	var tr *trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		tr = trace.Generate(prog, trace.GenConfig{Seed: 99, MaxInsts: *insts})
	}

	var lay *layout.Layout
	switch *layoutName {
	case "base":
		lay = layout.Baseline(prog)
	case "optimized":
		prof := trace.CollectProfile(prog, 7, *insts/4)
		lay = layout.Optimized(prog, prof)
	default:
		fmt.Fprintf(os.Stderr, "unknown layout %q\n", *layoutName)
		os.Exit(2)
	}

	r := sim.Run(lay, tr, sim.Config{Width: *width, Engine: sim.EngineKind(*engine)})
	fmt.Printf("benchmark      %s (%s layout, %s code size %d KB)\n",
		*bench, lay.Name, *engine, lay.CodeSize()/1024)
	fmt.Printf("retired        %d instructions in %d cycles\n", r.Retired, r.Cycles)
	fmt.Printf("IPC            %.3f\n", r.IPC)
	fmt.Printf("fetch IPC      %.2f (mean unit %.1f insts, unit predictor hit %.1f%%)\n",
		r.FetchIPC, r.Fetch.MeanUnitLen(), hitPct(r))
	fmt.Printf("branches       %d, mispredicted %.2f%%, decode redirects %d\n",
		r.Branches, 100*r.MispredRate, r.Misfetches)
	fmt.Printf("I-cache miss   %.3f%%   D-cache miss %.2f%%   L2 miss %.2f%%\n",
		100*r.ICache.MissRate(), 100*r.DCache.MissRate(), 100*r.L2.MissRate())
}

func hitPct(r sim.Result) float64 {
	if r.Fetch.PredictorLookups == 0 {
		return 0
	}
	return 100 * float64(r.Fetch.PredictorHits) / float64(r.Fetch.PredictorLookups)
}
