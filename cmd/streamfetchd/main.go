// Command streamfetchd serves the streamfetch simulation pipeline as a
// concurrent HTTP/JSON service: clients submit runs and grid sweeps,
// poll job status and progress, fetch final reports, and cancel jobs.
// Sessions are cached across requests, so repeated configurations skip
// workload, profile and layout preparation; the worker pool shares the
// process-wide simulation budget with intra-job shard workers, so
// concurrent jobs never oversubscribe the machine.
//
// Usage:
//
//	streamfetchd [-addr :8329] [-queue 64] [-workers 0] [-drain 60s]
//	             [-store-dir DIR] [-session-cache 64]
//	             [-max-job-time 1h] [-watchdog 2m]
//
// With -store-dir the daemon is durable: accepted jobs are journaled
// (fsync'd) before the 202, terminal results become content-addressed
// blobs, identical requests are answered from the cache or coalesced onto
// an in-flight twin, and a daemon restarted on the same directory
// re-enqueues unfinished journaled jobs and keeps serving finished ones.
// Without it the same caching and coalescing run on an in-memory store
// that dies with the process.
//
// Endpoints (see the streamfetch package docs and README for bodies):
//
//	POST   /v1/runs       submit one simulation
//	POST   /v1/sweeps     submit a benchmark × layout × engine × width grid
//	GET    /v1/runs/{id}  poll status/progress; carries the Report when done
//	DELETE /v1/runs/{id}  cancel
//	GET    /v1/engines    list engines, benchmarks and layouts
//	GET    /healthz       queue depth, worker, pool, store and SLO metrics
//	GET    /metrics       Prometheus text exposition (stage latencies, counters)
//
// SLO scheduling: requests may carry priority (higher runs first) and
// deadline_ms. The daemon keeps an online cost model of simulation
// throughput per (engine, width, mode); a submission whose predicted
// completion — queue-delay estimate plus predicted execution time —
// cannot meet its deadline is shed up front with HTTP 422 and the
// prediction in the body, instead of being accepted only to fail.
// Accepted envelopes carry predicted_seconds and queue_delay_seconds,
// and terminal envelopes a per-stage timing breakdown
// (queue/prepare/warmup/measure/merge).
//
// On SIGINT/SIGTERM the daemon drains: new submissions get 503 while
// queued and in-flight jobs finish (bounded by -drain, after which they
// are cancelled — and, with -store-dir, re-enqueued by the next start),
// polls keep answering, then the process exits.
//
// Robustness: every job's execution time is capped by -max-job-time (a
// request's timeout_ms can tighten but not exceed it), -watchdog cancels
// jobs making no measurable progress, an engine panic fails only its own
// job, and a persistently failing store flips the daemon into degraded
// memory-only acceptance (visible on /healthz) instead of taking it
// down. The HTTP server itself carries header/read/write timeouts so a
// stuck client cannot pin a connection forever.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamfetch"
)

func main() {
	addr := flag.String("addr", ":8329", "listen address")
	queue := flag.Int("queue", 64, "bounded job queue depth (full queue: HTTP 429)")
	workers := flag.Int("workers", 0, "max concurrently executing jobs (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 60*time.Second, "graceful shutdown drain timeout")
	storeDir := flag.String("store-dir", "", "durable store directory: job journal + content-addressed result cache (empty = in-memory)")
	sessionCache := flag.Int("session-cache", 64, "prepared-session LRU capacity (must be positive)")
	maxJobTime := flag.Duration("max-job-time", time.Hour, "cap on any job's execution time (0 = unbounded); expired jobs fail with their partial report")
	watchdog := flag.Duration("watchdog", 2*time.Minute, "cancel jobs with no measurable progress for this long (0 = disabled)")
	flag.Parse()

	opts := []streamfetch.ServerOption{
		streamfetch.WithQueueDepth(*queue),
		streamfetch.WithWorkers(*workers),
		streamfetch.WithSessionCacheSize(*sessionCache),
		streamfetch.WithMaxJobTime(*maxJobTime),
		streamfetch.WithWatchdog(*watchdog),
	}
	if *storeDir != "" {
		opts = append(opts, streamfetch.WithStoreDir(*storeDir))
	}
	srv, err := streamfetch.NewServer(opts...)
	if err != nil {
		log.Fatalf("streamfetchd: %v", err)
	}
	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// A client that stalls mid-headers or never reads its response
		// must not pin a connection (and its goroutine) forever. Writes
		// get the long budget: a sweep report can be large and a poll can
		// land on a loaded box.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	storeDesc := "in-memory store"
	if *storeDir != "" {
		storeDesc = "store " + *storeDir
	}
	log.Printf("streamfetchd listening on %s (queue %d, workers flag %d, %s)",
		*addr, *queue, *workers, storeDesc)

	select {
	case err := <-errc:
		log.Fatalf("streamfetchd: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills the process the default way
	}

	log.Printf("streamfetchd draining (up to %s); new submissions get 503", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("streamfetchd: drain cut short: %v", err)
	}
	// Jobs are done (or cancelled); now close the listener and let
	// straggling poll responses flush.
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	if err := hs.Shutdown(hctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("streamfetchd: http shutdown: %v", err)
	}
	log.Printf("streamfetchd stopped")
}
