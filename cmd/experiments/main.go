// Command experiments regenerates the paper's tables and figures, as
// formatted text or as structured JSON.
//
// Usage:
//
//	experiments -exp all|fig8|fig9|table1|table2|table3|ablation|dist \
//	            [-insts 2000000] [-bench 164.gzip,176.gcc] [-serial] [-json]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"streamfetch"
	"streamfetch/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig8, fig9, table1, table2, table3, ablation, dist")
	insts := flag.Uint64("insts", 2_000_000, "dynamic trace length per benchmark")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 11)")
	serial := flag.Bool("serial", false, "disable parallel simulation")
	asJSON := flag.Bool("json", false, "emit the experiments as a JSON array instead of text")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.TraceInsts = *insts
	cfg.TrainInsts = *insts
	cfg.Parallel = !*serial
	if *benchList != "" {
		cfg.Benchmarks = strings.Split(*benchList, ",")
	}

	if *exp == "table2" {
		if *asJSON {
			emitJSON([]*streamfetch.Experiment{experiments.Table2Data()})
		} else {
			experiments.Table2Data().WriteText(os.Stdout)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing %s benchmarks (%d instructions each)...\n",
		benchCount(cfg), cfg.TraceInsts)
	benches, err := experiments.Prepare(ctx, cfg)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "prepared in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Each producer computes one batch of experiments; text mode renders
	// a batch as soon as it is ready, JSON mode collects everything into
	// one array.
	type producer func() ([]*streamfetch.Experiment, error)
	one := func(f func() (*streamfetch.Experiment, error)) producer {
		return func() ([]*streamfetch.Experiment, error) {
			e, err := f()
			if err != nil {
				return nil, err
			}
			return []*streamfetch.Experiment{e}, nil
		}
	}
	table2 := one(func() (*streamfetch.Experiment, error) { return experiments.Table2Data(), nil })
	table1 := one(func() (*streamfetch.Experiment, error) { return experiments.Table1Data(benches) })
	fig8 := func() ([]*streamfetch.Experiment, error) { return experiments.Fig8Data(ctx, benches, cfg) }
	fig9 := one(func() (*streamfetch.Experiment, error) { return experiments.Fig9Data(ctx, benches, cfg) })
	table3 := one(func() (*streamfetch.Experiment, error) { return experiments.Table3Data(ctx, benches, cfg) })
	ablation := one(func() (*streamfetch.Experiment, error) { return experiments.AblationData(ctx, benches, cfg) })
	dist := one(func() (*streamfetch.Experiment, error) { return experiments.DistributionData(benches) })

	var producers []producer
	switch *exp {
	case "all":
		producers = []producer{table2, table1, fig8, fig9, table3, ablation, dist}
	case "fig8":
		producers = []producer{fig8}
	case "fig9":
		producers = []producer{fig9}
	case "table1":
		producers = []producer{table1}
	case "table3":
		producers = []producer{table3}
	case "ablation":
		producers = []producer{ablation}
	case "dist":
		producers = []producer{dist}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *asJSON {
		var exps []*streamfetch.Experiment
		for _, p := range producers {
			batch, err := p()
			if err != nil {
				fail(err)
			}
			exps = append(exps, batch...)
		}
		emitJSON(exps)
	} else {
		first := true
		for _, p := range producers {
			batch, err := p()
			if err != nil {
				fail(err)
			}
			for _, e := range batch {
				if !first {
					fmt.Println()
				}
				first = false
				e.WriteText(os.Stdout)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "\ntotal %v\n", time.Since(start).Round(time.Millisecond))
}

// fail reports a fatal error; an interrupt exits with the conventional 130.
func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}

// emitJSON writes the experiments to stdout as one JSON array.
func emitJSON(exps []*streamfetch.Experiment) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(exps); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func benchCount(cfg experiments.Config) string {
	if cfg.Benchmarks == nil {
		return fmt.Sprint(len(streamfetch.Benchmarks()))
	}
	return fmt.Sprint(len(cfg.Benchmarks))
}
