// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all|fig8|fig9|table1|table2|table3|ablation \
//	            [-insts 2000000] [-bench 164.gzip,176.gcc] [-serial]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamfetch/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig8, fig9, table1, table2, table3, ablation, dist")
	insts := flag.Uint64("insts", 2_000_000, "dynamic trace length per benchmark")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 11)")
	serial := flag.Bool("serial", false, "disable parallel simulation")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.TraceInsts = *insts
	cfg.TrainInsts = *insts
	cfg.Parallel = !*serial
	if *benchList != "" {
		cfg.Benchmarks = strings.Split(*benchList, ",")
	}

	if *exp == "table2" {
		experiments.Table2(os.Stdout)
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing %s benchmarks (%d instructions each)...\n",
		benchCount(cfg), cfg.TraceInsts)
	benches := experiments.Prepare(cfg)
	fmt.Fprintf(os.Stderr, "prepared in %v\n\n", time.Since(start).Round(time.Millisecond))

	switch *exp {
	case "all":
		experiments.Table2(os.Stdout)
		fmt.Println()
		experiments.Table1(os.Stdout, benches)
		fmt.Println()
		experiments.Fig8(os.Stdout, benches, cfg)
		experiments.Fig9(os.Stdout, benches, cfg)
		fmt.Println()
		experiments.Table3(os.Stdout, benches, cfg)
		fmt.Println()
		experiments.Ablation(os.Stdout, benches, cfg)
		fmt.Println()
		experiments.Distribution(os.Stdout, benches)
	case "fig8":
		experiments.Fig8(os.Stdout, benches, cfg)
	case "fig9":
		experiments.Fig9(os.Stdout, benches, cfg)
	case "table1":
		experiments.Table1(os.Stdout, benches)
	case "table3":
		experiments.Table3(os.Stdout, benches, cfg)
	case "ablation":
		experiments.Ablation(os.Stdout, benches, cfg)
	case "dist":
		experiments.Distribution(os.Stdout, benches)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "\ntotal %v\n", time.Since(start).Round(time.Millisecond))
}

func benchCount(cfg experiments.Config) string {
	if cfg.Benchmarks == nil {
		return "11"
	}
	return fmt.Sprint(len(cfg.Benchmarks))
}
