// Command experiments regenerates the paper's tables and figures, as
// formatted text or as structured JSON.
//
// Usage:
//
//	experiments -exp all|fig8|fig9|table1|table2|table3|ablation|dist \
//	            [-insts 2000000] [-bench 164.gzip,176.gcc] [-serial] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamfetch"
	"streamfetch/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig8, fig9, table1, table2, table3, ablation, dist")
	insts := flag.Uint64("insts", 2_000_000, "dynamic trace length per benchmark")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all 11)")
	serial := flag.Bool("serial", false, "disable parallel simulation")
	asJSON := flag.Bool("json", false, "emit the experiments as a JSON array instead of text")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.TraceInsts = *insts
	cfg.TrainInsts = *insts
	cfg.Parallel = !*serial
	if *benchList != "" {
		cfg.Benchmarks = strings.Split(*benchList, ",")
	}

	if *exp == "table2" {
		if *asJSON {
			emitJSON([]*streamfetch.Experiment{experiments.Table2Data()})
		} else {
			experiments.Table2Data().WriteText(os.Stdout)
		}
		return
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing %s benchmarks (%d instructions each)...\n",
		benchCount(cfg), cfg.TraceInsts)
	benches := experiments.Prepare(cfg)
	fmt.Fprintf(os.Stderr, "prepared in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Each producer computes one batch of experiments; text mode renders
	// a batch as soon as it is ready, JSON mode collects everything into
	// one array.
	type producer func() []*streamfetch.Experiment
	one := func(f func() *streamfetch.Experiment) producer {
		return func() []*streamfetch.Experiment { return []*streamfetch.Experiment{f()} }
	}
	table2 := one(experiments.Table2Data)
	table1 := one(func() *streamfetch.Experiment { return experiments.Table1Data(benches) })
	fig8 := func() []*streamfetch.Experiment { return experiments.Fig8Data(benches, cfg) }
	fig9 := one(func() *streamfetch.Experiment { return experiments.Fig9Data(benches, cfg) })
	table3 := one(func() *streamfetch.Experiment { return experiments.Table3Data(benches, cfg) })
	ablation := one(func() *streamfetch.Experiment { return experiments.AblationData(benches, cfg) })
	dist := one(func() *streamfetch.Experiment { return experiments.DistributionData(benches) })

	var producers []producer
	switch *exp {
	case "all":
		producers = []producer{table2, table1, fig8, fig9, table3, ablation, dist}
	case "fig8":
		producers = []producer{fig8}
	case "fig9":
		producers = []producer{fig9}
	case "table1":
		producers = []producer{table1}
	case "table3":
		producers = []producer{table3}
	case "ablation":
		producers = []producer{ablation}
	case "dist":
		producers = []producer{dist}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	if *asJSON {
		var exps []*streamfetch.Experiment
		for _, p := range producers {
			exps = append(exps, p()...)
		}
		emitJSON(exps)
	} else {
		first := true
		for _, p := range producers {
			for _, e := range p() {
				if !first {
					fmt.Println()
				}
				first = false
				e.WriteText(os.Stdout)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "\ntotal %v\n", time.Since(start).Round(time.Millisecond))
}

// emitJSON writes the experiments to stdout as one JSON array.
func emitJSON(exps []*streamfetch.Experiment) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(exps); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func benchCount(cfg experiments.Config) string {
	if cfg.Benchmarks == nil {
		return fmt.Sprint(len(streamfetch.Benchmarks()))
	}
	return fmt.Sprint(len(cfg.Benchmarks))
}
