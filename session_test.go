package streamfetch

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestSessionDefaults: New without options must match the paper's
// methodology defaults (Table 2 / §4): 8-wide pipe, streams engine, base
// layout, reference seed 99, train seed 7, 2M-instruction traces.
func TestSessionDefaults(t *testing.T) {
	s := New("164.gzip")
	if s.width != 8 {
		t.Errorf("default width = %d, want 8", s.width)
	}
	if s.engine != "streams" {
		t.Errorf("default engine = %q, want streams", s.engine)
	}
	if s.layoutName != "base" {
		t.Errorf("default layout = %q, want base", s.layoutName)
	}
	if s.seed != 99 || s.trainSeed != 7 {
		t.Errorf("default seeds = (%d, %d), want (99, 7)", s.seed, s.trainSeed)
	}
	if s.insts != 2_000_000 {
		t.Errorf("default instructions = %d, want 2000000", s.insts)
	}
	if s.maxInsts != 0 || s.engineOpts != nil || s.traceFile != "" {
		t.Error("defaults must leave max insts, engine options and trace file unset")
	}
}

// TestOptionsApply: each functional option must land on the session.
func TestOptionsApply(t *testing.T) {
	s := New("176.gcc",
		WithWidth(4),
		WithEngine("ftb"),
		WithOptimizedLayout(),
		WithSeed(123),
		WithTrainSeed(5),
		WithInstructions(50_000),
		WithTrainInstructions(10_000),
		WithMaxInstructions(1_000),
		WithICacheLineBytes(64),
	)
	if s.width != 4 || s.engine != "ftb" || s.layoutName != "optimized" {
		t.Errorf("run options not applied: %+v", s)
	}
	if s.seed != 123 || s.trainSeed != 5 || s.insts != 50_000 || s.trainInsts != 10_000 {
		t.Errorf("preparation options not applied: %+v", s)
	}
	if s.maxInsts != 1_000 || s.lineBytes != 64 {
		t.Errorf("limit options not applied: %+v", s)
	}
}

// TestRunEndToEnd: a small session run must produce a consistent report.
func TestRunEndToEnd(t *testing.T) {
	rep, err := New("164.gzip",
		WithInstructions(60_000),
		WithOptimizedLayout(),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "164.gzip" || rep.Engine != "streams" || rep.Layout != "optimized" || rep.Width != 8 {
		t.Errorf("report identity wrong: %+v", rep)
	}
	if rep.Retired == 0 || rep.IPC <= 0 || rep.Cycles == 0 {
		t.Errorf("implausible report: %v", rep)
	}
	if rep.CodeBytes == 0 || rep.TraceInsts == 0 {
		t.Errorf("artifact metadata missing: %v", rep)
	}
}

// TestRunErrors: validation and registry failures must surface as errors,
// not panics.
func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	for name, s := range map[string]*Session{
		"unknown benchmark": New("999.nope", WithInstructions(10_000)),
		"unknown engine":    New("164.gzip", WithInstructions(10_000), WithEngine("warp-drive")),
		"unknown layout":    New("164.gzip", WithInstructions(10_000), WithLayout("sideways")),
		"zero width":        New("164.gzip", WithInstructions(10_000), WithWidth(0)),
	} {
		if _, err := s.Run(ctx); err == nil {
			t.Errorf("%s: Run did not error", name)
		}
	}
}

// TestRunAlreadyCancelled: a cancelled context must stop Run even when the
// artifacts are already prepared and the run is too short to hit a progress
// checkpoint.
func TestRunAlreadyCancelled(t *testing.T) {
	s := New("164.gzip", WithInstructions(20_000))
	if err := s.Prepare(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Run(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunWithSharesPreparation: per-run overrides must reuse the prepared
// artifacts; preparation-phase overrides must re-prepare.
func TestRunWithSharesPreparation(t *testing.T) {
	ctx := context.Background()
	s := New("164.gzip", WithInstructions(60_000))
	if err := s.Prepare(ctx); err != nil {
		t.Fatal(err)
	}
	prog := s.prep.prog
	rep, err := s.RunWith(ctx, WithEngine("ev8"), WithWidth(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "ev8" || rep.Width != 4 {
		t.Errorf("overrides not applied: %v", rep)
	}
	if s.prep.prog != prog {
		t.Error("run-phase override re-prepared the session")
	}
	if s.engine != "streams" || s.width != 8 {
		t.Error("RunWith mutated the parent session")
	}
	// A preparation-phase override must not corrupt the shared artifacts.
	rep2, err := s.RunWith(ctx, WithInstructions(30_000))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TraceInsts >= rep.TraceInsts {
		t.Errorf("prep override ignored: %d >= %d", rep2.TraceInsts, rep.TraceInsts)
	}
	if s.prep.prog != prog {
		t.Error("prep override leaked into the parent session")
	}
}

// TestDeterministicAcrossSessions: two identically configured sessions must
// produce identical metrics.
func TestDeterministicAcrossSessions(t *testing.T) {
	mk := func() *Report {
		rep, err := New("175.vpr", WithInstructions(50_000), WithWidth(4)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := mk(), mk()
	if a.IPC != b.IPC || a.Cycles != b.Cycles || a.Retired != b.Retired {
		t.Fatalf("sessions disagree:\n%v\n%v", a, b)
	}
}

// TestProgressAndCancellation: the progress callback must fire, and
// cancelling the context mid-run must stop the simulation with ctx.Err and
// a partial, Aborted report.
func TestProgressAndCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls int
	s := New("164.gzip",
		WithInstructions(150_000),
		WithProgress(5_000, func(p Progress) {
			calls++
			if p.Benchmark != "164.gzip" || p.Engine != "streams" || p.Total == 0 {
				t.Errorf("bad progress snapshot: %+v", p)
			}
			if p.Retired >= 20_000 {
				cancel()
			}
		}),
	)
	rep, err := s.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls == 0 {
		t.Fatal("progress callback never fired")
	}
	if rep == nil || !rep.Aborted {
		t.Fatalf("want partial aborted report, got %v", rep)
	}
	if rep.Retired >= 150_000 {
		t.Errorf("run was not cut short: retired %d", rep.Retired)
	}
	// A fresh context runs the same session to completion.
	full, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if full.Aborted || full.Retired <= rep.Retired {
		t.Errorf("rerun did not complete: %v", full)
	}
}

// TestReportJSON: reports must marshal to JSON and round-trip the headline
// metrics.
func TestReportJSON(t *testing.T) {
	rep, err := New("164.gzip", WithInstructions(40_000)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if back.Benchmark != rep.Benchmark || back.IPC != rep.IPC || back.Fetch.Delivered != rep.Fetch.Delivered {
		t.Errorf("round trip mismatch: %+v vs %+v", back, rep)
	}
}

// TestEnginesAndBenchmarks: the discovery helpers must cover the paper's
// sets.
func TestEnginesAndBenchmarks(t *testing.T) {
	engines := Engines()
	for i, want := range []string{"ev8", "ftb", "streams", "tcache"} {
		if i >= len(engines) || engines[i] != want {
			t.Fatalf("Engines() = %v, want the paper's four first", engines)
		}
	}
	if n := len(Benchmarks()); n != 11 {
		t.Errorf("Benchmarks() returned %d names, want 11", n)
	}
	if got := Layouts(); len(got) != 2 || got[0] != "base" || got[1] != "optimized" {
		t.Errorf("Layouts() = %v", got)
	}
}

// TestExperimentRendering: the generic table renderer must align columns
// and emit valid JSON.
func TestExperimentRendering(t *testing.T) {
	e := &Experiment{
		Name:      "demo",
		Title:     "Demo table",
		RowHeader: "engine",
		Columns:   []string{"IPC", "mispred", "paper"},
		Formats:   []string{"%.3f", "%.2f%%"},
	}
	e.Rows = append(e.Rows, ExperimentRow{
		Label:  "streams",
		Values: []float64{2.5, 3.25},
		Text:   []string{"20+"},
	})
	e.AddRow("ev8", 1.75, 4.5)
	var buf bytes.Buffer
	e.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"Demo table", "engine", "streams", "2.500", "3.25%", "20+", "1.750"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Experiment
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Name != "demo" || len(back.Rows) != 2 || back.Rows[0].Values[0] != 2.5 {
		t.Errorf("round trip mismatch: %+v", back)
	}
}
