// Chaos tests for the serve layer's durability promises: a crash-point
// harness that kills the store at every write point and asserts the
// recovery invariants, and a degraded-mode test that walks the server
// through store failure, memory-only acceptance, and probe-driven
// recovery. They live in the internal package to drive the job manager
// directly and to observe the degraded/retry state the HTTP surface only
// summarizes.
package streamfetch

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"streamfetch/internal/retry"
	"streamfetch/internal/store"
	"streamfetch/internal/store/faultstore"
)

// fastRetry keeps chaos tests quick: the production policy's ~100ms worst
// case per failed write adds up across a dozen crash points.
var fastRetry = retry.Policy{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond, Multiplier: 2}

// chaosReqs is the crash-harness workload: three small distinct runs, so
// the write sequence covers submit journals, blob writes and terminal
// journals for several jobs.
func chaosReqs() []RunRequest {
	var reqs []RunRequest
	for _, seed := range []uint64{61, 62, 63} {
		reqs = append(reqs, RunRequest{
			Benchmark: "164.gzip", Engine: "streams", Layout: "base",
			Width: 4, Insts: 20_000, Seed: seed,
		})
	}
	return reqs
}

// renderReport renders a report exactly as the service and golden tests
// do, for byte-identity comparison.
func renderReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	// The daemon collects wall-clock stage timings; the oracle run does
	// not. They are telemetry, not results — strip before comparing.
	clone := *rep
	clone.Timings = nil
	rep = &clone
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// directOracle runs req straight through a Session — the differential
// oracle every recovered or re-simulated result must match byte for byte.
func directOracle(t *testing.T, req RunRequest) []byte {
	t.Helper()
	sess := New(req.Benchmark, WithInstructions(req.Insts), WithSeed(req.Seed))
	rep, err := sess.RunWith(context.Background(),
		WithEngine(req.Engine), WithLayout(req.Layout), WithWidth(req.Width))
	if err != nil {
		t.Fatal(err)
	}
	return renderReport(t, rep)
}

// TestChaosCrashPoints crash-stops the store at every write point of a
// three-job workload — tearing the journal tail and orphaning a blob temp
// file the way power loss would — then restarts on the wreckage and
// asserts the recovery invariants: no journaled-accepted job is lost,
// jobs recovered terminal are served as-is (no duplicate simulation),
// every recovered job ends byte-identical to a direct Session run, and no
// temp orphans survive.
func TestChaosCrashPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-point sweep is not short")
	}
	reqs := chaosReqs()
	oracle := make([][]byte, len(reqs))
	for i, req := range reqs {
		oracle[i] = directOracle(t, req)
	}

	// A clean three-run workload issues 9 writes (3 submit journals, 3
	// blobs, 3 terminal journals); point 10 never fires and doubles as a
	// clean-restart control.
	const crashPoints = 10
	for point := 1; point <= crashPoints; point++ {
		dir := t.TempDir()
		inner, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		fst := faultstore.Wrap(inner)
		fst.OnCrash = func(faultstore.Op) {
			if err := faultstore.TearJournal(dir); err != nil {
				t.Errorf("point %d: tearing journal: %v", point, err)
			}
			if err := faultstore.DropOrphan(dir); err != nil {
				t.Errorf("point %d: dropping orphan: %v", point, err)
			}
		}
		fst.CrashAt(faultstore.OpWrite, point)

		srvA, err := NewServer(WithStore(fst), WithWorkers(1), WithQueueDepth(8))
		if err != nil {
			t.Fatalf("point %d: %v", point, err)
		}
		srvA.mgr.retryPolicy = fastRetry

		type accepted struct {
			j       *job
			durable bool // journaled while healthy: must survive the crash
		}
		var acc []accepted
		for i, req := range reqs {
			degradedBefore := srvA.mgr.degraded.Load()
			j, err := srvA.mgr.newRunJob(req)
			if err != nil {
				// The only legitimate refusal in this workload is the
				// store failing at the acceptance write.
				if !errors.Is(err, ErrStore) {
					t.Fatalf("point %d: submit %d refused with %v, want ErrStore", point, i, err)
				}
				continue
			}
			// Degraded false on both sides of the call ⇒ the submit
			// journal was written and acknowledged ⇒ durability promised.
			acc = append(acc, accepted{j, !degradedBefore && !srvA.mgr.degraded.Load()})
		}
		// Every accepted job reaches a terminal state in memory, crashed
		// store or not: serving never depends on the disk.
		for _, a := range acc {
			select {
			case <-a.j.done:
			case <-time.After(2 * time.Minute):
				t.Fatalf("point %d: job %s never finished in-process", point, a.j.id)
			}
		}

		// Crash the process: the drain context is already cancelled, so
		// nothing gracefully finishes on the way out.
		cctx, ccancel := context.WithCancel(context.Background())
		ccancel()
		srvA.Shutdown(cctx)
		inner.Close()

		// Next process, step 1: opening the directory must seal the torn
		// journal line and sweep the orphaned temp file.
		recovered, err := store.Open(dir)
		if err != nil {
			t.Fatalf("point %d: reopening crashed dir: %v", point, err)
		}
		recs, err := recovered.Recover()
		if err != nil {
			t.Fatalf("point %d: %v", point, err)
		}
		recovered.Close()
		filepath.WalkDir(filepath.Join(dir, "blobs"), func(path string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), "tmp-") {
				t.Errorf("point %d: orphan %s survived recovery", point, d.Name())
			}
			return nil
		})

		byID := map[string]store.JournalRecord{}
		pending := 0
		for _, rec := range recs {
			if rec.Kind == "probe" {
				continue
			}
			byID[rec.ID] = rec
			if !store.Terminal(rec.State) {
				pending++
			}
		}
		// Invariant 1: no accepted job lost. Every submission journaled
		// while the server was healthy is present after the crash.
		for _, a := range acc {
			if _, ok := byID[a.j.id]; a.durable && !ok {
				t.Errorf("point %d: job %s was accepted durably but vanished from the journal", point, a.j.id)
			}
		}

		// Next process, step 2: a server on the recovered directory. The
		// fault wrapper (no faults armed) counts its writes: blob writes
		// bound how many simulations actually re-ran.
		inner2, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		fst2 := faultstore.Wrap(inner2)
		srvB, err := NewServer(WithStore(fst2), WithWorkers(1), WithQueueDepth(8))
		if err != nil {
			t.Fatalf("point %d: restart: %v", point, err)
		}
		for id := range byID {
			j := srvB.mgr.get(id)
			if j == nil {
				t.Errorf("point %d: recovered job %s not served after restart", point, id)
				continue
			}
			select {
			case <-j.done:
			case <-time.After(2 * time.Minute):
				t.Fatalf("point %d: recovered job %s never finished", point, id)
			}
			env := j.envelope()
			if env.State != JobDone {
				t.Errorf("point %d: recovered job %s finished %s (error %q), want done",
					point, id, env.State, env.Error)
				continue
			}
			// Invariant 2: byte-identical results. The submission index is
			// the id's numeric suffix — ids are minted per submission.
			seq, ok := jobSeq(id)
			if !ok || seq < 1 || seq > len(reqs) {
				t.Errorf("point %d: unexpected recovered id %q", point, id)
				continue
			}
			if got := renderReport(t, env.Report); !bytes.Equal(got, oracle[seq-1]) {
				t.Errorf("point %d: job %s report diverged from the direct oracle after recovery", point, id)
			}
		}
		// Invariant 3: no duplicate simulation. Only jobs recovered
		// non-terminal may re-run (a blob write per fresh simulation);
		// jobs recovered terminal serve their journaled envelope as-is.
		if got := fst2.Calls(faultstore.OpPutBlob); got > pending {
			t.Errorf("point %d: %d blob writes after restart with %d pending jobs — a finished job re-simulated",
				point, got, pending)
		}

		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srvB.Shutdown(sctx); err != nil {
			t.Errorf("point %d: clean shutdown: %v", point, err)
		}
		scancel()
		inner2.Close()
	}
}

// TestChaosDegradedStore walks the full degradation cycle: a persistently
// failing journal refuses the submission that discovers it (ErrStore) and
// flips the server degraded; while degraded, submissions are accepted
// memory-only and still run to completion; healing the store lets the
// background probe flip the server healthy, after which submissions are
// journaled durably again.
func TestChaosDegradedStore(t *testing.T) {
	inner := store.NewMem()
	fst := faultstore.Wrap(inner)
	srv, err := NewServer(WithStore(fst), WithWorkers(1),
		WithStoreProbeInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	m := srv.mgr
	m.retryPolicy = fastRetry

	req := RunRequest{Benchmark: "164.gzip", Engine: "streams", Layout: "base",
		Width: 4, Insts: 15_000, Seed: 71}

	// Healthy server, dead disk: the discovering submission is refused —
	// a 202 is a durability promise the server cannot keep — and the
	// failure flips degraded mode.
	fst.FailAll(faultstore.OpJournal, syscall.ENOSPC)
	if _, err := m.newRunJob(req); !errors.Is(err, ErrStore) {
		t.Fatalf("submit on failing store: %v, want ErrStore", err)
	}
	degraded, lastErr, lastAt := m.storeHealth()
	if !degraded || !strings.Contains(lastErr, "no space") || lastAt.IsZero() {
		t.Fatalf("after store failure: degraded=%v lastErr=%q lastAt=%v", degraded, lastErr, lastAt)
	}
	if m.retries.Load() == 0 {
		t.Error("no retries recorded; the failed write should have been retried before degrading")
	}

	// Degraded server: submissions are accepted from memory and run to
	// completion — availability over durability, as declared.
	req.Seed = 72
	j, err := m.newRunJob(req)
	if err != nil {
		t.Fatalf("submit while degraded: %v, want memory-only acceptance", err)
	}
	select {
	case <-j.done:
	case <-time.After(2 * time.Minute):
		t.Fatal("memory-only job never finished")
	}
	if env := j.envelope(); env.State != JobDone {
		t.Fatalf("memory-only job finished %s (error %q), want done", env.State, env.Error)
	}
	if recs, _ := inner.Recover(); len(recs) != 0 {
		t.Fatalf("degraded acceptance reached the journal: %+v", recs)
	}

	// The disk comes back: the probe's next test write lands and flips
	// the server healthy.
	fst.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if degraded, _, _ := m.storeHealth(); !degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recovered from degraded mode after the store healed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Healthy again: the next submission is journaled durably.
	req.Seed = 73
	j2, err := m.newRunJob(req)
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	recs, err := inner.Recover()
	if err != nil {
		t.Fatal(err)
	}
	var journaled bool
	for _, rec := range recs {
		if rec.ID == j2.id {
			journaled = true
		}
	}
	if !journaled {
		t.Errorf("post-recovery submission %s not journaled; records: %+v", j2.id, recs)
	}
	select {
	case <-j2.done:
	case <-time.After(2 * time.Minute):
		t.Fatal("post-recovery job never finished")
	}
}
