package streamfetch_test

import (
	"bytes"
	"context"
	"net/http"
	"testing"
	"time"

	"streamfetch"
)

// directReport runs req directly through a Session and renders the report
// exactly as the service does — the differential oracle for store-served
// results.
func directReport(t *testing.T, req streamfetch.RunRequest) []byte {
	t.Helper()
	sess := streamfetch.New(req.Benchmark, streamfetch.WithInstructions(req.Insts))
	rep, err := sess.RunWith(context.Background(),
		streamfetch.WithEngine(req.Engine),
		streamfetch.WithLayout(req.Layout),
		streamfetch.WithWidth(req.Width),
		streamfetch.WithSeed(req.Seed),
	)
	if err != nil {
		t.Fatal(err)
	}
	return reportJSON(t, rep)
}

// TestServiceCacheHit: resubmitting a completed request answers 200 with a
// cached terminal envelope — no queueing, no new simulation — and the
// cached report is byte-identical to the one the original run produced.
// The health surface accounts for the hit.
func TestServiceCacheHit(t *testing.T) {
	srv := newTestServer(t, streamfetch.WithWorkers(2))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	sc := newServiceClient(t, srv)

	req := streamfetch.RunRequest{Benchmark: "164.gzip", Engine: "streams", Layout: "base", Width: 4, Insts: 30_000, Seed: 21}
	first := sc.submit("/v1/runs", req)
	firstGot := sc.await(first.ID, time.Minute)
	if firstGot.State != streamfetch.JobDone {
		t.Fatalf("job finished %s (error %q), want done", firstGot.State, firstGot.Error)
	}

	var env streamfetch.JobEnvelope
	if code := sc.do("POST", "/v1/runs", req, &env); code != http.StatusOK {
		t.Fatalf("identical resubmission: status %d, want 200 (cache hit)", code)
	}
	if !env.Cached || env.State != streamfetch.JobDone {
		t.Fatalf("resubmission envelope: cached=%v state=%s, want cached done", env.Cached, env.State)
	}
	if env.ID == first.ID {
		t.Error("cache hit reused the original job id; it must mint its own")
	}
	if !env.StartedAt.IsZero() {
		t.Error("cached job has a start time; it never ran")
	}
	if g, w := reportJSON(t, env.Report), reportJSON(t, firstGot.Report); !bytes.Equal(g, w) {
		t.Errorf("cached report diverged from the original\ncached:\n%s\noriginal:\n%s", g, w)
	}

	var h streamfetch.Health
	if code := sc.do("GET", "/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", code)
	}
	if h.Store == "" {
		t.Error("health does not name the store backend")
	}
	if h.StoreHits < 1 || h.StoreMisses < 1 {
		t.Errorf("health cache counters: hits=%d misses=%d, want ≥1 each", h.StoreHits, h.StoreMisses)
	}
}

// TestServiceCrashRecovery: a daemon on a filesystem store is interrupted
// mid-flight (drain context already expired — the graceful path never gets
// to run, as in a crash) with one job running and two queued. A second
// daemon on the same directory keeps serving the finished job's report
// byte-for-byte, re-enqueues the interrupted jobs under their old ids, and
// runs them to reports byte-identical to direct Session runs.
func TestServiceCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	srvA := newTestServer(t, streamfetch.WithStoreDir(dir),
		streamfetch.WithWorkers(1), streamfetch.WithQueueDepth(8))
	scA := newServiceClient(t, srvA)

	// One job runs to completion before the crash.
	doneReq := streamfetch.RunRequest{Benchmark: "164.gzip", Engine: "streams", Layout: "base", Width: 4, Insts: 20_000, Seed: 31}
	doneEnv := scA.submit("/v1/runs", doneReq)
	doneGot := scA.await(doneEnv.ID, time.Minute)
	if doneGot.State != streamfetch.JobDone {
		t.Fatalf("pre-crash job finished %s, want done", doneGot.State)
	}

	// One long job holds the single worker; two short jobs queue behind it.
	long := streamfetch.RunRequest{Benchmark: "164.gzip", Engine: "streams", Layout: "base", Width: 4, Insts: 500_000_000, Seed: 32}
	running := scA.submit("/v1/runs", long)
	q1Req := doneReq
	q1Req.Seed = 33
	q2Req := doneReq
	q2Req.Seed = 34
	q1 := scA.submit("/v1/runs", q1Req)
	q2 := scA.submit("/v1/runs", q2Req)

	deadline := time.Now().Add(30 * time.Second)
	for {
		var env streamfetch.JobEnvelope
		scA.do("GET", "/v1/runs/"+running.ID, nil, &env)
		if env.State == streamfetch.JobRunning && env.Progress != nil && env.Progress.Retired > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("long job never made progress (state %s)", env.State)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// "Crash": the drain deadline has already passed, so every unfinished
	// job is cut down mid-flight. None of them may be journaled terminal.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srvA.Shutdown(ctx) // returns ctx.Err(); the interruption is the point

	// Restart on the same directory.
	srvB := newTestServer(t, streamfetch.WithStoreDir(dir), streamfetch.WithQueueDepth(8))
	t.Cleanup(func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		srvB.Shutdown(sctx)
	})
	scB := newServiceClient(t, srvB)

	// The finished job survives the restart byte-for-byte, and matches a
	// direct Session run of the same request.
	var restored streamfetch.JobEnvelope
	if code := scB.do("GET", "/v1/runs/"+doneEnv.ID, nil, &restored); code != http.StatusOK {
		t.Fatalf("GET restored job %s: status %d", doneEnv.ID, code)
	}
	if restored.State != streamfetch.JobDone {
		t.Fatalf("restored job state = %s, want done", restored.State)
	}
	got := reportJSON(t, restored.Report)
	if w := reportJSON(t, doneGot.Report); !bytes.Equal(got, w) {
		t.Errorf("restored report diverged from the pre-crash report")
	}
	if w := directReport(t, doneReq); !bytes.Equal(got, w) {
		t.Errorf("restored report diverged from a direct run")
	}

	// The interrupted running job was re-enqueued under its old id. Cancel
	// it first so the short jobs aren't starved behind 500M instructions
	// on a small box.
	var env streamfetch.JobEnvelope
	if code := scB.do("GET", "/v1/runs/"+running.ID, nil, &env); code != http.StatusOK {
		t.Fatalf("GET re-enqueued job %s: status %d", running.ID, code)
	}
	if env.State.Terminal() {
		t.Fatalf("interrupted job restarted terminal (%s); it is owed a run", env.State)
	}
	if code := scB.do("DELETE", "/v1/runs/"+running.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("DELETE re-enqueued job: status %d", code)
	}
	if got := scB.await(running.ID, 30*time.Second); got.State != streamfetch.JobCancelled {
		t.Fatalf("cancelled re-enqueued job state = %s", got.State)
	}

	// The queued jobs run to completion with reports byte-identical to
	// direct runs — recovery re-simulates exactly what was promised.
	for _, c := range []struct {
		id  string
		req streamfetch.RunRequest
	}{{q1.ID, q1Req}, {q2.ID, q2Req}} {
		fin := scB.await(c.id, 3*time.Minute)
		if fin.State != streamfetch.JobDone {
			t.Fatalf("recovered job %s finished %s (error %q), want done", c.id, fin.State, fin.Error)
		}
		if g, w := reportJSON(t, fin.Report), directReport(t, c.req); !bytes.Equal(g, w) {
			t.Errorf("recovered job %s report diverged from a direct run", c.id)
		}
	}

	// Health on the restarted daemon reflects the filesystem store: cached
	// blobs with real bytes on disk, and — once everything above is
	// terminal — no journal debt left.
	hDeadline := time.Now().Add(10 * time.Second)
	for {
		var h streamfetch.Health
		if code := scB.do("GET", "/healthz", nil, &h); code != http.StatusOK {
			t.Fatalf("GET /healthz: status %d", code)
		}
		if h.Store != "fs" {
			t.Fatalf("health store = %q, want fs", h.Store)
		}
		if h.StoreBlobs >= 3 && h.StoreBytes > 0 && h.StoreJournalDepth == 0 {
			break
		}
		if time.Now().After(hDeadline) {
			t.Fatalf("health never settled: blobs=%d bytes=%d journal_depth=%d, want ≥3 blobs, >0 bytes, depth 0",
				h.StoreBlobs, h.StoreBytes, h.StoreJournalDepth)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
