package slo

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestDefaultsAndFallbacks(t *testing.T) {
	m := NewModel()
	if got := m.Rate(Key{Engine: "ev8", Width: 8, Mode: ModePlain}); got != 8.5e6 {
		t.Fatalf("ev8 default rate = %g, want 8.5e6", got)
	}
	if got := m.Rate(Key{Engine: "nosuch", Width: 8, Mode: ModePlain}); got != fallbackRate {
		t.Fatalf("unknown engine rate = %g, want fallback %g", got, fallbackRate)
	}
	// Sharded with nothing learned falls through to the engine default.
	if got := m.Rate(Key{Engine: "tcache", Width: 8, Mode: ModeSharded}); got != 5.5e6 {
		t.Fatalf("tcache sharded default = %g, want 5.5e6", got)
	}
}

func TestPredictUsesRate(t *testing.T) {
	m := NewModel()
	k := Key{Engine: "streams", Width: 8, Mode: ModePlain}
	secs := m.Predict(k, 6_200_000)
	if math.Abs(secs-1.0) > 1e-9 {
		t.Fatalf("Predict(6.2M) = %g s, want 1.0 s at the 6.2M default", secs)
	}
	if d := m.PredictDuration(k, 6_200_000); d < 999*time.Millisecond || d > 1001*time.Millisecond {
		t.Fatalf("PredictDuration = %v, want ~1s", d)
	}
}

func TestObserveAdoptsThenBlends(t *testing.T) {
	m := NewModel()
	k := Key{Engine: "streams", Width: 4, Mode: ModePlain}
	// First observation is adopted outright.
	m.Observe(k, 2_000_000, 1.0) // 2M insts/s
	if got := m.Rate(k); got != 2e6 {
		t.Fatalf("after first observe rate = %g, want 2e6", got)
	}
	// Second blends by alpha.
	m.Observe(k, 4_000_000, 1.0) // 4M insts/s
	want := alpha*4e6 + (1-alpha)*2e6
	if got := m.Rate(k); math.Abs(got-want) > 1 {
		t.Fatalf("after second observe rate = %g, want %g", got, want)
	}
}

func TestShardedFallsBackToLearnedPlain(t *testing.T) {
	m := NewModel()
	plain := Key{Engine: "streams", Width: 8, Mode: ModePlain}
	m.Observe(plain, 1_000_000, 1.0)
	if got := m.Rate(Key{Engine: "streams", Width: 8, Mode: ModeSharded}); got != 1e6 {
		t.Fatalf("sharded fallback = %g, want learned plain 1e6", got)
	}
	// But a learned sharded rate wins over the plain fallback.
	sh := Key{Engine: "streams", Width: 8, Mode: ModeSharded}
	m.Observe(sh, 500_000, 1.0)
	if got := m.Rate(sh); got != 5e5 {
		t.Fatalf("learned sharded rate = %g, want 5e5", got)
	}
}

func TestObserveRejectsDegenerate(t *testing.T) {
	m := NewModel()
	k := Key{Engine: "ev8", Width: 8, Mode: ModePlain}
	m.Observe(k, 0, 1.0)
	m.Observe(k, 1000, 0)
	m.Observe(k, 1000, -1)
	m.Observe(k, 1, 1e12)     // below minRate
	m.Observe(k, 1<<62, 1e-9) // above maxRate
	if m.Len() != 0 {
		t.Fatalf("degenerate observations were recorded: %d buckets", m.Len())
	}
	if got := m.Rate(k); got != 8.5e6 {
		t.Fatalf("rate after degenerate observations = %g, want default", got)
	}
}

func TestPredictDurationSaturates(t *testing.T) {
	m := NewModel()
	k := Key{Engine: "nosuch", Width: 1, Mode: ModePlain}
	if d := m.PredictDuration(k, math.MaxUint64); d <= 0 {
		t.Fatalf("PredictDuration overflowed to %v", d)
	}
}

func TestModelConcurrency(t *testing.T) {
	m := NewModel()
	k := Key{Engine: "streams", Width: 8, Mode: ModePlain}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Observe(k, 1_000_000, 0.5)
				_ = m.Predict(k, 1_000_000)
			}
		}()
	}
	wg.Wait()
	if got := m.Rate(k); got != 2e6 {
		t.Fatalf("converged rate = %g, want 2e6", got)
	}
}
