// Package slo is the cost model behind streamfetchd's SLO-aware
// admission control: per-configuration throughput estimates that turn a
// validated request into a predicted execution time before the job is
// accepted.
//
// The unit of prediction is work-seconds — the serial simulation time a
// job needs, summed across its cells and intervals. The serve layer
// divides backlog work-seconds by its worker count to estimate queue
// delay, and compares (queue delay + predicted work) against a request's
// deadline to decide whether accepting it is honest or a promise the
// daemon already knows it will break.
//
// Rates are bucketed by (engine, width, execution mode): engines differ
// by 2-3x in sim-insts/s, and sharded/sampled runs carry warming overhead
// a plain run does not. Buckets are seeded from built-in defaults (the
// BENCH_streamfetch.json trajectory of this repository's own hardware)
// and updated online by an exponentially weighted moving average over
// every finished job's measured rate, so a daemon converges to its actual
// host within a handful of jobs whatever the defaults said.
package slo

import (
	"sync"
	"time"
)

// Mode classifies a run's execution shape for rate bucketing.
type Mode string

const (
	// ModePlain is a single sequential simulation of the whole trace.
	ModePlain Mode = "plain"
	// ModeSharded is an interval-sharded run: the same total work plus
	// per-shard functional warming.
	ModeSharded Mode = "sharded"
	// ModeSampled is a sampled run: K short windows plus their lead-ins.
	ModeSampled Mode = "sampled"
)

// Key addresses one throughput bucket.
type Key struct {
	Engine string
	Width  int
	Mode   Mode
}

// defaultRates seeds each engine's plain-mode sim-insts/s from the
// recorded benchmark trajectory (width 8; width dependence is second
// order and the EWMA absorbs it). Unknown engines start at fallbackRate,
// deliberately conservative so a new engine over-predicts (sheds too
// eagerly) rather than accepting deadlines it cannot meet.
var defaultRates = map[string]float64{
	"ev8":     8.5e6,
	"ftb":     6.8e6,
	"streams": 6.2e6,
	"tcache":  5.5e6,
}

const (
	fallbackRate = 3e6
	// alpha weights the newest observation: heavy enough to converge to
	// the host in a few jobs, light enough that one anomalous run (a GC
	// pause, a loaded box) does not whipsaw admission decisions.
	alpha = 0.3
	// Observed rates are clamped to a sane band so a pathological
	// measurement (a zero-length run, a clock hiccup) cannot poison the
	// model into accepting or shedding everything.
	minRate = 1e3
	maxRate = 1e12
)

// Model holds the live rate buckets. The zero value is not usable; build
// with NewModel. Safe for concurrent use.
type Model struct {
	mu    sync.Mutex
	rates map[Key]float64
}

// NewModel builds a model holding only the built-in defaults; every
// bucket starts from its engine's seeded rate and learns from there.
func NewModel() *Model {
	return &Model{rates: map[Key]float64{}}
}

// Rate returns the bucket's current sim-insts/s estimate, falling back
// to the engine's plain-mode bucket (sharded/sampled overhead not yet
// observed), then the engine's built-in default, then the global
// fallback.
func (m *Model) Rate(k Key) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.rates[k]; ok {
		return r
	}
	if k.Mode != ModePlain {
		if r, ok := m.rates[Key{Engine: k.Engine, Width: k.Width, Mode: ModePlain}]; ok {
			return r
		}
	}
	if r, ok := defaultRates[k.Engine]; ok {
		return r
	}
	return fallbackRate
}

// Predict converts an instruction count into predicted work-seconds for
// the bucket's current rate.
func (m *Model) Predict(k Key, insts uint64) float64 {
	r := m.Rate(k)
	if r <= 0 {
		r = fallbackRate
	}
	return float64(insts) / r
}

// Observe folds one finished run into the bucket's EWMA: insts simulated
// in seconds of work time. Degenerate observations (nothing retired,
// non-positive time, rate outside the sane band) are dropped rather than
// clamped into a lie.
func (m *Model) Observe(k Key, insts uint64, seconds float64) {
	if insts == 0 || seconds <= 0 {
		return
	}
	obs := float64(insts) / seconds
	if obs < minRate || obs > maxRate {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	old, ok := m.rates[k]
	if !ok {
		// First observation: adopt it outright instead of blending with a
		// default that may be off by the host's whole speed ratio.
		m.rates[k] = obs
		return
	}
	m.rates[k] = alpha*obs + (1-alpha)*old
}

// PredictDuration is Predict as a time.Duration, saturating instead of
// overflowing for astronomically large requests.
func (m *Model) PredictDuration(k Key, insts uint64) time.Duration {
	secs := m.Predict(k, insts)
	if secs > float64(1<<62)/float64(time.Second) {
		return 1 << 62
	}
	return time.Duration(secs * float64(time.Second))
}

// Len reports how many buckets hold learned (non-default) rates.
func (m *Model) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rates)
}
