// The perceptron branch predictor (Jiménez & Lin, HPCA 2001), with the
// combined global+local history variant the paper pairs with the FTB
// front-end (Table 2: 512 perceptrons, 40-bit global history, 4096 x 14-bit
// local histories).
package bpred

// PerceptronConfig sizes the perceptron predictor.
type PerceptronConfig struct {
	// Perceptrons is the number of weight vectors (power of two).
	Perceptrons int
	// GlobalBits is the global history length.
	GlobalBits uint
	// LocalEntries, LocalBits size the local history table.
	LocalEntries int
	LocalBits    uint
}

// DefaultPerceptronConfig returns the Table-2 configuration.
func DefaultPerceptronConfig() PerceptronConfig {
	return PerceptronConfig{
		Perceptrons:  512,
		GlobalBits:   40,
		LocalEntries: 4096,
		LocalBits:    14,
	}
}

// Perceptron is a global+local perceptron direction predictor.
type Perceptron struct {
	cfg     PerceptronConfig
	weights [][]int16 // [perceptron][1 + global + local]
	local   *LocalHistory
	theta   int32
	mask    uint64
	Hist    HistPair // global history (speculative + retirement)
}

// NewPerceptron builds the predictor.
func NewPerceptron(cfg PerceptronConfig) *Perceptron {
	if cfg.Perceptrons <= 0 || cfg.Perceptrons&(cfg.Perceptrons-1) != 0 {
		panic("bpred: perceptron count must be a positive power of two")
	}
	if cfg.GlobalBits == 0 || cfg.GlobalBits > 64 {
		panic("bpred: perceptron global bits must be in 1..64")
	}
	n := 1 + int(cfg.GlobalBits) + int(cfg.LocalBits)
	w := make([][]int16, cfg.Perceptrons)
	for i := range w {
		w[i] = make([]int16, n)
	}
	// Training threshold from Jiménez & Lin: theta = 1.93h + 14.
	h := int(cfg.GlobalBits + cfg.LocalBits)
	return &Perceptron{
		cfg:     cfg,
		weights: w,
		local:   NewLocalHistory(cfg.LocalEntries, cfg.LocalBits),
		theta:   int32(float64(h)*1.93 + 14),
		mask:    uint64(cfg.Perceptrons - 1),
	}
}

// PerceptronPred carries the state of one prediction for training.
type PerceptronPred struct {
	Taken  bool
	output int32
	ghist  uint64
	lhist  uint32
	index  uint64
}

func (p *Perceptron) index(pc uint64) uint64 {
	return ((pc >> 2) ^ (pc >> 11)) & p.mask
}

// Predict computes the perceptron output for branch pc using the current
// speculative global history and committed local history.
func (p *Perceptron) Predict(pc uint64) PerceptronPred {
	return p.predictWith(pc, p.Hist.Spec)
}

func (p *Perceptron) predictWith(pc, ghist uint64) PerceptronPred {
	idx := p.index(pc)
	w := p.weights[idx]
	lhist := p.local.Get(pc)
	y := int32(w[0]) // bias weight
	k := 1
	for i := uint(0); i < p.cfg.GlobalBits; i, k = i+1, k+1 {
		if ghist>>i&1 == 1 {
			y += int32(w[k])
		} else {
			y -= int32(w[k])
		}
	}
	for i := uint(0); i < p.cfg.LocalBits; i, k = i+1, k+1 {
		if lhist>>i&1 == 1 {
			y += int32(w[k])
		} else {
			y -= int32(w[k])
		}
	}
	return PerceptronPred{
		Taken:  y >= 0,
		output: y,
		ghist:  ghist,
		lhist:  lhist,
		index:  idx,
	}
}

// OnPredict shifts the predicted outcome into the speculative history.
func (p *Perceptron) OnPredict(taken bool) { p.Hist.ShiftSpec(taken) }

// Update trains the perceptron on the committed outcome and advances the
// retirement histories.
func (p *Perceptron) Update(pc uint64, pr PerceptronPred, taken bool) {
	mispredicted := pr.Taken != taken
	mag := pr.output
	if mag < 0 {
		mag = -mag
	}
	if mispredicted || mag <= p.theta {
		w := p.weights[pr.index]
		t := int16(-1)
		if taken {
			t = 1
		}
		w[0] = clampWeight(w[0] + t)
		k := 1
		for i := uint(0); i < p.cfg.GlobalBits; i, k = i+1, k+1 {
			x := int16(-1)
			if pr.ghist>>i&1 == 1 {
				x = 1
			}
			w[k] = clampWeight(w[k] + x*t)
		}
		for i := uint(0); i < p.cfg.LocalBits; i, k = i+1, k+1 {
			x := int16(-1)
			if pr.lhist>>i&1 == 1 {
				x = 1
			}
			w[k] = clampWeight(w[k] + x*t)
		}
	}
	p.Hist.ShiftRet(taken)
	p.local.Update(pc, taken)
}

// UpdateAtCommit trains the perceptron at retirement using the retirement
// history register (commit-time update discipline).
func (p *Perceptron) UpdateAtCommit(pc uint64, taken bool) {
	pr := p.predictWith(pc, p.Hist.Ret)
	p.Update(pc, pr, taken)
}

// Recover restores the speculative global history after a misprediction.
func (p *Perceptron) Recover() { p.Hist.Recover() }

func clampWeight(w int16) int16 {
	// 8-bit weights as in the paper's hardware budget.
	const lim = 127
	if w > lim {
		return lim
	}
	if w < -lim {
		return -lim
	}
	return w
}

// StorageBits returns the predictor's storage budget in bits.
func (p *Perceptron) StorageBits() int {
	perW := 8
	n := 1 + int(p.cfg.GlobalBits) + int(p.cfg.LocalBits)
	return p.cfg.Perceptrons*n*perW + p.cfg.LocalEntries*int(p.cfg.LocalBits)
}
