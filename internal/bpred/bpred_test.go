package bpred

import (
	"testing"
	"testing/quick"

	"streamfetch/internal/isa"
	"streamfetch/internal/xrand"
)

func TestTwoBitUpdate(t *testing.T) {
	c := TwoBit(0)
	if c.Taken() {
		t.Fatal("counter 0 predicts taken")
	}
	c = c.Update(true).Update(true)
	if !c.Taken() {
		t.Fatal("counter after two taken updates predicts not taken")
	}
	c = TwoBit(3)
	if c.Update(true) != 3 {
		t.Fatal("saturating counter exceeded 3")
	}
	c = TwoBit(0)
	if c.Update(false) != 0 {
		t.Fatal("saturating counter went below 0")
	}
}

func TestTwoBitStrengthen(t *testing.T) {
	if TwoBit(2).Strengthen() != 3 {
		t.Fatal("weak taken did not strengthen to 3")
	}
	if TwoBit(1).Strengthen() != 0 {
		t.Fatal("weak not-taken did not strengthen to 0")
	}
}

func TestHistPairRecover(t *testing.T) {
	var h HistPair
	h.ShiftRet(true)
	h.ShiftRet(false)
	h.ShiftSpec(true)
	h.ShiftSpec(true)
	h.ShiftSpec(true)
	if h.Spec == h.Ret {
		t.Fatal("speculative and retirement history should differ")
	}
	h.Recover()
	if h.Spec != h.Ret {
		t.Fatal("Recover did not copy retirement history")
	}
	if h.Ret != 0b10 {
		t.Fatalf("retirement history = %b, want 10", h.Ret)
	}
}

func TestLocalHistory(t *testing.T) {
	l := NewLocalHistory(16, 4)
	pc := uint64(0x1000)
	l.Update(pc, true)
	l.Update(pc, false)
	l.Update(pc, true)
	if got := l.Get(pc); got != 0b101 {
		t.Fatalf("local history = %b, want 101", got)
	}
	// Width is enforced.
	for i := 0; i < 10; i++ {
		l.Update(pc, true)
	}
	if got := l.Get(pc); got != 0b1111 {
		t.Fatalf("local history = %b, want 1111 (4 bits)", got)
	}
}

func TestGskewLearnsBias(t *testing.T) {
	g := NewGskew(GskewConfig{EntriesPerBank: 1 << 12, HistoryBits: 12})
	pc := uint64(0x4000)
	correct := 0
	for i := 0; i < 2000; i++ {
		p := g.Predict(pc)
		g.OnPredict(p.Taken)
		if p.Taken {
			correct++
		}
		g.UpdateAtCommit(pc, true) // always taken
		g.Hist.Recover()           // keep spec aligned for the test
	}
	if correct < 1900 {
		t.Fatalf("gskew only %d/2000 correct on an always-taken branch", correct)
	}
}

func TestGskewLearnsAlternating(t *testing.T) {
	g := NewGskew(GskewConfig{EntriesPerBank: 1 << 12, HistoryBits: 12})
	pc := uint64(0x4400)
	correct := 0
	for i := 0; i < 4000; i++ {
		taken := i%2 == 0
		p := g.Predict(pc)
		g.OnPredict(taken) // perfect speculative outcome for the test
		if p.Taken == taken {
			correct++
		}
		g.UpdateAtCommit(pc, taken)
	}
	// The history-indexed banks must capture a TNTN pattern in the
	// steady state.
	if correct < 3200 {
		t.Fatalf("gskew only %d/4000 correct on an alternating branch", correct)
	}
}

func TestPerceptronLearnsPattern(t *testing.T) {
	p := NewPerceptron(PerceptronConfig{
		Perceptrons: 256, GlobalBits: 16, LocalEntries: 256, LocalBits: 8,
	})
	pc := uint64(0x8000)
	pattern := []bool{true, true, false, true, false, false}
	correct := 0
	n := 6000
	for i := 0; i < n; i++ {
		taken := pattern[i%len(pattern)]
		pr := p.Predict(pc)
		p.OnPredict(taken)
		if i > n/2 && pr.Taken == taken {
			correct++
		}
		p.UpdateAtCommit(pc, taken)
	}
	if correct < (n/2)*80/100 {
		t.Fatalf("perceptron only %d/%d correct on a periodic branch", correct, n/2)
	}
}

func TestBTBLookupUpdate(t *testing.T) {
	b := NewBTB(64, 4)
	pc := isa.Addr(0x100)
	if _, ok := b.Lookup(pc); ok {
		t.Fatal("empty BTB hit")
	}
	b.Update(pc, BTBEntry{Target: 0x2000, Type: isa.BranchCond})
	e, ok := b.Lookup(pc)
	if !ok || e.Target != 0x2000 || e.Type != isa.BranchCond {
		t.Fatalf("BTB entry = %+v ok=%v", e, ok)
	}
}

func TestBTBEvictsLRU(t *testing.T) {
	b := NewBTB(4, 4) // one set
	for i := 0; i < 5; i++ {
		b.Update(isa.Addr(0x100+16*i), BTBEntry{Target: isa.Addr(i)})
	}
	if _, ok := b.Probe(0x100); ok {
		t.Fatal("oldest entry not evicted")
	}
	if _, ok := b.Probe(0x140); !ok {
		t.Fatal("newest entry missing")
	}
}

func TestFTBSplitsBlocks(t *testing.T) {
	f := NewFTB(64, 4, 32)
	start := isa.Addr(0x1000)
	// Learn a long block, then a taken branch inside it.
	f.Update(start, FTBEntry{Len: 10, Type: isa.BranchCond, Target: 0x4000})
	f.Update(start, FTBEntry{Len: 4, Type: isa.BranchCond, Target: 0x3000})
	e, ok := f.Lookup(start)
	if !ok {
		t.Fatal("FTB miss after update")
	}
	if e.Len != 4 || e.Target != 0x3000 {
		t.Fatalf("block not split: %+v", e)
	}
	// A longer observation must NOT re-extend the split block.
	f.Update(start, FTBEntry{Len: 10, Type: isa.BranchCond, Target: 0x4000})
	e, _ = f.Lookup(start)
	if e.Len != 4 {
		t.Fatalf("split block re-extended to %d", e.Len)
	}
}

func TestFTBLengthCap(t *testing.T) {
	f := NewFTB(64, 4, 8)
	f.Update(0x1000, FTBEntry{Len: 20, Type: isa.BranchCond, Target: 0x4000})
	e, ok := f.Lookup(0x1000)
	if !ok || e.Len != 8 || e.Type != isa.BranchNone {
		t.Fatalf("capped entry = %+v ok=%v", e, ok)
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(0x100)
	r.Push(0x200)
	if got := r.Pop(); got != 0x200 {
		t.Fatalf("Pop = %v, want 0x200", got)
	}
	if got := r.Pop(); got != 0x100 {
		t.Fatalf("Pop = %v, want 0x100", got)
	}
}

func TestRASWrapsAround(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if got := r.Pop(); got != 3 {
		t.Fatalf("Pop = %v, want 3", got)
	}
	if got := r.Pop(); got != 2 {
		t.Fatalf("Pop = %v, want 2", got)
	}
	if got := r.Pop(); got != 3 {
		t.Fatalf("wrapped Pop = %v, want 3 (circular stack)", got)
	}
}

func TestRASSaveRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x10)
	r.Push(0x20)
	cp := r.Save()
	r.Push(0x30) // wrong path
	r.Pop()
	r.Pop()
	r.Restore(cp)
	if got := r.Pop(); got != 0x20 {
		t.Fatalf("after restore Pop = %v, want 0x20", got)
	}
}

func TestRASCopyFrom(t *testing.T) {
	a, b := NewRAS(4), NewRAS(4)
	a.Push(0x1)
	a.Push(0x2)
	b.CopyFrom(a)
	if got := b.Pop(); got != 0x2 {
		t.Fatalf("copied Pop = %v, want 0x2", got)
	}
	// The copy is independent.
	a.Push(0x9)
	if got := b.Pop(); got != 0x1 {
		t.Fatalf("copied stack shares state: Pop = %v, want 0x1", got)
	}
}

func TestDOLCDeterministic(t *testing.T) {
	d := DOLC{Depth: 4, Older: 2, Last: 4, Current: 8}
	h1 := NewPathHist(4)
	h2 := NewPathHist(4)
	for _, v := range []uint64{0x100, 0x200, 0x300} {
		h1.Push(v)
		h2.Push(v)
	}
	if d.Hash(h1, 0x400, 10) != d.Hash(h2, 0x400, 10) {
		t.Fatal("identical paths hash differently")
	}
}

func TestDOLCPathSensitivity(t *testing.T) {
	d := DOLC{Depth: 8, Older: 4, Last: 6, Current: 10}
	h1 := NewPathHist(8)
	h2 := NewPathHist(8)
	for i := 0; i < 8; i++ {
		h1.Push(0x1000)
		h2.Push(0x1000)
	}
	h2.Push(0x2000) // one differing element
	if d.Hash(h1, 0x400, 11) == d.Hash(h2, 0x400, 11) {
		t.Fatal("paths differing in one element collide (weak hash)")
	}
}

func TestDOLCIndexWidth(t *testing.T) {
	d := DOLC{Depth: 12, Older: 2, Last: 4, Current: 10}
	h := NewPathHist(12)
	rng := xrand.New(5)
	f := func(cur uint64) bool {
		h.Push(rng.Uint64())
		return d.Hash(h, cur, 11) < (1 << 11)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathHistCopyAndAt(t *testing.T) {
	h := NewPathHist(3)
	h.Push(1)
	h.Push(2)
	h.Push(3)
	if h.At(0) != 3 || h.At(1) != 2 || h.At(2) != 1 {
		t.Fatalf("At order wrong: %d %d %d", h.At(0), h.At(1), h.At(2))
	}
	h.Push(4) // evicts 1
	if h.At(2) != 2 {
		t.Fatalf("ring eviction wrong: At(2)=%d", h.At(2))
	}
	c := h.Clone()
	h.Push(9)
	if c.At(0) != 4 {
		t.Fatal("clone shares state with original")
	}
}
