// The 2bcgskew predictor of the Alpha EV8 (Seznec, Felix, Krishnan,
// Sazeides, ISCA 2002): four 2-bit banks — a bimodal bank BIM, two
// history-hashed banks G0/G1 with different history lengths, and a
// meta bank choosing between the bimodal prediction and the e-gskew
// majority vote — with the partial update policy.
package bpred

// GskewConfig sizes the 2bcgskew predictor. Table 2 of the paper uses
// 4 x 32K-entry tables and 15 bits of history.
type GskewConfig struct {
	// EntriesPerBank is the number of 2-bit counters per bank (power of
	// two).
	EntriesPerBank int
	// HistoryBits is the global history length used by G1; G0 uses about
	// half.
	HistoryBits uint
}

// DefaultGskewConfig returns the Table-2 EV8 configuration.
func DefaultGskewConfig() GskewConfig {
	return GskewConfig{EntriesPerBank: 32 << 10, HistoryBits: 15}
}

// Gskew is a 2bcgskew conditional branch direction predictor.
type Gskew struct {
	cfg  GskewConfig
	bim  []TwoBit
	g0   []TwoBit
	g1   []TwoBit
	meta []TwoBit
	mask uint64
	h0   uint // short history length for G0
	Hist HistPair
}

// NewGskew builds the predictor.
func NewGskew(cfg GskewConfig) *Gskew {
	n := cfg.EntriesPerBank
	if n <= 0 || n&(n-1) != 0 {
		panic("bpred: gskew entries must be a positive power of two")
	}
	if cfg.HistoryBits == 0 || cfg.HistoryBits > 32 {
		panic("bpred: gskew history bits must be in 1..32")
	}
	g := &Gskew{
		cfg:  cfg,
		bim:  make([]TwoBit, n),
		g0:   make([]TwoBit, n),
		g1:   make([]TwoBit, n),
		meta: make([]TwoBit, n),
		mask: uint64(n - 1),
		h0:   cfg.HistoryBits / 2,
	}
	// Initialize weakly taken-biased bimodal? Conventionally weakly not
	// taken (0..3 start at 0). Start weakly not-taken (1) so cold
	// branches move quickly either way.
	for i := range g.bim {
		g.bim[i] = 1
		g.g0[i] = 1
		g.g1[i] = 1
		g.meta[i] = 1
	}
	return g
}

// skewHash mixes pc and history with a bank-specific rotation, a software
// stand-in for the H/H^-1 skewing functions of the e-gskew design.
func (g *Gskew) skewHash(pc, hist uint64, bank uint) uint64 {
	x := (pc >> 2) ^ (hist << 1) ^ (hist >> (3 + bank)) ^ (pc >> (7 + 2*bank))
	x *= 0x9e3779b97f4a7c15
	return (x >> (13 + bank)) & g.mask
}

func (g *Gskew) indices(pc uint64, hist uint64) (ib, i0, i1, im uint64) {
	hist0 := hist & ((1 << g.h0) - 1)
	hist1 := hist & ((1 << g.cfg.HistoryBits) - 1)
	ib = (pc >> 2) & g.mask
	i0 = g.skewHash(pc, hist0, 0)
	i1 = g.skewHash(pc, hist1, 1)
	im = g.skewHash(pc, hist1, 2)
	return
}

// GskewPred carries the per-component votes of one prediction; the engine
// passes it back at update time so the partial update policy can be applied
// against the same table state.
type GskewPred struct {
	Taken bool
	bim   bool
	g0    bool
	g1    bool
	meta  bool // true = use majority
	hist  uint64
}

// Predict returns the direction prediction for branch pc using the
// speculative history. The caller must then invoke OnPredict to record the
// predicted outcome into the speculative history.
func (g *Gskew) Predict(pc uint64) GskewPred {
	return g.predictWith(pc, g.Hist.Spec)
}

func (g *Gskew) predictWith(pc, hist uint64) GskewPred {
	ib, i0, i1, im := g.indices(pc, hist)
	p := GskewPred{
		bim:  g.bim[ib].Taken(),
		g0:   g.g0[i0].Taken(),
		g1:   g.g1[i1].Taken(),
		meta: g.meta[im].Taken(),
		hist: hist,
	}
	maj := majority(p.bim, p.g0, p.g1)
	if p.meta {
		p.Taken = maj
	} else {
		p.Taken = p.bim
	}
	return p
}

// OnPredict shifts the predicted direction into the speculative history.
func (g *Gskew) OnPredict(taken bool) { g.Hist.ShiftSpec(taken) }

// Update applies the committed outcome for branch pc predicted as p,
// following the 2bcgskew partial update policy, and shifts the retirement
// history.
func (g *Gskew) Update(pc uint64, p GskewPred, taken bool) {
	ib, i0, i1, im := g.indices(pc, p.hist)
	maj := majority(p.bim, p.g0, p.g1)
	correct := p.Taken == taken

	// Meta learns which component to trust whenever they disagree.
	if p.bim != maj {
		g.meta[im] = g.meta[im].Update(maj == taken)
	}
	if correct {
		// Partial update: strengthen only the banks that agreed with
		// the outcome, and only those participating in the prediction.
		if p.meta {
			if p.bim == taken {
				g.bim[ib] = g.bim[ib].Strengthen()
			}
			if p.g0 == taken {
				g.g0[i0] = g.g0[i0].Strengthen()
			}
			if p.g1 == taken {
				g.g1[i1] = g.g1[i1].Strengthen()
			}
		} else if p.bim == taken {
			g.bim[ib] = g.bim[ib].Strengthen()
		}
	} else {
		// On a misprediction all banks learn the outcome.
		g.bim[ib] = g.bim[ib].Update(taken)
		g.g0[i0] = g.g0[i0].Update(taken)
		g.g1[i1] = g.g1[i1].Update(taken)
	}
	g.Hist.ShiftRet(taken)
}

// UpdateAtCommit trains the predictor at retirement using the update
// (retirement) history register, re-reading the tables to apply the partial
// update policy against current counter state. This is the paper's
// commit-time update discipline (§3.2's dual-register scheme).
func (g *Gskew) UpdateAtCommit(pc uint64, taken bool) {
	p := g.predictWith(pc, g.Hist.Ret)
	g.Update(pc, p, taken)
}

// Recover restores the speculative history after a misprediction.
func (g *Gskew) Recover() { g.Hist.Recover() }

func majority(a, b, c bool) bool {
	n := 0
	if a {
		n++
	}
	if b {
		n++
	}
	if c {
		n++
	}
	return n >= 2
}

// StorageBits returns the predictor's storage budget in bits.
func (g *Gskew) StorageBits() int {
	return 4 * g.cfg.EntriesPerBank * 2
}
