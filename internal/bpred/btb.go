// Branch target buffers: the classic BTB (one entry per branch) and the
// Fetch Target Buffer (Reinman, Austin & Calder, ISCA 1999), which stores
// variable-length fetch blocks that embed strongly-biased not-taken
// branches and end at a branch that has been taken at least once.
package bpred

import "streamfetch/internal/isa"

// BTBEntry is one branch target entry. Ctr is an optional 2-bit direction
// counter used when the BTB doubles as a simple direction predictor (the
// trace cache's backup path).
type BTBEntry struct {
	Target isa.Addr
	Type   isa.BranchType
	Ctr    TwoBit
}

// BTB is a set-associative branch target buffer with LRU replacement.
type BTB struct {
	sets  [][]btbWay
	mask  uint64
	clock uint64
	// stats
	lookups, hits uint64
}

type btbWay struct {
	tag   uint64
	valid bool
	stamp uint64
	e     BTBEntry
}

// NewBTB builds a BTB with the given entry count and associativity.
func NewBTB(entries, ways int) *BTB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("bpred: bad BTB geometry")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("bpred: BTB set count must be a power of two")
	}
	b := &BTB{sets: make([][]btbWay, nsets), mask: uint64(nsets - 1)}
	for i := range b.sets {
		b.sets[i] = make([]btbWay, ways)
	}
	return b
}

func (b *BTB) index(pc isa.Addr) (set, tag uint64) {
	x := uint64(pc) >> 2
	return x & b.mask, x >> 0
}

// Lookup returns the entry for branch pc, if present.
func (b *BTB) Lookup(pc isa.Addr) (BTBEntry, bool) {
	b.lookups++
	set, tag := b.index(pc)
	s := b.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			b.clock++
			s[i].stamp = b.clock
			b.hits++
			return s[i].e, true
		}
	}
	return BTBEntry{}, false
}

// Probe returns the entry for branch pc without touching LRU state or
// statistics.
func (b *BTB) Probe(pc isa.Addr) (BTBEntry, bool) {
	set, tag := b.index(pc)
	for _, w := range b.sets[set] {
		if w.valid && w.tag == tag {
			return w.e, true
		}
	}
	return BTBEntry{}, false
}

// Update inserts or refreshes the entry for branch pc.
func (b *BTB) Update(pc isa.Addr, e BTBEntry) {
	set, tag := b.index(pc)
	s := b.sets[set]
	b.clock++
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].e = e
			s[i].stamp = b.clock
			return
		}
	}
	v := 0
	for i := 1; i < len(s); i++ {
		if !s[i].valid {
			v = i
			break
		}
		if s[i].stamp < s[v].stamp {
			v = i
		}
	}
	s[v] = btbWay{tag: tag, valid: true, stamp: b.clock, e: e}
}

// HitRate returns the fraction of lookups that hit.
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// FTBEntry describes a variable-length fetch block: instructions from Start
// for Len slots, terminated by a branch of the given type whose taken
// target is Target. The fall-through address is Start + 4*Len.
type FTBEntry struct {
	Len    int
	Type   isa.BranchType
	Target isa.Addr
}

// BranchPC returns the address of the block-terminating branch.
func (e FTBEntry) BranchPC(start isa.Addr) isa.Addr {
	return start.Plus(e.Len - 1)
}

// FallThrough returns the address following the block.
func (e FTBEntry) FallThrough(start isa.Addr) isa.Addr {
	return start.Plus(e.Len)
}

// FTB is a set-associative fetch target buffer keyed by fetch block start
// address. Table 2 uses 2048 entries, 4-way.
type FTB struct {
	sets  [][]ftbWay
	mask  uint64
	clock uint64
	// MaxLen caps stored block lengths (fetch-width field size).
	MaxLen int

	lookups, hits uint64
}

type ftbWay struct {
	tag   uint64
	valid bool
	stamp uint64
	e     FTBEntry
}

// NewFTB builds an FTB.
func NewFTB(entries, ways, maxLen int) *FTB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("bpred: bad FTB geometry")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("bpred: FTB set count must be a power of two")
	}
	f := &FTB{sets: make([][]ftbWay, nsets), mask: uint64(nsets - 1), MaxLen: maxLen}
	for i := range f.sets {
		f.sets[i] = make([]ftbWay, ways)
	}
	return f
}

func (f *FTB) index(start isa.Addr) (set, tag uint64) {
	x := uint64(start) >> 2
	return x & f.mask, x >> 0
}

// Lookup returns the fetch block starting at start, if known.
func (f *FTB) Lookup(start isa.Addr) (FTBEntry, bool) {
	f.lookups++
	set, tag := f.index(start)
	s := f.sets[set]
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			f.clock++
			s[i].stamp = f.clock
			f.hits++
			return s[i].e, true
		}
	}
	return FTBEntry{}, false
}

// Update learns that the block starting at start ends with a taken branch
// Len slots in, jumping to target. An existing longer block is split (the
// FTB does not store overlapping blocks); an existing shorter block is left
// to its own terminator unless the terminator address matches, in which case
// the target is refreshed.
func (f *FTB) Update(start isa.Addr, e FTBEntry) {
	if e.Len > f.MaxLen {
		// Blocks longer than the length field are truncated; the tail
		// will be re-requested as a separate block at fetch time.
		e.Len = f.MaxLen
		e.Type = isa.BranchNone
		e.Target = 0
	}
	set, tag := f.index(start)
	s := f.sets[set]
	f.clock++
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			old := &s[i].e
			switch {
			case e.Len < old.Len:
				// A taken branch appeared inside the stored block:
				// split by shrinking to the new terminator.
				*old = e
			case e.Len == old.Len:
				*old = e // refresh target/type (indirects move)
			default:
				// The stored terminator was not taken this time;
				// keep the shorter block (it still ends at a
				// branch that has been taken before).
			}
			s[i].stamp = f.clock
			return
		}
	}
	v := 0
	for i := 1; i < len(s); i++ {
		if !s[i].valid {
			v = i
			break
		}
		if s[i].stamp < s[v].stamp {
			v = i
		}
	}
	s[v] = ftbWay{tag: tag, valid: true, stamp: f.clock, e: e}
}

// Probe returns the block starting at start without touching LRU state or
// statistics (used by commit-side block tracking).
func (f *FTB) Probe(start isa.Addr) (FTBEntry, bool) {
	set, tag := f.index(start)
	for _, w := range f.sets[set] {
		if w.valid && w.tag == tag {
			return w.e, true
		}
	}
	return FTBEntry{}, false
}

// HitRate returns the fraction of lookups that hit.
func (f *FTB) HitRate() float64 {
	if f.lookups == 0 {
		return 0
	}
	return float64(f.hits) / float64(f.lookups)
}
