// Return address stack with misprediction recovery via top-of-stack
// checkpointing (§3.2: "a shadow copy of the top of the stack is kept with
// each branch instruction").
package bpred

import "streamfetch/internal/isa"

// RAS is a fixed-depth circular return address stack.
type RAS struct {
	entries []isa.Addr
	top     int // index of the next push slot
}

// NewRAS builds a stack with the given depth (Table 2: 8 entries).
func NewRAS(depth int) *RAS {
	if depth <= 0 {
		panic("bpred: RAS depth must be positive")
	}
	return &RAS{entries: make([]isa.Addr, depth)}
}

// Push records a return address (on a call prediction or commit).
func (r *RAS) Push(a isa.Addr) {
	r.entries[r.top] = a
	r.top = (r.top + 1) % len(r.entries)
}

// Pop predicts the target of a return. An empty or wrapped stack simply
// yields whatever is resident, as hardware would.
func (r *RAS) Pop() isa.Addr {
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	return r.entries[r.top]
}

// Checkpoint captures the state needed to undo wrong-path stack activity:
// the stack pointer and the entry at the top (which a wrong-path push may
// overwrite).
type RASCheckpoint struct {
	top int
	val isa.Addr
}

// Save returns a checkpoint of the current top of stack.
func (r *RAS) Save() RASCheckpoint {
	idx := (r.top - 1 + len(r.entries)) % len(r.entries)
	return RASCheckpoint{top: r.top, val: r.entries[idx]}
}

// Restore rewinds the stack to a checkpoint.
func (r *RAS) Restore(c RASCheckpoint) {
	r.top = c.top
	idx := (r.top - 1 + len(r.entries)) % len(r.entries)
	r.entries[idx] = c.val
}

// Depth returns the stack capacity.
func (r *RAS) Depth() int { return len(r.entries) }

// CopyFrom overwrites r with src. Engines keep a speculative and a retired
// stack and restore the speculative one wholesale on misprediction
// recovery, which subsumes the paper's shadow top-of-stack checkpointing.
func (r *RAS) CopyFrom(src *RAS) {
	copy(r.entries, src.entries)
	r.top = src.top
}
