// Package bpred implements the branch prediction machinery used by the four
// simulated front-ends: saturating counters, speculative/retirement history
// registers, the EV8 2bcgskew predictor, the perceptron predictor, BTB and
// FTB target buffers, the return address stack, and the DOLC path hash used
// by the stream and trace predictors.
package bpred

// HistPair models the paper's dual history registers (§3.2): a lookup
// register updated speculatively at prediction time and an update register
// maintained at commit with correct-path outcomes only. On a misprediction
// the retired register is copied over the speculative one.
type HistPair struct {
	// Spec is the speculative (lookup) history; newest outcome in bit 0.
	Spec uint64
	// Ret is the retirement (update) history.
	Ret uint64
}

// ShiftSpec records a predicted outcome into the speculative history.
func (h *HistPair) ShiftSpec(taken bool) {
	h.Spec = shift(h.Spec, taken)
}

// ShiftRet records a committed outcome into the retirement history.
func (h *HistPair) ShiftRet(taken bool) {
	h.Ret = shift(h.Ret, taken)
}

// Recover restores the speculative history from the retirement copy,
// discarding wrong-path pollution.
func (h *HistPair) Recover() { h.Spec = h.Ret }

func shift(h uint64, taken bool) uint64 {
	h <<= 1
	if taken {
		h |= 1
	}
	return h
}

// TwoBit is a 2-bit saturating counter. Values 0..1 predict not taken,
// 2..3 predict taken.
type TwoBit uint8

// Taken reports the counter's prediction.
func (c TwoBit) Taken() bool { return c >= 2 }

// Strong reports whether the counter is saturated in its current direction.
func (c TwoBit) Strong() bool { return c == 0 || c == 3 }

// Update moves the counter toward the outcome.
func (c TwoBit) Update(taken bool) TwoBit {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Strengthen saturates the counter in its current direction (2bcgskew
// partial update).
func (c TwoBit) Strengthen() TwoBit {
	if c.Taken() {
		return 3
	}
	return 0
}

// LocalHistory is a table of per-branch history registers, as used by the
// perceptron predictor's local component. Histories are updated at commit.
type LocalHistory struct {
	table []uint32
	mask  uint32
	bits  uint
}

// NewLocalHistory builds a table with entries (power of two) histories of
// the given bit width.
func NewLocalHistory(entries int, bits uint) *LocalHistory {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("bpred: local history entries must be a positive power of two")
	}
	if bits == 0 || bits > 32 {
		panic("bpred: local history bits must be in 1..32")
	}
	return &LocalHistory{
		table: make([]uint32, entries),
		mask:  uint32(entries - 1),
		bits:  bits,
	}
}

func (l *LocalHistory) idx(pc uint64) uint32 {
	return uint32(pc>>2) & l.mask
}

// Get returns the local history for branch pc.
func (l *LocalHistory) Get(pc uint64) uint32 {
	return l.table[l.idx(pc)] & ((1 << l.bits) - 1)
}

// Update shifts outcome into the history of branch pc.
func (l *LocalHistory) Update(pc uint64, taken bool) {
	h := l.table[l.idx(pc)] << 1
	if taken {
		h |= 1
	}
	l.table[l.idx(pc)] = h & ((1 << l.bits) - 1)
}

// Bits returns the history width.
func (l *LocalHistory) Bits() uint { return l.bits }
