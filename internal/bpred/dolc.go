// DOLC path hashing (Depth, Older, Last, Current), the path-history index
// function of the multiscalar control-flow speculation work (Jacobson et
// al.), used by both the next stream predictor (12-2-4-10 per Table 2) and
// the next trace predictor (9-4-7-9).
package bpred

// DOLC describes a path hash: Depth previous addresses contribute Older bits
// each, except the most recent which contributes Last bits; the current
// address contributes Current bits. The concatenation is XOR-folded to the
// requested index width.
type DOLC struct {
	Depth   int
	Older   uint
	Last    uint
	Current uint
}

// PathHist is a ring of the most recent path elements (newest first is
// logical order; stored as a ring).
type PathHist struct {
	ring []uint64
	pos  int
}

// NewPathHist returns a path history holding depth elements.
func NewPathHist(depth int) *PathHist {
	if depth <= 0 {
		depth = 1
	}
	return &PathHist{ring: make([]uint64, depth)}
}

// Push records a new path element (e.g. a stream start address).
func (p *PathHist) Push(v uint64) {
	p.pos = (p.pos + 1) % len(p.ring)
	p.ring[p.pos] = v
}

// At returns the i-th most recent element (0 = newest).
func (p *PathHist) At(i int) uint64 {
	n := len(p.ring)
	return p.ring[((p.pos-i)%n+n)%n]
}

// Len returns the history depth.
func (p *PathHist) Len() int { return len(p.ring) }

// CopyFrom overwrites p with src (misprediction recovery).
func (p *PathHist) CopyFrom(src *PathHist) {
	copy(p.ring, src.ring)
	p.pos = src.pos
}

// Clone returns an independent copy.
func (p *PathHist) Clone() *PathHist {
	q := &PathHist{ring: make([]uint64, len(p.ring)), pos: p.pos}
	copy(q.ring, p.ring)
	return q
}

// Hash folds the path history and current address into an index of
// indexBits bits. Each element is mixed before its DOLC bit quota is
// extracted, and contributions are chained order-sensitively; hardware
// selects raw low bits instead, which works because real addresses carry
// low-bit entropy — the mixed version behaves identically for well-spread
// addresses and avoids pathological collisions on aligned ones.
func (d DOLC) Hash(hist *PathHist, current uint64, indexBits uint) uint64 {
	var acc uint64 = 0xcbf29ce484222325
	var n uint
	put := func(v uint64, bits uint) {
		v *= 0x9e3779b97f4a7c15 // spread entropy across all bits
		v ^= v >> 29
		v &= (1 << bits) - 1
		acc = (acc ^ v) * 0x100000001b3 // order-sensitive chaining
		n += bits
	}
	put(current>>2, d.Current)
	depth := d.Depth
	if depth > hist.Len() {
		depth = hist.Len()
	}
	if depth > 0 {
		put(hist.At(0)>>2, d.Last)
		for i := 1; i < depth; i++ {
			put(hist.At(i)>>2, d.Older)
		}
	}
	// Fold to the index width.
	mask := uint64(1)<<indexBits - 1
	out := acc & mask
	acc >>= indexBits
	for acc != 0 {
		out ^= acc & mask
		acc >>= indexBits
	}
	return out
}
