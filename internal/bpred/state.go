package bpred

import (
	"streamfetch/internal/ckpt/wire"
	"streamfetch/internal/isa"
)

// Warm-state serialization for checkpoints. Behavioral state only:
// prediction tables, history registers and LRU bookkeeping. Lookup/hit
// statistics stay out of the snapshot so restored runs start with clean
// counters.

func appendTwoBits(dst []byte, t []TwoBit) []byte {
	dst = wire.AppendU64(dst, uint64(len(t)))
	for _, v := range t {
		dst = wire.AppendByte(dst, byte(v))
	}
	return dst
}

func loadTwoBits(r *wire.Reader, t []TwoBit) error {
	n := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if n != uint64(len(t)) {
		return wire.ErrMalformed
	}
	scratch := make([]TwoBit, n)
	for i := range scratch {
		scratch[i] = TwoBit(r.Byte())
	}
	if err := r.Err(); err != nil {
		return err
	}
	copy(t, scratch)
	return nil
}

// AppendState appends the HistPair to dst.
func (h *HistPair) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, h.Spec)
	return wire.AppendU64(dst, h.Ret)
}

// LoadState restores a HistPair.
func (h *HistPair) LoadState(r *wire.Reader) error {
	spec, ret := r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	h.Spec, h.Ret = spec, ret
	return nil
}

// AppendState appends the path history to dst.
func (p *PathHist) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, uint64(len(p.ring)))
	for _, v := range p.ring {
		dst = wire.AppendU64(dst, v)
	}
	return wire.AppendU64(dst, uint64(p.pos))
}

// LoadState restores a path history of identical depth.
func (p *PathHist) LoadState(r *wire.Reader) error {
	n := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if n != uint64(len(p.ring)) {
		return wire.ErrMalformed
	}
	scratch := make([]uint64, n)
	for i := range scratch {
		scratch[i] = r.U64()
	}
	pos := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if pos >= n && n > 0 {
		return wire.ErrMalformed
	}
	copy(p.ring, scratch)
	p.pos = int(pos)
	return nil
}

// AppendState appends the return address stack to dst.
func (s *RAS) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, uint64(len(s.entries)))
	for _, a := range s.entries {
		dst = wire.AppendU64(dst, uint64(a))
	}
	return wire.AppendU64(dst, uint64(s.top))
}

// LoadState restores a RAS of identical depth.
func (s *RAS) LoadState(r *wire.Reader) error {
	n := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if n != uint64(len(s.entries)) {
		return wire.ErrMalformed
	}
	scratch := make([]isa.Addr, n)
	for i := range scratch {
		scratch[i] = isa.Addr(r.U64())
	}
	top := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if top >= n && n > 0 {
		return wire.ErrMalformed
	}
	copy(s.entries, scratch)
	s.top = int(top)
	return nil
}

// AppendState appends the gskew predictor's tables and histories.
func (g *Gskew) AppendState(dst []byte) []byte {
	dst = appendTwoBits(dst, g.bim)
	dst = appendTwoBits(dst, g.g0)
	dst = appendTwoBits(dst, g.g1)
	dst = appendTwoBits(dst, g.meta)
	return g.Hist.AppendState(dst)
}

// LoadState restores a gskew predictor of identical geometry.
func (g *Gskew) LoadState(r *wire.Reader) error {
	if err := loadTwoBits(r, g.bim); err != nil {
		return err
	}
	if err := loadTwoBits(r, g.g0); err != nil {
		return err
	}
	if err := loadTwoBits(r, g.g1); err != nil {
		return err
	}
	if err := loadTwoBits(r, g.meta); err != nil {
		return err
	}
	return g.Hist.LoadState(r)
}

// AppendState appends the BTB's ways and LRU clock.
func (b *BTB) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, b.clock)
	dst = wire.AppendU64(dst, uint64(len(b.sets)))
	if len(b.sets) > 0 {
		dst = wire.AppendU64(dst, uint64(len(b.sets[0])))
	} else {
		dst = wire.AppendU64(dst, 0)
	}
	for _, set := range b.sets {
		for _, w := range set {
			dst = wire.AppendU64(dst, w.tag)
			dst = wire.AppendBool(dst, w.valid)
			dst = wire.AppendU64(dst, w.stamp)
			dst = wire.AppendU64(dst, uint64(w.e.Target))
			dst = wire.AppendByte(dst, byte(w.e.Type))
			dst = wire.AppendByte(dst, byte(w.e.Ctr))
		}
	}
	return dst
}

// LoadState restores a BTB of identical geometry; stats are untouched.
func (b *BTB) LoadState(r *wire.Reader) error {
	clock := r.U64()
	nsets := r.U64()
	nways := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	wantWays := 0
	if len(b.sets) > 0 {
		wantWays = len(b.sets[0])
	}
	if nsets != uint64(len(b.sets)) || nways != uint64(wantWays) {
		return wire.ErrMalformed
	}
	scratch := make([]btbWay, nsets*nways)
	for i := range scratch {
		scratch[i].tag = r.U64()
		scratch[i].valid = r.Bool()
		scratch[i].stamp = r.U64()
		scratch[i].e.Target = isa.Addr(r.U64())
		scratch[i].e.Type = isa.BranchType(r.Byte())
		scratch[i].e.Ctr = TwoBit(r.Byte())
	}
	if err := r.Err(); err != nil {
		return err
	}
	b.clock = clock
	for si := range b.sets {
		copy(b.sets[si], scratch[si*int(nways):(si+1)*int(nways)])
	}
	return nil
}

// AppendState appends the FTB's ways and LRU clock.
func (f *FTB) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, f.clock)
	dst = wire.AppendU64(dst, uint64(len(f.sets)))
	if len(f.sets) > 0 {
		dst = wire.AppendU64(dst, uint64(len(f.sets[0])))
	} else {
		dst = wire.AppendU64(dst, 0)
	}
	for _, set := range f.sets {
		for _, w := range set {
			dst = wire.AppendU64(dst, w.tag)
			dst = wire.AppendBool(dst, w.valid)
			dst = wire.AppendU64(dst, w.stamp)
			dst = wire.AppendU64(dst, uint64(w.e.Len))
			dst = wire.AppendByte(dst, byte(w.e.Type))
			dst = wire.AppendU64(dst, uint64(w.e.Target))
		}
	}
	return dst
}

// LoadState restores an FTB of identical geometry; stats are untouched.
func (f *FTB) LoadState(r *wire.Reader) error {
	clock := r.U64()
	nsets := r.U64()
	nways := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	wantWays := 0
	if len(f.sets) > 0 {
		wantWays = len(f.sets[0])
	}
	if nsets != uint64(len(f.sets)) || nways != uint64(wantWays) {
		return wire.ErrMalformed
	}
	scratch := make([]ftbWay, nsets*nways)
	for i := range scratch {
		scratch[i].tag = r.U64()
		scratch[i].valid = r.Bool()
		scratch[i].stamp = r.U64()
		scratch[i].e.Len = int(r.U64())
		scratch[i].e.Type = isa.BranchType(r.Byte())
		scratch[i].e.Target = isa.Addr(r.U64())
	}
	if err := r.Err(); err != nil {
		return err
	}
	f.clock = clock
	for si := range f.sets {
		copy(f.sets[si], scratch[si*int(nways):(si+1)*int(nways)])
	}
	return nil
}

// AppendState appends the perceptron weights plus global and local
// histories.
func (p *Perceptron) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, uint64(len(p.weights)))
	if len(p.weights) > 0 {
		dst = wire.AppendU64(dst, uint64(len(p.weights[0])))
	} else {
		dst = wire.AppendU64(dst, 0)
	}
	for _, row := range p.weights {
		for _, w := range row {
			dst = wire.AppendU64(dst, uint64(uint16(w)))
		}
	}
	dst = wire.AppendU64(dst, uint64(len(p.local.table)))
	for _, h := range p.local.table {
		dst = wire.AppendU64(dst, uint64(h))
	}
	return p.Hist.AppendState(dst)
}

// LoadState restores a perceptron predictor of identical geometry.
func (p *Perceptron) LoadState(r *wire.Reader) error {
	rows := r.U64()
	cols := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	wantCols := 0
	if len(p.weights) > 0 {
		wantCols = len(p.weights[0])
	}
	if rows != uint64(len(p.weights)) || cols != uint64(wantCols) {
		return wire.ErrMalformed
	}
	scratch := make([]int16, rows*cols)
	for i := range scratch {
		scratch[i] = int16(uint16(r.U64()))
	}
	nl := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if nl != uint64(len(p.local.table)) {
		return wire.ErrMalformed
	}
	lscratch := make([]uint32, nl)
	for i := range lscratch {
		lscratch[i] = uint32(r.U64())
	}
	var hist HistPair
	if err := hist.LoadState(r); err != nil {
		return err
	}
	for ri := range p.weights {
		copy(p.weights[ri], scratch[ri*int(cols):(ri+1)*int(cols)])
	}
	copy(p.local.table, lscratch)
	p.Hist = hist
	return nil
}
