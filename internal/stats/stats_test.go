package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean not 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 1, 1}); got != 1 {
		t.Fatalf("HarmonicMean of ones = %v", got)
	}
	got := HarmonicMean([]float64{2, 4})
	if math.Abs(got-8.0/3) > 1e-12 {
		t.Fatalf("HarmonicMean(2,4) = %v, want 8/3", got)
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Fatal("zero element must yield 0")
	}
}

func TestHarmonicLeqGeoLeqArithmetic(t *testing.T) {
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		h, g, m := HarmonicMean(xs), GeoMean(xs), Mean(xs)
		const eps = 1e-9
		return h <= g+eps && g <= m+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(1.1, 1.0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("Speedup = %v", got)
	}
	if Speedup(1, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	if h.N() != 100 || h.Mean() != 50.5 {
		t.Fatalf("n=%d mean=%v", h.N(), h.Mean())
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Fatalf("p50 = %d", p)
	}
	if p := h.Percentile(0.99); p != 99 {
		t.Fatalf("p99 = %d", p)
	}
	if !strings.Contains(h.String(), "n=100") {
		t.Fatalf("summary = %q", h.String())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b") // short row padded
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "alpha") {
		t.Fatalf("row = %q", lines[1])
	}
}
