// Package stats provides the small statistical helpers the evaluation
// harness needs: means, harmonic means (the paper aggregates IPC with
// harmonic means over the SPECint2000 suite), rates and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmonicMean returns the harmonic mean; zero or negative elements yield 0.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += 1 / x
	}
	return float64(len(xs)) / s
}

// GeoMean returns the geometric mean; zero or negative elements yield 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Speedup returns (a/b - 1), the relative improvement of a over b.
func Speedup(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a/b - 1
}

// Histogram accumulates integer samples for distribution reports (e.g.
// stream length distributions).
type Histogram struct {
	counts map[int]uint64
	total  uint64
	sum    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]uint64)}
}

// Add records one sample.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
	h.sum += int64(v)
}

// N returns the sample count.
func (h *Histogram) N() uint64 { return h.total }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Percentile returns the smallest value v such that at least p (0..1) of
// samples are <= v.
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	target := uint64(math.Ceil(p * float64(h.total)))
	var acc uint64
	for _, k := range keys {
		acc += h.counts[k]
		if acc >= target {
			return k
		}
	}
	return keys[len(keys)-1]
}

// String renders a compact summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p90=%d p99=%d",
		h.total, h.Mean(), h.Percentile(0.5), h.Percentile(0.9), h.Percentile(0.99))
}

// Table renders fixed-width rows for terminal reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable builds a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
