package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDoSucceedsAfterTransientFailures: a fault that clears mid-loop
// yields success, with one onRetry callback per retry.
func TestDoSucceedsAfterTransientFailures(t *testing.T) {
	calls, retries := 0, 0
	errTransient := errors.New("transient")
	err := Do(context.Background(),
		Policy{Attempts: 5, Base: time.Microsecond},
		func() error {
			calls++
			if calls < 3 {
				return errTransient
			}
			return nil
		},
		func(err error) {
			retries++
			if !errors.Is(err, errTransient) {
				t.Errorf("onRetry saw %v, want the transient error", err)
			}
		})
	if err != nil {
		t.Fatalf("Do = %v, want success", err)
	}
	if calls != 3 || retries != 2 {
		t.Errorf("calls=%d retries=%d, want 3 and 2", calls, retries)
	}
}

// TestDoExhaustsAttempts: a persistent fault is bounded by Attempts and
// the final error wraps the last failure with the attempt count.
func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	errDead := errors.New("dead")
	err := Do(context.Background(), Policy{Attempts: 3, Base: time.Microsecond},
		func() error { calls++; return errDead }, nil)
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, errDead) {
		t.Errorf("Do = %v, want it to wrap the last error", err)
	}
}

// TestDoSingleAttempt: Attempts <= 1 means exactly one try, error
// returned unwrapped.
func TestDoSingleAttempt(t *testing.T) {
	errDead := errors.New("dead")
	for _, attempts := range []int{0, 1, -2} {
		calls := 0
		err := Do(context.Background(), Policy{Attempts: attempts},
			func() error { calls++; return errDead }, nil)
		if calls != 1 {
			t.Errorf("Attempts=%d: calls = %d, want 1", attempts, calls)
		}
		if err != errDead {
			t.Errorf("Attempts=%d: Do = %v, want the bare error", attempts, err)
		}
	}
}

// TestDoContextCancel: cancellation interrupts the backoff sleep and
// returns the context's cause instead of retrying to exhaustion.
func TestDoContextCancel(t *testing.T) {
	cause := errors.New("shutting down")
	ctx, cancel := context.WithCancelCause(context.Background())
	calls := 0
	start := time.Now()
	err := Do(ctx, Policy{Attempts: 10, Base: time.Hour},
		func() error {
			calls++
			cancel(cause)
			return errors.New("fault")
		}, nil)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Do slept %s through cancellation", elapsed)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cancelled before any retry)", calls)
	}
	if !errors.Is(err, cause) {
		t.Errorf("Do = %v, want the cancellation cause", err)
	}
}

// TestJitterBounds: jittered delays stay within [d/2, d).
func TestJitterBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		got := jitter(d)
		if got < d/2 || got >= d {
			t.Fatalf("jitter(%s) = %s, want in [%s, %s)", d, got, d/2, d)
		}
	}
}

// TestDelayGrowthCapped: the per-retry delay grows by Multiplier and is
// capped at Max. Observed via wall clock with microsecond-scale delays.
func TestDelayGrowthCapped(t *testing.T) {
	p := Policy{Attempts: 4, Base: time.Microsecond, Max: 2 * time.Microsecond, Multiplier: 100}
	start := time.Now()
	_ = Do(context.Background(), p, func() error { return errors.New("x") }, nil)
	// Three retries, each jittered below 2µs: far under a second even on
	// a loaded box. (A missing cap at Multiplier 100 would sleep ~10ms+.)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("retry loop took %s; Max cap not applied?", elapsed)
	}
}
