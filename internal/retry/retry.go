// Package retry is bounded exponential backoff with jitter for transient
// faults: the serve layer uses it around post-acceptance store writes, so
// a hiccuping disk (a momentary ENOSPC, an NFS blip) costs a few
// milliseconds of retrying instead of a lost journal record — and a disk
// that stays dead fails fast enough to flip the server into its explicit
// degraded mode rather than stalling workers.
//
// The package is deliberately small: a Policy of attempt count and delay
// bounds, and Do, which runs an operation under it. Delays grow
// geometrically, are capped, carry full jitter (uniform in [d/2, d)), and
// respect context cancellation — a retry loop never outlives the request
// or server that started it.
package retry

import (
	"context"
	"fmt"
	"math/rand/v2"
	"time"
)

// Policy bounds a retry loop: how many total attempts, and how the delay
// between them grows. The zero value is not useful; start from Default.
type Policy struct {
	// Attempts is the total number of tries (the first call included).
	// Values below 1 behave as 1: a single attempt, no retrying.
	Attempts int
	// Base is the delay before the first retry; each subsequent delay
	// multiplies by Multiplier (default 2) and is capped at Max (default
	// Base). Every delay is jittered uniformly in [d/2, d) so synchronized
	// failures don't retry in lockstep.
	Base       time.Duration
	Max        time.Duration
	Multiplier float64
}

// Default is the serve layer's store-write policy: four attempts spanning
// roughly a hundred milliseconds — long enough to ride out a transient
// fault, short enough that a dead disk flips the server into degraded
// mode before clients notice more than a blip.
func Default() Policy {
	return Policy{Attempts: 4, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Multiplier: 4}
}

// Do runs fn under p, retrying failures until an attempt succeeds, the
// attempts are exhausted, or ctx is cancelled. It returns nil on success,
// ctx's cause when cancelled mid-loop, and otherwise the last error
// wrapped with the attempt count. onRetry, when non-nil, is invoked once
// per retry (not for the first attempt) before the backoff sleep — the
// serve layer counts them for its health surface.
func Do(ctx context.Context, p Policy, fn func() error, onRetry func(err error)) error {
	attempts := max(p.Attempts, 1)
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	maxDelay := p.Max
	if maxDelay <= 0 {
		maxDelay = p.Base
	}
	delay := p.Base
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if onRetry != nil {
				onRetry(err)
			}
			if !sleep(ctx, jitter(delay)) {
				return context.Cause(ctx)
			}
			if delay = time.Duration(float64(delay) * mult); delay > maxDelay {
				delay = maxDelay
			}
		}
		if err = fn(); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
	}
	if attempts == 1 {
		return err
	}
	return fmt.Errorf("after %d attempts: %w", attempts, err)
}

// jitter spreads a delay uniformly over [d/2, d), so many callers backing
// off from one shared fault don't hammer it in phase.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(d-half)
}

// sleep waits d or until ctx is cancelled, reporting whether the full
// delay elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
