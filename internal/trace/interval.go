// Interval windows over trace sources: the unit of parallelism for sharded
// simulation. An IntervalSource restricts an underlying source to one
// contiguous instruction range of the trace, preceded by up to two lead-in
// regions the simulator treats specially:
//
//   - a functional-warming prefix (FuncWarm): every block before the timing
//     warmup, delivered flagged so the consumer can replay cache and
//     address-generator state through it without simulating timing;
//   - a timing warmup (Warmup): blocks simulated normally but with counters
//     frozen, training predictors and pipeline state.
//
// Without functional warming the prefix is skipped outright (Skip seeks
// through indexed trace files, or fast-forwards the CFG walk).
//
// Interval boundaries snap to whole blocks with the same maximal-prefix
// rule Skip uses, so the measured windows of consecutive intervals tile the
// trace exactly: every block lands in the measured region of exactly one
// interval, whatever the shard count.
package trace

import (
	"fmt"

	"streamfetch/internal/cfg"
)

// Region classifies a delivered block's role within an interval.
type Region uint8

const (
	// RegionMeasure blocks are the interval's payload: simulated and
	// counted.
	RegionMeasure Region = iota
	// RegionWarm blocks are the timing-warmup lead-in: simulated with
	// counters frozen.
	RegionWarm
	// RegionFuncWarm blocks precede the timing warmup: delivered only so
	// the consumer can warm state functionally, never simulated.
	RegionFuncWarm
)

// IntervalConfig describes one interval of a trace.
type IntervalConfig struct {
	// Start and End bound the measure window in CFG-level instructions
	// (End 0 = to the trace's end).
	Start, End uint64
	// Warmup is the timing-warmup lead-in length in instructions.
	Warmup uint64
	// FuncWarm delivers the entire prefix before the timing warmup
	// flagged RegionFuncWarm instead of skipping it, so the consumer can
	// replay cache and address-generator state through it — the accuracy
	// mode for mid-trace intervals. When false the prefix is skipped.
	FuncWarm bool
}

// IntervalSource is a Source delivering one instruction interval of an
// underlying trace, with lead-in regions flagged per block (LastRegion).
// It is built by NewInterval and consumed like any other source.
type IntervalSource struct {
	src  Source
	prog *cfg.Program

	pos      uint64 // absolute CFG-inst position of the next block
	warmFrom uint64 // absolute position where the timing warmup starts
	fwarm    bool

	measureAt uint64 // absolute position where measurement starts
	end       uint64 // absolute limit (0 = to the trace's end)

	skipped  uint64 // insts jumped over before delivery began
	fwarmed  uint64 // insts delivered flagged for functional warming
	warm     uint64 // insts delivered as timing-warmup lead-in
	measured uint64 // insts delivered inside the measure window

	pending    cfg.BlockID
	pendingOK  bool
	lastRegion Region
	done       bool
	err        error
}

// NewInterval positions src at the head of the interval c describes. src
// must be fresh (positioned at the trace's head); it is bound to p for
// block lengths, and the interval owns it: closing the interval closes it.
func NewInterval(src Source, p *cfg.Program, c IntervalConfig) (*IntervalSource, error) {
	if b, ok := src.(interface{ Bind(*cfg.Program) }); ok {
		b.Bind(p)
	}
	warmFrom := uint64(0)
	if c.Start > c.Warmup {
		warmFrom = c.Start - c.Warmup
	}
	s := &IntervalSource{
		src:       src,
		prog:      p,
		warmFrom:  warmFrom,
		fwarm:     c.FuncWarm,
		measureAt: c.Start,
		end:       c.End,
	}
	if !c.FuncWarm {
		skipped, err := src.Skip(warmFrom)
		if err != nil {
			return nil, fmt.Errorf("trace: skipping to interval at %d: %w", warmFrom, err)
		}
		s.pos, s.skipped = skipped, skipped
	}
	return s, nil
}

// peekLen stages the next block and returns its instruction count.
func (s *IntervalSource) peekLen() (uint64, bool) {
	if s.done {
		return 0, false
	}
	if !s.pendingOK {
		id, ok := s.src.Next()
		if !ok {
			s.done = true
			return 0, false
		}
		if int(id) < 0 || int(id) >= len(s.prog.Blocks) {
			s.done = true
			s.err = fmt.Errorf("trace: block %d outside the bound program (%d blocks)",
				id, len(s.prog.Blocks))
			return 0, false
		}
		s.pending, s.pendingOK = id, true
	}
	return uint64(s.prog.Blocks[s.pending].NInsts), true
}

// region classifies the block of length ni at the current position.
func (s *IntervalSource) region(ni uint64) Region {
	switch {
	case s.fwarm && s.pos+ni <= s.warmFrom:
		return RegionFuncWarm
	case s.pos+ni <= s.measureAt:
		return RegionWarm
	default:
		return RegionMeasure
	}
}

// consume delivers the staged block of length ni.
func (s *IntervalSource) consume(ni uint64) cfg.BlockID {
	s.lastRegion = s.region(ni)
	s.pos += ni
	switch s.lastRegion {
	case RegionFuncWarm:
		s.fwarmed += ni
	case RegionWarm:
		s.warm += ni
	default:
		s.measured += ni
	}
	s.pendingOK = false
	return s.pending
}

// Next returns the next block of the interval: the lead-in regions first,
// then the measured window. It ends before the first block that would
// cross the interval's end boundary.
func (s *IntervalSource) Next() (cfg.BlockID, bool) {
	ni, ok := s.peekLen()
	if !ok {
		return cfg.NoBlock, false
	}
	if s.end > 0 && s.pos+ni > s.end {
		s.done = true
		return cfg.NoBlock, false
	}
	return s.consume(ni), true
}

// NextBatch fills dst with the next blocks of the interval. A batch never
// spans a region boundary — every delivered block shares the region
// LastRegion reports — so consumers that flag whole batches stay exact;
// inside a region (the common, all-measured case) it is the bulk form of
// Next.
func (s *IntervalSource) NextBatch(dst []cfg.BlockID) int {
	n := 0
	var reg Region
	for n < len(dst) {
		ni, ok := s.peekLen()
		if !ok {
			break
		}
		if s.end > 0 && s.pos+ni > s.end {
			s.done = true
			break
		}
		if r := s.region(ni); n == 0 {
			reg = r
		} else if r != reg {
			break
		}
		dst[n] = s.consume(ni)
		n++
	}
	return n
}

// Skip fast-forwards within the interval (maximal whole-block prefix of at
// most n instructions), never past its end boundary.
func (s *IntervalSource) Skip(n uint64) (uint64, error) {
	start := s.pos
	target := satAdd(start, n)
	for {
		ni, ok := s.peekLen()
		if !ok {
			break
		}
		if s.end > 0 && s.pos+ni > s.end {
			break // boundary block: leave it for Next to refuse
		}
		if satAdd(s.pos, ni) > target {
			break
		}
		s.consume(ni)
	}
	return s.pos - start, s.err
}

// LastRegion reports which region the block most recently returned by
// Next belongs to.
func (s *IntervalSource) LastRegion() Region { return s.lastRegion }

// LastWarm reports whether the block most recently returned by Next lies
// in the timing-warmup lead-in.
func (s *IntervalSource) LastWarm() bool { return s.lastRegion == RegionWarm }

// WarmupPending reports whether any lead-in (functional or timing) remains
// ahead of the current position; once it returns false every further block
// is measured. It peeks the next block: lead-in blocks are a strict
// prefix, so lead-in remains exactly when the next block ends at or before
// the measure boundary.
func (s *IntervalSource) WarmupPending() bool {
	ni, ok := s.peekLen()
	return ok && s.region(ni) != RegionMeasure
}

// SkippedInsts returns the instructions jumped over before delivery began.
func (s *IntervalSource) SkippedInsts() uint64 { return s.skipped }

// FuncWarmedInsts returns the instructions delivered flagged for
// functional warming so far.
func (s *IntervalSource) FuncWarmedInsts() uint64 { return s.fwarmed }

// WarmupInsts returns the instructions delivered as timing-warmup lead-in
// so far.
func (s *IntervalSource) WarmupInsts() uint64 { return s.warm }

// MeasuredInsts returns the instructions delivered inside the measure
// window so far.
func (s *IntervalSource) MeasuredInsts() uint64 { return s.measured }

// Name returns the underlying trace's benchmark name.
func (s *IntervalSource) Name() string { return s.src.Name() }

// TotalInsts reports the underlying trace's total, not the interval's:
// callers sizing the interval use MeasuredInsts/WarmupInsts instead.
func (s *IntervalSource) TotalInsts() (uint64, bool) { return s.src.TotalInsts() }

// Close closes the underlying source and surfaces any decode or
// consistency error from the interval walk.
func (s *IntervalSource) Close() error {
	err := s.src.Close()
	if s.err != nil {
		return s.err
	}
	return err
}
