package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"streamfetch/internal/cfg"
	"streamfetch/internal/workload"
)

func genProg(t testing.TB, name string) *cfg.Program {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Generate(p)
}

func TestGenerateRespectsLimit(t *testing.T) {
	prog := genProg(t, "164.gzip")
	tr := Generate(prog, GenConfig{Seed: 1, MaxInsts: 10_000})
	if tr.Insts < 10_000 {
		t.Fatalf("trace stopped early at %d instructions", tr.Insts)
	}
	if tr.Insts > 10_000+64 {
		t.Fatalf("trace overshot: %d instructions", tr.Insts)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	prog := genProg(t, "175.vpr")
	a := Generate(prog, GenConfig{Seed: 5, MaxInsts: 50_000})
	b := Generate(prog, GenConfig{Seed: 5, MaxInsts: 50_000})
	if len(a.Blocks) != len(b.Blocks) {
		t.Fatal("same seed produced different lengths")
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatalf("same seed diverged at block %d", i)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	prog := genProg(t, "175.vpr")
	a := Generate(prog, GenConfig{Seed: 5, MaxInsts: 50_000})
	b := Generate(prog, GenConfig{Seed: 6, MaxInsts: 50_000})
	same := 0
	n := len(a.Blocks)
	if len(b.Blocks) < n {
		n = len(b.Blocks)
	}
	for i := 0; i < n; i++ {
		if a.Blocks[i] == b.Blocks[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceFollowsCFGEdges(t *testing.T) {
	prog := genProg(t, "164.gzip")
	tr := Generate(prog, GenConfig{Seed: 2, MaxInsts: 100_000})
	var stack []cfg.BlockID
	for i := 0; i+1 < len(tr.Blocks); i++ {
		b := prog.Blocks[tr.Blocks[i]]
		next := tr.Blocks[i+1]
		switch {
		case b.Branch.IsCall():
			stack = append(stack, b.Cont)
			if !hasSucc(b, next) {
				t.Fatalf("call block %d jumped to non-callee %d", b.ID, next)
			}
		case b.Branch.IsReturn():
			if len(stack) == 0 {
				t.Fatalf("return with empty stack at %d", i)
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if next != want {
				t.Fatalf("return went to %d, want continuation %d", next, want)
			}
		default:
			if !hasSucc(b, next) {
				t.Fatalf("block %d followed by non-successor %d", b.ID, next)
			}
		}
	}
}

func hasSucc(b *cfg.Block, id cfg.BlockID) bool {
	for _, e := range b.Succs {
		if e.To == id {
			return true
		}
	}
	return false
}

func TestProfileCountsMatchTrace(t *testing.T) {
	prog := genProg(t, "164.gzip")
	prof := cfg.NewProfile(prog)
	g := NewGenerator(prog, 3, prof)
	count := map[cfg.BlockID]uint64{}
	for g.Insts() < 50_000 {
		id, ok := g.Next()
		if !ok {
			break
		}
		count[id]++
	}
	for id, c := range count {
		if prof.BlockCount[id] != c {
			t.Fatalf("block %d: profile %d, trace %d", id, prof.BlockCount[id], c)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	prog := genProg(t, "164.gzip")
	tr := Generate(prog, GenConfig{Seed: 9, MaxInsts: 30_000})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != tr.Name || got.Insts != tr.Insts || len(got.Blocks) != len(tr.Blocks) {
		t.Fatalf("header mismatch: %v/%d/%d vs %v/%d/%d",
			got.Name, got.Insts, len(got.Blocks), tr.Name, tr.Insts, len(tr.Blocks))
	}
	for i := range tr.Blocks {
		if got.Blocks[i] != tr.Blocks[i] {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(ids []uint16, insts uint64) bool {
		tr := &Trace{Name: "prop", Insts: insts}
		for _, id := range ids {
			tr.Blocks = append(tr.Blocks, cfg.BlockID(id))
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Insts != tr.Insts || len(got.Blocks) != len(tr.Blocks) {
			return false
		}
		for i := range tr.Blocks {
			if got.Blocks[i] != tr.Blocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestSummarize(t *testing.T) {
	prog := genProg(t, "164.gzip")
	tr := Generate(prog, GenConfig{Seed: 4, MaxInsts: 50_000})
	s := tr.Summarize(prog)
	if s.Blocks != len(tr.Blocks) || s.Insts != tr.Insts {
		t.Fatalf("summary counts wrong: %+v", s)
	}
	if s.MeanBlockLen < 2 || s.MeanBlockLen > 12 {
		t.Fatalf("implausible mean block length %.2f", s.MeanBlockLen)
	}
	if s.CondBranches == 0 {
		t.Fatal("no conditional branches observed")
	}
}

func TestMarkovIndirectCorrelation(t *testing.T) {
	prog := genProg(t, "253.perlbmk") // switch heavy
	g := NewGenerator(prog, 11, nil)
	// Track per-switch transition determinism: with IndMarkov > 0.5 the
	// most common (prev->next) arm transition should dominate.
	type key struct {
		b          cfg.BlockID
		prev, next cfg.BlockID
	}
	trans := map[key]int{}
	prev := map[cfg.BlockID]cfg.BlockID{}
	var last cfg.BlockID = cfg.NoBlock
	var lastSwitch cfg.BlockID = cfg.NoBlock
	for g.Insts() < 300_000 {
		id, ok := g.Next()
		if !ok {
			break
		}
		if lastSwitch != cfg.NoBlock {
			if p, seen := prev[lastSwitch]; seen {
				trans[key{lastSwitch, p, id}]++
			}
			prev[lastSwitch] = id
			lastSwitch = cfg.NoBlock
		}
		if prog.Blocks[id].Branch.IsIndirect() {
			lastSwitch = id
		}
		last = id
	}
	_ = last
	if len(trans) == 0 {
		t.Skip("no indirect transitions observed")
	}
}
