package trace

import (
	"testing"

	"streamfetch/internal/cfg"
)

// TestNextBatchDifferential: on every backing, draining through NextBatch
// yields exactly the sequence Next yields — for batch sizes of one, a
// prime, exactly one file chunk, one past a chunk boundary, and far more
// than the trace holds.
func TestNextBatchDifferential(t *testing.T) {
	prog, tr := skipTrace(t)
	for _, size := range []int{1, 7, 64, chunkBlocks, chunkBlocks + 1, len(tr.Blocks) + 1000} {
		dst := make([]cfg.BlockID, size)
		for name, src := range sources(t, prog, tr) {
			got := 0
			for {
				n := src.NextBatch(dst)
				if n == 0 {
					break
				}
				if n < 0 || n > size {
					t.Fatalf("%s: NextBatch(len %d) = %d", name, size, n)
				}
				for i := 0; i < n; i++ {
					if got+i >= len(tr.Blocks) {
						t.Fatalf("%s: NextBatch(len %d) outlived the trace at block %d",
							name, size, got+i)
					}
					if dst[i] != tr.Blocks[got+i] {
						t.Fatalf("%s: NextBatch(len %d): block %d = %d, want %d",
							name, size, got+i, dst[i], tr.Blocks[got+i])
					}
				}
				got += n
			}
			if got != len(tr.Blocks) {
				t.Fatalf("%s: NextBatch(len %d) delivered %d blocks, want %d",
					name, size, got, len(tr.Blocks))
			}
			// Exhaustion is sticky: further batches and singles stay empty.
			if n := src.NextBatch(dst); n != 0 {
				t.Fatalf("%s: NextBatch after EOF = %d", name, n)
			}
			if _, ok := src.Next(); ok {
				t.Fatalf("%s: Next after EOF succeeded", name)
			}
			if err := src.Close(); err != nil {
				t.Fatalf("%s: Close: %v", name, err)
			}
		}
	}
}

// TestNextBatchInterleaved: singles and batches compose — alternating Next
// and NextBatch calls walk the same sequence without loss or repetition.
func TestNextBatchInterleaved(t *testing.T) {
	prog, tr := skipTrace(t)
	dst := make([]cfg.BlockID, 33)
	for name, src := range sources(t, prog, tr) {
		idx := 0
		for idx < len(tr.Blocks) {
			id, ok := src.Next()
			if !ok || id != tr.Blocks[idx] {
				t.Fatalf("%s: Next at %d = (%v,%v), want %d", name, idx, id, ok, tr.Blocks[idx])
			}
			idx++
			n := src.NextBatch(dst)
			for i := 0; i < n; i++ {
				if dst[i] != tr.Blocks[idx+i] {
					t.Fatalf("%s: batch block %d = %d, want %d",
						name, idx+i, dst[i], tr.Blocks[idx+i])
				}
			}
			idx += n
			if n == 0 && idx < len(tr.Blocks) {
				t.Fatalf("%s: NextBatch empty at %d of %d", name, idx, len(tr.Blocks))
			}
		}
		if err := src.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
}

// TestNextBatchEmptyDst: a zero-length destination returns 0 without
// consuming anything.
func TestNextBatchEmptyDst(t *testing.T) {
	prog, tr := skipTrace(t)
	for name, src := range sources(t, prog, tr) {
		if n := src.NextBatch(nil); n != 0 {
			t.Fatalf("%s: NextBatch(nil) = %d", name, n)
		}
		if id, ok := src.Next(); !ok || id != tr.Blocks[0] {
			t.Fatalf("%s: NextBatch(nil) consumed the head block", name)
		}
		if err := src.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
}

// legacyOnly exposes a source through the pre-NextBatch interface only, so
// Batched must wrap it.
type legacyOnly struct{ s Source }

func (l *legacyOnly) Next() (cfg.BlockID, bool)     { return l.s.Next() }
func (l *legacyOnly) Skip(n uint64) (uint64, error) { return l.s.Skip(n) }
func (l *legacyOnly) Name() string                  { return l.s.Name() }
func (l *legacyOnly) TotalInsts() (uint64, bool)    { return l.s.TotalInsts() }
func (l *legacyOnly) Close() error                  { return l.s.Close() }

// TestBatchedAdapter: Batched passes full sources through untouched and
// wraps legacy ones in a loop adapter with identical delivery.
func TestBatchedAdapter(t *testing.T) {
	prog, tr := skipTrace(t)
	full := tr.Source()
	if got := Batched(full); got != Source(full) {
		t.Fatal("Batched did not pass a full Source through")
	}

	src := Batched(&legacyOnly{s: NewGenSource(prog, GenConfig{Seed: 11, MaxInsts: 120_000})})
	dst := make([]cfg.BlockID, 100)
	idx := 0
	for {
		n := src.NextBatch(dst)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			if dst[i] != tr.Blocks[idx+i] {
				t.Fatalf("adapter block %d = %d, want %d", idx+i, dst[i], tr.Blocks[idx+i])
			}
		}
		idx += n
	}
	if idx != len(tr.Blocks) {
		t.Fatalf("adapter delivered %d blocks, want %d", idx, len(tr.Blocks))
	}
	if src.Name() != tr.Name {
		t.Fatalf("adapter Name = %q, want %q", src.Name(), tr.Name)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIntervalNextBatchRegions: interval batches never span a region
// boundary — every block of a batch shares the region LastRegion reports —
// and batched delivery matches the per-block walk exactly.
func TestIntervalNextBatchRegions(t *testing.T) {
	prog, tr := skipTrace(t)

	type step struct {
		id  cfg.BlockID
		reg Region
	}
	walk := func(iv *IntervalSource, batch int) []step {
		var got []step
		if batch == 0 {
			for {
				id, ok := iv.Next()
				if !ok {
					break
				}
				got = append(got, step{id, iv.LastRegion()})
			}
			return got
		}
		dst := make([]cfg.BlockID, batch)
		for {
			n := iv.NextBatch(dst)
			if n == 0 {
				break
			}
			reg := iv.LastRegion()
			for i := 0; i < n; i++ {
				got = append(got, step{dst[i], reg})
			}
		}
		return got
	}

	mk := func() *IntervalSource {
		src := tr.Source()
		iv, err := NewInterval(src, prog, IntervalConfig{
			Start: 60_000, End: 90_000, Warmup: 10_000, FuncWarm: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return iv
	}

	ref := walk(mk(), 0)
	for _, batch := range []int{1, 13, 4096, len(tr.Blocks)} {
		got := walk(mk(), batch)
		if len(got) != len(ref) {
			t.Fatalf("batch %d: %d blocks, want %d", batch, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("batch %d: step %d = %+v, want %+v", batch, i, got[i], ref[i])
			}
		}
	}
}
