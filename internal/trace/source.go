// Pull-based trace supply. A Source delivers the dynamic basic-block
// sequence one block at a time, so consumers (the simulator, codecs,
// analyses) run in memory independent of trace length: a 100M-instruction
// run needs no materialized block slice anywhere on the trace path.
//
// Three implementations cover the delivery modes:
//
//   - GenSource produces blocks on the fly from the seeded CFG walk
//     (NewGenSource); nothing is ever materialized.
//   - FileSource incrementally decodes the binary trace format (Open,
//     NewReader in file.go), so saved traces far larger than RAM replay.
//   - SliceSource wraps an existing []cfg.BlockID (NewSliceSource, or
//     Trace.Source) for tests and profiles that already hold a trace.
package trace

import (
	"errors"
	"sort"

	"streamfetch/internal/cfg"
)

// Source supplies a dynamic basic-block sequence incrementally. Sources are
// single-use forward iterators: once exhausted they stay exhausted, and a
// fresh source is needed to walk the trace again. Sources are not safe for
// concurrent use.
type Source interface {
	// Next returns the next executed block; ok is false once the trace is
	// exhausted.
	Next() (id cfg.BlockID, ok bool)
	// NextBatch fills dst with the next executed blocks and returns how
	// many were delivered — the bulk form of Next, letting consumers pay
	// one interface call per batch instead of one per block. It returns 0
	// (for a non-empty dst) only once the trace is exhausted; short
	// non-zero batches are allowed (a file source may stop at a chunk
	// boundary, an interval source at a region boundary). Interleaving
	// NextBatch and Next is valid: both consume the same cursor.
	// Third-party sources implementing only the legacy interface can be
	// adapted with Batched.
	NextBatch(dst []cfg.BlockID) int
	// Skip fast-forwards the source past the maximal prefix of its
	// remaining whole blocks whose cumulative CFG-level instruction count
	// does not exceed n, returning the count actually skipped (less than
	// n when the boundary block would cross it, or when the trace ends
	// first). Blocks are never split: after Skip, Next delivers the block
	// containing instruction offset skipped. Skipping past EOF exhausts
	// the source and returns the instructions that remained. File- and
	// slice-backed sources need a program bound (Bind) for the per-block
	// instruction counts; an indexed trace file seeks, everything else
	// fast-forwards linearly without layout expansion or simulation.
	Skip(n uint64) (skipped uint64, err error)
	// Name returns the benchmark name the trace records.
	Name() string
	// TotalInsts returns the trace's CFG-level instruction count and
	// whether it is exact. Sources that know their full length up front
	// (in-memory traces, file headers, indexed files) report it
	// immediately; streamed sources report a running or unknown count
	// (exact only once the stream is exhausted, and 0 for formats that
	// carry no running count).
	TotalInsts() (n uint64, exact bool)
	// Close releases any resources held by the source and reports any
	// decode error encountered while streaming. Close on generator- and
	// slice-backed sources is a no-op.
	Close() error
}

// satAdd returns a+b, saturating at the maximum uint64 instead of wrapping
// (Skip targets are offsets and ^uint64(0) means "to the end").
func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return ^uint64(0)
}

// LegacySource is the pre-NextBatch source contract: everything a Source
// provides except bulk delivery. Third-party implementations written
// against the old interface satisfy it unchanged.
type LegacySource interface {
	Next() (id cfg.BlockID, ok bool)
	Skip(n uint64) (skipped uint64, err error)
	Name() string
	TotalInsts() (n uint64, exact bool)
	Close() error
}

// Batched adapts a legacy source to the full Source interface, deriving
// NextBatch from repeated Next calls. A source that already implements
// Source is returned as-is. The adapter forwards only the Source methods:
// optional contracts on the wrapped value (Bind, warmup regions, Seekable)
// are hidden, so adapt third-party sources, not the built-in ones.
func Batched(s LegacySource) Source {
	if full, ok := s.(Source); ok {
		return full
	}
	return &batchAdapter{s}
}

type batchAdapter struct{ LegacySource }

func (a *batchAdapter) NextBatch(dst []cfg.BlockID) int {
	n := 0
	for n < len(dst) {
		id, ok := a.LegacySource.Next()
		if !ok {
			break
		}
		dst[n] = id
		n++
	}
	return n
}

// GenSource produces the block sequence on the fly from a seeded CFG walk,
// with no slice ever built. It emits exactly the sequence Generate would
// materialize for the same GenConfig.
type GenSource struct {
	g    *Generator
	name string
	max  uint64
	done bool
}

// NewGenSource returns a source that walks p from its entry under gc. As
// with Generate, emission stops once gc.MaxInsts CFG-level instructions
// have been emitted (the block crossing the threshold is included) or the
// program terminates; MaxInsts of 0 yields an empty source.
func NewGenSource(p *cfg.Program, gc GenConfig) *GenSource {
	return &GenSource{
		g:    NewGenerator(p, gc.Seed, gc.Profile),
		name: p.Name,
		max:  gc.MaxInsts,
	}
}

// Next returns the next executed block.
func (s *GenSource) Next() (cfg.BlockID, bool) {
	if s.done || s.g.Insts() >= s.max {
		s.done = true
		return cfg.NoBlock, false
	}
	id, ok := s.g.Next()
	if !ok {
		s.done = true
	}
	return id, ok
}

// NextBatch fills dst from the CFG walk, stopping at the generation budget
// or program termination — exactly the blocks len(dst) Next calls would
// deliver, through one call.
func (s *GenSource) NextBatch(dst []cfg.BlockID) int {
	n := 0
	for n < len(dst) {
		if s.done || s.g.Insts() >= s.max {
			s.done = true
			break
		}
		id, ok := s.g.Next()
		if !ok {
			s.done = true
			break
		}
		dst[n] = id
		n++
	}
	return n
}

// Skip fast-forwards the seeded CFG walk without layout expansion: blocks
// are stepped, not simulated, so skipping is an order of magnitude cheaper
// than simulating the same prefix. The generation budget (MaxInsts) applies
// to skipped instructions exactly as it does to emitted ones.
func (s *GenSource) Skip(n uint64) (uint64, error) {
	start := s.g.Insts()
	target := satAdd(start, n)
	for !s.done {
		if s.g.Insts() >= s.max {
			s.done = true
			break
		}
		ni, ok := s.g.PeekInsts()
		if !ok {
			s.done = true
			break
		}
		if satAdd(s.g.Insts(), uint64(ni)) > target {
			break
		}
		s.g.Next()
	}
	return s.g.Insts() - start, nil
}

// Name returns the program name.
func (s *GenSource) Name() string { return s.name }

// TotalInsts returns the instructions emitted so far; the count is exact
// once the source is exhausted.
func (s *GenSource) TotalInsts() (uint64, bool) { return s.g.Insts(), s.done }

// Close is a no-op.
func (s *GenSource) Close() error { return nil }

// SliceSource iterates a materialized block sequence.
type SliceSource struct {
	name   string
	blocks []cfg.BlockID
	insts  uint64
	i      int

	prog   *cfg.Program
	prefix []uint64 // prefix[i] = CFG insts before block i; built on first Skip
}

// NewSliceSource wraps an existing block slice as a source. The slice is
// not copied; insts is the sequence's total CFG-level instruction count.
func NewSliceSource(name string, blocks []cfg.BlockID, insts uint64) *SliceSource {
	return &SliceSource{name: name, blocks: blocks, insts: insts}
}

// Source returns a fresh source over the materialized trace.
func (t *Trace) Source() *SliceSource {
	return NewSliceSource(t.Name, t.Blocks, t.Insts)
}

// Next returns the next block of the slice.
func (s *SliceSource) Next() (cfg.BlockID, bool) {
	if s.i >= len(s.blocks) {
		return cfg.NoBlock, false
	}
	id := s.blocks[s.i]
	s.i++
	return id, true
}

// NextBatch copies the next blocks of the slice into dst.
func (s *SliceSource) NextBatch(dst []cfg.BlockID) int {
	n := copy(dst, s.blocks[s.i:])
	s.i += n
	return n
}

// Bind associates the program the trace was recorded against, giving the
// source the per-block instruction counts Skip needs.
func (s *SliceSource) Bind(p *cfg.Program) {
	if p != s.prog {
		s.prog, s.prefix = p, nil
	}
}

// Skip jumps the iterator forward by prefix-summed block lengths: the
// prefix-sum table is built once on first use, then every skip is a binary
// search plus an index assignment.
func (s *SliceSource) Skip(n uint64) (uint64, error) {
	if s.i >= len(s.blocks) || n == 0 {
		return 0, nil
	}
	if s.prog == nil {
		return 0, errors.New("trace: SliceSource.Skip needs a program (Bind)")
	}
	if s.prefix == nil {
		s.prefix = make([]uint64, len(s.blocks)+1)
		for i, id := range s.blocks {
			if int(id) < 0 || int(id) >= len(s.prog.Blocks) {
				s.prefix = nil
				return 0, errors.New("trace: block ID outside the bound program")
			}
			s.prefix[i+1] = s.prefix[i] + uint64(s.prog.Blocks[id].NInsts)
		}
	}
	target := satAdd(s.prefix[s.i], n)
	// The largest boundary j with prefix[j] <= target; j >= s.i because
	// prefix[s.i] <= target.
	j := sort.Search(len(s.prefix), func(k int) bool { return s.prefix[k] > target }) - 1
	skipped := s.prefix[j] - s.prefix[s.i]
	s.i = j
	return skipped, nil
}

// Name returns the benchmark name.
func (s *SliceSource) Name() string { return s.name }

// TotalInsts returns the exact trace total.
func (s *SliceSource) TotalInsts() (uint64, bool) { return s.insts, true }

// Close is a no-op.
func (s *SliceSource) Close() error { return nil }

// ForEachPair streams src, invoking f for every block together with the
// dynamically following block (cfg.NoBlock for the last) — the lookahead
// that layout expansion needs. It consumes the source but does not close
// it.
func ForEachPair(src Source, f func(cur, next cfg.BlockID)) {
	cur, ok := src.Next()
	for ok {
		next, nextOK := src.Next()
		nb := cfg.NoBlock
		if nextOK {
			nb = next
		}
		f(cur, nb)
		cur, ok = next, nextOK
	}
}

// Drain consumes src to exhaustion and materializes it as a Trace. It is
// the bridge back from the streaming world for analyses that genuinely
// need random access; memory is proportional to the trace length.
func Drain(src Source) (*Trace, error) {
	t := &Trace{Name: src.Name()}
	for {
		id, ok := src.Next()
		if !ok {
			break
		}
		t.Blocks = append(t.Blocks, id)
	}
	if err := src.Close(); err != nil {
		return nil, err
	}
	t.Insts, _ = src.TotalInsts()
	return t, nil
}
