// Pull-based trace supply. A Source delivers the dynamic basic-block
// sequence one block at a time, so consumers (the simulator, codecs,
// analyses) run in memory independent of trace length: a 100M-instruction
// run needs no materialized block slice anywhere on the trace path.
//
// Three implementations cover the delivery modes:
//
//   - GenSource produces blocks on the fly from the seeded CFG walk
//     (NewGenSource); nothing is ever materialized.
//   - FileSource incrementally decodes the binary trace format (Open,
//     NewReader in file.go), so saved traces far larger than RAM replay.
//   - SliceSource wraps an existing []cfg.BlockID (NewSliceSource, or
//     Trace.Source) for tests and profiles that already hold a trace.
package trace

import "streamfetch/internal/cfg"

// Source supplies a dynamic basic-block sequence incrementally. Sources are
// single-use forward iterators: once exhausted they stay exhausted, and a
// fresh source is needed to walk the trace again. Sources are not safe for
// concurrent use.
type Source interface {
	// Next returns the next executed block; ok is false once the trace is
	// exhausted.
	Next() (id cfg.BlockID, ok bool)
	// Name returns the benchmark name the trace records.
	Name() string
	// TotalInsts returns the trace's CFG-level instruction count and
	// whether it is exact. Sources that know their full length up front
	// (in-memory traces, file headers) report it immediately; streamed
	// sources report a running or unknown count (exact only once the
	// stream is exhausted, and 0 for formats that carry no running
	// count).
	TotalInsts() (n uint64, exact bool)
	// Close releases any resources held by the source and reports any
	// decode error encountered while streaming. Close on generator- and
	// slice-backed sources is a no-op.
	Close() error
}

// GenSource produces the block sequence on the fly from a seeded CFG walk,
// with no slice ever built. It emits exactly the sequence Generate would
// materialize for the same GenConfig.
type GenSource struct {
	g    *Generator
	name string
	max  uint64
	done bool
}

// NewGenSource returns a source that walks p from its entry under gc. As
// with Generate, emission stops once gc.MaxInsts CFG-level instructions
// have been emitted (the block crossing the threshold is included) or the
// program terminates; MaxInsts of 0 yields an empty source.
func NewGenSource(p *cfg.Program, gc GenConfig) *GenSource {
	return &GenSource{
		g:    NewGenerator(p, gc.Seed, gc.Profile),
		name: p.Name,
		max:  gc.MaxInsts,
	}
}

// Next returns the next executed block.
func (s *GenSource) Next() (cfg.BlockID, bool) {
	if s.done || s.g.Insts() >= s.max {
		s.done = true
		return cfg.NoBlock, false
	}
	id, ok := s.g.Next()
	if !ok {
		s.done = true
	}
	return id, ok
}

// Name returns the program name.
func (s *GenSource) Name() string { return s.name }

// TotalInsts returns the instructions emitted so far; the count is exact
// once the source is exhausted.
func (s *GenSource) TotalInsts() (uint64, bool) { return s.g.Insts(), s.done }

// Close is a no-op.
func (s *GenSource) Close() error { return nil }

// SliceSource iterates a materialized block sequence.
type SliceSource struct {
	name   string
	blocks []cfg.BlockID
	insts  uint64
	i      int
}

// NewSliceSource wraps an existing block slice as a source. The slice is
// not copied; insts is the sequence's total CFG-level instruction count.
func NewSliceSource(name string, blocks []cfg.BlockID, insts uint64) *SliceSource {
	return &SliceSource{name: name, blocks: blocks, insts: insts}
}

// Source returns a fresh source over the materialized trace.
func (t *Trace) Source() *SliceSource {
	return NewSliceSource(t.Name, t.Blocks, t.Insts)
}

// Next returns the next block of the slice.
func (s *SliceSource) Next() (cfg.BlockID, bool) {
	if s.i >= len(s.blocks) {
		return cfg.NoBlock, false
	}
	id := s.blocks[s.i]
	s.i++
	return id, true
}

// Name returns the benchmark name.
func (s *SliceSource) Name() string { return s.name }

// TotalInsts returns the exact trace total.
func (s *SliceSource) TotalInsts() (uint64, bool) { return s.insts, true }

// Close is a no-op.
func (s *SliceSource) Close() error { return nil }

// ForEachPair streams src, invoking f for every block together with the
// dynamically following block (cfg.NoBlock for the last) — the lookahead
// that layout expansion needs. It consumes the source but does not close
// it.
func ForEachPair(src Source, f func(cur, next cfg.BlockID)) {
	cur, ok := src.Next()
	for ok {
		next, nextOK := src.Next()
		nb := cfg.NoBlock
		if nextOK {
			nb = next
		}
		f(cur, nb)
		cur, ok = next, nextOK
	}
}

// Drain consumes src to exhaustion and materializes it as a Trace. It is
// the bridge back from the streaming world for analyses that genuinely
// need random access; memory is proportional to the trace length.
func Drain(src Source) (*Trace, error) {
	t := &Trace{Name: src.Name()}
	for {
		id, ok := src.Next()
		if !ok {
			break
		}
		t.Blocks = append(t.Blocks, id)
	}
	if err := src.Close(); err != nil {
		return nil, err
	}
	t.Insts, _ = src.TotalInsts()
	return t, nil
}
