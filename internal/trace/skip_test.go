package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"streamfetch/internal/cfg"
)

// skipOracle computes Skip's contract by hand on a materialized trace: the
// maximal whole-block prefix, starting at block i0, whose cumulative
// instruction count does not exceed n. It returns the instructions skipped
// and the index of the first remaining block.
func skipOracle(prog *cfg.Program, tr *Trace, i0 int, n uint64) (uint64, int) {
	skipped := uint64(0)
	i := i0
	for i < len(tr.Blocks) {
		ni := uint64(prog.Blocks[tr.Blocks[i]].NInsts)
		if skipped+ni > n {
			break
		}
		skipped += ni
		i++
	}
	return skipped, i
}

// skipTrace builds the reference trace every backing is checked against.
// 120k instructions is ~25k blocks: several chunks, so file skips cross
// chunk boundaries.
func skipTrace(t testing.TB) (*cfg.Program, *Trace) {
	t.Helper()
	prog := genProg(t, "164.gzip")
	return prog, Generate(prog, GenConfig{Seed: 11, MaxInsts: 120_000})
}

// sources returns fresh, program-bound sources over the identical
// sequence, one per backing (generator, slice, plain reader, indexed
// file, legacy v1).
func sources(t *testing.T, prog *cfg.Program, tr *Trace) map[string]Source {
	t.Helper()

	var v2 bytes.Buffer
	if err := tr.Write(&v2); err != nil {
		t.Fatal(err)
	}
	plain, err := NewReader(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	plain.Bind(prog)

	v1, err := NewReader(bytes.NewReader(writeV1(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	v1.Bind(prog)

	indexed := openIndexed(t, prog, tr)
	if !indexed.Seekable() {
		t.Fatal("indexed file source is not seekable")
	}

	slice := tr.Source()
	slice.Bind(prog)

	return map[string]Source{
		"gen":     NewGenSource(prog, GenConfig{Seed: 11, MaxInsts: 120_000}),
		"slice":   slice,
		"plain":   plain,
		"indexed": indexed,
		"v1":      v1,
	}
}

// openIndexed writes tr with the chunk index to a temp file and opens it.
func openIndexed(t *testing.T, prog *cfg.Program, tr *Trace) *FileSource {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, tr.Name)
	if err != nil {
		t.Fatal(err)
	}
	w.BindProgram(prog)
	for _, id := range tr.Blocks {
		if err := w.Append(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(tr.Insts); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	src.Bind(prog)
	t.Cleanup(func() { src.Close() })
	return src
}

// TestSkipDifferential: on every backing, skip-then-Next is equivalent to
// Next-and-discard — for skips of zero, within a block run, across chunk
// boundaries, to the exact end, and past EOF.
func TestSkipDifferential(t *testing.T) {
	prog, tr := skipTrace(t)
	chunk1 := uint64(0)
	for _, id := range tr.Blocks[:chunkBlocks] {
		chunk1 += uint64(prog.Blocks[id].NInsts)
	}
	skips := []uint64{0, 1, 7, 5_000, chunk1 - 1, chunk1, chunk1 + 1,
		3 * chunk1, tr.Insts - 1, tr.Insts, tr.Insts + 99_999, ^uint64(0)}
	for _, n := range skips {
		wantSkipped, wantIdx := skipOracle(prog, tr, 0, n)
		for name, src := range sources(t, prog, tr) {
			skipped, err := src.Skip(n)
			if err != nil {
				t.Fatalf("%s: Skip(%d): %v", name, n, err)
			}
			if skipped != wantSkipped {
				t.Fatalf("%s: Skip(%d) = %d, want %d", name, n, skipped, wantSkipped)
			}
			// The remainder must be the oracle's suffix, block for block.
			for i := wantIdx; i < len(tr.Blocks); i++ {
				id, ok := src.Next()
				if !ok {
					t.Fatalf("%s: Skip(%d): source ended at block %d, want %d more",
						name, n, i, len(tr.Blocks)-i)
				}
				if id != tr.Blocks[i] {
					t.Fatalf("%s: Skip(%d): block %d = %d, want %d", name, n, i, id, tr.Blocks[i])
				}
			}
			if _, ok := src.Next(); ok {
				t.Fatalf("%s: Skip(%d): source outlived the trace", name, n)
			}
			if err := src.Close(); err != nil {
				t.Fatalf("%s: Close: %v", name, err)
			}
		}
	}
}

// TestSkipRepeated: consecutive skips compose — each one applies the
// maximal-prefix rule from the current position.
func TestSkipRepeated(t *testing.T) {
	prog, tr := skipTrace(t)
	steps := []uint64{13, 40_000, 0, 25_000, 999}
	for name, src := range sources(t, prog, tr) {
		idx, pos := 0, uint64(0)
		for _, n := range steps {
			wantSkipped, wantIdx := skipOracle(prog, tr, idx, n)
			skipped, err := src.Skip(n)
			if err != nil {
				t.Fatalf("%s: Skip(%d) at %d: %v", name, n, pos, err)
			}
			if skipped != wantSkipped {
				t.Fatalf("%s: Skip(%d) at %d = %d, want %d", name, n, pos, skipped, wantSkipped)
			}
			idx, pos = wantIdx, pos+skipped
			// Interleave a read so skips compose with delivery.
			if idx < len(tr.Blocks) {
				id, ok := src.Next()
				if !ok || id != tr.Blocks[idx] {
					t.Fatalf("%s: Next after Skip at block %d = (%v,%v), want %d",
						name, idx, id, ok, tr.Blocks[idx])
				}
				idx++
			}
		}
		if err := src.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
}

// TestSkipNeedsProgram: slice- and file-backed sources refuse to skip
// without a bound program rather than miscounting.
func TestSkipNeedsProgram(t *testing.T) {
	_, tr := skipTrace(t)
	if _, err := tr.Source().Skip(10); err == nil {
		t.Error("SliceSource.Skip without Bind succeeded")
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Skip(10); err == nil {
		t.Error("FileSource.Skip without Bind succeeded")
	}
}

// TestIndexRoundTrip: an index-bound writer produces a file whose index
// reports the exact totals up front, while index-less writes and legacy
// files stay non-seekable but fully readable.
func TestIndexRoundTrip(t *testing.T) {
	prog, tr := skipTrace(t)
	src := openIndexed(t, prog, tr)
	if n, exact := src.TotalInsts(); !exact || n != tr.Insts {
		t.Fatalf("indexed TotalInsts = (%d,%v), want (%d,true)", n, exact, tr.Insts)
	}
	if n, exact := src.TotalBlocks(); !exact || n != uint64(len(tr.Blocks)) {
		t.Fatalf("indexed TotalBlocks = (%d,%v), want (%d,true)", n, exact, len(tr.Blocks))
	}
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Blocks) != len(tr.Blocks) || got.Insts != tr.Insts {
		t.Fatalf("indexed drain: %d blocks/%d insts, want %d/%d",
			len(got.Blocks), got.Insts, len(tr.Blocks), tr.Insts)
	}
	for i := range tr.Blocks {
		if got.Blocks[i] != tr.Blocks[i] {
			t.Fatalf("indexed drain: block %d mismatch", i)
		}
	}

	// The same bytes through a plain reader (no seeking) still replay.
	path := filepath.Join(t.TempDir(), "plain.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	unindexed, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer unindexed.Close()
	if unindexed.Seekable() {
		t.Error("index-less file claims to be seekable")
	}
}

// TestIntervalTiling: for any shard count, the measured windows of
// consecutive intervals cover the trace exactly once, warmup lead-ins
// re-deliver blocks from the preceding interval, and the per-interval
// accounting sums to the trace totals.
func TestIntervalTiling(t *testing.T) {
	prog, tr := skipTrace(t)
	total := tr.Insts
	// Both warmup edges snap to whole blocks, so the lead-in may overshoot
	// the requested warmup by strictly less than one block.
	maxBlock := uint64(0)
	for _, b := range prog.Blocks {
		if n := uint64(b.NInsts); n > maxBlock {
			maxBlock = n
		}
	}
	for _, shards := range []int{1, 2, 3, 4, 7} {
		for _, mode := range []IntervalConfig{{Warmup: 0}, {Warmup: 10_000}, {Warmup: 10_000, FuncWarm: true}} {
			warmup := mode.Warmup
			var merged []cfg.BlockID
			var measured uint64
			for i := 0; i < shards; i++ {
				start := total * uint64(i) / uint64(shards)
				end := total * uint64(i+1) / uint64(shards)
				if i == shards-1 {
					end = 0
				}
				src := tr.Source()
				iv, err := NewInterval(src, prog, IntervalConfig{
					Start: start, End: end, Warmup: warmup, FuncWarm: mode.FuncWarm,
				})
				if err != nil {
					t.Fatal(err)
				}
				if warmup == 0 && iv.WarmupPending() && start == 0 {
					t.Fatalf("shards=%d: interval 0 claims pending warmup without any", shards)
				}
				warmSeen, fwSeen := uint64(0), uint64(0)
				for {
					id, ok := iv.Next()
					if !ok {
						break
					}
					switch iv.LastRegion() {
					case RegionWarm:
						warmSeen += uint64(prog.Blocks[id].NInsts)
						if warmSeen >= warmup+maxBlock {
							t.Fatalf("shards=%d interval %d: warm lead-in %d exceeds warmup %d + block slack %d",
								shards, i, warmSeen, warmup, maxBlock)
						}
					case RegionFuncWarm:
						if !mode.FuncWarm {
							t.Fatalf("shards=%d interval %d: functional-warming block without FuncWarm", shards, i)
						}
						fwSeen += uint64(prog.Blocks[id].NInsts)
					default:
						merged = append(merged, id)
					}
				}
				if iv.WarmupInsts() != warmSeen {
					t.Fatalf("WarmupInsts = %d, saw %d", iv.WarmupInsts(), warmSeen)
				}
				if iv.FuncWarmedInsts() != fwSeen {
					t.Fatalf("FuncWarmedInsts = %d, saw %d", iv.FuncWarmedInsts(), fwSeen)
				}
				if mode.FuncWarm {
					// The functional prefix plus the lead-ins cover the
					// whole trace up to the measure window: nothing is
					// skipped.
					if iv.SkippedInsts() != 0 {
						t.Fatalf("FuncWarm interval skipped %d insts", iv.SkippedInsts())
					}
					if got := fwSeen + warmSeen + iv.MeasuredInsts(); got != total-iv.SkippedInsts() && i == shards-1 {
						t.Fatalf("shards=%d interval %d: delivered %d of %d insts", shards, i, got, total)
					}
				}
				measured += iv.MeasuredInsts()
				if err := iv.Close(); err != nil {
					t.Fatal(err)
				}
			}
			if measured != total {
				t.Fatalf("shards=%d warmup=%d: measured %d insts, want %d",
					shards, warmup, measured, total)
			}
			if len(merged) != len(tr.Blocks) {
				t.Fatalf("shards=%d warmup=%d: merged %d blocks, want %d",
					shards, warmup, len(merged), len(tr.Blocks))
			}
			for j := range merged {
				if merged[j] != tr.Blocks[j] {
					t.Fatalf("shards=%d warmup=%d: block %d = %d, want %d",
						shards, warmup, j, merged[j], tr.Blocks[j])
				}
			}
		}
	}
}

// TestIntervalOverGenSource: intervals tile a generated (never
// materialized) source identically to the materialized reference.
func TestIntervalOverGenSource(t *testing.T) {
	prog, tr := skipTrace(t)
	gc := GenConfig{Seed: 11, MaxInsts: 120_000}
	total := gc.MaxInsts // partition basis: the budget, not the exact total
	const shards = 4
	var merged []cfg.BlockID
	for i := 0; i < shards; i++ {
		start := total * uint64(i) / uint64(shards)
		end := total * uint64(i+1) / uint64(shards)
		if i == shards-1 {
			end = 0 // the crossing block may overshoot the budget
		}
		iv, err := NewInterval(NewGenSource(prog, gc), prog,
			IntervalConfig{Start: start, End: end, Warmup: 5_000})
		if err != nil {
			t.Fatal(err)
		}
		for {
			id, ok := iv.Next()
			if !ok {
				break
			}
			if !iv.LastWarm() {
				merged = append(merged, id)
			}
		}
		if err := iv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(merged) != len(tr.Blocks) {
		t.Fatalf("merged %d blocks, want %d", len(merged), len(tr.Blocks))
	}
	for j := range merged {
		if merged[j] != tr.Blocks[j] {
			t.Fatalf("block %d = %d, want %d", j, merged[j], tr.Blocks[j])
		}
	}
}
