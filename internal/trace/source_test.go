package trace

import (
	"bytes"
	"encoding/binary"
	"testing"

	"streamfetch/internal/cfg"
)

// TestGenSourceMatchesGenerate: the streaming generator must emit exactly
// the sequence Generate materializes for the same config.
func TestGenSourceMatchesGenerate(t *testing.T) {
	prog := genProg(t, "175.vpr")
	gc := GenConfig{Seed: 5, MaxInsts: 50_000}
	tr := Generate(prog, gc)
	src := NewGenSource(prog, gc)
	for i, want := range tr.Blocks {
		id, ok := src.Next()
		if !ok {
			t.Fatalf("source ended at block %d, trace has %d", i, len(tr.Blocks))
		}
		if id != want {
			t.Fatalf("block %d: source %d, trace %d", i, id, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source emitted more blocks than the materialized trace")
	}
	n, exact := src.TotalInsts()
	if !exact || n != tr.Insts {
		t.Fatalf("TotalInsts = (%d,%v), want (%d,true)", n, exact, tr.Insts)
	}
}

// TestGenSourceRunningCount: before exhaustion the instruction count is a
// running (inexact) figure.
func TestGenSourceRunningCount(t *testing.T) {
	prog := genProg(t, "164.gzip")
	src := NewGenSource(prog, GenConfig{Seed: 1, MaxInsts: 10_000})
	if _, ok := src.Next(); !ok {
		t.Fatal("empty source")
	}
	if n, exact := src.TotalInsts(); exact || n == 0 {
		t.Fatalf("mid-stream TotalInsts = (%d,%v), want a running inexact count", n, exact)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSliceSource: wrapping a materialized trace yields its sequence and
// exact totals; repeated Source calls restart from the beginning.
func TestSliceSource(t *testing.T) {
	tr := &Trace{Name: "x", Insts: 42, Blocks: []cfg.BlockID{3, 1, 4, 1, 5}}
	for round := 0; round < 2; round++ {
		src := tr.Source()
		if src.Name() != "x" {
			t.Fatalf("Name = %q", src.Name())
		}
		if n, exact := src.TotalInsts(); n != 42 || !exact {
			t.Fatalf("TotalInsts = (%d,%v), want (42,true)", n, exact)
		}
		for i, want := range tr.Blocks {
			id, ok := src.Next()
			if !ok || id != want {
				t.Fatalf("round %d block %d: (%v,%v), want %d", round, i, id, ok, want)
			}
		}
		if _, ok := src.Next(); ok {
			t.Fatal("source did not end")
		}
	}
}

// TestFileSourceStreams: a written trace replays block for block through
// the incremental decoder, with the footer totals exact at EOF.
func TestFileSourceStreams(t *testing.T) {
	prog := genProg(t, "164.gzip")
	tr := Generate(prog, GenConfig{Seed: 9, MaxInsts: 30_000})
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	src, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if src.Name() != tr.Name {
		t.Fatalf("Name = %q, want %q", src.Name(), tr.Name)
	}
	if _, exact := src.TotalInsts(); exact {
		t.Fatal("v2 stream claims an exact total before EOF")
	}
	for i, want := range tr.Blocks {
		id, ok := src.Next()
		if !ok || id != want {
			t.Fatalf("block %d: (%v,%v), want %d", i, id, ok, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("decoder emitted extra blocks")
	}
	n, exact := src.TotalInsts()
	if !exact || n != tr.Insts {
		t.Fatalf("TotalInsts = (%d,%v), want (%d,true)", n, exact, tr.Insts)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileSourceTruncation: cutting the stream anywhere after the header
// must surface an error from Err/Close, never a silently short trace.
func TestFileSourceTruncation(t *testing.T) {
	tr := &Trace{Name: "t", Insts: 10}
	for i := 0; i < 10_000; i++ {
		tr.Blocks = append(tr.Blocks, cfg.BlockID(i%7))
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for _, cut := range []int{len(whole) - 1, len(whole) - 2, len(whole) / 2} {
		src, err := NewReader(bytes.NewReader(whole[:cut]))
		if err != nil {
			continue // header itself truncated: also acceptable
		}
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
		if src.Err() == nil {
			t.Errorf("cut at %d/%d: no decode error surfaced", cut, len(whole))
		}
		if src.Close() == nil {
			t.Errorf("cut at %d/%d: Close did not report the error", cut, len(whole))
		}
	}
}

// writeV1 encodes a trace in the legacy count-prefixed format.
func writeV1(t testing.TB, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(magicV1)
	var tmp [binary.MaxVarintLen64]byte
	uv := func(v uint64) { buf.Write(tmp[:binary.PutUvarint(tmp[:], v)]) }
	uv(uint64(len(tr.Name)))
	buf.WriteString(tr.Name)
	uv(tr.Insts)
	uv(uint64(len(tr.Blocks)))
	prev := int64(0)
	for _, id := range tr.Blocks {
		buf.Write(tmp[:binary.PutVarint(tmp[:], int64(id)-prev)])
		prev = int64(id)
	}
	return buf.Bytes()
}

// TestFileSourceReadsV1: the legacy format still decodes, with its totals
// exact up front.
func TestFileSourceReadsV1(t *testing.T) {
	tr := &Trace{Name: "legacy", Insts: 77, Blocks: []cfg.BlockID{0, 2, 2, 9, 1}}
	src, err := NewReader(bytes.NewReader(writeV1(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if n, exact := src.TotalInsts(); !exact || n != 77 {
		t.Fatalf("v1 TotalInsts = (%d,%v), want (77,true)", n, exact)
	}
	got, err := Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Insts != tr.Insts || len(got.Blocks) != len(tr.Blocks) {
		t.Fatalf("v1 round trip mismatch: %+v vs %+v", got, tr)
	}
	for i := range tr.Blocks {
		if got.Blocks[i] != tr.Blocks[i] {
			t.Fatalf("block %d mismatch", i)
		}
	}
}

// TestDrain: draining a source materializes the identical trace.
func TestDrain(t *testing.T) {
	prog := genProg(t, "164.gzip")
	gc := GenConfig{Seed: 4, MaxInsts: 20_000}
	want := Generate(prog, gc)
	got, err := Drain(NewGenSource(prog, gc))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || got.Insts != want.Insts || len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("drain mismatch: %v/%d/%d vs %v/%d/%d",
			got.Name, got.Insts, len(got.Blocks), want.Name, want.Insts, len(want.Blocks))
	}
}

// TestWriterMisuse: appending after Finish and double Finish are errors.
func TestWriterMisuse(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1); err == nil {
		t.Error("Append after Finish succeeded")
	}
	if err := w.Finish(0); err == nil {
		t.Error("double Finish succeeded")
	}
}
