// Fuzz coverage for the trace codecs: the service and the CLIs hand
// untrusted bytes to Open/NewReader and untrusted block sequences to the
// Writer, so the decoders must round-trip what the writer produces, reject
// truncation inside the stream, tolerate truncation that only clips the
// trailing chunk index, and never panic or spin on corrupt input —
// including corrupt chunk indexes, which seeks consult before the stream.
package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"streamfetch/internal/cfg"
)

// encodePayload packs a block sequence as uvarints — the fuzz payload
// alphabet for FuzzTraceRoundTrip.
func encodePayload(blocks []cfg.BlockID) []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, id := range blocks {
		buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(id))]...)
	}
	return buf
}

// payloadBlocks decodes a fuzz payload into an in-program block sequence
// (ids reduced mod the program size, count bounded) plus its CFG
// instruction total.
func payloadBlocks(payload []byte, prog *cfg.Program) ([]cfg.BlockID, uint64) {
	const maxBlocks = 1 << 15
	var blocks []cfg.BlockID
	var insts uint64
	r := bytes.NewReader(payload)
	for len(blocks) < maxBlocks {
		v, err := binary.ReadUvarint(r)
		if err != nil {
			break
		}
		id := cfg.BlockID(v % uint64(len(prog.Blocks)))
		blocks = append(blocks, id)
		insts += uint64(prog.Blocks[id].NInsts)
	}
	return blocks, insts
}

// encodeTrace serializes blocks in the current format; withIndex binds the
// program so the writer appends the seek index.
func encodeTrace(t testing.TB, prog *cfg.Program, blocks []cfg.BlockID, insts uint64, withIndex bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, prog.Name)
	if err != nil {
		t.Fatal(err)
	}
	if withIndex {
		w.BindProgram(prog)
	}
	for _, id := range blocks {
		if err := w.Append(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(insts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drainSource reads a source to exhaustion.
func drainSource(t *testing.T, src Source) []cfg.BlockID {
	t.Helper()
	var out []cfg.BlockID
	for {
		id, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, id)
	}
	return out
}

func writeTempTrace(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fuzz.trc")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// addTestdataSeeds seeds a fuzz target with every committed trace file.
func addTestdataSeeds(f *testing.F, add func(data []byte)) {
	f.Helper()
	entries, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		// Only the committed trace files; testdata/fuzz is the corpus dir
		// the fuzzing engine itself manages.
		if e.IsDir() || filepath.Ext(e.Name()) != ".trc" {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		add(data)
	}
}

// FuzzTraceRoundTrip drives writer→reader round trips from an arbitrary
// block sequence and an arbitrary truncation point: both formats must
// reproduce the sequence exactly; seek-based Skip must agree with the
// prefix-summed slice oracle; truncation inside the stream or footer must
// surface a decode error; truncation that only clips the trailing index
// must decode cleanly (the index is an optimization, never a dependency).
func FuzzTraceRoundTrip(f *testing.F) {
	prog := genProg(f, "164.gzip")
	for _, n := range []uint64{0, 1_500, 30_000} {
		tr := Generate(prog, GenConfig{Seed: 99, MaxInsts: n})
		f.Add(encodePayload(tr.Blocks), uint32(0))
		f.Add(encodePayload(tr.Blocks), uint32(12345))
	}
	f.Fuzz(func(t *testing.T, payload []byte, cut uint32) {
		blocks, insts := payloadBlocks(payload, prog)
		plain := encodeTrace(t, prog, blocks, insts, false)
		indexed := encodeTrace(t, prog, blocks, insts, true)
		if !bytes.Equal(plain, indexed[:len(plain)]) {
			t.Fatal("index-less encoding is not a prefix of the indexed one")
		}

		// Round trip through the current format, streamed.
		src, err := NewReader(bytes.NewReader(plain))
		if err != nil {
			t.Fatal(err)
		}
		assertSequence(t, src, blocks, insts, "v2 plain")

		// Round trip through the legacy format.
		v1src, err := NewReader(bytes.NewReader(writeV1(t, &Trace{Name: prog.Name, Blocks: blocks, Insts: insts})))
		if err != nil {
			t.Fatal(err)
		}
		if n, exact := v1src.TotalInsts(); !exact || n != insts {
			t.Fatalf("v1 totals up front: %d exact=%v, want %d", n, exact, insts)
		}
		assertSequence(t, v1src, blocks, insts, "v1")

		// Round trip through the indexed file, with a seek: Skip on the
		// indexed FileSource must agree with the SliceSource oracle.
		fsrc, err := Open(writeTempTrace(t, indexed))
		if err != nil {
			t.Fatal(err)
		}
		defer fsrc.Close()
		if !fsrc.Seekable() {
			t.Fatal("indexed file not seekable")
		}
		fsrc.Bind(prog)
		skip := uint64(cut) % (insts + 1)
		got, err := fsrc.Skip(skip)
		if err != nil {
			t.Fatalf("indexed Skip(%d): %v", skip, err)
		}
		oracle := NewSliceSource(prog.Name, blocks, insts)
		oracle.Bind(prog)
		want, err := oracle.Skip(skip)
		if err != nil {
			t.Fatalf("oracle Skip(%d): %v", skip, err)
		}
		if got != want {
			t.Fatalf("Skip(%d): file skipped %d, slice oracle %d", skip, got, want)
		}
		rest := drainSource(t, fsrc)
		wantRest := drainSource(t, oracle)
		if err := fsrc.Err(); err != nil {
			t.Fatalf("indexed drain after skip: %v", err)
		}
		if len(rest) != len(wantRest) {
			t.Fatalf("after Skip(%d): %d blocks remain, oracle has %d", skip, len(rest), len(wantRest))
		}
		for i := range rest {
			if rest[i] != wantRest[i] {
				t.Fatalf("after Skip(%d): block %d = %d, oracle %d", skip, i, rest[i], wantRest[i])
			}
		}

		// Truncation semantics.
		cutAt := int(cut) % (len(indexed) + 1)
		tsrc, err := Open(writeTempTrace(t, indexed[:cutAt]))
		if cutAt >= len(plain) {
			// Only index bytes are missing: stream and footer are intact,
			// so the file must still decode fully and cleanly.
			if err != nil {
				t.Fatalf("index-only truncation at %d/%d failed Open: %v", cutAt, len(indexed), err)
			}
			trunc := drainSource(t, tsrc)
			if err := tsrc.Close(); err != nil {
				t.Fatalf("index-only truncation at %d/%d failed decode: %v", cutAt, len(indexed), err)
			}
			if len(trunc) != len(blocks) {
				t.Fatalf("index-only truncation decoded %d blocks, want %d", len(trunc), len(blocks))
			}
			for i := range trunc {
				if trunc[i] != blocks[i] {
					t.Fatalf("index-only truncation: block %d = %d, want %d", i, trunc[i], blocks[i])
				}
			}
		} else {
			// Bytes missing from the stream or footer: a decode error is
			// mandatory — a truncated trace must never read as a shorter
			// valid trace.
			if err == nil {
				drainSource(t, tsrc)
				if tsrc.Err() == nil {
					t.Fatalf("truncation inside the stream at %d/%d decoded without error", cutAt, len(plain))
				}
				tsrc.Close()
			}
		}
	})
}

// assertSequence drains src and requires the exact block sequence, a clean
// stream and exact totals.
func assertSequence(t *testing.T, src Source, blocks []cfg.BlockID, insts uint64, label string) {
	t.Helper()
	got := drainSource(t, src)
	if err := src.Close(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("%s: decoded %d blocks, want %d", label, len(got), len(blocks))
	}
	for i := range got {
		if got[i] != blocks[i] {
			t.Fatalf("%s: block %d = %d, want %d", label, i, got[i], blocks[i])
		}
	}
	if n, exact := src.TotalInsts(); !exact || n != insts {
		t.Fatalf("%s: totals %d exact=%v, want %d", label, n, exact, insts)
	}
}

// FuzzOpen feeds arbitrary bytes to the file decoder — header, chunk
// stream, footer and chunk index all attacker-controlled — and requires
// that Open either fails cleanly or yields a source that can Skip (seeking
// through whatever index survived validation) and drain without panicking
// or running away. Seeds are the committed testdata traces, a legacy-v1
// encoding, and an indexed file with its index region corrupted.
func FuzzOpen(f *testing.F) {
	prog := genProg(f, "164.gzip")
	addTestdataSeeds(f, func(data []byte) {
		f.Add(data, uint64(0))
		f.Add(data, uint64(10_000))
	})
	tr := Generate(prog, GenConfig{Seed: 5, MaxInsts: 2_000})
	f.Add(writeV1(f, tr), uint64(500))
	indexed := encodeTrace(f, prog, tr.Blocks, tr.Insts, true)
	for _, flip := range []int{20, len(indexed) - 10, len(indexed) - 20} {
		if flip < 0 || flip >= len(indexed) {
			continue
		}
		corrupt := bytes.Clone(indexed)
		corrupt[flip] ^= 0xff
		f.Add(corrupt, uint64(1_000))
	}
	f.Fuzz(func(t *testing.T, data []byte, skip uint64) {
		src, err := Open(writeTempTrace(t, data))
		if err != nil {
			return
		}
		defer src.Close()
		src.Bind(prog)
		if _, err := src.Skip(skip); err != nil {
			return
		}
		limit := 4*len(data) + 1024 // every decoded block consumes stream bytes
		for n := 0; ; n++ {
			if _, ok := src.Next(); !ok {
				break
			}
			if n > limit {
				t.Fatalf("decoder emitted %d blocks from %d input bytes", n, len(data))
			}
		}
	})
}
