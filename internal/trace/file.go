// Binary trace file format. Traces can be written once and replayed by many
// simulations, mirroring the paper's trace-driven methodology. Both codecs
// stream: the Writer encodes blocks as they arrive and the FileSource
// decodes incrementally, so traces far larger than RAM can be written and
// replayed in constant memory.
//
// The current format (STRMTRC2) is a magic header, the benchmark name, then
// chunks of zig-zag varint deltas of block IDs (which compresses loopy
// traces well), a zero-length terminator chunk, and a footer carrying the
// total instruction and block counts — a trailer rather than a header
// because a streaming writer only knows the totals at the end. The previous
// count-prefixed format (STRMTRC1) is still read.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"streamfetch/internal/cfg"
)

const (
	magicV1 = "STRMTRC1"
	magicV2 = "STRMTRC2"
	maxName = 1 << 10
	// chunkBlocks is the writer's encoding granularity. Chunks exist so a
	// reader can tell block records from the footer without a count up
	// front; their size only trades header overhead (1-2 bytes per chunk)
	// against buffering.
	chunkBlocks = 4096
)

// Writer streams a block sequence into the binary trace format. Blocks are
// encoded as they are appended; nothing is buffered beyond the current
// chunk, so arbitrarily long traces are written in constant memory. The
// caller must Finish to emit the footer; a trace without one is detected as
// truncated on read.
type Writer struct {
	bw       *bufio.Writer
	chunk    []cfg.BlockID
	prev     int64
	blocks   uint64
	finished bool
}

// NewWriter writes the header for a trace named name and returns the
// streaming encoder.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	if len(name) > maxName {
		return nil, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	tw := &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
	if _, err := tw.bw.WriteString(magicV2); err != nil {
		return nil, err
	}
	if err := tw.writeUvarint(uint64(len(name))); err != nil {
		return nil, err
	}
	if _, err := tw.bw.WriteString(name); err != nil {
		return nil, err
	}
	return tw, nil
}

func (w *Writer) writeUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.bw.Write(buf[:n])
	return err
}

// Append adds one block to the trace.
func (w *Writer) Append(id cfg.BlockID) error {
	if w.finished {
		return errors.New("trace: Append after Finish")
	}
	w.chunk = append(w.chunk, id)
	if len(w.chunk) >= chunkBlocks {
		return w.flushChunk()
	}
	return nil
}

// Blocks returns the number of blocks appended so far.
func (w *Writer) Blocks() uint64 { return w.blocks + uint64(len(w.chunk)) }

func (w *Writer) flushChunk() error {
	if len(w.chunk) == 0 {
		return nil
	}
	if err := w.writeUvarint(uint64(len(w.chunk))); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for _, id := range w.chunk {
		delta := int64(id) - w.prev
		w.prev = int64(id)
		n := binary.PutVarint(buf[:], delta)
		if _, err := w.bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	w.blocks += uint64(len(w.chunk))
	w.chunk = w.chunk[:0]
	return nil
}

// Finish flushes the remaining blocks and writes the terminator and footer;
// totalInsts is the trace's CFG-level instruction count. The Writer is
// unusable afterwards.
func (w *Writer) Finish(totalInsts uint64) error {
	if w.finished {
		return errors.New("trace: Finish called twice")
	}
	w.finished = true
	if err := w.flushChunk(); err != nil {
		return err
	}
	if err := w.writeUvarint(0); err != nil { // terminator chunk
		return err
	}
	if err := w.writeUvarint(totalInsts); err != nil {
		return err
	}
	if err := w.writeUvarint(w.blocks); err != nil {
		return err
	}
	return w.bw.Flush()
}

// Write serializes t to w in the current format.
func (t *Trace) Write(w io.Writer) error {
	tw, err := NewWriter(w, t.Name)
	if err != nil {
		return err
	}
	for _, id := range t.Blocks {
		if err := tw.Append(id); err != nil {
			return err
		}
	}
	return tw.Finish(t.Insts)
}

// FileSource incrementally decodes a binary trace stream (either format).
// It implements Source; decode errors (including truncation) surface from
// Err and Close once Next returns false.
type FileSource struct {
	br   *bufio.Reader
	file io.Closer // underlying file when opened via Open

	name string
	prev int64
	read uint64 // blocks delivered so far
	done bool
	err  error

	v1        bool
	remaining uint64 // v1: blocks left in the trace; v2: in the current chunk
	insts     uint64 // v1: from the header; v2: from the footer once read
	exact     bool
}

// NewReader reads the trace header from r and returns a streaming source
// over its blocks.
func NewReader(r io.Reader) (*FileSource, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	got := make([]byte, len(magicV2))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	s := &FileSource{br: br}
	switch string(got) {
	case magicV2:
	case magicV1:
		s.v1 = true
	default:
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > maxName {
		return nil, fmt.Errorf("trace: name length %d exceeds limit", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	s.name = string(name)
	if s.v1 {
		// The old format carries both totals up front.
		if s.insts, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("trace: reading instruction count: %w", err)
		}
		if s.remaining, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("trace: reading block count: %w", err)
		}
		const maxBlocks = 1 << 40
		if s.remaining > maxBlocks {
			return nil, fmt.Errorf("trace: block count %d exceeds limit", s.remaining)
		}
		s.exact = true
	}
	return s, nil
}

// Open opens a trace file as a streaming source; Close closes the file.
func Open(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.file = f
	return s, nil
}

// Next decodes and returns the next block of the trace.
func (s *FileSource) Next() (cfg.BlockID, bool) {
	if s.done {
		return cfg.NoBlock, false
	}
	if s.remaining == 0 {
		if s.v1 {
			s.done = true
			return cfg.NoBlock, false
		}
		n, err := binary.ReadUvarint(s.br)
		if err != nil {
			return s.fail(fmt.Errorf("trace: reading chunk header after block %d: %w", s.read, err))
		}
		if n == 0 { // terminator: read and validate the footer
			s.done = true
			if s.insts, err = binary.ReadUvarint(s.br); err != nil {
				s.err = fmt.Errorf("trace: reading instruction count: %w", err)
				return cfg.NoBlock, false
			}
			count, err := binary.ReadUvarint(s.br)
			if err != nil {
				s.err = fmt.Errorf("trace: reading block count: %w", err)
				return cfg.NoBlock, false
			}
			if count != s.read {
				s.err = fmt.Errorf("trace: footer says %d blocks, decoded %d", count, s.read)
				return cfg.NoBlock, false
			}
			s.exact = true
			return cfg.NoBlock, false
		}
		s.remaining = n
	}
	delta, err := binary.ReadVarint(s.br)
	if err != nil {
		return s.fail(fmt.Errorf("trace: reading block %d: %w", s.read, err))
	}
	s.prev += delta
	if s.prev < 0 {
		return s.fail(fmt.Errorf("trace: negative block ID at record %d", s.read))
	}
	s.remaining--
	s.read++
	return cfg.BlockID(s.prev), true
}

func (s *FileSource) fail(err error) (cfg.BlockID, bool) {
	s.done = true
	s.err = err
	return cfg.NoBlock, false
}

// Name returns the benchmark name from the header.
func (s *FileSource) Name() string { return s.name }

// TotalInsts returns the trace's instruction count: exact up front for the
// old header-bearing format, and exact once the footer has been read for
// the current one (0 before that — the on-disk trace carries no running
// count).
func (s *FileSource) TotalInsts() (uint64, bool) { return s.insts, s.exact }

// Err returns the first decode error encountered (nil on a clean stream).
// A truncated trace — one whose footer is missing or inconsistent — is an
// error, not a short trace.
func (s *FileSource) Err() error { return s.err }

// Close releases the underlying file (when opened via Open) and returns the
// sticky decode error, if any.
func (s *FileSource) Close() error {
	if s.file != nil {
		cerr := s.file.Close()
		s.file = nil
		if s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// Read deserializes a trace written by Write, materializing it in memory.
// Callers that only iterate should use NewReader (or Open) instead.
func Read(r io.Reader) (*Trace, error) {
	s, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return Drain(s)
}
