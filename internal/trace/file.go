// Binary trace file format. Traces can be written once and replayed by many
// simulations, mirroring the paper's trace-driven methodology. The format is
// a magic header followed by zig-zag varint deltas of block IDs, which
// compresses loopy traces well.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"streamfetch/internal/cfg"
)

const (
	magic   = "STRMTRC1"
	maxName = 1 << 10
)

// Write serializes t to w.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if len(t.Name) > maxName {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	var hdr [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(hdr[:], v)
		_, err := bw.Write(hdr[:n])
		return err
	}
	if err := writeUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := writeUvarint(t.Insts); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(t.Blocks))); err != nil {
		return err
	}
	prev := int64(0)
	var buf [binary.MaxVarintLen64]byte
	for _, id := range t.Blocks {
		delta := int64(id) - prev
		prev = int64(id)
		n := binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > maxName {
		return nil, fmt.Errorf("trace: name length %d exceeds limit", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	insts, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading instruction count: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading block count: %w", err)
	}
	const maxBlocks = 1 << 32
	if count > maxBlocks {
		return nil, fmt.Errorf("trace: block count %d exceeds limit", count)
	}
	t := &Trace{
		Name:   string(name),
		Insts:  insts,
		Blocks: make([]cfg.BlockID, 0, count),
	}
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading block %d: %w", i, err)
		}
		prev += delta
		if prev < 0 {
			return nil, fmt.Errorf("trace: negative block ID at record %d", i)
		}
		t.Blocks = append(t.Blocks, cfg.BlockID(prev))
	}
	return t, nil
}
