// Binary trace file format. Traces can be written once and replayed by many
// simulations, mirroring the paper's trace-driven methodology. Both codecs
// stream: the Writer encodes blocks as they arrive and the FileSource
// decodes incrementally, so traces far larger than RAM can be written and
// replayed in constant memory.
//
// The current format (STRMTRC2) is a magic header, the benchmark name, then
// chunks of zig-zag varint deltas of block IDs (which compresses loopy
// traces well), a zero-length terminator chunk, and a footer carrying the
// total instruction and block counts — a trailer rather than a header
// because a streaming writer only knows the totals at the end. An optional
// chunk index follows the footer (older readers stop at the footer and
// never see it): per-chunk stream offsets, block/instruction positions and
// decoder state, which is what lets Skip seek straight to an interval
// instead of decoding everything before it. The previous count-prefixed
// format (STRMTRC1) is still read.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"streamfetch/internal/cfg"
)

const (
	magicV1 = "STRMTRC1"
	magicV2 = "STRMTRC2"
	// indexMagic terminates the optional chunk index trailing the footer.
	// The index is backward-compatible both ways: old readers stop at the
	// footer and never see it, and index-less files simply skip linearly.
	indexMagic = "STRMIDX1"
	maxName    = 1 << 10
	// chunkBlocks is the writer's encoding granularity. Chunks exist so a
	// reader can tell block records from the footer without a count up
	// front (and, with the index, so Skip can seek); their size trades
	// header overhead (1-2 bytes per chunk) against buffering and seek
	// granularity.
	chunkBlocks = 4096
)

// chunkRef locates one chunk for seeking: the stream offset of its header
// and the decoder state on entry (blocks and instructions already consumed,
// and the running block ID the zig-zag deltas continue from).
type chunkRef struct {
	off    uint64
	blocks uint64
	insts  uint64
	prev   int64
}

// chunkIndex is the decoded footer index of a seekable trace file.
type chunkIndex struct {
	totalInsts  uint64
	totalBlocks uint64
	entries     []chunkRef
}

// find returns the last chunk whose starting instruction count is at most
// target (nil when even the first chunk starts beyond it).
func (ix *chunkIndex) find(target uint64) *chunkRef {
	j := sort.Search(len(ix.entries), func(k int) bool {
		return ix.entries[k].insts > target
	}) - 1
	if j < 0 {
		return nil
	}
	return &ix.entries[j]
}

// Writer streams a block sequence into the binary trace format. Blocks are
// encoded as they are appended; nothing is buffered beyond the current
// chunk, so arbitrarily long traces are written in constant memory. The
// caller must Finish to emit the footer; a trace without one is detected as
// truncated on read.
type Writer struct {
	bw       *bufio.Writer
	chunk    []cfg.BlockID
	prev     int64
	blocks   uint64
	finished bool

	// Index state. off is the stream offset written so far; when a
	// program is bound the writer records one chunkRef per chunk and
	// emits the seek index after the footer.
	off        uint64
	prog       *cfg.Program
	chunkInsts uint64
	instsSoFar uint64
	entries    []chunkRef
}

// NewWriter writes the header for a trace named name and returns the
// streaming encoder.
func NewWriter(w io.Writer, name string) (*Writer, error) {
	if len(name) > maxName {
		return nil, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	tw := &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
	if err := tw.writeString(magicV2); err != nil {
		return nil, err
	}
	if err := tw.writeUvarint(uint64(len(name))); err != nil {
		return nil, err
	}
	if err := tw.writeString(name); err != nil {
		return nil, err
	}
	return tw, nil
}

// BindProgram supplies per-block instruction counts so the writer records
// the chunk index that makes the file seekable (Skip by chunk rather than
// linear decode). Bind before the first Append; without it the file is
// still valid, just index-less. A block outside the program disables the
// index rather than failing the write.
func (w *Writer) BindProgram(p *cfg.Program) { w.prog = p }

func (w *Writer) writeString(s string) error {
	n, err := w.bw.WriteString(s)
	w.off += uint64(n)
	return err
}

func (w *Writer) writeUvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	nw, err := w.bw.Write(buf[:n])
	w.off += uint64(nw)
	return err
}

func (w *Writer) writeVarint(v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	nw, err := w.bw.Write(buf[:n])
	w.off += uint64(nw)
	return err
}

// Append adds one block to the trace.
func (w *Writer) Append(id cfg.BlockID) error {
	if w.finished {
		return errors.New("trace: Append after Finish")
	}
	if w.prog != nil {
		if int(id) < 0 || int(id) >= len(w.prog.Blocks) {
			// Trace does not match the bound program: write a valid
			// index-less file instead of failing.
			w.prog, w.entries, w.chunkInsts, w.instsSoFar = nil, nil, 0, 0
		} else {
			w.chunkInsts += uint64(w.prog.Blocks[id].NInsts)
		}
	}
	w.chunk = append(w.chunk, id)
	if len(w.chunk) >= chunkBlocks {
		return w.flushChunk()
	}
	return nil
}

// Blocks returns the number of blocks appended so far.
func (w *Writer) Blocks() uint64 { return w.blocks + uint64(len(w.chunk)) }

// Indexed reports whether the writer is recording the chunk index (a
// program is bound and every appended block belonged to it).
func (w *Writer) Indexed() bool { return w.prog != nil }

func (w *Writer) flushChunk() error {
	if len(w.chunk) == 0 {
		return nil
	}
	if w.prog != nil {
		w.entries = append(w.entries, chunkRef{
			off:    w.off,
			blocks: w.blocks,
			insts:  w.instsSoFar,
			prev:   w.prev,
		})
	}
	if err := w.writeUvarint(uint64(len(w.chunk))); err != nil {
		return err
	}
	for _, id := range w.chunk {
		delta := int64(id) - w.prev
		w.prev = int64(id)
		if err := w.writeVarint(delta); err != nil {
			return err
		}
	}
	w.blocks += uint64(len(w.chunk))
	w.instsSoFar += w.chunkInsts
	w.chunkInsts = 0
	w.chunk = w.chunk[:0]
	return nil
}

// Finish flushes the remaining blocks and writes the terminator and footer;
// totalInsts is the trace's CFG-level instruction count. When a program is
// bound the chunk index follows the footer (invisible to pre-index
// readers, which stop at the footer). The Writer is unusable afterwards.
func (w *Writer) Finish(totalInsts uint64) error {
	if w.finished {
		return errors.New("trace: Finish called twice")
	}
	w.finished = true
	if err := w.flushChunk(); err != nil {
		return err
	}
	if err := w.writeUvarint(0); err != nil { // terminator chunk
		return err
	}
	if err := w.writeUvarint(totalInsts); err != nil {
		return err
	}
	if err := w.writeUvarint(w.blocks); err != nil {
		return err
	}
	if w.prog != nil {
		if err := w.writeIndex(totalInsts); err != nil {
			return err
		}
	}
	return w.bw.Flush()
}

// writeIndex emits the seek index: a delta-encoded chunkRef per chunk plus
// the totals, then a fixed 16-byte trailer (section length + magic) so a
// reader can find the section from the end of the file.
func (w *Writer) writeIndex(totalInsts uint64) error {
	start := w.off
	if err := w.writeUvarint(totalInsts); err != nil {
		return err
	}
	if err := w.writeUvarint(w.blocks); err != nil {
		return err
	}
	if err := w.writeUvarint(uint64(len(w.entries))); err != nil {
		return err
	}
	var last chunkRef
	for _, e := range w.entries {
		if err := w.writeUvarint(e.off - last.off); err != nil {
			return err
		}
		if err := w.writeUvarint(e.blocks - last.blocks); err != nil {
			return err
		}
		if err := w.writeUvarint(e.insts - last.insts); err != nil {
			return err
		}
		if err := w.writeVarint(e.prev - last.prev); err != nil {
			return err
		}
		last = e
	}
	var trailer [16]byte
	binary.LittleEndian.PutUint64(trailer[:8], w.off-start)
	copy(trailer[8:], indexMagic)
	n, err := w.bw.Write(trailer[:])
	w.off += uint64(n)
	return err
}

// Write serializes t to w in the current format.
func (t *Trace) Write(w io.Writer) error {
	tw, err := NewWriter(w, t.Name)
	if err != nil {
		return err
	}
	for _, id := range t.Blocks {
		if err := tw.Append(id); err != nil {
			return err
		}
	}
	return tw.Finish(t.Insts)
}

// FileSource incrementally decodes a binary trace stream (either format).
// It implements Source; decode errors (including truncation) surface from
// Err and Close once Next returns false.
type FileSource struct {
	br   *bufio.Reader
	raw  io.Reader // what br wraps (needed to reset after a seek)
	file io.Closer // underlying file when opened via Open

	name string
	prev int64
	read uint64 // blocks consumed from the stream (delivered or skipped)
	done bool
	err  error

	v1        bool
	remaining uint64 // v1: blocks left in the trace; v2: in the current chunk
	insts     uint64 // v1: from the header; v2: from the footer (or index)
	exact     bool

	// Skip support: the bound program supplies block lengths, the index
	// (when the file carries one) supplies seek targets, and the pending
	// slot holds one decoded-but-undelivered block (Skip peeks at the
	// boundary block without consuming it).
	prog        *cfg.Program
	instsRead   uint64 // CFG insts consumed, maintained once prog is bound
	pending     cfg.BlockID
	havePending bool
	index       *chunkIndex
	seeker      io.Seeker
}

// NewReader reads the trace header from r and returns a streaming source
// over its blocks.
func NewReader(r io.Reader) (*FileSource, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	got := make([]byte, len(magicV2))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	s := &FileSource{br: br, raw: r}
	switch string(got) {
	case magicV2:
	case magicV1:
		s.v1 = true
	default:
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > maxName {
		return nil, fmt.Errorf("trace: name length %d exceeds limit", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	s.name = string(name)
	if s.v1 {
		// The old format carries both totals up front.
		if s.insts, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("trace: reading instruction count: %w", err)
		}
		if s.remaining, err = binary.ReadUvarint(br); err != nil {
			return nil, fmt.Errorf("trace: reading block count: %w", err)
		}
		const maxBlocks = 1 << 40
		if s.remaining > maxBlocks {
			return nil, fmt.Errorf("trace: block count %d exceeds limit", s.remaining)
		}
		s.exact = true
	}
	return s, nil
}

// Open opens a trace file as a streaming source; Close closes the file.
// When the file carries a chunk index (written by an index-bound Writer)
// the source is seekable — Skip jumps by chunk instead of decoding
// linearly — and the totals are exact immediately. Footer-less legacy
// files still replay and Skip, linearly.
func Open(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	idx := tryReadIndex(f) // uses ReadAt only: the read offset stays at 0
	s, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.file = f
	s.seeker = f
	if idx != nil && !s.v1 {
		s.index = idx
		s.insts = idx.totalInsts
		s.exact = true
	}
	return s, nil
}

// tryReadIndex probes f for the trailing chunk index. Any shortfall —
// file too small, missing magic, malformed section — yields nil: the file
// is then treated as index-less and skipped linearly, never failed.
func tryReadIndex(f *os.File) *chunkIndex {
	st, err := f.Stat()
	if err != nil {
		return nil
	}
	size := st.Size()
	if size < 16 {
		return nil
	}
	var trailer [16]byte
	if _, err := f.ReadAt(trailer[:], size-16); err != nil {
		return nil
	}
	if string(trailer[8:]) != indexMagic {
		return nil
	}
	secLen := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if secLen <= 0 || secLen > size-16 {
		return nil
	}
	buf := make([]byte, secLen)
	if _, err := f.ReadAt(buf, size-16-secLen); err != nil {
		return nil
	}
	return parseIndex(buf, uint64(size))
}

// parseIndex decodes the index section; nil on any inconsistency.
func parseIndex(buf []byte, fileSize uint64) *chunkIndex {
	r := bytes.NewReader(buf)
	uv := func() (uint64, bool) {
		v, err := binary.ReadUvarint(r)
		return v, err == nil
	}
	ix := &chunkIndex{}
	var n uint64
	var ok bool
	if ix.totalInsts, ok = uv(); !ok {
		return nil
	}
	if ix.totalBlocks, ok = uv(); !ok {
		return nil
	}
	if n, ok = uv(); !ok || n > ix.totalBlocks/chunkBlocks+1 || n > uint64(len(buf)) {
		return nil
	}
	ix.entries = make([]chunkRef, 0, n)
	var last chunkRef
	for i := uint64(0); i < n; i++ {
		var d [3]uint64
		for j := range d {
			if d[j], ok = uv(); !ok {
				return nil
			}
		}
		pd, err := binary.ReadVarint(r)
		if err != nil {
			return nil
		}
		last = chunkRef{
			off:    last.off + d[0],
			blocks: last.blocks + d[1],
			insts:  last.insts + d[2],
			prev:   last.prev + pd,
		}
		if last.off >= fileSize || last.blocks > ix.totalBlocks || last.insts > ix.totalInsts ||
			last.prev < 0 || last.prev > math.MaxInt32 {
			return nil
		}
		ix.entries = append(ix.entries, last)
	}
	return ix
}

// Bind associates the program the trace was recorded against, giving the
// source the per-block instruction counts Skip needs. Bind before the
// first Next or Skip.
func (s *FileSource) Bind(p *cfg.Program) { s.prog = p }

// Seekable reports whether Skip can seek (an indexed file opened from
// disk) rather than decode linearly.
func (s *FileSource) Seekable() bool { return s.index != nil && s.seeker != nil }

// TotalBlocks returns the trace's block count and whether it is exact
// before EOF (legacy headers and indexed files know it up front).
func (s *FileSource) TotalBlocks() (uint64, bool) {
	switch {
	case s.index != nil:
		return s.index.totalBlocks, true
	case s.v1:
		return s.read + s.remaining, true
	default:
		return s.read, s.done && s.err == nil
	}
}

// blockInsts returns the CFG instruction count of id under the bound
// program, failing the stream on a block outside it.
func (s *FileSource) blockInsts(id cfg.BlockID) (uint64, bool) {
	if id < 0 || int(id) >= len(s.prog.Blocks) {
		s.done = true
		s.err = fmt.Errorf("trace: block %d outside the bound program (%d blocks)", id, len(s.prog.Blocks))
		return 0, false
	}
	return uint64(s.prog.Blocks[id].NInsts), true
}

// Skip fast-forwards past whole blocks totalling at most n instructions.
// With an index the skip seeks to the last chunk boundary at or before
// the target and decodes the remainder; without one (legacy formats,
// plain readers) it decodes and discards linearly. Requires Bind.
func (s *FileSource) Skip(n uint64) (uint64, error) {
	if s.done || n == 0 {
		return 0, s.err
	}
	if s.prog == nil {
		return 0, errors.New("trace: FileSource.Skip needs a program (Bind)")
	}
	start := s.instsRead
	target := satAdd(start, n)
	if s.index != nil && s.seeker != nil && !s.havePending {
		if e := s.index.find(target); e != nil && e.blocks > s.read {
			if _, err := s.seeker.Seek(int64(e.off), io.SeekStart); err != nil {
				s.done = true
				s.err = fmt.Errorf("trace: seeking chunk at offset %d: %w", e.off, err)
				return 0, s.err
			}
			s.br.Reset(s.raw)
			s.prev = e.prev
			s.read = e.blocks
			s.instsRead = e.insts
			s.remaining = 0
		}
	}
	for {
		id, ok := s.peek()
		if !ok {
			break
		}
		ni, ok := s.blockInsts(id)
		if !ok {
			break
		}
		if satAdd(s.instsRead, ni) > target {
			break
		}
		s.havePending = false
		s.instsRead += ni
	}
	return s.instsRead - start, s.err
}

// peek decodes the next block without consuming it.
func (s *FileSource) peek() (cfg.BlockID, bool) {
	if !s.havePending {
		id, ok := s.decode()
		if !ok {
			return cfg.NoBlock, false
		}
		s.pending, s.havePending = id, true
	}
	return s.pending, true
}

// Next returns the next block of the trace.
func (s *FileSource) Next() (cfg.BlockID, bool) {
	if s.havePending {
		s.havePending = false
		if s.prog != nil {
			if ni, ok := s.blockInsts(s.pending); ok {
				s.instsRead += ni
			} else {
				return cfg.NoBlock, false
			}
		}
		return s.pending, true
	}
	id, ok := s.decode()
	if ok && s.prog != nil {
		var ni uint64
		if ni, ok = s.blockInsts(id); !ok {
			return cfg.NoBlock, false
		}
		s.instsRead += ni
	}
	return id, ok
}

// startChunk ensures at least one undecoded block record remains in the
// current chunk, reading the next chunk header — or the terminator and
// footer — as needed. It returns false at end of stream or on error.
func (s *FileSource) startChunk() bool {
	if s.done {
		return false
	}
	if s.remaining > 0 {
		return true
	}
	if s.v1 {
		s.done = true
		return false
	}
	n, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.fail(fmt.Errorf("trace: reading chunk header after block %d: %w", s.read, err))
		return false
	}
	if n == 0 { // terminator: read and validate the footer
		s.done = true
		if s.insts, err = binary.ReadUvarint(s.br); err != nil {
			s.err = fmt.Errorf("trace: reading instruction count: %w", err)
			return false
		}
		count, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.err = fmt.Errorf("trace: reading block count: %w", err)
			return false
		}
		if count != s.read {
			s.err = fmt.Errorf("trace: footer says %d blocks, decoded %d", count, s.read)
			return false
		}
		s.exact = true
		return false
	}
	s.remaining = n
	return true
}

// decode reads and returns the next block record from the stream.
func (s *FileSource) decode() (cfg.BlockID, bool) {
	if !s.startChunk() {
		return cfg.NoBlock, false
	}
	delta, err := binary.ReadVarint(s.br)
	if err != nil {
		return s.fail(fmt.Errorf("trace: reading block %d: %w", s.read, err))
	}
	s.prev += delta
	// BlockID is int32: anything outside its range is corrupt, and letting
	// it through would wrap negative in the conversion below.
	if s.prev < 0 || s.prev > math.MaxInt32 {
		return s.fail(fmt.Errorf("trace: block ID %d out of range at record %d", s.prev, s.read))
	}
	s.remaining--
	s.read++
	return cfg.BlockID(s.prev), true
}

// NextBatch fills dst with the next blocks of the trace, decoding whole
// chunk remainders into the caller's buffer in one pass: the bulk form of
// Next, same cursor, same accounting, same error semantics (a decode or
// bound-program failure ends the batch early; the error surfaces from Err
// and Close).
func (s *FileSource) NextBatch(dst []cfg.BlockID) int {
	n := 0
	if s.havePending && n < len(dst) {
		s.havePending = false
		if s.prog != nil {
			ni, ok := s.blockInsts(s.pending)
			if !ok {
				return n
			}
			s.instsRead += ni
		}
		dst[n] = s.pending
		n++
	}
	for n < len(dst) && s.startChunk() {
		k := len(dst) - n
		if uint64(k) > s.remaining {
			k = int(s.remaining)
		}
		for i := 0; i < k; i++ {
			delta, err := binary.ReadVarint(s.br)
			if err != nil {
				s.fail(fmt.Errorf("trace: reading block %d: %w", s.read, err))
				return n
			}
			s.prev += delta
			if s.prev < 0 || s.prev > math.MaxInt32 {
				s.fail(fmt.Errorf("trace: block ID %d out of range at record %d", s.prev, s.read))
				return n
			}
			s.remaining--
			s.read++
			id := cfg.BlockID(s.prev)
			if s.prog != nil {
				ni, ok := s.blockInsts(id)
				if !ok {
					return n
				}
				s.instsRead += ni
			}
			dst[n] = id
			n++
		}
	}
	return n
}

func (s *FileSource) fail(err error) (cfg.BlockID, bool) {
	s.done = true
	s.err = err
	return cfg.NoBlock, false
}

// Name returns the benchmark name from the header.
func (s *FileSource) Name() string { return s.name }

// TotalInsts returns the trace's instruction count: exact up front for the
// old header-bearing format, and exact once the footer has been read for
// the current one (0 before that — the on-disk trace carries no running
// count).
func (s *FileSource) TotalInsts() (uint64, bool) { return s.insts, s.exact }

// Err returns the first decode error encountered (nil on a clean stream).
// A truncated trace — one whose footer is missing or inconsistent — is an
// error, not a short trace.
func (s *FileSource) Err() error { return s.err }

// Close releases the underlying file (when opened via Open) and returns the
// sticky decode error, if any.
func (s *FileSource) Close() error {
	if s.file != nil {
		cerr := s.file.Close()
		s.file = nil
		if s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// Read deserializes a trace written by Write, materializing it in memory.
// Callers that only iterate should use NewReader (or Open) instead.
func Read(r io.Reader) (*Trace, error) {
	s, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return Drain(s)
}
