// Package trace executes a program CFG to produce dynamic traces: the
// sequence of basic blocks a run visits. Branch behaviour (bias, loop trip
// counts, repeating patterns, indirect target selection) is driven by a
// seeded PRNG plus per-branch runtime state, so traces are deterministic and
// reproducible.
//
// The dynamic block sequence is layout-independent; package layout expands
// it to concrete instruction addresses under a given code layout. The
// package also implements a compact binary on-disk trace format, standing in
// for the paper's 300M-instruction SPEC2000 trace files.
//
// Traces are delivered through the pull-based Source interface (source.go):
// generated on the fly, streamed from disk, or wrapped around an in-memory
// slice. Consumers that iterate a Source run in memory independent of trace
// length, which is what makes paper-scale (100M+ instruction) runs
// practical. Hot consumers pull blocks in bulk through Source.NextBatch —
// one interface call per batch instead of one per block — with Batched
// adapting legacy one-at-a-time sources.
package trace

import (
	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
	"streamfetch/internal/xrand"
)

// Trace is a dynamic execution of a program, recorded at basic-block
// granularity (the paper's simulator is trace driven with a static basic
// block dictionary; this is the same representation).
type Trace struct {
	// Name is the benchmark name.
	Name string
	// Blocks is the dynamic basic-block sequence.
	Blocks []cfg.BlockID
	// Insts is the total CFG-level instruction count (layout extras such
	// as materialized or elided jumps not included).
	Insts uint64
}

// GenConfig controls trace generation.
type GenConfig struct {
	// Seed drives branch behaviour. Different seeds model different
	// inputs (the paper uses train input for profiling and ref input for
	// measurement).
	Seed uint64
	// MaxInsts stops generation once this many CFG-level instructions
	// have been emitted.
	MaxInsts uint64
	// Profile, if non-nil, accumulates block and chainable-edge counts
	// during generation (used to drive the layout optimizer).
	Profile *cfg.Profile
}

// branchState holds per-static-branch runtime state.
type branchState struct {
	// remaining is the number of loop-body iterations left (CondLoop).
	remaining int
	active    bool
	// pos is the position within the repeating pattern (CondPattern).
	pos int
	// prevArm is the previously chosen arm of an indirect branch
	// (first-order Markov dispatch).
	prevArm int
}

// Generator walks a CFG emitting the dynamic block sequence. It can be used
// incrementally (Next) or in one shot (Generate).
type Generator struct {
	prog  *cfg.Program
	rng   *xrand.RNG
	state []branchState
	stack []cfg.BlockID // continuation blocks of active calls
	cur   cfg.BlockID
	insts uint64
	prof  *cfg.Profile
}

// NewGenerator returns a generator positioned at the program entry.
func NewGenerator(p *cfg.Program, seed uint64, prof *cfg.Profile) *Generator {
	return &Generator{
		prog:  p,
		rng:   xrand.New(seed),
		state: make([]branchState, len(p.Blocks)),
		cur:   p.Entry,
		prof:  prof,
	}
}

// Next returns the next executed block. ok is false once the program has
// terminated (a return with an empty call stack).
func (g *Generator) Next() (id cfg.BlockID, ok bool) {
	if g.cur == cfg.NoBlock {
		return cfg.NoBlock, false
	}
	id = g.cur
	b := g.prog.Blocks[id]
	g.insts += uint64(b.NInsts)
	if g.prof != nil {
		g.prof.AddBlock(id)
	}
	next := g.step(b)
	if g.prof != nil && next != cfg.NoBlock {
		switch b.Branch {
		case isa.BranchNone, isa.BranchUncond, isa.BranchCond:
			g.prof.AddEdge(id, next)
		}
	}
	g.cur = next
	return id, true
}

// Insts returns the CFG-level instruction count emitted so far.
func (g *Generator) Insts() uint64 { return g.insts }

// PeekInsts returns the instruction count of the block Next would emit,
// without advancing the walk; ok is false once the program has terminated.
func (g *Generator) PeekInsts() (int, bool) {
	if g.cur == cfg.NoBlock {
		return 0, false
	}
	return g.prog.Blocks[g.cur].NInsts, true
}

// step evaluates the terminating branch of b and returns the next block.
func (g *Generator) step(b *cfg.Block) cfg.BlockID {
	switch b.Branch {
	case isa.BranchNone, isa.BranchUncond:
		return b.Succs[0].To
	case isa.BranchCond:
		if g.condTakesBranchSide(b) {
			return b.Succs[1].To
		}
		return b.Succs[0].To
	case isa.BranchCall:
		g.stack = append(g.stack, b.Cont)
		return b.Succs[0].To
	case isa.BranchIndirectCall:
		g.stack = append(g.stack, b.Cont)
		return b.Succs[g.pickArm(b)].To
	case isa.BranchIndirect:
		return b.Succs[g.pickArm(b)].To
	case isa.BranchReturn:
		if len(g.stack) == 0 {
			return cfg.NoBlock
		}
		top := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		return top
	default:
		return cfg.NoBlock
	}
}

// condTakesBranchSide evaluates a conditional model, returning true when the
// branch side (Succs[1]) is followed.
func (g *Generator) condTakesBranchSide(b *cfg.Block) bool {
	st := &g.state[b.ID]
	switch b.Cond.Kind {
	case cfg.CondLoop:
		if !st.active {
			trip := b.Cond.Trip
			if b.Cond.TripJitter > 0 {
				trip += g.rng.IntRange(-b.Cond.TripJitter, b.Cond.TripJitter)
			}
			if trip < 1 {
				trip = 1
			}
			st.active = true
			st.remaining = trip
		}
		if st.remaining > 0 {
			st.remaining--
			return true // stay in the loop (branch side is the body)
		}
		st.active = false
		return false // exit
	case cfg.CondPattern:
		t := b.Cond.Pattern[st.pos]
		st.pos++
		if st.pos == len(b.Cond.Pattern) {
			st.pos = 0
		}
		return t
	default: // CondBias
		return g.rng.Bool(b.Cond.P)
	}
}

// pickArm selects an indirect-branch arm: with probability IndMarkov the
// dispatch follows a deterministic cycle over the arms (correlated,
// path-predictable, as interpreter loops are); otherwise it picks by edge
// probability.
func (g *Generator) pickArm(b *cfg.Block) int {
	st := &g.state[b.ID]
	if len(b.Succs) > 1 && g.rng.Bool(b.IndMarkov) {
		st.prevArm = (st.prevArm + 1) % len(b.Succs)
	} else {
		st.prevArm = g.pickEdge(b)
	}
	return st.prevArm
}

// pickEdge selects a successor index by edge probability.
func (g *Generator) pickEdge(b *cfg.Block) int {
	if len(b.Succs) == 1 {
		return 0
	}
	x := g.rng.Float64()
	for i, e := range b.Succs {
		x -= e.Prob
		if x < 0 {
			return i
		}
	}
	return len(b.Succs) - 1
}

// Generate runs the program from its entry and materializes the trace in
// memory. It emits exactly the sequence NewGenSource streams for the same
// config; callers that only iterate should prefer the source, whose memory
// use is independent of MaxInsts.
func Generate(p *cfg.Program, gc GenConfig) *Trace {
	src := NewGenSource(p, gc)
	est := int(gc.MaxInsts / 5)
	if est < 16 {
		est = 16
	}
	t := &Trace{Name: p.Name, Blocks: make([]cfg.BlockID, 0, est)}
	for {
		id, ok := src.Next()
		if !ok {
			break
		}
		t.Blocks = append(t.Blocks, id)
	}
	t.Insts, _ = src.TotalInsts()
	return t
}

// CollectProfile runs a training execution of maxInsts instructions and
// returns the profile, without materializing the block sequence. This is the
// pixie+train-input step of the paper's methodology.
func CollectProfile(p *cfg.Program, seed uint64, maxInsts uint64) *cfg.Profile {
	prof := cfg.NewProfile(p)
	g := NewGenerator(p, seed, prof)
	for g.insts < maxInsts {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	return prof
}

// Stats summarizes basic dynamic properties of a trace.
type Stats struct {
	Blocks        int
	Insts         uint64
	MeanBlockLen  float64
	CondBranches  uint64
	OtherBranches uint64
}

// Summarize computes trace statistics against its program.
func (t *Trace) Summarize(p *cfg.Program) Stats {
	var s Stats
	s.Blocks = len(t.Blocks)
	s.Insts = t.Insts
	for _, id := range t.Blocks {
		b := p.Blocks[id]
		switch b.Branch {
		case isa.BranchCond:
			s.CondBranches++
		case isa.BranchNone:
		default:
			s.OtherBranches++
		}
	}
	if s.Blocks > 0 {
		s.MeanBlockLen = float64(s.Insts) / float64(s.Blocks)
	}
	return s
}
