// Package workload synthesizes SPECint2000-like benchmark programs as
// control flow graphs. The paper evaluates on SPECint2000 binaries traced
// with ref inputs; we do not have those binaries, so this package generates
// deterministic structured programs (loops, hammocks, switches, call trees)
// whose distributional properties — basic block sizes, branch mix, branch
// bias spectrum, loop trip counts, code footprint — are parameterized per
// benchmark to land in the ranges the paper reports (basic blocks of 5–6
// instructions, streams of 16+ instructions in layout-optimized codes).
//
// Every benchmark is generated from a fixed seed, so the whole evaluation is
// exactly reproducible.
package workload

import (
	"fmt"

	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
	"streamfetch/internal/xrand"
)

// Params controls the shape of one synthetic benchmark.
type Params struct {
	// Name identifies the benchmark (e.g. "164.gzip").
	Name string
	// Seed drives all randomness in synthesis.
	Seed uint64
	// NumProcs is the number of procedures (procedure 0 is the driver).
	NumProcs int
	// RegionsPerProc bounds the structured regions per procedure body.
	RegionsPerProc [2]int
	// MeanBlockLen is the mean basic-block length in instructions,
	// including the terminating branch.
	MeanBlockLen float64
	// LoadFrac, StoreFrac, MulFrac give the instruction class mix of
	// non-branch slots; the remainder is ALU.
	LoadFrac, StoreFrac, MulFrac float64
	// FracLoopRegion, FracIfRegion, FracSwitchRegion, FracCallRegion set
	// the structured-region mix; the remainder is straight-line blocks.
	FracLoopRegion, FracIfRegion, FracSwitchRegion, FracCallRegion float64
	// FracPattern is the fraction of non-loop conditional branches that
	// follow a repeating pattern (history-predictable); the rest are
	// Bernoulli-biased.
	FracPattern float64
	// StrongBias is the probability that a biased branch is strongly
	// biased (p in [0.02,0.10] or [0.90,0.98]); otherwise p is drawn
	// from [0.15, 0.85].
	StrongBias float64
	// MeanTrip is the mean loop trip count.
	MeanTrip int
	// TripJitter is the +/- spread of trip counts around MeanTrip.
	TripJitter int
	// LoopStability is the fraction of loops whose trip count is fixed
	// across entries (data-independent bounds); the rest jitter per
	// entry. Stable short loops are exactly what path-based predictors
	// can count and per-branch outcome histories cannot.
	LoopStability float64
	// IndMarkov is the probability that an indirect dispatch follows its
	// deterministic cycle (correlated interpreter-style dispatch).
	IndMarkov float64
	// SwitchFanout is the number of arms of indirect switches.
	SwitchFanout [2]int
	// MaxDepth bounds nesting of structured regions.
	MaxDepth int
	// DataWorkingSet is the benchmark's data footprint in bytes, used to
	// synthesize load/store addresses in the back-end model.
	DataWorkingSet int
	// IndirectCallFrac is the chance a call region uses an indirect call
	// over several callees instead of a direct one.
	IndirectCallFrac float64
}

// Suite returns the parameter sets of the 11 SPECint2000 benchmarks the
// paper evaluates. The shapes differ per benchmark: gcc is large and
// branchy, gzip/bzip2 are small loopy codes, perlbmk/gap use indirect
// dispatch heavily, crafty/twolf have hard-to-predict data-dependent
// branches, eon is call-intensive.
func Suite() []Params {
	base := Params{
		NumProcs:         140,
		RegionsPerProc:   [2]int{8, 18},
		MeanBlockLen:     5.5,
		LoadFrac:         0.24,
		StoreFrac:        0.12,
		MulFrac:          0.03,
		FracLoopRegion:   0.22,
		FracIfRegion:     0.34,
		FracSwitchRegion: 0.05,
		FracCallRegion:   0.14,
		FracPattern:      0.25,
		StrongBias:       0.84,
		MeanTrip:         12,
		TripJitter:       4,
		LoopStability:    0.7,
		IndMarkov:        0.6,
		SwitchFanout:     [2]int{3, 6},
		MaxDepth:         3,
		DataWorkingSet:   1 << 21,
	}
	mk := func(name string, seed uint64, mut func(*Params)) Params {
		p := base
		p.Name = name
		p.Seed = seed
		if mut != nil {
			mut(&p)
		}
		return p
	}
	return []Params{
		mk("164.gzip", 0x1164, func(p *Params) {
			p.NumProcs = 190
			p.FracLoopRegion = 0.32
			p.MeanTrip = 24
			p.StrongBias = 0.88
			p.DataWorkingSet = 1 << 20
		}),
		mk("175.vpr", 0x1175, func(p *Params) {
			p.NumProcs = 150
			p.StrongBias = 0.78
			p.FracPattern = 0.18
			p.MeanTrip = 9
			p.DataWorkingSet = 1 << 22
		}),
		mk("176.gcc", 0x1176, func(p *Params) {
			p.NumProcs = 420
			p.RegionsPerProc = [2]int{8, 18}
			p.FracSwitchRegion = 0.09
			p.FracCallRegion = 0.18
			p.MeanTrip = 6
			p.DataWorkingSet = 1 << 23
		}),
		mk("186.crafty", 0x1186, func(p *Params) {
			p.NumProcs = 120
			p.StrongBias = 0.87
			p.FracPattern = 0.14
			p.MeanBlockLen = 6.2
			p.MeanTrip = 7
		}),
		mk("197.parser", 0x1197, func(p *Params) {
			p.NumProcs = 60
			p.StrongBias = 0.89
			p.FracCallRegion = 0.20
			p.MeanTrip = 5
			p.DataWorkingSet = 1 << 22
		}),
		mk("252.eon", 0x1252, func(p *Params) {
			p.NumProcs = 260
			p.FracCallRegion = 0.26
			p.IndirectCallFrac = 0.25
			p.MeanBlockLen = 6.5
			p.StrongBias = 0.72
			p.MeanTrip = 10
		}),
		mk("253.perlbmk", 0x1253, func(p *Params) {
			p.NumProcs = 280
			p.FracSwitchRegion = 0.12
			p.IndirectCallFrac = 0.30
			p.FracCallRegion = 0.20
			p.MeanTrip = 8
		}),
		mk("254.gap", 0x1254, func(p *Params) {
			p.NumProcs = 230
			p.FracSwitchRegion = 0.10
			p.IndirectCallFrac = 0.22
			p.MeanTrip = 14
			p.StrongBias = 0.85
		}),
		mk("255.vortex", 0x1255, func(p *Params) {
			p.NumProcs = 340
			p.FracCallRegion = 0.22
			p.StrongBias = 0.74
			p.MeanBlockLen = 5.8
			p.MeanTrip = 9
			p.DataWorkingSet = 1 << 23
		}),
		mk("256.bzip2", 0x1256, func(p *Params) {
			p.NumProcs = 56
			p.FracLoopRegion = 0.34
			p.MeanTrip = 28
			p.StrongBias = 0.86
			p.DataWorkingSet = 1 << 22
		}),
		mk("300.twolf", 0x1300, func(p *Params) {
			p.NumProcs = 160
			p.StrongBias = 0.73
			p.FracPattern = 0.16
			p.MeanTrip = 8
			p.DataWorkingSet = 1 << 22
		}),
	}
}

// ByName returns the parameters of the named benchmark from Suite.
func ByName(name string) (Params, error) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// builder synthesizes one program.
type builder struct {
	p      Params
	rng    *xrand.RNG
	prog   *cfg.Program
	proc   int // current procedure index
	blocks []cfg.BlockID
	// callSites collects (block, calleeCount) to wire after all
	// procedures exist. Callees of proc i are always procs > i, so the
	// static call graph is a DAG and the call stack is bounded.
	callSites []callSite
}

type callSite struct {
	block    cfg.BlockID
	indirect bool
}

// Generate synthesizes the benchmark described by p.
func Generate(p Params) *cfg.Program {
	b := &builder{
		p:    p,
		rng:  xrand.New(p.Seed),
		prog: &cfg.Program{Name: p.Name},
	}
	for i := 0; i < p.NumProcs; i++ {
		b.genProc(i)
	}
	b.wireCalls()
	b.genDriver()
	if err := b.prog.Validate(); err != nil {
		panic("workload: generated invalid program: " + err.Error())
	}
	return b.prog
}

// newBlock appends a fresh block to the current procedure.
func (b *builder) newBlock(n int, br isa.BranchType) *cfg.Block {
	if n < 1 {
		n = 1
	}
	blk := &cfg.Block{
		ID:     cfg.BlockID(len(b.prog.Blocks)),
		Proc:   b.proc,
		NInsts: n,
		Branch: br,
		Cont:   cfg.NoBlock,
	}
	blk.Classes = b.classes(n, br)
	b.prog.Blocks = append(b.prog.Blocks, blk)
	b.blocks = append(b.blocks, blk.ID)
	return blk
}

// classes draws the instruction class mix for a block.
func (b *builder) classes(n int, br isa.BranchType) []isa.Class {
	cs := make([]isa.Class, n)
	body := n
	if br != isa.BranchNone {
		body = n - 1
		cs[n-1] = isa.ClassBranch
	}
	for i := 0; i < body; i++ {
		x := b.rng.Float64()
		switch {
		case x < b.p.LoadFrac:
			cs[i] = isa.ClassLoad
		case x < b.p.LoadFrac+b.p.StoreFrac:
			cs[i] = isa.ClassStore
		case x < b.p.LoadFrac+b.p.StoreFrac+b.p.MulFrac:
			cs[i] = isa.ClassMul
		default:
			cs[i] = isa.ClassALU
		}
	}
	return cs
}

// blockLen draws a basic-block body length.
func (b *builder) blockLen() int {
	n := b.rng.Geometric(b.p.MeanBlockLen - 1)
	if n > 24 {
		n = 24
	}
	return n + 1 // room for the terminating branch
}

// condModel draws a behaviour model for a non-loop conditional branch.
func (b *builder) condModel() cfg.CondModel {
	if b.rng.Bool(b.p.FracPattern) {
		// A short repeating pattern; period 2..8.
		period := b.rng.IntRange(2, 8)
		pat := make([]bool, period)
		for i := range pat {
			pat[i] = b.rng.Bool(0.5)
		}
		return cfg.CondModel{Kind: cfg.CondPattern, Pattern: pat}
	}
	var p float64
	if b.rng.Bool(b.p.StrongBias) {
		p = 0.02 + b.rng.Float64()*0.08
		if b.rng.Bool(0.5) {
			p = 1 - p
		}
	} else {
		p = 0.15 + b.rng.Float64()*0.70
	}
	return cfg.CondModel{Kind: cfg.CondBias, P: p}
}

// genProc synthesizes one procedure as a chain of structured regions ending
// in a return block.
func (b *builder) genProc(idx int) {
	b.proc = idx
	start := len(b.prog.Blocks)
	b.blocks = nil

	nRegions := b.rng.IntRange(b.p.RegionsPerProc[0], b.p.RegionsPerProc[1])
	entry := b.newBlock(b.blockLen(), isa.BranchNone)
	tail := entry // block whose control flow must be wired to the next region
	for i := 0; i < nRegions; i++ {
		head, out := b.genRegion(0)
		b.link(tail, head.ID)
		tail = out
	}
	ret := b.newBlock(b.rng.IntRange(1, 3), isa.BranchReturn)
	b.link(tail, ret.ID)

	b.prog.Procs = append(b.prog.Procs, cfg.Proc{
		Name:   fmt.Sprintf("proc_%03d", idx),
		Entry:  entry.ID,
		Blocks: b.blockIDsFrom(start),
	})
}

func (b *builder) blockIDsFrom(start int) []cfg.BlockID {
	ids := make([]cfg.BlockID, 0, len(b.prog.Blocks)-start)
	for i := start; i < len(b.prog.Blocks); i++ {
		ids = append(ids, cfg.BlockID(i))
	}
	return ids
}

// link wires block t's fall-through/continuation edge to head. For blocks
// that already transfer control (cond/loop exits are wired by genRegion),
// link only fills the missing successor.
func (b *builder) link(t *cfg.Block, head cfg.BlockID) {
	switch t.Branch {
	case isa.BranchNone, isa.BranchUncond:
		if len(t.Succs) == 0 {
			t.Succs = []cfg.Edge{{To: head, Prob: 1}}
		}
	case isa.BranchCall, isa.BranchIndirectCall:
		if t.Cont == cfg.NoBlock {
			t.Cont = head
		}
	case isa.BranchCond:
		// Loop headers and hammock conds wire both edges in genRegion;
		// only the exit edge (Succs[0]) may be pending.
		for i := range t.Succs {
			if t.Succs[i].To == cfg.NoBlock {
				t.Succs[i].To = head
			}
		}
	}
}

// genRegion emits one structured region and returns its entry block and the
// block whose outgoing fall-through edge leads out of the region. depth
// limits nesting.
func (b *builder) genRegion(depth int) (head, out *cfg.Block) {
	x := b.rng.Float64()
	p := b.p
	if depth >= p.MaxDepth {
		x = 1 // force straight-line at max depth
	}
	switch {
	case x < p.FracLoopRegion:
		return b.genLoop(depth)
	case x < p.FracLoopRegion+p.FracIfRegion:
		return b.genIf(depth)
	case x < p.FracLoopRegion+p.FracIfRegion+p.FracSwitchRegion:
		return b.genSwitch(depth)
	case x < p.FracLoopRegion+p.FracIfRegion+p.FracSwitchRegion+p.FracCallRegion:
		return b.genCall()
	default:
		blk := b.newBlock(b.blockLen(), isa.BranchNone)
		return blk, blk
	}
}

// genLoop emits: header(cond) -> body... -> latch(uncond back to header);
// header's fall-through edge exits the loop. The back edge is the branch
// side of the header condition, modelled as CondLoop so trip counts are
// coherent per loop entry.
func (b *builder) genLoop(depth int) (head, out *cfg.Block) {
	header := b.newBlock(b.blockLen(), isa.BranchCond)
	trip := b.p.MeanTrip + b.rng.IntRange(-b.p.TripJitter, b.p.TripJitter)
	if trip < 2 {
		trip = 2
	}
	jitter := 0
	if !b.rng.Bool(b.p.LoopStability) {
		jitter = trip / 4
		if jitter < 1 {
			jitter = 1
		}
	}
	header.Cond = cfg.CondModel{
		Kind:       cfg.CondLoop,
		Trip:       trip,
		TripJitter: jitter,
	}
	// Loop bodies span several structured regions, like real inner loops;
	// this sets the stream length achievable inside loops (one taken
	// back-edge per iteration).
	bodyHead, bodyOut := b.genRegion(depth + 1)
	for i := b.rng.IntRange(0, 2); i > 0; i-- {
		h, o := b.genRegion(depth + 1)
		b.link(bodyOut, h.ID)
		bodyOut = o
	}
	latch := b.newBlock(b.rng.IntRange(1, 3), isa.BranchUncond)
	latch.Succs = []cfg.Edge{{To: header.ID, Prob: 1}}
	b.link(bodyOut, latch.ID)
	// Succs[0] = exit (fall-through side, pending), Succs[1] = body.
	header.Succs = []cfg.Edge{
		{To: cfg.NoBlock, Prob: 1.0 / float64(trip)},
		{To: bodyHead.ID, Prob: 1 - 1.0/float64(trip)},
	}
	return header, header
}

// genIf emits an if-then or if-then-else hammock joining into a join block.
// Blocks are created in compiler source order (cond, then-arm, else-arm,
// join), which is hotness-agnostic: whether the frequent arm ends up
// adjacent to the condition in the baseline layout is a coin flip, exactly
// the situation profile-guided layout optimization exploits.
func (b *builder) genIf(depth int) (head, out *cfg.Block) {
	cond := b.newBlock(b.blockLen(), isa.BranchCond)
	cond.Cond = b.condModel()
	pTaken := condProb(cond.Cond) // long-run probability of Succs[1]

	if b.rng.Bool(0.45) {
		// if-then-else: then-arm laid first (base fall-through),
		// else-arm reached by taking the branch.
		thenHead, thenOut := b.genRegion(depth + 1)
		elseHead, elseOut := b.genRegion(depth + 1)
		join := b.newBlock(b.blockLen(), isa.BranchNone)
		b.link(thenOut, join.ID)
		b.link(elseOut, join.ID)
		cond.Succs = []cfg.Edge{
			{To: thenHead.ID, Prob: 1 - pTaken},
			{To: elseHead.ID, Prob: pTaken},
		}
		return cond, join
	}
	// if-then: the branch skips the arm to the join.
	thenHead, thenOut := b.genRegion(depth + 1)
	join := b.newBlock(b.blockLen(), isa.BranchNone)
	b.link(thenOut, join.ID)
	cond.Succs = []cfg.Edge{
		{To: thenHead.ID, Prob: 1 - pTaken},
		{To: join.ID, Prob: pTaken},
	}
	return cond, join
}

// condProb returns the long-run probability of the branch side of a cond.
func condProb(m cfg.CondModel) float64 {
	switch m.Kind {
	case cfg.CondBias:
		return m.P
	case cfg.CondPattern:
		n := 0
		for _, t := range m.Pattern {
			if t {
				n++
			}
		}
		return float64(n) / float64(len(m.Pattern))
	case cfg.CondLoop:
		return 1 - 1/float64(m.Trip)
	}
	return 0.5
}

// genSwitch emits an indirect multi-way branch with per-arm regions joining
// into a join block. Arm weights follow a skewed distribution so a couple of
// arms dominate, as real interpreters do.
func (b *builder) genSwitch(depth int) (head, out *cfg.Block) {
	sw := b.newBlock(b.blockLen(), isa.BranchIndirect)
	sw.IndMarkov = b.p.IndMarkov
	join := b.newBlock(b.blockLen(), isa.BranchNone)
	arms := b.rng.IntRange(b.p.SwitchFanout[0], b.p.SwitchFanout[1])
	weights := make([]float64, arms)
	w := 1.0
	for i := range weights {
		weights[i] = w
		w *= 0.55
	}
	total := 0.0
	for _, x := range weights {
		total += x
	}
	for i := 0; i < arms; i++ {
		armHead, armOut := b.genRegion(depth + 1)
		b.link(armOut, join.ID)
		sw.Succs = append(sw.Succs, cfg.Edge{To: armHead.ID, Prob: weights[i] / total})
	}
	return sw, join
}

// genCall emits a call block; the callee is wired in wireCalls once all
// procedures exist.
func (b *builder) genCall() (head, out *cfg.Block) {
	indirect := b.rng.Bool(b.p.IndirectCallFrac)
	bt := isa.BranchCall
	if indirect {
		bt = isa.BranchIndirectCall
	}
	blk := b.newBlock(b.blockLen(), bt)
	b.callSites = append(b.callSites, callSite{block: blk.ID, indirect: indirect})
	// Every call gets a private epilogue block as its continuation, so
	// that continuations are unique per call site and can always be laid
	// out immediately after the call (the return-address invariant).
	epi := b.newBlock(b.rng.IntRange(1, 3), isa.BranchNone)
	blk.Cont = epi.ID
	return blk, epi
}

// wireCalls assigns callees to call sites. Caller proc i only calls procs
// with larger index, keeping the call graph acyclic so the dynamic call
// depth is bounded by NumProcs.
func (b *builder) wireCalls() {
	n := len(b.prog.Procs)
	for _, cs := range b.callSites {
		blk := b.prog.Blocks[cs.block]
		caller := blk.Proc
		if caller >= n-1 {
			// Last procedure cannot call anyone: demote to a plain
			// fall-through block into its continuation.
			blk.Branch = isa.BranchNone
			blk.Classes[blk.NInsts-1] = isa.ClassALU
			blk.Succs = []cfg.Edge{{To: blk.Cont, Prob: 1}}
			blk.Cont = cfg.NoBlock
			continue
		}
		if cs.indirect {
			blk.IndMarkov = b.p.IndMarkov
			k := b.rng.IntRange(2, 4)
			weights := make([]float64, k)
			w := 1.0
			total := 0.0
			for i := range weights {
				weights[i] = w
				total += w
				w *= 0.5
			}
			seen := map[int]bool{}
			for i := 0; i < k; i++ {
				callee := b.rng.IntRange(caller+1, n-1)
				if seen[callee] {
					continue
				}
				seen[callee] = true
				blk.Succs = append(blk.Succs, cfg.Edge{
					To:   b.prog.Procs[callee].Entry,
					Prob: weights[i] / total,
				})
			}
		} else {
			callee := b.rng.IntRange(caller+1, n-1)
			blk.Succs = []cfg.Edge{{To: b.prog.Procs[callee].Entry, Prob: 1}}
		}
	}
}

// genDriver turns procedure 0 into the program driver: its return block is
// replaced by an unconditional jump back to its entry so the program runs
// for as long as the trace generator wants.
func (b *builder) genDriver() {
	entry := b.prog.Procs[0].Entry
	for _, id := range b.prog.Procs[0].Blocks {
		blk := b.prog.Blocks[id]
		if blk.Branch == isa.BranchReturn {
			blk.Branch = isa.BranchUncond
			blk.Succs = []cfg.Edge{{To: entry, Prob: 1}}
		}
	}
	b.prog.Entry = entry
}
