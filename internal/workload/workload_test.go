package workload

import (
	"testing"

	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
)

func TestSuiteHasElevenBenchmarks(t *testing.T) {
	s := Suite()
	if len(s) != 11 {
		t.Fatalf("Suite() has %d benchmarks, want 11 (SPECint2000)", len(s))
	}
	seen := map[string]bool{}
	for _, p := range s {
		if seen[p.Name] {
			t.Errorf("duplicate benchmark name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Seed == 0 {
			t.Errorf("%s: zero seed", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("176.gcc")
	if err != nil {
		t.Fatalf("ByName(176.gcc): %v", err)
	}
	if p.Name != "176.gcc" {
		t.Fatalf("got %q", p.Name)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded, want error")
	}
}

func TestGenerateValidPrograms(t *testing.T) {
	for _, params := range Suite() {
		params := params
		t.Run(params.Name, func(t *testing.T) {
			prog := Generate(params)
			if err := prog.Validate(); err != nil {
				t.Fatalf("invalid program: %v", err)
			}
			if prog.NumBlocks() < 20 {
				t.Errorf("only %d blocks", prog.NumBlocks())
			}
			if prog.StaticInsts() < 100 {
				t.Errorf("only %d static instructions", prog.StaticInsts())
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("164.gzip")
	a := Generate(p)
	b := Generate(p)
	if a.NumBlocks() != b.NumBlocks() {
		t.Fatalf("block counts differ: %d vs %d", a.NumBlocks(), b.NumBlocks())
	}
	for i := range a.Blocks {
		ba, bb := a.Blocks[i], b.Blocks[i]
		if ba.NInsts != bb.NInsts || ba.Branch != bb.Branch || len(ba.Succs) != len(bb.Succs) {
			t.Fatalf("block %d differs between runs", i)
		}
	}
}

func TestCallContinuationsUnique(t *testing.T) {
	p, _ := ByName("252.eon") // call heavy
	prog := Generate(p)
	seen := map[cfg.BlockID]cfg.BlockID{}
	for _, b := range prog.Blocks {
		if b.Branch == isa.BranchCall || b.Branch == isa.BranchIndirectCall {
			if prev, dup := seen[b.Cont]; dup {
				t.Fatalf("continuation %d shared by calls %d and %d", b.Cont, prev, b.ID)
			}
			seen[b.Cont] = b.ID
		}
	}
	if len(seen) == 0 {
		t.Fatal("eon generated no call sites")
	}
}

func TestCallGraphIsDAG(t *testing.T) {
	p, _ := ByName("176.gcc")
	prog := Generate(p)
	for _, b := range prog.Blocks {
		if b.Branch != isa.BranchCall && b.Branch != isa.BranchIndirectCall {
			continue
		}
		for _, e := range b.Succs {
			callee := prog.Blocks[e.To].Proc
			if callee <= b.Proc {
				t.Fatalf("call from proc %d to proc %d breaks the DAG invariant",
					b.Proc, callee)
			}
		}
	}
}

func TestMeanBlockLenNearTarget(t *testing.T) {
	p, _ := ByName("164.gzip")
	prog := Generate(p)
	total := 0
	for _, b := range prog.Blocks {
		total += b.NInsts
	}
	mean := float64(total) / float64(prog.NumBlocks())
	if mean < 3.0 || mean > 9.0 {
		t.Errorf("mean static block length %.2f outside plausible [3,9]", mean)
	}
}
