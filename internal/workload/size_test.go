package workload

import "testing"

// TestCodeFootprints verifies the suite spans small and large codes: the
// biggest benchmarks must overflow the 64KB instruction cache so layout
// optimization has an instruction-memory effect, as in the paper.
func TestCodeFootprints(t *testing.T) {
	small, large := 0, 0
	for _, p := range Suite() {
		prog := Generate(p)
		kb := prog.StaticInsts() * 4 / 1024
		t.Logf("%-14s %5d KB static code", p.Name, kb)
		if kb < 64 {
			small++
		}
		if kb > 128 {
			large++
		}
	}
	if large < 3 {
		t.Errorf("only %d benchmarks exceed 128KB of code", large)
	}
}
