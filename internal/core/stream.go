// Package core implements the paper's primary contribution: instruction
// streams and the cascaded next stream predictor (§3).
//
// An instruction stream is the run of sequential instructions from the
// target of a taken branch up to and including the next taken branch. A
// stream is fully identified by its start address and length: intermediate
// branches are implicitly predicted not taken and the terminator implicitly
// taken, so no per-branch state is needed. A partial stream starts at the
// target of a branch misprediction instead of a taken-branch target,
// preserving stream semantics after recovery.
//
// The next stream predictor is a two-table cascade. The first table is
// indexed by the current fetch address alone; the second by a DOLC hash of
// the previous stream start addresses (path correlation). On a double hit
// the path-correlated table wins. Entries carry a hysteresis counter used
// for replacement, which lets overlapping streams coexist. Streams enter
// both tables on first appearance; a stream that is mispredicted while only
// the address-indexed table holds it is upgraded into the path table, so
// streams that do not need path correlation never pollute it.
package core

import (
	"streamfetch/internal/bpred"
	"streamfetch/internal/isa"
)

// MaxStreamLen caps the stream length field (instructions). Longer
// sequential runs are split into back-to-back streams at fetch time.
const MaxStreamLen = 64

// Stream identifies one instruction stream.
type Stream struct {
	// Start is the stream's first instruction address.
	Start isa.Addr
	// Len is the instruction count, including the terminating branch.
	Len int
	// Type is the terminating branch type (BranchNone for a stream split
	// by the length cap, whose successor is sequential).
	Type isa.BranchType
	// Next is the start address of the following stream (the taken
	// target of the terminator, or the sequential continuation for a
	// capped stream).
	Next isa.Addr
}

// End returns the address one past the stream's last instruction.
func (s Stream) End() isa.Addr { return s.Start.Plus(s.Len) }

// PredictorConfig sizes the cascaded next stream predictor (Table 2
// defaults via DefaultPredictorConfig).
type PredictorConfig struct {
	// FirstEntries, FirstWays size the address-indexed table.
	FirstEntries, FirstWays int
	// SecondEntries, SecondWays size the path-indexed table.
	SecondEntries, SecondWays int
	// DOLC is the path hash shape.
	DOLC bpred.DOLC
	// NoUpgrade disables upgrading mispredicted streams into the path
	// table (ablation knob; the paper's design upgrades).
	NoUpgrade bool
	// NoCascade disables the path-indexed table entirely (ablation knob).
	NoCascade bool
	// AlwaysPathPriority makes a path-table hit always win over the
	// address table (the paper's stated policy). The default arbitrates
	// by hysteresis confidence, which filters freshly upgraded streams
	// that turn out not to be path-predictable.
	AlwaysPathPriority bool
}

// DefaultPredictorConfig returns the paper's Table-2 configuration:
// first table 1K-entry 4-way, second table 6K-entry 3-way, DOLC 12-2-4-10.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{
		FirstEntries: 1 << 10, FirstWays: 4,
		SecondEntries: 6 << 10, SecondWays: 3,
		DOLC: bpred.DOLC{Depth: 12, Older: 2, Last: 4, Current: 10},
	}
}

type streamEntry struct {
	valid bool
	tag   uint64
	len   uint8
	typ   isa.BranchType
	next  isa.Addr
	ctr   bpred.TwoBit // hysteresis / confidence counter
	stamp uint64       // LRU stamp for victim selection
}

// matches reports whether the entry stores the same stream body.
func (e *streamEntry) matches(s Stream) bool {
	return int(e.len) == s.Len && e.next == s.Next && e.typ == s.Type
}

type streamTable struct {
	sets    [][]streamEntry
	setBits uint
	clock   uint64
}

func newStreamTable(entries, ways int) *streamTable {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("core: bad stream table geometry")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("core: stream table set count must be a power of two")
	}
	t := &streamTable{sets: make([][]streamEntry, nsets)}
	for i := range t.sets {
		t.sets[i] = make([]streamEntry, ways)
	}
	for b := nsets; b > 1; b >>= 1 {
		t.setBits++
	}
	return t
}

func (t *streamTable) lookup(idx, tag uint64) *streamEntry {
	for i := range t.sets[idx] {
		e := &t.sets[idx][i]
		if e.valid && e.tag == tag {
			t.clock++
			e.stamp = t.clock
			return e
		}
	}
	return nil
}

// update applies the hysteresis replacement policy (§3.2): a matching entry
// strengthens its counter; a divergent entry weakens it and is replaced once
// the counter reaches zero. insertOnMiss controls whether a missing stream
// may claim a way at all (the cascade's second table only admits first
// appearances and mispredicted streams).
func (t *streamTable) update(idx, tag uint64, s Stream, insertOnMiss bool) {
	set := t.sets[idx]
	if e := t.lookup(idx, tag); e != nil {
		if e.matches(s) {
			// Re-saturate on every confirmation (like 2bcgskew's
			// partial update): an established stream only yields its
			// entry after several *consecutive* contradictions, so
			// Bernoulli noise cannot flip-flop the entry.
			e.ctr = 3
		} else {
			if e.ctr > 0 {
				e.ctr--
			}
			if e.ctr == 0 {
				e.len = uint8(s.Len)
				e.typ = s.Type
				e.next = s.Next
				e.ctr = 1
			}
		}
		return
	}
	if !insertOnMiss {
		return
	}
	// Victim selection: an invalid way, otherwise least-recently used.
	// The hysteresis counter arbitrates between *versions of the same
	// stream* (overlapping lengths share a tag); cross-stream set
	// contention uses plain LRU so hot new streams always enter.
	t.clock++
	v := 0
	for i := range set {
		if !set[i].valid {
			v = i
			break
		}
		if set[i].stamp < set[v].stamp {
			v = i
		}
	}
	set[v] = streamEntry{
		valid: true,
		tag:   tag,
		len:   uint8(s.Len),
		typ:   s.Type,
		next:  s.Next,
		ctr:   1,
		stamp: t.clock,
	}
}

// Predictor is the cascaded next stream predictor.
type Predictor struct {
	cfg PredictorConfig
	t1  *streamTable
	t2  *streamTable

	// SpecPath and RetPath are the lookup and update path history
	// registers (§3.2): SpecPath is updated with each prediction,
	// RetPath at commit; Recover copies RetPath over SpecPath.
	SpecPath *bpred.PathHist
	RetPath  *bpred.PathHist

	// stats
	lookups, hits, t2Hits uint64
}

// NewPredictor builds the predictor.
func NewPredictor(cfg PredictorConfig) *Predictor {
	return &Predictor{
		cfg:      cfg,
		t1:       newStreamTable(cfg.FirstEntries, cfg.FirstWays),
		t2:       newStreamTable(cfg.SecondEntries, cfg.SecondWays),
		SpecPath: bpred.NewPathHist(cfg.DOLC.Depth),
		RetPath:  bpred.NewPathHist(cfg.DOLC.Depth),
	}
}

func (p *Predictor) t1Index(start isa.Addr) (idx, tag uint64) {
	x := uint64(start) >> 2
	return x & ((1 << p.t1.setBits) - 1), x
}

func (p *Predictor) t2Index(start isa.Addr, hist *bpred.PathHist) (idx, tag uint64) {
	return p.cfg.DOLC.Hash(hist, uint64(start), p.t2.setBits), uint64(start) >> 2
}

// Predict looks the stream starting at start up using the speculative path
// history. On a hit in both tables the path-correlated data wins.
func (p *Predictor) Predict(start isa.Addr) (Stream, bool) {
	p.lookups++
	if p.cfg.NoCascade {
		i1, tag1 := p.t1Index(start)
		if e := p.t1.lookup(i1, tag1); e != nil {
			p.hits++
			return Stream{Start: start, Len: int(e.len), Type: e.typ, Next: e.next}, true
		}
		return Stream{}, false
	}
	i2, tag2 := p.t2Index(start, p.SpecPath)
	i1, tag1 := p.t1Index(start)
	e2 := p.t2.lookup(i2, tag2)
	e1 := p.t1.lookup(i1, tag1)
	var e *streamEntry
	switch {
	case e2 != nil && e1 != nil:
		// Double hit: the path-correlated data wins unless the
		// address-indexed entry is strictly more confident (confidence
		// arbitration; see AlwaysPathPriority).
		if p.cfg.AlwaysPathPriority || e2.ctr >= e1.ctr {
			e = e2
		} else {
			e = e1
		}
	case e2 != nil:
		e = e2
	case e1 != nil:
		e = e1
	default:
		return Stream{}, false
	}
	p.hits++
	if e == e2 {
		p.t2Hits++
	}
	return Stream{Start: start, Len: int(e.len), Type: e.typ, Next: e.next}, true
}

// OnPredict records a predicted stream start into the speculative path
// history; the engine calls it for every issued stream prediction.
func (p *Predictor) OnPredict(start isa.Addr) {
	p.SpecPath.Push(uint64(start))
}

// Update learns a committed stream using the retirement path history (which
// must reflect the path *before* s.Start is pushed). mispredicted marks
// streams whose prediction failed; such streams are upgraded into the
// path-correlated table.
func (p *Predictor) Update(s Stream, mispredicted bool) {
	if s.Len > MaxStreamLen {
		s.Len = MaxStreamLen
	}
	i1, tag1 := p.t1Index(s.Start)
	i2, tag2 := p.t2Index(s.Start, p.RetPath)
	inT1 := p.t1.lookup(i1, tag1) != nil
	inT2 := p.t2.lookup(i2, tag2) != nil
	firstAppearance := !inT1 && !inT2

	p.t1.update(i1, tag1, s, true)
	// Second-table admission: first appearance or upgrade on
	// misprediction; otherwise only refresh an existing entry.
	if !p.cfg.NoCascade {
		insert := firstAppearance || (mispredicted && !p.cfg.NoUpgrade)
		p.t2.update(i2, tag2, s, insert)
	}
	p.RetPath.Push(uint64(s.Start))
}

// UpdatePartial learns a partial stream (opened at a misprediction
// fall-through). Partial streams are not part of the canonical stream
// sequence, so the retirement path history is not advanced; they are
// admitted to both tables so post-recovery lookups hit.
func (p *Predictor) UpdatePartial(s Stream) {
	if s.Len > MaxStreamLen {
		s.Len = MaxStreamLen
	}
	i1, tag1 := p.t1Index(s.Start)
	p.t1.update(i1, tag1, s, true)
	if !p.cfg.NoCascade {
		i2, tag2 := p.t2Index(s.Start, p.RetPath)
		p.t2.update(i2, tag2, s, !p.cfg.NoUpgrade)
	}
}

// Recover restores the speculative path history from the retirement copy.
func (p *Predictor) Recover() {
	p.SpecPath.CopyFrom(p.RetPath)
}

// DebugProbe reports the address table's entry for start (diagnostics).
func (p *Predictor) DebugProbe(start isa.Addr) (Stream, bool) {
	i1, tag1 := p.t1Index(start)
	if e := p.t1.lookup(i1, tag1); e != nil {
		return Stream{Start: start, Len: int(e.len), Type: e.typ, Next: e.next}, true
	}
	return Stream{}, false
}

// HitRate returns the fraction of lookups that hit either table.
func (p *Predictor) HitRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.lookups)
}

// PathHitFraction returns the fraction of hits served by the path table.
func (p *Predictor) PathHitFraction() float64 {
	if p.hits == 0 {
		return 0
	}
	return float64(p.t2Hits) / float64(p.hits)
}

// StorageBits estimates the predictor storage budget in bits (tag ~20,
// length 6, type 3, next address 32, counter 2).
func (p *Predictor) StorageBits() int {
	perEntry := 20 + 6 + 3 + 32 + 2
	return (p.cfg.FirstEntries + p.cfg.SecondEntries) * perEntry
}
