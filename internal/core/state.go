package core

import (
	"streamfetch/internal/bpred"
	"streamfetch/internal/ckpt/wire"
	"streamfetch/internal/isa"
)

// Warm-state serialization for checkpoints: stream table contents, path
// histories and the in-flight stream builder. Lookup/hit statistics are
// excluded.

func (t *streamTable) appendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, t.clock)
	dst = wire.AppendU64(dst, uint64(len(t.sets)))
	if len(t.sets) > 0 {
		dst = wire.AppendU64(dst, uint64(len(t.sets[0])))
	} else {
		dst = wire.AppendU64(dst, 0)
	}
	for _, set := range t.sets {
		for _, e := range set {
			dst = wire.AppendBool(dst, e.valid)
			dst = wire.AppendU64(dst, e.tag)
			dst = wire.AppendByte(dst, e.len)
			dst = wire.AppendByte(dst, byte(e.typ))
			dst = wire.AppendU64(dst, uint64(e.next))
			dst = wire.AppendByte(dst, byte(e.ctr))
			dst = wire.AppendU64(dst, e.stamp)
		}
	}
	return dst
}

func (t *streamTable) loadState(r *wire.Reader) error {
	clock := r.U64()
	nsets := r.U64()
	nways := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	wantWays := 0
	if len(t.sets) > 0 {
		wantWays = len(t.sets[0])
	}
	if nsets != uint64(len(t.sets)) || nways != uint64(wantWays) {
		return wire.ErrMalformed
	}
	scratch := make([]streamEntry, nsets*nways)
	for i := range scratch {
		scratch[i].valid = r.Bool()
		scratch[i].tag = r.U64()
		scratch[i].len = r.Byte()
		scratch[i].typ = isa.BranchType(r.Byte())
		scratch[i].next = isa.Addr(r.U64())
		scratch[i].ctr = bpred.TwoBit(r.Byte())
		scratch[i].stamp = r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	t.clock = clock
	for si := range t.sets {
		copy(t.sets[si], scratch[si*int(nways):(si+1)*int(nways)])
	}
	return nil
}

// AppendState appends both stream tables and both path histories.
func (p *Predictor) AppendState(dst []byte) []byte {
	dst = p.t1.appendState(dst)
	dst = p.t2.appendState(dst)
	dst = p.SpecPath.AppendState(dst)
	return p.RetPath.AppendState(dst)
}

// LoadState restores a predictor of identical geometry; stats untouched.
func (p *Predictor) LoadState(r *wire.Reader) error {
	if err := p.t1.loadState(r); err != nil {
		return err
	}
	if err := p.t2.loadState(r); err != nil {
		return err
	}
	if err := p.SpecPath.LoadState(r); err != nil {
		return err
	}
	return p.RetPath.LoadState(r)
}

// AppendState appends the builder's in-flight stream tracking.
func (b *Builder) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, uint64(b.start))
	dst = wire.AppendU64(dst, uint64(b.len))
	dst = wire.AppendBool(dst, b.started)
	dst = wire.AppendBool(dst, b.mispredictedStream)
	dst = wire.AppendU64(dst, uint64(b.partialStart))
	dst = wire.AppendU64(dst, uint64(b.partialLen))
	return wire.AppendBool(dst, b.hasPartial)
}

// LoadState restores the builder; it is unmodified on error.
func (b *Builder) LoadState(r *wire.Reader) error {
	var nb Builder
	nb.start = isa.Addr(r.U64())
	nb.len = int(r.U64())
	nb.started = r.Bool()
	nb.mispredictedStream = r.Bool()
	nb.partialStart = isa.Addr(r.U64())
	nb.partialLen = int(r.U64())
	nb.hasPartial = r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	*b = nb
	return nil
}
