// Commit-side stream reconstruction: the retirement end of the stream fetch
// engine watches committed instructions and closes a stream at every taken
// branch (or at the length cap).
//
// Stream boundaries are architectural: only *actual* taken branches (and the
// length cap) delimit streams. A branch that was predicted taken but fell
// through does not break the stream — the full-length stream still closes at
// its real terminator, so the predictor always learns the truth about the
// canonical stream. The misprediction instead opens a *partial stream* at
// the fall-through address (the point where fetch resumed, §1 of the paper);
// when the enclosing stream closes, the partial tail is emitted as well so
// future recoveries at that address hit the predictor.
package core

import "streamfetch/internal/isa"

// Builder incrementally rebuilds streams from the committed instruction
// stream. The front-end engine feeds it every retired instruction; Builder
// emits completed streams for predictor training.
type Builder struct {
	start   isa.Addr
	len     int
	started bool
	// mispredictedStream marks that a prediction failed inside the
	// in-flight stream (the closing update upgrades it into the path
	// table).
	mispredictedStream bool
	// partialStart/partialLen track the newest partial stream opened by a
	// not-taken misprediction inside the current stream.
	partialStart isa.Addr
	partialLen   int
	hasPartial   bool
}

// NewBuilder returns a builder that will start its first stream at entry.
func NewBuilder(entry isa.Addr) *Builder {
	return &Builder{start: entry, started: true}
}

// Closed describes the streams completed by one committed instruction: the
// canonical stream, plus (optionally) the partial stream opened at the last
// not-taken misprediction inside it.
type Closed struct {
	Stream       Stream
	Mispredicted bool
	Partial      Stream
	HasPartial   bool
}

// Commit consumes one committed instruction and reports a Closed value when
// the instruction completes a stream.
//
// taken/target describe the architectural outcome; mispredicted marks the
// branch that caused a front-end redirect. A mispredicted not-taken branch
// opens a partial stream at its fall-through; a taken branch (mispredicted
// or not) terminates the current stream.
func (b *Builder) Commit(addr isa.Addr, branch isa.BranchType, taken bool, target isa.Addr, mispredicted bool) (Closed, bool) {
	if !b.started {
		b.start = addr
		b.started = true
	}
	b.len++
	if b.hasPartial {
		b.partialLen++
	}
	if mispredicted {
		b.mispredictedStream = true
	}
	switch {
	case branch != isa.BranchNone && taken:
		c := Closed{
			Stream:       Stream{Start: b.start, Len: b.len, Type: branch, Next: target},
			Mispredicted: b.mispredictedStream,
		}
		if b.hasPartial && b.partialLen > 0 && b.partialLen < b.len {
			c.Partial = Stream{Start: b.partialStart, Len: b.partialLen, Type: branch, Next: target}
			c.HasPartial = true
		}
		b.reset(target)
		return c, true
	case mispredicted:
		// Predicted taken, fell through: fetch resumed at the
		// fall-through — a partial stream starts there. The canonical
		// stream keeps accumulating so its full length is learned.
		b.partialStart = addr.Next()
		b.partialLen = 0
		b.hasPartial = true
		return Closed{}, false
	case b.len >= MaxStreamLen:
		// Length cap: close a sequential pseudo-stream so table
		// entries fit their length field.
		next := b.start.Plus(b.len)
		c := Closed{
			Stream:       Stream{Start: b.start, Len: b.len, Type: isa.BranchNone, Next: next},
			Mispredicted: b.mispredictedStream,
		}
		b.reset(next)
		return c, true
	}
	return Closed{}, false
}

func (b *Builder) reset(start isa.Addr) {
	b.start = start
	b.len = 0
	b.mispredictedStream = false
	b.hasPartial = false
	b.partialLen = 0
}

// Reset repositions the builder (used when the architectural stream is
// redirected outside Commit's knowledge, e.g. at simulation start).
func (b *Builder) Reset(start isa.Addr) {
	b.reset(start)
	b.started = true
}
