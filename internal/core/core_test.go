package core

import (
	"testing"
	"testing/quick"

	"streamfetch/internal/isa"
	"streamfetch/internal/xrand"
)

func TestPredictorLearnsSequence(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	streams := []Stream{
		{Start: 0x1000, Len: 12, Type: isa.BranchCond, Next: 0x2000},
		{Start: 0x2000, Len: 20, Type: isa.BranchUncond, Next: 0x3000},
		{Start: 0x3000, Len: 8, Type: isa.BranchCond, Next: 0x1000},
	}
	// Warm up.
	for round := 0; round < 4; round++ {
		for _, s := range streams {
			got, hit := p.Predict(s.Start)
			mis := !hit || got != s
			p.OnPredict(s.Start)
			p.Update(s, mis)
		}
	}
	for _, s := range streams {
		got, hit := p.Predict(s.Start)
		if !hit {
			t.Fatalf("miss for warmed stream %v", s.Start)
		}
		if got != s {
			t.Fatalf("Predict(%v) = %+v, want %+v", s.Start, got, s)
		}
		p.OnPredict(s.Start)
		p.Update(s, false)
	}
}

func TestPredictorPathCorrelation(t *testing.T) {
	// The same stream start is followed by different successors depending
	// on the preceding path: A X B vs A Y B', alternating. The
	// address-indexed table alone flip-flops; the path table must
	// disambiguate.
	p := NewPredictor(DefaultPredictorConfig())
	a1 := Stream{Start: 0x9000, Len: 10, Type: isa.BranchCond, Next: 0x1000}
	a2 := Stream{Start: 0x9000, Len: 4, Type: isa.BranchCond, Next: 0x2000}
	x := Stream{Start: 0x1000, Len: 6, Type: isa.BranchUncond, Next: 0x9000}
	y := Stream{Start: 0x2000, Len: 6, Type: isa.BranchUncond, Next: 0x9000}
	seq := []Stream{a1, x, a2, y} // alternating contexts
	correct, total := 0, 0
	for round := 0; round < 200; round++ {
		for _, s := range seq {
			got, hit := p.Predict(s.Start)
			mis := !hit || got != s
			if round > 100 && s.Start == 0x9000 {
				total++
				if !mis {
					correct++
				}
			}
			p.OnPredict(s.Start)
			p.Update(s, mis)
		}
	}
	if correct*100 < total*90 {
		t.Fatalf("path correlation resolved only %d/%d alternating streams", correct, total)
	}
}

func TestPredictorRecover(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	p.RetPath.Push(0x1)
	p.RetPath.Push(0x2)
	p.SpecPath.Push(0x999) // wrong-path pollution
	p.Recover()
	for i := 0; i < p.SpecPath.Len(); i++ {
		if p.SpecPath.At(i) != p.RetPath.At(i) {
			t.Fatal("Recover did not copy the retirement path")
		}
	}
}

func TestPredictorLengthCap(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	s := Stream{Start: 0x100, Len: 500, Type: isa.BranchCond, Next: 0x900}
	p.Update(s, false)
	got, hit := p.Predict(0x100)
	if !hit {
		t.Fatal("miss after update")
	}
	if got.Len > MaxStreamLen {
		t.Fatalf("stored length %d exceeds cap %d", got.Len, MaxStreamLen)
	}
}

func TestBuilderClosesAtTakenBranches(t *testing.T) {
	b := NewBuilder(0x1000)
	// 3 plain instructions then a taken conditional.
	for i := 0; i < 3; i++ {
		if _, ok := b.Commit(isa.Addr(0x1000+4*i), isa.BranchNone, false, 0, false); ok {
			t.Fatal("stream closed early")
		}
	}
	cl, ok := b.Commit(0x100c, isa.BranchCond, true, 0x2000, false)
	if !ok {
		t.Fatal("taken branch did not close the stream")
	}
	if cl.Mispredicted {
		t.Fatal("clean stream flagged mispredicted")
	}
	s := cl.Stream
	if s.Start != 0x1000 || s.Len != 4 || s.Type != isa.BranchCond || s.Next != 0x2000 {
		t.Fatalf("stream = %+v", s)
	}
	if cl.HasPartial {
		t.Fatal("clean stream has a partial tail")
	}
}

func TestBuilderIgnoresNotTakenBranches(t *testing.T) {
	b := NewBuilder(0x1000)
	if _, ok := b.Commit(0x1000, isa.BranchCond, false, 0, false); ok {
		t.Fatal("not-taken branch closed a stream")
	}
	cl, ok := b.Commit(0x1004, isa.BranchUncond, true, 0x3000, false)
	if !ok || cl.Stream.Len != 2 {
		t.Fatalf("stream = %+v ok=%v, want len 2", cl.Stream, ok)
	}
}

func TestBuilderPartialStreamAfterNTMispredict(t *testing.T) {
	b := NewBuilder(0x1000)
	// Predicted taken, actually fell through: the canonical stream keeps
	// accumulating, and a partial stream opens at the fall-through.
	if _, ok := b.Commit(0x1000, isa.BranchCond, false, 0, true); ok {
		t.Fatal("mispredicted NT branch closed a stream")
	}
	cl, ok := b.Commit(0x1004, isa.BranchUncond, true, 0x4000, false)
	if !ok {
		t.Fatal("stream did not close at the taken terminator")
	}
	if !cl.Mispredicted {
		t.Fatal("stream lost its mispredict flag")
	}
	// The canonical stream spans both instructions: the predictor learns
	// the truth despite the misprediction.
	if cl.Stream.Start != 0x1000 || cl.Stream.Len != 2 {
		t.Fatalf("canonical stream = %+v, want start 0x1000 len 2", cl.Stream)
	}
	if !cl.HasPartial || cl.Partial.Start != 0x1004 || cl.Partial.Len != 1 {
		t.Fatalf("partial = %+v has=%v, want start 0x1004 len 1", cl.Partial, cl.HasPartial)
	}
	if cl.Partial.Next != 0x4000 {
		t.Fatalf("partial next = %v", cl.Partial.Next)
	}
}

func TestBuilderMispredictFlagPropagates(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Commit(0x1000, isa.BranchNone, false, 0, false)
	cl, ok := b.Commit(0x1004, isa.BranchCond, true, 0x2000, true)
	if !ok || !cl.Mispredicted {
		t.Fatalf("mispredicted taken close: ok=%v misp=%v", ok, cl.Mispredicted)
	}
	if cl.Stream.Next != 0x2000 {
		t.Fatalf("next = %v", cl.Stream.Next)
	}
}

func TestBuilderLengthCap(t *testing.T) {
	b := NewBuilder(0x1000)
	var s Stream
	for i := 0; ; i++ {
		cl, ok := b.Commit(isa.Addr(0x1000+4*i), isa.BranchNone, false, 0, false)
		if ok {
			s = cl.Stream
			break
		}
		if i > 2*MaxStreamLen {
			t.Fatal("length cap never triggered")
		}
	}
	if s.Len != MaxStreamLen || s.Type != isa.BranchNone {
		t.Fatalf("capped stream = %+v", s)
	}
	if s.Next != s.Start.Plus(MaxStreamLen) {
		t.Fatalf("capped stream next = %v, want sequential", s.Next)
	}
}

// TestBuilderPartitionProperty: feeding any synthetic committed sequence,
// the closed streams must partition the instructions between taken branches
// (stream lengths sum to the instruction count, minus discarded prefixes).
func TestBuilderPartitionProperty(t *testing.T) {
	rng := xrand.New(77)
	f := func(seedByte uint8) bool {
		b := NewBuilder(0x1000)
		addr := isa.Addr(0x1000)
		total, inStreams, discarded := 0, 0, 0
		open := 0
		for i := 0; i < 200; i++ {
			var bt isa.BranchType
			taken := false
			switch rng.Intn(5) {
			case 0:
				bt, taken = isa.BranchCond, rng.Bool(0.5)
			case 1:
				bt, taken = isa.BranchUncond, true
			}
			misp := bt == isa.BranchCond && !taken && rng.Bool(0.1)
			target := addr + 0x400
			cl, ok := b.Commit(addr, bt, taken, target, misp)
			total++
			open++
			if ok {
				inStreams += cl.Stream.Len
				if cl.Stream.Len != open {
					return false
				}
				open = 0
				addr = target
				continue
			}
			addr = addr.Next()
		}
		_ = discarded
		return inStreams+open == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamEnd(t *testing.T) {
	s := Stream{Start: 0x1000, Len: 5}
	if s.End() != 0x1014 {
		t.Fatalf("End = %v", s.End())
	}
}

func TestPredictorStorageBudget(t *testing.T) {
	p := NewPredictor(DefaultPredictorConfig())
	bits := p.StorageBits()
	// Table 2's whole-predictor budget is about 45KB·8 bits; the stream
	// predictor holds 7K entries of ~8 bytes.
	if bits < 100_000 || bits > 1_000_000 {
		t.Fatalf("implausible storage estimate %d bits", bits)
	}
}
