package sim

import (
	"testing"

	"streamfetch/internal/cfg"
	"streamfetch/internal/layout"
	"streamfetch/internal/trace"
)

// TestSupplyBatchedMatchesPerBlock: the batched supply delivers exactly the
// dynamic stream the per-block expansion produces, across fill boundaries
// and through the end of the trace.
func TestSupplyBatchedMatchesPerBlock(t *testing.T) {
	b := loadBench(t, "164.gzip", 200_000)

	var want []layout.DynInst
	for i, id := range b.tr.Blocks {
		next := cfg.NoBlock
		if i+1 < len(b.tr.Blocks) {
			next = b.tr.Blocks[i+1]
		}
		want = b.lay.AppendDyn(want, id, next)
	}

	src := b.tr.Source()
	d := dynSupply{lay: b.lay, src: src}
	d.initBatch()
	for i := 0; ; i++ {
		di, ok := d.peek()
		if !ok {
			if i != len(want) {
				t.Fatalf("supply ended at inst %d, want %d", i, len(want))
			}
			break
		}
		if i >= len(want) {
			t.Fatalf("supply outlived the %d-inst expansion", len(want))
		}
		if di != want[i] {
			t.Fatalf("inst %d = %+v, want %+v", i, di, want[i])
		}
		d.advance()
	}
	if _, ok := d.peek(); ok {
		t.Fatal("exhausted supply revived")
	}
}

// TestSupplyBatchedAllocFree pins the supply's perf contract: after
// initBatch, the peek/advance/refill loop performs zero heap allocations —
// the block window, the dyn window and the source pull path are all
// reused storage.
func TestSupplyBatchedAllocFree(t *testing.T) {
	b := loadBench(t, "164.gzip", 4_000_000)
	src := b.tr.Source()
	d := dynSupply{lay: b.lay, src: src}
	d.initBatch()

	// One batch of warmup, then measure whole refills: each run drains
	// past several fill() boundaries.
	if _, ok := d.peek(); !ok {
		t.Fatal("empty supply")
	}
	step := func() {
		for i := 0; i < 10_000; i++ {
			if _, ok := d.peek(); !ok {
				t.Fatal("trace exhausted during measurement; enlarge the workload")
			}
			d.advance()
		}
	}
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Fatalf("batched supply allocates %.2f objects per 10k instructions, want 0", avg)
	}
}

// TestSupplyWarmBatchedAllocFree pins the warm path's perf contract: a
// lead-in-bearing source pulls region-wise batches through the same
// reused block and dyn windows as the plain path, so after the lazily
// allocated buffers exist the peek/advance/refill loop — functional
// warming, timed warmup and measurement alike — performs zero heap
// allocations.
func TestSupplyWarmBatchedAllocFree(t *testing.T) {
	b := loadBench(t, "164.gzip", 4_000_000)
	src := b.tr.Source()
	iv, err := trace.NewInterval(src, b.lay.Prog, trace.IntervalConfig{
		Start: 1_000_000, Warmup: 50_000, FuncWarm: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer iv.Close()

	d := dynSupply{lay: b.lay, src: iv, warm: iv, fwarm: func(layout.DynInst) {}}
	// The first peek allocates the batch buffers and drains the whole
	// functional-warming prefix; everything after it must be free.
	if _, ok := d.peek(); !ok {
		t.Fatal("empty supply")
	}
	step := func() {
		for i := 0; i < 10_000; i++ {
			if _, ok := d.peek(); !ok {
				t.Fatal("trace exhausted during measurement; enlarge the workload")
			}
			d.advance()
		}
	}
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Fatalf("warm batched supply allocates %.2f objects per 10k instructions, want 0", avg)
	}
	if !d.crossed {
		t.Fatal("supply never crossed into the measure region")
	}
}

// TestSupplyWarmPathUnchanged: a source with lead-in regions routes through
// the per-block path and flags warmup instruction counts exactly as the
// interval accounting does.
func TestSupplyWarmPathUnchanged(t *testing.T) {
	b := loadBench(t, "164.gzip", 120_000)
	src := b.tr.Source()
	iv, err := trace.NewInterval(src, b.lay.Prog, trace.IntervalConfig{Start: 40_000, Warmup: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	defer iv.Close()

	d := dynSupply{lay: b.lay, src: iv, warm: iv}
	n := 0
	for {
		_, ok := d.peek()
		if !ok {
			break
		}
		d.advance()
		n++
	}
	if !d.crossed {
		t.Fatal("supply never crossed into the measure region")
	}
	if d.warmDyn == 0 || uint64(n) <= d.warmDyn {
		t.Fatalf("warmDyn = %d of %d delivered insts", d.warmDyn, n)
	}
}
