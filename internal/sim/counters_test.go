package sim

import (
	"testing"

	"streamfetch/internal/cache"
	"streamfetch/internal/frontend"
	"streamfetch/internal/layout"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

// TestCountersMergeDelta: Merge and Delta are inverse accumulations over
// every field, and Reset zeroes the block.
func TestCountersMergeDelta(t *testing.T) {
	a := Counters{
		Cycles: 100, Retired: 80, Branches: 20, Mispredicted: 3,
		Misfetches: 2,
		Fetch:      frontend.FetchStats{Delivered: 90, Cycles: 100, DeliveryCycles: 70, Units: 10, UnitInsts: 85, PredictorLookups: 12, PredictorHits: 9},
		ICache:     cache.Stats{Accesses: 50, Misses: 4},
		DCache:     cache.Stats{Accesses: 30, Misses: 2},
		L2:         cache.Stats{Accesses: 6, Misses: 1},
	}
	a.MispredByType[2] = 3
	b := a
	b.Cycles, b.Retired = 40, 33
	b.MispredByType[5] = 7

	sum := a
	sum.Merge(b)
	if sum.Cycles != 140 || sum.Retired != 113 || sum.Branches != 40 ||
		sum.MispredByType[2] != 6 || sum.MispredByType[5] != 7 ||
		sum.Fetch.Delivered != 180 || sum.ICache.Misses != 8 || sum.L2.Accesses != 12 {
		t.Fatalf("Merge: %+v", sum)
	}
	back := sum.Delta(b)
	if back != a {
		t.Fatalf("Delta(Merge(a,b), b) = %+v, want %+v", back, a)
	}
	sum.Reset()
	if sum != (Counters{}) {
		t.Fatalf("Reset left %+v", sum)
	}
	if got := a.IPC(); got != 0.8 {
		t.Fatalf("IPC = %v", got)
	}
	if got := a.MispredRate(); got != 0.15 {
		t.Fatalf("MispredRate = %v", got)
	}
}

// warmRun simulates one interval of the gzip trace and returns the result.
func warmRun(t *testing.T, start, end, warmup uint64) Result {
	t.Helper()
	params, err := workload.ByName("164.gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.Generate(params)
	lay := layout.Baseline(prog)
	gc := trace.GenConfig{Seed: 3, MaxInsts: 200_000}
	iv, err := trace.NewInterval(trace.NewGenSource(prog, gc), prog,
		trace.IntervalConfig{Start: start, End: end, Warmup: warmup})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(lay, iv, Config{Width: 8, Engine: "streams"})
	if err := iv.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWarmupSplit: a warmed interval retires exactly the instructions of
// its measure window — the same count a cold run of the window retires —
// while the warmup phase's counters land in Warmup, not Counters.
func TestWarmupSplit(t *testing.T) {
	cold := warmRun(t, 100_000, 150_000, 0)
	warm := warmRun(t, 100_000, 150_000, 30_000)

	if cold.Warmup != (Counters{}) {
		t.Fatalf("cold run reports warmup counters: %+v", cold.Warmup)
	}
	if warm.Warmup.Retired == 0 || warm.Warmup.Cycles == 0 {
		t.Fatalf("warm run froze nothing: %+v", warm.Warmup)
	}
	if warm.Retired != cold.Retired {
		t.Fatalf("measured Retired: warm %d, cold %d (must cover the identical window)",
			warm.Retired, cold.Retired)
	}
	if warm.Cycles == 0 || warm.Cycles >= warm.Warmup.Cycles+warm.Cycles {
		// The measured cycle count excludes warmup cycles entirely.
		t.Fatalf("measured cycles not split: measured %d, warmup %d", warm.Cycles, warm.Warmup.Cycles)
	}
	// The warm ICache should not re-miss its working set: strictly fewer
	// measured misses than a cold start of the same window.
	if warm.ICache.Misses >= cold.ICache.Misses {
		t.Logf("note: warm icache misses %d >= cold %d", warm.ICache.Misses, cold.ICache.Misses)
	}
	if warm.IPC <= 0 || warm.IPC != warm.Counters.IPC() {
		t.Fatalf("derived IPC inconsistent: %v vs %v", warm.IPC, warm.Counters.IPC())
	}
}

// TestWarmupZeroMatchesPlain: wrapping the whole trace in an interval with
// no skip and no warmup is invisible — every counter matches the plain run.
func TestWarmupZeroMatchesPlain(t *testing.T) {
	params, err := workload.ByName("164.gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.Generate(params)
	lay := layout.Baseline(prog)
	gc := trace.GenConfig{Seed: 3, MaxInsts: 100_000}

	plain := Run(lay, trace.NewGenSource(prog, gc), Config{Width: 8, Engine: "streams"})
	iv, err := trace.NewInterval(trace.NewGenSource(prog, gc), prog, trace.IntervalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Run(lay, iv, Config{Width: 8, Engine: "streams"})
	if plain.Counters != wrapped.Counters {
		t.Fatalf("interval wrapper changed the run:\nplain   %+v\nwrapped %+v",
			plain.Counters, wrapped.Counters)
	}
}
