package sim

import (
	"testing"

	"streamfetch/internal/cache"
	"streamfetch/internal/frontend"
	"streamfetch/internal/isa"
)

// TestDecodeRedirectsCountedSeparately verifies misfetches (decode-stage
// fix-ups) are not counted as branch mispredictions.
func TestDecodeRedirectsCountedSeparately(t *testing.T) {
	b := loadBench(t, "164.gzip", 150_000)
	r := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: "streams"})
	if r.Misfetches == 0 {
		t.Skip("no misfetches in this configuration")
	}
	if r.Mispredicted > r.Branches {
		t.Fatalf("mispredicted %d > branches %d", r.Mispredicted, r.Branches)
	}
}

// TestEnginesSeeSameArchitecture: every engine must commit the same number
// of instructions and branches for the same trace and layout — the
// architectural path is engine-independent.
func TestEnginesSeeSameArchitecture(t *testing.T) {
	b := loadBench(t, "175.vpr", 120_000)
	var retired, branches []uint64
	for _, kind := range paperEngines() {
		r := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: kind})
		retired = append(retired, r.Retired)
		branches = append(branches, r.Branches)
	}
	for i := 1; i < len(retired); i++ {
		if retired[i] != retired[0] {
			t.Errorf("engine %s retired %d, engine %s retired %d",
				paperEngines()[i], retired[i], paperEngines()[0], retired[0])
		}
		if branches[i] != branches[0] {
			t.Errorf("engine %s committed %d branches, engine %s %d",
				paperEngines()[i], branches[i], paperEngines()[0], branches[0])
		}
	}
}

// TestWrongPathPollutesICache: wrong-path fetch must touch the instruction
// cache (the paper's simulator models wrong-path interference and
// prefetching); with mispredictions present, I-cache accesses must exceed
// the minimum needed for retired instructions alone.
func TestWrongPathPollutesICache(t *testing.T) {
	b := loadBench(t, "300.twolf", 150_000)
	r := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: "ev8"})
	if r.Mispredicted == 0 {
		t.Skip("no mispredictions")
	}
	if r.Fetch.Delivered <= r.Retired {
		t.Errorf("delivered %d <= retired %d: no wrong-path fetch happened",
			r.Fetch.Delivered, r.Retired)
	}
}

// TestBaseVsOptimizedBothComplete runs both layouts end to end.
func TestBaseVsOptimizedBothComplete(t *testing.T) {
	b := loadBench(t, "176.gcc", 120_000)
	rb := Run(b.lay, b.tr.Source(), Config{Width: 8, Engine: "streams"})
	ro := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: "streams"})
	if rb.Retired == 0 || ro.Retired == 0 {
		t.Fatal("a layout failed to complete")
	}
	// Dynamic instruction counts differ slightly (materialized/elided
	// jumps) but must stay within a few percent.
	lo, hi := rb.Retired, ro.Retired
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi-lo) > 0.1*float64(hi) {
		t.Errorf("layouts disagree on dynamic length: %d vs %d", rb.Retired, ro.Retired)
	}
}

// TestNarrowPipesCloseTogether reproduces the paper's 2-wide observation:
// with a narrow back-end all fetch engines perform within a few percent.
func TestNarrowPipesCloseTogether(t *testing.T) {
	b := loadBench(t, "164.gzip", 150_000)
	var ipcs []float64
	for _, kind := range paperEngines() {
		r := Run(b.opt, b.tr.Source(), Config{Width: 2, Engine: kind})
		ipcs = append(ipcs, r.IPC)
	}
	lo, hi := ipcs[0], ipcs[0]
	for _, v := range ipcs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if (hi-lo)/hi > 0.10 {
		t.Errorf("2-wide engines spread %.1f%% apart (want <10%%): %v",
			100*(hi-lo)/hi, ipcs)
	}
}

// TestStreamEngineBeatsNoPredictor sanity check: the stream engine with its
// predictor must outperform a configuration whose predictor tables are
// minuscule (degenerating to sequential fetch + decode redirects).
func TestStreamEngineBeatsNoPredictor(t *testing.T) {
	b := loadBench(t, "164.gzip", 150_000)
	full := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: "streams"})
	sc := frontend.DefaultStreamConfig()
	sc.Predictor.FirstEntries = 8
	sc.Predictor.FirstWays = 2
	sc.Predictor.SecondEntries = 8
	sc.Predictor.SecondWays = 2
	small := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: "streams", EngineOptions: sc})
	t.Logf("full tables IPC=%.3f, 8-entry tables IPC=%.3f", full.IPC, small.IPC)
	if full.IPC <= small.IPC {
		t.Errorf("full predictor (%.3f) not better than crippled (%.3f)", full.IPC, small.IPC)
	}
}

// TestMispredictByTypeConsistency: the per-type breakdown must sum to the
// total.
func TestMispredictByTypeConsistency(t *testing.T) {
	b := loadBench(t, "253.perlbmk", 120_000)
	r := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: "tcache"})
	var sum uint64
	for _, v := range r.MispredByType {
		sum += v
	}
	if sum != r.Mispredicted {
		t.Fatalf("breakdown sums to %d, total %d", sum, r.Mispredicted)
	}
	if r.MispredByType[isa.BranchNone] != 0 {
		t.Fatal("non-branches counted as mispredicted")
	}
}

// TestDualBankOption: the §3.4 alternative (two 1x-width lines per cycle)
// must beat the single narrow line and run end to end.
func TestDualBankOption(t *testing.T) {
	b := loadBench(t, "164.gzip", 120_000)
	mk := func(banks int) Result {
		sc := frontend.DefaultStreamConfig()
		sc.ICacheBanks = banks
		c := Config{Width: 8, Engine: "streams", EngineOptions: sc}
		c.Hier = cache.DefaultHierarchy(8)
		c.Hier.ICache.LineBytes = 8 * 4 // 1x width
		return Run(b.opt, b.tr.Source(), c)
	}
	single := mk(1)
	dual := mk(2)
	t.Logf("1x line single=%.2f fetch IPC, dual-bank=%.2f", single.FetchIPC, dual.FetchIPC)
	if dual.FetchIPC <= single.FetchIPC {
		t.Errorf("dual bank fetch IPC %.2f not above single %.2f",
			dual.FetchIPC, single.FetchIPC)
	}
}
