// Mergeable simulation counters. Every event counter a run accumulates —
// driver-side retirement and branch counts, the engine's fetch statistics,
// the cache hierarchy's access counts — lives in one Counters block, so a
// run splits into warmup and measure phases by snapshot (Delta) and
// independently simulated trace intervals combine into one logical run
// (Merge).
package sim

import (
	"streamfetch/internal/cache"
	"streamfetch/internal/frontend"
)

// Counters is the counter block of one simulation phase: everything in a
// Result that accumulates per event, none of the identity or derived-rate
// fields. The zero value is an empty block.
type Counters struct {
	Cycles  uint64
	Retired uint64

	Branches     uint64
	Mispredicted uint64
	// MispredByType breaks mispredictions down by branch type (indexed
	// by isa.BranchType).
	MispredByType [8]uint64
	// Misfetches counts decode-stage redirects (wrong or missing targets
	// caught before execute).
	Misfetches uint64

	Fetch frontend.FetchStats

	ICache cache.Stats
	DCache cache.Stats
	L2     cache.Stats
}

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }

// Merge accumulates another counter block into c. Merging the per-interval
// blocks of a sharded run yields the logical run's totals; note that
// summed Cycles from intervals simulated in parallel measure simulated
// work, not wall-clock.
func (c *Counters) Merge(o Counters) {
	c.Cycles += o.Cycles
	c.Retired += o.Retired
	c.Branches += o.Branches
	c.Mispredicted += o.Mispredicted
	for i := range c.MispredByType {
		c.MispredByType[i] += o.MispredByType[i]
	}
	c.Misfetches += o.Misfetches
	c.Fetch.Merge(o.Fetch)
	c.ICache.Merge(o.ICache)
	c.DCache.Merge(o.DCache)
	c.L2.Merge(o.L2)
}

// Delta returns the events counted since the earlier snapshot — how a
// warmup prefix is excluded from a run's measured counters.
func (c Counters) Delta(since Counters) Counters {
	d := Counters{
		Cycles:       c.Cycles - since.Cycles,
		Retired:      c.Retired - since.Retired,
		Branches:     c.Branches - since.Branches,
		Mispredicted: c.Mispredicted - since.Mispredicted,
		Misfetches:   c.Misfetches - since.Misfetches,
		Fetch:        c.Fetch.Delta(since.Fetch),
		ICache:       c.ICache.Delta(since.ICache),
		DCache:       c.DCache.Delta(since.DCache),
		L2:           c.L2.Delta(since.L2),
	}
	for i := range d.MispredByType {
		d.MispredByType[i] = c.MispredByType[i] - since.MispredByType[i]
	}
	return d
}

// IPC returns retired correct-path instructions per cycle (0 when idle).
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// MispredRate returns mispredicted branches per committed branch.
func (c Counters) MispredRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.Mispredicted) / float64(c.Branches)
}
