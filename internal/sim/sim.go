// Package sim drives trace-based simulation of a superscalar processor with
// a pluggable fetch engine. The driver owns the architecturally correct
// dynamic instruction stream (expanded from the block trace under the active
// code layout) and validates the front-end's fetched addresses against it:
//
//   - decode-stage consistency checks catch fetches that contradict the
//     static code (taken transitions at non-branches, wrong targets of
//     direct branches, fall-throughs of unconditional jumps) and redirect
//     with a short penalty;
//   - a divergence from the correct path marks the preceding correct-path
//     instruction as mispredicted; fetch continues down the wrong path
//     through the static image (polluting caches and speculative predictor
//     history, as in the paper's wrong-path model) until the branch
//     resolves a pipeline-depth after fetch, when the engine recovers.
package sim

import (
	"fmt"

	"streamfetch/internal/cache"
	"streamfetch/internal/cfg"
	"streamfetch/internal/frontend"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
	"streamfetch/internal/pipeline"
	"streamfetch/internal/trace"
)

// Config parameterizes one simulation. The driver has no engine-specific
// knowledge: the front-end is named by its registry entry and configured
// through an opaque options value handed to the engine factory.
type Config struct {
	// Width is the pipe width (2, 4 or 8 in the paper).
	Width int
	// Engine names the front-end in the frontend registry ("" = streams).
	Engine string
	// EngineOptions carries engine-specific options for the factory
	// (e.g. frontend.StreamConfig for "streams"); nil selects the
	// engine's Table-2 defaults.
	EngineOptions any
	// Pipeline is the back-end model configuration.
	Pipeline pipeline.Config
	// Hier describes the memory system; zero value uses Table-2 defaults
	// for the width.
	Hier cache.HierarchyConfig
	// MaxInsts stops the simulation after retiring this many
	// correct-path instructions (0 = the whole trace).
	MaxInsts uint64

	// OnCommit, when set, observes every retired instruction (diagnostics).
	OnCommit func(c frontend.Committed)

	// OnMisfetch, when set, is invoked for every decode-stage redirect
	// with the offending transition (debugging/analysis hook).
	OnMisfetch func(prevAddr isa.Addr, prevBranch isa.BranchType, cur, fix isa.Addr, wrongPath, prevWrong, prevTaken bool, prevSeq uint64)

	// OnMispredict, when set, is invoked for every committed mispredicted
	// branch with the current retired-instruction count
	// (debugging/analysis hook).
	OnMispredict func(addr isa.Addr, branch isa.BranchType, taken bool, retired uint64)

	// OnProgress, when set, is invoked roughly every ProgressInterval
	// retired instructions with the retired and cycle counts; returning
	// false stops the simulation early (Result.Aborted is set). Long
	// sweeps use it for cancellation and progress reporting.
	OnProgress func(retired, cycles uint64) bool

	// OnWarmed, when set, fires once per run at the instant the
	// functional-warming prefix has fully drained — after the warm state
	// (caches, address generator, engine tables) reflects the replayed
	// prefix and before the first timed cycle. Checkpoint capture hangs
	// off this hook; it only fires for sources with a lead-in.
	OnWarmed func(p *Processor)
	// ProgressInterval is the OnProgress cadence in retired instructions
	// (0 = 65536).
	ProgressInterval uint64
}

// WithDefaults fills unset fields from the paper's Table 2.
func (c Config) WithDefaults() Config {
	if c.Width == 0 {
		c.Width = 8
	}
	if c.Engine == "" {
		c.Engine = "streams"
	}
	c.Pipeline.Width = c.Width
	if c.Pipeline.Depth == 0 {
		c.Pipeline.Depth = 16
	}
	c.Pipeline = c.Pipeline.WithDefaults()
	if c.Hier.ICache.SizeBytes == 0 {
		c.Hier = cache.DefaultHierarchy(c.Width)
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = 65536
	}
	return c
}

// progressCycles is the cycle-cadence backstop for OnProgress: even an
// engine that retires nothing gets a callback at least this often, which
// keeps a wedged simulation observable and cancellable.
const progressCycles = 1 << 16

// Result aggregates one simulation's outcome: the run's identity, its
// mergeable counter block (the measured phase, when the source carried a
// warmup lead-in), and rates derived from those counters.
type Result struct {
	Engine string
	Width  int

	// Aborted is set when an OnProgress callback stopped the run early;
	// the counters then cover only the simulated prefix.
	Aborted bool

	// Counters holds the run's event counts. For a run whose source
	// delivered a warmup lead-in (trace.IntervalSource), it covers the
	// measured phase only; Warmup holds the frozen lead-in.
	Counters
	// Warmup is the counter block of the warmup phase (zero when the run
	// had none): caches and predictors trained, nothing measured.
	Warmup Counters

	// IPC is retired correct-path instructions per cycle.
	IPC float64
	// MispredRate is mispredicted branches per committed branch.
	MispredRate float64
	// FetchIPC is delivered instructions per front-end cycle.
	FetchIPC float64
}

// finalize fills the derived rates from the counter block.
func (r *Result) finalize() {
	r.IPC = r.Counters.IPC()
	r.MispredRate = r.Counters.MispredRate()
	r.FetchIPC = r.Fetch.FetchIPC()
}

// String renders a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%-8s w=%d IPC=%.3f fetchIPC=%.2f mispred=%.2f%% misfetch=%d icacheMiss=%.3f%%",
		r.Engine, r.Width, r.IPC, r.FetchIPC, 100*r.MispredRate, r.Misfetches,
		100*r.ICache.MissRate())
}

// warmSource is the optional source contract for interval sources with
// lead-in regions (trace.IntervalSource): delivered blocks carry a region
// flag. Functional-warming blocks are replayed through the fwarm callback
// without entering the pipeline; timing-warmup blocks are simulated with
// counters frozen until they have all retired.
type warmSource interface {
	// WarmupPending reports whether any lead-in remains.
	WarmupPending() bool
	// LastRegion classifies the block most recently returned by Next.
	LastRegion() trace.Region
}

// supplyBatch is the block granularity of the batched supply path: blocks
// per Source.NextBatch pull, and (times mean block length) the size of the
// reused dyn-inst window.
const supplyBatch = 512

// dynSupply lazily expands the block trace into dynamic instructions under
// the layout. In the common case (no lead-in regions) it pulls blocks
// supplyBatch at a time through one Source.NextBatch interface call and
// expands them en masse into a reusable dyn-inst window, so the driver's
// peek/advance path is an array read — no interface calls, no allocation
// — and memory stays one batch's worth regardless of trace length. The
// final block of each batch is carried into the next one, since expansion
// needs the dynamically following block.
//
// When the source carries lead-in regions (warm != nil), the supply still
// pulls batch-wise: IntervalSource.NextBatch never spans a region
// boundary, so one LastRegion call classifies a whole batch. Regions are
// handled in expansion order: functional-warming batches are expanded,
// handed to the fwarm callback instruction by instruction, and never
// delivered to the pipeline; timing-warmup batches are delivered and
// counted into warmDyn. Lead-in blocks are a strict prefix of the stream,
// so once a measured block has been expanded (crossed), warmDyn is the
// exact retirement count at which the measure phase begins.
type dynSupply struct {
	lay *layout.Layout
	src trace.Source
	buf []layout.DynInst
	pos int

	// Batched path state (warm == nil).
	blk     []cfg.BlockID
	blkLen  int // blocks in blk awaiting expansion (0 or 1 between fills)
	srcDone bool

	// Warm-path carry (warm != nil): the final block of the previous
	// batch, held until its lookahead — the next batch's first block —
	// is known, together with the region it was delivered under.
	carryBlk  [1]cfg.BlockID
	carryReg  trace.Region
	haveCarry bool

	warm    warmSource
	fwarm   func(layout.DynInst)
	warmDyn uint64
	crossed bool
}

func (d *dynSupply) peek() (layout.DynInst, bool) {
	if d.pos < len(d.buf) {
		return d.buf[d.pos], true
	}
	if d.warm != nil {
		return d.peekWarm()
	}
	for d.pos >= len(d.buf) {
		if !d.fill() {
			return layout.DynInst{}, false
		}
	}
	return d.buf[d.pos], true
}

// initBatch readies the batched path's buffers up front: the block window,
// and a dyn-inst window sized for the worst-case expansion of a full batch,
// so the run loop itself performs no allocation.
func (d *dynSupply) initBatch() {
	d.blk = make([]cfg.BlockID, supplyBatch)
	d.buf = make([]layout.DynInst, 0, supplyBatch*d.lay.MaxBlockSlots())
}

// fill refills the block window through one NextBatch call and expands it
// into the dyn buffer. The previous window's final block (whose lookahead
// was unknown) moves to the front; all blocks but the new final one are
// expanded, and once the source is exhausted the last block expands with
// NoBlock. It returns false when nothing remains to expand.
func (d *dynSupply) fill() bool {
	if d.blk == nil {
		d.blk = make([]cfg.BlockID, supplyBatch)
	}
	have := d.blkLen
	if !d.srcDone {
		n := d.src.NextBatch(d.blk[have:])
		if n == 0 {
			d.srcDone = true
		}
		have += n
	}
	d.buf = d.buf[:0]
	d.pos = 0
	if have == 0 {
		d.blkLen = 0
		return false
	}
	if d.srcDone {
		d.buf = d.lay.AppendDynRun(d.buf, d.blk[:have], cfg.NoBlock)
		d.blkLen = 0
		return true
	}
	d.buf = d.lay.AppendDynRun(d.buf, d.blk[:have-1], d.blk[have-1])
	d.blk[0] = d.blk[have-1]
	d.blkLen = 1
	return true
}

// peekWarm is the supply path for sources with lead-in regions: batched
// pulls like the common path, one region classification per batch.
func (d *dynSupply) peekWarm() (layout.DynInst, bool) {
	for d.pos >= len(d.buf) {
		if !d.fillWarm() {
			return layout.DynInst{}, false
		}
	}
	return d.buf[d.pos], true
}

// deliverWarm expands a same-region run of blocks (the last expanding
// toward nb) and routes the result by region: functional-warming
// instructions are fed to the fwarm callback and dropped, warmup and
// measured instructions are appended for the pipeline.
func (d *dynSupply) deliverWarm(blocks []cfg.BlockID, nb cfg.BlockID, reg trace.Region) {
	start := len(d.buf)
	d.buf = d.lay.AppendDynRun(d.buf, blocks, nb)
	switch reg {
	case trace.RegionFuncWarm:
		// Replay state functionally and drop the run: the pipeline
		// never sees it.
		if d.fwarm != nil {
			for _, di := range d.buf[start:] {
				d.fwarm(di)
			}
		}
		d.buf = d.buf[:start]
	case trace.RegionWarm:
		d.warmDyn += uint64(len(d.buf) - start)
	default:
		d.crossed = true
	}
}

// fillWarm refills the dyn window through one NextBatch pull. The source
// guarantees a batch never spans a region boundary, so LastRegion after
// the pull classifies every delivered block; the carried final block of
// the previous batch keeps the region it was delivered under. It returns
// false when nothing remains, and true after making progress — possibly
// with an empty window, when the whole batch was functional warming.
func (d *dynSupply) fillWarm() bool {
	if d.blk == nil {
		d.blk = make([]cfg.BlockID, supplyBatch)
		d.buf = make([]layout.DynInst, 0, supplyBatch*d.lay.MaxBlockSlots())
	}
	d.buf = d.buf[:0]
	d.pos = 0
	n := 0
	var reg trace.Region
	if !d.srcDone {
		n = d.src.NextBatch(d.blk)
		if n == 0 {
			d.srcDone = true
		} else {
			reg = d.warm.LastRegion()
		}
	}
	if !d.haveCarry && n == 0 {
		return false
	}
	if d.haveCarry {
		nb := cfg.NoBlock
		if n > 0 {
			nb = d.blk[0]
		}
		d.haveCarry = false
		d.deliverWarm(d.carryBlk[:], nb, d.carryReg)
	}
	if n > 0 {
		d.deliverWarm(d.blk[:n-1], d.blk[n-1], reg)
		d.carryBlk[0], d.carryReg, d.haveCarry = d.blk[n-1], reg, true
	}
	return true
}

func (d *dynSupply) advance() { d.pos++ }

// Processor is one configured simulation.
type Processor struct {
	cfg    Config
	lay    *layout.Layout
	hier   *cache.Hierarchy
	engine frontend.Engine
	lat    *pipeline.Latency
	supply dynSupply
}

// New builds a processor simulating the block sequence supplied by src
// (generated from lay's program) under lay. The source is consumed
// incrementally — trace memory is independent of run length — and is not
// closed by the processor. The engine is resolved through the frontend
// registry; unknown names and bad engine options are reported as errors.
func New(lay *layout.Layout, src trace.Source, cfg Config) (*Processor, error) {
	cfg = cfg.WithDefaults()
	hier := cache.NewHierarchy(cfg.Hier)
	env := frontend.BuildEnv{
		Hier:  hier,
		Image: lay,
		Width: cfg.Width,
		Entry: lay.Start(lay.Prog.Entry),
	}
	eng, err := frontend.New(cfg.Engine, env, cfg.EngineOptions)
	if err != nil {
		return nil, err
	}
	p := &Processor{
		cfg:    cfg,
		lay:    lay,
		hier:   hier,
		engine: eng,
		lat: &pipeline.Latency{
			Hier: hier,
			Gen: pipeline.NewLoadAddrGen(cfg.Pipeline.DataWorkingSet,
				layout.CodeBase, lay.TotalSlots()),
			Mul: cfg.Pipeline.MulLatency,
		},
		supply: dynSupply{lay: lay, src: src},
	}
	// A source with warmup lead-in splits the run into a counters-frozen
	// warmup phase and a measured phase.
	if ws, ok := src.(warmSource); ok && ws.WarmupPending() {
		p.supply.warm = ws
	} else {
		p.supply.initBatch()
	}
	return p, nil
}

// counters assembles the full counter block at the current point of a run:
// the driver-side counts already in res plus the engine and hierarchy
// statistics.
func (p *Processor) counters(res *Result, cycle uint64) Counters {
	c := res.Counters
	c.Cycles = cycle
	c.Fetch = p.engine.FetchStats()
	c.ICache = p.hier.ICache.Stats()
	c.DCache = p.hier.DCache.Stats()
	c.L2 = p.hier.L2.Stats()
	return c
}

// Engine exposes the running engine (for reports).
func (p *Processor) Engine() frontend.Engine { return p.engine }

// Hier exposes the cache hierarchy (for checkpoint capture/restore).
func (p *Processor) Hier() *cache.Hierarchy { return p.hier }

// Gen exposes the load address generator (for checkpoint
// capture/restore).
func (p *Processor) Gen() *pipeline.LoadAddrGen { return p.lat.Gen }

// outstanding tracks the single unresolved misprediction. It is held by
// value in Run (no per-misprediction heap allocation).
type outstanding struct {
	seq      uint64
	resolve  uint64
	recovery isa.Addr
}

// Run executes the simulation and returns its results. When the source is
// a warmup-bearing interval (trace.IntervalSource), the run splits into a
// warmup phase — caches and predictors train, counters are frozen out of
// the result by snapshot — and a measured phase covering exactly the
// source's measure window; Result.Counters then holds the measured phase
// and Result.Warmup the lead-in. MaxInsts counts all retired instructions,
// warmup included. A run whose trace ends inside the warmup lead-in (an
// empty measure window) reports zero measured counters with everything in
// Warmup, so degenerate intervals merge losslessly.
func (p *Processor) Run() Result {
	cfg := p.cfg
	width := cfg.Width
	lat := p.lat
	rob := pipeline.NewROB(cfg.Pipeline.ROBSize)
	// The fetch buffer reuses the ROB's ring structure: a fixed-capacity
	// in-order window of entries with contiguous sequence numbers.
	fetchBuf := pipeline.NewROB(4 * width)

	var (
		cycle, seq      uint64
		out             []frontend.FetchedInst
		wrongPath       bool
		pending         outstanding
		havePending     bool
		prev            pipeline.Entry
		prevValid       bool
		lastCorrectSeq  uint64
		fetchHold       uint64
		supplyDone      bool
		validated       uint64
		nextProgress    = cfg.ProgressInterval
		nextProgCycle   = uint64(progressCycles)
		res             Result
		wantRetired     = cfg.MaxInsts
		decodePenalty   = uint64(cfg.Pipeline.DecodePenalty)
		resolveDepth    = uint64(cfg.Pipeline.Depth)
		correctInFlight = 0 // validated but not yet retired
	)
	res.Engine = cfg.Engine
	res.Width = width

	// Warmup split: while the source's warmup lead-in drains, counters
	// run normally; the moment every warm instruction has retired, the
	// full counter block is snapshotted and later subtracted, so the
	// measured counters cover exactly the source's measure window while
	// caches and predictors keep the training the warmup gave them.
	var (
		warmPending = p.supply.warm != nil
		warmSnap    Counters
		haveWarm    bool
	)

	// findEntry locates an in-flight entry by sequence number.
	findEntry := func(s uint64) *pipeline.Entry {
		if e := fetchBuf.Find(s); e != nil {
			return e
		}
		return rob.Find(s)
	}

	// Functional warming: the interval's pre-warmup prefix is replayed
	// through the cache hierarchy, the load address generator and the
	// engine's commit-side training (predictor tables, return stacks,
	// stream/trace builders) without timing, so a mid-trace shard starts
	// its measure window with in-situ-accurate memory and predictor state
	// — and with the per-PC address sequences exactly where a whole-trace
	// run would have them. The instruction stream is walked at decode
	// speed (no pipeline), which is what keeps sharding profitable.
	if p.supply.warm != nil {
		lineMask := ^isa.Addr(p.hier.ICache.LineBytes() - 1)
		lastLine := ^isa.Addr(0)
		p.supply.fwarm = func(di layout.DynInst) {
			if line := di.Addr & lineMask; line != lastLine {
				lastLine = line
				p.hier.FetchLatency(di.Addr)
			}
			switch di.Class {
			case isa.ClassLoad:
				p.hier.LoadLatency(isa.Addr(lat.Gen.Next(di.Addr)))
			case isa.ClassStore:
				p.hier.Store(isa.Addr(lat.Gen.Next(di.Addr)))
			}
			cm := frontend.Committed{
				Addr:   di.Addr,
				Branch: di.Branch,
				Taken:  di.Taken,
			}
			if di.Taken {
				cm.Target = di.NextAddr
			}
			p.engine.Commit(cm)
		}
	}

	// A mid-trace interval's first correct-path instruction is not the
	// program entry the engine was built to fetch from: point fetch at it
	// before the first cycle. Whole-trace runs start at the entry already,
	// so they see no redirect (and stay byte-identical).
	first, haveFirst := p.supply.peek()
	// The first peek drains the whole functional-warming prefix (it is a
	// strict prefix of the stream): warm state is complete here, before
	// any timed cycle — the checkpoint capture point.
	if cfg.OnWarmed != nil && p.supply.warm != nil {
		cfg.OnWarmed(p)
	}
	if haveFirst && first.Addr != p.lay.Start(p.lay.Prog.Entry) {
		p.engine.Redirect(first.Addr, false)
	}

	maxCycles := uint64(1) << 40
	for cycle < maxCycles {
		cycle++

		// 1. Retire. Retirement runs before misprediction resolution so
		// that, on the cycle a branch resolves, the branch itself (and
		// everything older) has already committed: the engine's
		// retirement-side state (histories, path registers, stream
		// builders) then includes the diverging stream when Redirect
		// copies it into the speculative state.
		for k := 0; k < width && rob.Len() > 0; k++ {
			// Hold retirement at the warmup boundary so the snapshot
			// below lands exactly between the last warm and the first
			// measured instruction (a single cycle can retire both).
			if warmPending && res.Retired >= p.supply.warmDyn {
				break
			}
			h := rob.Head()
			if h.WrongPath || h.DoneCycle > cycle {
				break
			}
			if h.Branch != isa.BranchNone && h.ResolveCycle > cycle {
				break
			}
			// Hold the newest validated branch until its successor
			// has been checked (divergence detection needs the next
			// fetch).
			if !supplyDone && h.Seq == lastCorrectSeq && h.Branch != isa.BranchNone && !wrongPath {
				if _, more := p.supply.peek(); more {
					break
				}
			}
			e := rob.PopHead()
			res.Retired++
			correctInFlight--
			if e.Branch != isa.BranchNone {
				res.Branches++
				if e.Mispredicted {
					res.Mispredicted++
					res.MispredByType[e.Branch]++
					if cfg.OnMispredict != nil {
						cfg.OnMispredict(e.Addr, e.Branch, e.Taken, res.Retired)
					}
				}
			}
			cm := frontend.Committed{
				Addr:         e.Addr,
				Branch:       e.Branch,
				Taken:        e.Taken,
				Target:       e.Target,
				Mispredicted: e.Mispredicted,
			}
			if cfg.OnCommit != nil {
				cfg.OnCommit(cm)
			}
			p.engine.Commit(cm)
		}
		// 1b. End of warmup: every warm instruction has retired (warmDyn
		// is final once a measured block has been expanded, which always
		// precedes its fetch and retirement). Freeze the warmup counters
		// by snapshot; state (caches, predictors, pipeline) carries over.
		if warmPending && p.supply.crossed && res.Retired >= p.supply.warmDyn {
			warmPending = false
			haveWarm = true
			warmSnap = p.counters(&res, cycle)
		}
		// 2. Resolve an outstanding misprediction.
		if havePending && cycle >= pending.resolve {
			if debugSquash != nil {
				for i := 0; i < rob.Len(); i++ {
					e := rob.At(i)
					if e.Seq > pending.seq && !e.WrongPath {
						debugSquash(*e)
					}
				}
				for i := 0; i < fetchBuf.Len(); i++ {
					e := fetchBuf.At(i)
					if e.Seq > pending.seq && !e.WrongPath {
						debugSquash(*e)
					}
				}
			}
			rob.SquashAfter(pending.seq)
			fetchBuf.SquashAfter(pending.seq)
			// Rewind the sequence counter to the squash point so in-flight
			// sequence numbers stay contiguous — the invariant that lets
			// the ring buffers locate entries by offset arithmetic.
			seq = pending.seq
			p.engine.Redirect(pending.recovery, true)
			wrongPath = false
			prevValid = false
			havePending = false
		}
		if wantRetired > 0 && res.Retired >= wantRetired {
			break
		}
		// Progress fires on retired instructions — and, as a backstop, on a
		// cycle cadence: an engine that stops retiring (wedged, livelocked)
		// must still surface callbacks, or cancellation and watchdogs could
		// never reach it. The callback only reads counters, so the extra
		// cadence cannot perturb simulated state.
		if cfg.OnProgress != nil && (res.Retired >= nextProgress || cycle >= nextProgCycle) {
			nextProgress = res.Retired + cfg.ProgressInterval
			nextProgCycle = cycle + progressCycles
			if !cfg.OnProgress(res.Retired, cycle) {
				res.Aborted = true
				break
			}
		}
		if supplyDone && correctInFlight == 0 && !havePending {
			break
		}

		// 3. Issue fetch buffer into the ROB.
		for k := 0; k < width && fetchBuf.Len() > 0 && !rob.Full(); k++ {
			e := fetchBuf.PopHead()
			e.DoneCycle = cycle + uint64(lat.For(&e))
			rob.Push(e)
		}

		// 4. Fetch.
		if supplyDone && !wrongPath {
			continue // nothing correct left to fetch
		}
		if cycle < fetchHold || fetchBuf.Len()+width > fetchBuf.Cap() {
			continue
		}
		out = p.engine.Cycle(out[:0])
		for _, fi := range out {
			// Decode-stage consistency check against the previous
			// fetched instruction.
			if prevValid {
				if fix, bad := p.staticCheck(prev, fi.Addr); bad {
					p.engine.Redirect(fix, false)
					fetchHold = cycle + decodePenalty
					prevValid = false
					res.Misfetches++
					if cfg.OnMisfetch != nil {
						cfg.OnMisfetch(prev.Addr, prev.Branch, fi.Addr, fix, wrongPath, prev.WrongPath, prev.Taken, prev.Seq)
					}
					break
				}
			}
			seq++
			e := pipeline.Entry{
				Seq:          seq,
				Addr:         fi.Addr,
				Class:        fi.Inst.Class,
				Branch:       fi.Inst.Branch,
				FetchCycle:   cycle,
				ResolveCycle: cycle + resolveDepth,
			}
			if !wrongPath {
				c, more := p.supply.peek()
				if !more {
					supplyDone = true
					break
				}
				if fi.Addr == c.Addr {
					if debugValidateHook != nil {
						debugValidateHook(fi.Addr)
					}
					e.Class = c.Class
					e.Branch = c.Branch
					e.Taken = c.Taken
					if c.Taken {
						e.Target = c.NextAddr
					}
					p.supply.advance()
					lastCorrectSeq = seq
					validated++
					correctInFlight++
				} else {
					// Divergence: the previous correct-path
					// instruction was mispredicted.
					me := findEntry(lastCorrectSeq)
					if me == nil {
						panic("sim: diverging entry already retired")
					}
					me.Mispredicted = true
					me.Recovery = c.Addr
					pending = outstanding{
						seq:      me.Seq,
						resolve:  me.ResolveCycle,
						recovery: c.Addr,
					}
					havePending = true
					wrongPath = true
					e.WrongPath = true
				}
			} else {
				e.WrongPath = true
			}
			fetchBuf.Push(e)
			prev = e
			prevValid = true
		}
	}

	if warmPending {
		// The trace ended (or the run aborted) before the measure window
		// began: nothing was measured. Freeze everything as warmup, so a
		// degenerate interval contributes zero to a merge instead of
		// double-counting lead-in work that belongs to other intervals.
		haveWarm = true
		warmSnap = p.counters(&res, cycle)
	}
	res.Counters = p.counters(&res, cycle)
	if haveWarm {
		res.Warmup = warmSnap
		res.Counters = res.Counters.Delta(warmSnap)
	}
	res.finalize()
	return res
}

// staticCheck verifies that the transition prev→cur is consistent with the
// static code, as the decode stage would. It returns the redirect target
// when the transition is impossible.
func (p *Processor) staticCheck(prev pipeline.Entry, cur isa.Addr) (fix isa.Addr, bad bool) {
	seqNext := prev.Addr.Next()
	if cur == seqNext {
		// Sequential flow: impossible after a direct unconditional
		// transfer (decode computes the target and redirects).
		switch prev.Branch {
		case isa.BranchUncond, isa.BranchCall:
			if t, ok := p.lay.StaticTarget(prev.Addr); ok {
				return t, true
			}
		}
		return 0, false
	}
	// Taken transition.
	switch prev.Branch {
	case isa.BranchNone:
		// A non-branch cannot transfer control: the predicted unit was
		// too short; decode resumes at the fall-through.
		return seqNext, true
	case isa.BranchCond, isa.BranchUncond, isa.BranchCall:
		if t, ok := p.lay.StaticTarget(prev.Addr); ok && cur != t {
			return t, true
		}
		return 0, false
	default:
		// Returns and indirects cannot be verified at decode.
		return 0, false
	}
}

// SetDebugValidate installs a hook observing every validation.
func SetDebugValidate(f func(a isa.Addr)) { debugValidateHook = f }

var debugValidateHook func(a isa.Addr)

// SetDebugSquash installs a hook observing squashed non-wrong-path entries.
func SetDebugSquash(f func(e pipeline.Entry)) { debugSquash = f }

// debugSquash, when set by tests, observes squashed entries that were not
// wrong-path (which should be impossible).
var debugSquash func(e pipeline.Entry)

// Run is a convenience: build and run one simulation. It panics on an
// unresolvable engine configuration (callers wanting an error use New).
func Run(lay *layout.Layout, src trace.Source, cfg Config) Result {
	p, err := New(lay, src, cfg)
	if err != nil {
		panic(err)
	}
	return p.Run()
}
