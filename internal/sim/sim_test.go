package sim

import (
	"testing"

	"streamfetch/internal/frontend"
	"streamfetch/internal/layout"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

type bench struct {
	lay *layout.Layout
	opt *layout.Layout
	tr  *trace.Trace
}

func loadBench(t testing.TB, name string, insts uint64) bench {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	prog := workload.Generate(p)
	prof := trace.CollectProfile(prog, 7, insts/2)
	tr := trace.Generate(prog, trace.GenConfig{Seed: 99, MaxInsts: insts})
	return bench{
		lay: layout.Baseline(prog),
		opt: layout.Optimized(prog, prof),
		tr:  tr,
	}
}

// paperEngines lists the four built-in front-ends in presentation order.
func paperEngines() []string { return []string{"ev8", "ftb", "streams", "tcache"} }

func TestRunAllEnginesComplete(t *testing.T) {
	b := loadBench(t, "164.gzip", 200_000)
	for _, kind := range paperEngines() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			r := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: kind})
			t.Logf("%v", r)
			if r.Retired == 0 {
				t.Fatal("retired no instructions")
			}
			if r.IPC <= 0.2 || r.IPC > 8 {
				t.Errorf("implausible IPC %.3f", r.IPC)
			}
			if r.Branches == 0 {
				t.Error("no branches committed")
			}
			if r.MispredRate > 0.25 {
				t.Errorf("implausible misprediction rate %.3f", r.MispredRate)
			}
			if r.Cycles == 0 || r.Cycles > 100*r.Retired {
				t.Errorf("implausible cycle count %d for %d instructions", r.Cycles, r.Retired)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	b := loadBench(t, "175.vpr", 100_000)
	r1 := Run(b.opt, b.tr.Source(), Config{Width: 4, Engine: "streams"})
	r2 := Run(b.opt, b.tr.Source(), Config{Width: 4, Engine: "streams"})
	if r1 != r2 {
		t.Fatalf("results differ between identical runs:\n%+v\n%+v", r1, r2)
	}
}

func TestWiderPipeFasterOrEqual(t *testing.T) {
	b := loadBench(t, "164.gzip", 150_000)
	r2 := Run(b.opt, b.tr.Source(), Config{Width: 2, Engine: "streams"})
	r8 := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: "streams"})
	t.Logf("2-wide IPC %.3f, 8-wide IPC %.3f", r2.IPC, r8.IPC)
	if r8.IPC < r2.IPC {
		t.Errorf("8-wide IPC %.3f below 2-wide %.3f", r8.IPC, r2.IPC)
	}
}

func TestMaxInstsLimits(t *testing.T) {
	b := loadBench(t, "164.gzip", 150_000)
	r := Run(b.opt, b.tr.Source(), Config{Width: 8, Engine: "ev8", MaxInsts: 20_000})
	if r.Retired < 20_000 || r.Retired > 20_000+64 {
		t.Errorf("retired %d, want about 20000", r.Retired)
	}
}

// TestNewUnknownEngine: the driver surfaces registry resolution failures as
// errors instead of engine-kind panics.
func TestNewUnknownEngine(t *testing.T) {
	b := loadBench(t, "164.gzip", 50_000)
	if _, err := New(b.opt, b.tr.Source(), Config{Width: 8, Engine: "bogus"}); err == nil {
		t.Fatal("New with unknown engine did not error")
	}
	if _, err := New(b.opt, b.tr.Source(), Config{Width: 8, Engine: "streams",
		EngineOptions: frontend.EV8Config{}}); err == nil {
		t.Fatal("New with mistyped engine options did not error")
	}
}

// TestOnProgressAborts: a progress callback returning false stops the run
// early and marks the result.
func TestOnProgressAborts(t *testing.T) {
	b := loadBench(t, "164.gzip", 150_000)
	var calls int
	r := Run(b.opt, b.tr.Source(), Config{
		Width:            8,
		Engine:           "streams",
		ProgressInterval: 10_000,
		OnProgress: func(retired, cycles uint64) bool {
			calls++
			return retired < 30_000
		},
	})
	if calls == 0 {
		t.Fatal("OnProgress never invoked")
	}
	if !r.Aborted {
		t.Error("Aborted not set after OnProgress returned false")
	}
	if r.Retired < 30_000 || r.Retired > 60_000 {
		t.Errorf("retired %d, want shortly after 30000", r.Retired)
	}
}
