package sim

import (
	"testing"

	"streamfetch/internal/layout"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

type bench struct {
	lay *layout.Layout
	opt *layout.Layout
	tr  *trace.Trace
}

func loadBench(t testing.TB, name string, insts uint64) bench {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	prog := workload.Generate(p)
	prof := trace.CollectProfile(prog, 7, insts/2)
	tr := trace.Generate(prog, trace.GenConfig{Seed: 99, MaxInsts: insts})
	return bench{
		lay: layout.Baseline(prog),
		opt: layout.Optimized(prog, prof),
		tr:  tr,
	}
}

func TestRunAllEnginesComplete(t *testing.T) {
	b := loadBench(t, "164.gzip", 200_000)
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			r := Run(b.opt, b.tr, Config{Width: 8, Engine: kind})
			t.Logf("%v", r)
			if r.Retired == 0 {
				t.Fatal("retired no instructions")
			}
			if r.IPC <= 0.2 || r.IPC > 8 {
				t.Errorf("implausible IPC %.3f", r.IPC)
			}
			if r.Branches == 0 {
				t.Error("no branches committed")
			}
			if r.MispredRate > 0.25 {
				t.Errorf("implausible misprediction rate %.3f", r.MispredRate)
			}
			if r.Cycles == 0 || r.Cycles > 100*r.Retired {
				t.Errorf("implausible cycle count %d for %d instructions", r.Cycles, r.Retired)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	b := loadBench(t, "175.vpr", 100_000)
	r1 := Run(b.opt, b.tr, Config{Width: 4, Engine: EngineStreams})
	r2 := Run(b.opt, b.tr, Config{Width: 4, Engine: EngineStreams})
	if r1 != r2 {
		t.Fatalf("results differ between identical runs:\n%+v\n%+v", r1, r2)
	}
}

func TestWiderPipeFasterOrEqual(t *testing.T) {
	b := loadBench(t, "164.gzip", 150_000)
	r2 := Run(b.opt, b.tr, Config{Width: 2, Engine: EngineStreams})
	r8 := Run(b.opt, b.tr, Config{Width: 8, Engine: EngineStreams})
	t.Logf("2-wide IPC %.3f, 8-wide IPC %.3f", r2.IPC, r8.IPC)
	if r8.IPC < r2.IPC {
		t.Errorf("8-wide IPC %.3f below 2-wide %.3f", r8.IPC, r2.IPC)
	}
}

func TestMaxInstsLimits(t *testing.T) {
	b := loadBench(t, "164.gzip", 150_000)
	r := Run(b.opt, b.tr, Config{Width: 8, Engine: EngineEV8, MaxInsts: 20_000})
	if r.Retired < 20_000 || r.Retired > 20_000+64 {
		t.Errorf("retired %d, want about 20000", r.Retired)
	}
}
