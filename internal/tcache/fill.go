// The fill unit: commit-side trace construction. Retired instructions are
// segmented into traces using the same rules the fetch side predicts with
// (length cap, conditional-branch cap, mandatory break at indirect branches
// and returns), so predictor training and trace storage see consistent
// trace boundaries.
package tcache

import "streamfetch/internal/isa"

// FillUnit accumulates committed instructions into traces.
type FillUnit struct {
	cfg     Config
	pending Trace
	// buf is the fixed-capacity instruction storage backing every pending
	// trace: allocated once at construction (cap MaxLen, the most a trace
	// can hold) and re-sliced empty at each trace boundary, so steady-state
	// trace construction never touches the heap.
	buf []TraceInst
	// sawTaken marks a taken branch before the current final slot.
	mispredicted bool
}

// NewFillUnit builds a fill unit starting its first trace at entry.
func NewFillUnit(cfg Config, entry isa.Addr) *FillUnit {
	f := &FillUnit{cfg: cfg, buf: make([]TraceInst, 0, cfg.MaxLen)}
	f.reset(entry)
	return f
}

func (f *FillUnit) reset(start isa.Addr) {
	f.pending = Trace{ID: ID{Start: start}, Inst: f.buf[:0]}
	f.mispredicted = false
}

// Commit consumes one retired instruction. When the instruction closes a
// trace, the completed trace is returned along with whether its prediction
// had failed.
//
// The returned trace's Inst slice aliases the fill unit's reused buffer: it
// is valid only until the next Commit. Callers that retain the trace must
// copy the instructions (Storage.Insert copies into its arena).
func (f *FillUnit) Commit(addr isa.Addr, inst isa.Inst, taken bool, target isa.Addr, mispredicted bool) (tr Trace, wasMispredicted, ok bool) {
	if len(f.pending.Inst) == 0 {
		f.pending.ID.Start = addr
	}
	if mispredicted {
		f.mispredicted = true
	}
	isCond := inst.Branch == isa.BranchCond
	if isCond {
		if taken {
			f.pending.ID.Dirs |= 1 << f.pending.ID.NCond
		}
		f.pending.ID.NCond++
	}
	f.pending.Inst = append(f.pending.Inst, TraceInst{Addr: addr, Inst: inst})

	endsHere := false
	next := addr.Next()
	term := isa.BranchNone
	switch {
	case inst.Branch.IsIndirect() || inst.Branch.IsReturn():
		endsHere = true
		term = inst.Branch
		next = target
	case len(f.pending.Inst) >= f.cfg.MaxLen:
		endsHere = true
		if inst.Branch != isa.BranchNone {
			term = inst.Branch
		}
		if taken {
			next = target
		}
	case isCond && int(f.pending.ID.NCond) >= f.cfg.MaxCond:
		endsHere = true
		term = inst.Branch
		if taken {
			next = target
		}
	case mispredicted:
		// A misprediction breaks trace construction: close the trace
		// here so fetch- and commit-side boundaries re-align at the
		// recovery point.
		endsHere = true
		if inst.Branch != isa.BranchNone {
			term = inst.Branch
		}
		if taken {
			next = target
		}
	}
	if !endsHere {
		// A taken transfer that does not end the trace makes it
		// non-sequential ("red"): such traces cannot be fetched from
		// the instruction cache as one run and are worth storing.
		// A trace whose only taken branch is its final instruction
		// stays "blue" (sequential) and is filtered by selective
		// trace storage.
		if inst.Branch != isa.BranchNone && taken {
			f.pending.Red = true
		}
		return Trace{}, false, false
	}
	f.pending.Next = next
	f.pending.TermType = term
	tr = f.pending
	wasMispredicted = f.mispredicted
	f.reset(next)
	return tr, wasMispredicted, true
}

// PendingStart returns the start address of the trace under construction
// (used by tests).
func (f *FillUnit) PendingStart() isa.Addr { return f.pending.ID.Start }
