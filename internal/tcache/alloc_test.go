package tcache

import (
	"testing"

	"streamfetch/internal/isa"
)

// TestSteadyStateAllocFree pins the package's perf contract: once the fill
// unit, storage and predictor are built, the commit→insert→predict loop
// performs zero heap allocations. The driven stream mixes a repeating red
// trace (same-ID refill), a direction-cycling conditional pair (4 trace
// IDs through a 2-way set, so every insertion evicts and reuses a victim's
// arena region), and predictor hits, misses and mispredict upgrades.
func TestSteadyStateAllocFree(t *testing.T) {
	cfg := DefaultConfig()
	f := NewFillUnit(cfg, 0x1000)
	s := NewStorage(cfg.SizeBytes, cfg.Ways, cfg.MaxLen)
	p := NewPredictor(cfg)

	commit := func(a isa.Addr, bt isa.BranchType, taken bool, target isa.Addr, misp bool) {
		tr, wasMisp, ok := f.Commit(a, mkInst(a, bt), taken, target, misp)
		if !ok {
			return
		}
		s.Lookup(tr.ID)
		if tr.Red {
			s.Insert(tr) // same-ID refill when present, eviction otherwise
		}
		if pr, hit := p.Predict(tr.ID.Start); hit {
			p.OnPredict(pr.ID.Start)
		}
		p.Update(Pred{ID: tr.ID, Len: tr.Len(), Next: tr.Next, TermType: tr.TermType}, wasMisp)
		if wasMisp {
			p.Recover()
		}
	}

	iter := 0
	loop := func() {
		// Red trace with a fixed ID: taken jump mid-trace, closed by a
		// return. Steady state is a same-ID refill of its slot.
		commit(0x1000, isa.BranchNone, false, 0, false)
		commit(0x1004, isa.BranchUncond, true, 0x2000, false)
		commit(0x2000, isa.BranchNone, false, 0, false)
		commit(0x2004, isa.BranchReturn, true, 0x1000, false)

		// Conditional pair whose directions cycle through all four
		// combinations: four trace IDs sharing one 2-way set, so every
		// other insertion takes the eviction path. The direction flips
		// double as periodic mispredict signals for the predictor's
		// second-level upgrade path.
		d0, d1 := iter&1 == 1, iter&2 == 2
		commit(0x3000, isa.BranchNone, false, 0, false)
		commit(0x3004, isa.BranchCond, d0, 0x3800, d0 != d1)
		commit(0x3008, isa.BranchNone, false, 0, false)
		commit(0x300c, isa.BranchCond, d1, 0x3800, false)
		commit(0x3010, isa.BranchReturn, true, 0x3000, false)
		iter++
	}

	// Let tables fill and every path (hit refill, eviction, predictor
	// insert and upgrade) establish itself before measuring.
	for i := 0; i < 64; i++ {
		loop()
	}
	if avg := testing.AllocsPerRun(100, loop); avg != 0 {
		t.Fatalf("steady-state commit/insert/predict loop allocates %.2f objects per iteration, want 0", avg)
	}
}
