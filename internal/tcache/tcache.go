// Package tcache implements the trace cache fetch substrate (Rotenberg,
// Bennett & Smith): trace segmentation, the trace storage with selective
// trace storage (red/blue traces, Ramírez et al. HPCA 2000), the path-based
// cascaded next trace predictor (Jacobson, Rotenberg & Smith), and the
// commit-side fill unit.
package tcache

import (
	"streamfetch/internal/bpred"
	"streamfetch/internal/isa"
)

// Config sizes the trace cache architecture (Table 2 defaults via
// DefaultConfig).
type Config struct {
	// MaxLen is the maximum trace length in instructions.
	MaxLen int
	// MaxCond is the maximum number of conditional branches per trace.
	MaxCond int
	// SizeBytes is the trace cache instruction storage capacity.
	SizeBytes int
	// Ways is the trace cache associativity.
	Ways int
	// FirstEntries/FirstWays and SecondEntries/SecondWays size the
	// cascaded next trace predictor.
	FirstEntries, FirstWays   int
	SecondEntries, SecondWays int
	// DOLC is the predictor's path hash shape.
	DOLC bpred.DOLC
}

// DefaultConfig returns the paper's Table-2 trace cache setup: 32KB 2-way
// trace cache, 16-instruction/3-branch traces, 1K-entry 4-way first-level
// and 4K-entry 4-way second-level predictor, DOLC 9-4-7-9.
func DefaultConfig() Config {
	return Config{
		MaxLen:       16,
		MaxCond:      3,
		SizeBytes:    32 << 10,
		Ways:         2,
		FirstEntries: 1 << 10, FirstWays: 4,
		SecondEntries: 4 << 10, SecondWays: 4,
		DOLC: bpred.DOLC{Depth: 9, Older: 4, Last: 7, Current: 9},
	}
}

// ID identifies a trace: start address plus the directions of its embedded
// conditional branches (bit i = i-th conditional taken).
type ID struct {
	Start isa.Addr
	Dirs  uint8
	NCond uint8
}

// TraceInst is one instruction within a stored trace.
type TraceInst struct {
	Addr isa.Addr
	Inst isa.Inst
}

// Trace is a stored instruction trace.
type Trace struct {
	ID   ID
	Inst []TraceInst
	// Next is the fetch address following the trace (target of its last
	// control transfer, or the fall-through).
	Next isa.Addr
	// TermType is the branch type of the final instruction (BranchNone
	// when the trace ended on the length/branch limit without a
	// transfer).
	TermType isa.BranchType
	// Red reports that the trace contains a taken branch before its
	// final instruction, i.e. it is not fetchable as a sequential run.
	// Selective trace storage only stores red traces.
	Red bool
}

// Len returns the trace length in instructions.
func (t *Trace) Len() int { return len(t.Inst) }

// Storage is the trace cache proper: set-associative by start address, with
// the trace ID as tag. Slot metadata and instruction storage both live in
// single dense backing arrays indexed by set*ways+way — one allocation each
// at construction, and evictions reuse the victim's arena region instead of
// dropping a slice to the garbage collector, so steady-state insertion is
// allocation-free.
type Storage struct {
	slots  []storedTrace // nsets × ways, set-major
	arena  []TraceInst   // maxLen instructions per slot, same order
	ways   int
	maxLen int
	mask   uint64
	clock  uint64

	lookups, hits uint64
}

type storedTrace struct {
	valid bool
	id    ID
	tr    Trace
	stamp uint64
}

// NewStorage builds a trace cache holding sizeBytes of instruction storage
// organized as ways-associative sets of maxLen-instruction trace slots.
func NewStorage(sizeBytes, ways, maxLen int) *Storage {
	slots := sizeBytes / (maxLen * isa.InstBytes)
	if slots < ways {
		slots = ways
	}
	nsets := slots / ways
	// Round down to a power of two.
	for nsets&(nsets-1) != 0 {
		nsets &= nsets - 1
	}
	if nsets == 0 {
		nsets = 1
	}
	return &Storage{
		slots:  make([]storedTrace, nsets*ways),
		arena:  make([]TraceInst, nsets*ways*maxLen),
		ways:   ways,
		maxLen: maxLen,
		mask:   uint64(nsets - 1),
	}
}

func (s *Storage) index(id ID) uint64 {
	return (uint64(id.Start) >> 2) & s.mask
}

// set returns the slot range of the set holding id and the index of its
// first slot.
func (s *Storage) set(id ID) ([]storedTrace, int) {
	base := int(s.index(id)) * s.ways
	return s.slots[base : base+s.ways], base
}

// Lookup returns the stored trace with the given ID.
func (s *Storage) Lookup(id ID) (*Trace, bool) {
	s.lookups++
	set, _ := s.set(id)
	for i := range set {
		if set[i].valid && set[i].id == id {
			s.clock++
			set[i].stamp = s.clock
			s.hits++
			return &set[i].tr, true
		}
	}
	return nil, false
}

// fill copies tr into slot, reusing the slot's arena region for the
// instruction storage. A trace longer than the configured maximum (foreign
// construction; the fill unit never produces one) gets a private copy
// rather than being truncated.
func (s *Storage) fill(slot int, tr Trace) {
	st := &s.slots[slot]
	st.tr = tr
	if n := len(tr.Inst); n <= s.maxLen {
		buf := s.arena[slot*s.maxLen : slot*s.maxLen+n]
		copy(buf, tr.Inst)
		st.tr.Inst = buf
	} else {
		st.tr.Inst = append([]TraceInst(nil), tr.Inst...)
	}
}

// Insert stores a trace (LRU replacement within its set). Blue traces are
// rejected by the caller (selective trace storage). One pass over the set
// finds a same-ID hit and the would-be victim together: the first invalid
// way, else the least recently stamped (identical choice to the former
// separate scans).
func (s *Storage) Insert(tr Trace) {
	set, base := s.set(tr.ID)
	s.clock++
	v, haveInvalid := 0, false
	for i := range set {
		if set[i].valid && set[i].id == tr.ID {
			s.fill(base+i, tr)
			set[i].stamp = s.clock
			return
		}
		if i == 0 || haveInvalid {
			continue
		}
		if !set[i].valid {
			v, haveInvalid = i, true
		} else if set[i].stamp < set[v].stamp {
			v = i
		}
	}
	st := &set[v]
	st.valid = true
	st.id = tr.ID
	st.stamp = s.clock
	s.fill(base+v, tr)
}

// HitRate returns the fraction of lookups that hit.
func (s *Storage) HitRate() float64 {
	if s.lookups == 0 {
		return 0
	}
	return float64(s.hits) / float64(s.lookups)
}
