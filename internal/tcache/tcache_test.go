package tcache

import (
	"testing"

	"streamfetch/internal/isa"
)

func mkInst(a isa.Addr, bt isa.BranchType) isa.Inst {
	c := isa.ClassALU
	if bt != isa.BranchNone {
		c = isa.ClassBranch
	}
	return isa.Inst{Addr: a, Class: c, Branch: bt}
}

func TestFillUnitClosesAtLengthCap(t *testing.T) {
	cfg := DefaultConfig()
	f := NewFillUnit(cfg, 0x1000)
	var tr Trace
	var ok bool
	for i := 0; ; i++ {
		tr, _, ok = f.Commit(isa.Addr(0x1000+4*i), mkInst(isa.Addr(0x1000+4*i), isa.BranchNone), false, 0, false)
		if ok {
			break
		}
		if i > 100 {
			t.Fatal("length cap never closed a trace")
		}
	}
	if tr.Len() != cfg.MaxLen {
		t.Fatalf("trace length %d, want %d", tr.Len(), cfg.MaxLen)
	}
	if tr.Red {
		t.Fatal("sequential trace marked red")
	}
}

func TestFillUnitClosesAtCondCap(t *testing.T) {
	cfg := DefaultConfig()
	f := NewFillUnit(cfg, 0x1000)
	a := isa.Addr(0x1000)
	n := 0
	for i := 0; i < cfg.MaxCond; i++ {
		_, _, ok := f.Commit(a, mkInst(a, isa.BranchNone), false, 0, false)
		if ok {
			t.Fatal("closed early")
		}
		a = a.Next()
		n++
		tr, _, ok := f.Commit(a, mkInst(a, isa.BranchCond), false, 0, false)
		n++
		if i < cfg.MaxCond-1 {
			if ok {
				t.Fatalf("closed after %d conditionals", i+1)
			}
		} else {
			if !ok {
				t.Fatal("did not close at the conditional cap")
			}
			if int(tr.ID.NCond) != cfg.MaxCond {
				t.Fatalf("NCond = %d, want %d", tr.ID.NCond, cfg.MaxCond)
			}
			if tr.Len() != n {
				t.Fatalf("trace length %d, want %d", tr.Len(), n)
			}
		}
		a = a.Next()
	}
}

func TestFillUnitBreaksAtReturn(t *testing.T) {
	f := NewFillUnit(DefaultConfig(), 0x1000)
	f.Commit(0x1000, mkInst(0x1000, isa.BranchNone), false, 0, false)
	tr, _, ok := f.Commit(0x1004, mkInst(0x1004, isa.BranchReturn), true, 0x9000, false)
	if !ok {
		t.Fatal("return did not close the trace")
	}
	if tr.TermType != isa.BranchReturn || tr.Next != 0x9000 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestFillUnitRedDetection(t *testing.T) {
	f := NewFillUnit(DefaultConfig(), 0x1000)
	// Taken unconditional jump mid-trace: the trace spans non-sequential
	// addresses and must be red.
	f.Commit(0x1000, mkInst(0x1000, isa.BranchUncond), true, 0x2000, false)
	f.Commit(0x2000, mkInst(0x2000, isa.BranchNone), false, 0, false)
	tr, _, ok := f.Commit(0x2004, mkInst(0x2004, isa.BranchReturn), true, 0x3000, false)
	if !ok {
		t.Fatal("trace did not close")
	}
	if !tr.Red {
		t.Fatal("non-sequential trace not marked red")
	}
	if tr.ID.Dirs != 0 || tr.ID.NCond != 0 {
		t.Fatalf("uncond polluted the direction vector: %+v", tr.ID)
	}
}

func TestFillUnitDirsVector(t *testing.T) {
	f := NewFillUnit(DefaultConfig(), 0x1000)
	f.Commit(0x1000, mkInst(0x1000, isa.BranchCond), true, 0x2000, false) // taken -> bit 0
	f.Commit(0x2000, mkInst(0x2000, isa.BranchCond), false, 0, false)     // not taken -> bit 1 clear
	tr, _, ok := f.Commit(0x2004, mkInst(0x2004, isa.BranchCond), true, 0x4000, false)
	if !ok {
		t.Fatal("third conditional (cap 3) did not close the trace")
	}
	if tr.ID.Dirs != 0b101 || tr.ID.NCond != 3 {
		t.Fatalf("dirs=%b ncond=%d, want 101/3", tr.ID.Dirs, tr.ID.NCond)
	}
}

func TestStorageSelective(t *testing.T) {
	s := NewStorage(32<<10, 2, 16)
	red := Trace{ID: ID{Start: 0x1000, Dirs: 1, NCond: 1}, Red: true,
		Inst: []TraceInst{{Addr: 0x1000}}}
	s.Insert(red)
	if _, ok := s.Lookup(red.ID); !ok {
		t.Fatal("inserted trace missing")
	}
	if _, ok := s.Lookup(ID{Start: 0x1000, Dirs: 0, NCond: 1}); ok {
		t.Fatal("lookup matched a different direction vector")
	}
}

func TestStorageLRU(t *testing.T) {
	s := NewStorage(2*16*4, 2, 16) // 2 slots, 1 set, 2 ways
	mk := func(start isa.Addr) Trace {
		return Trace{ID: ID{Start: start}, Inst: []TraceInst{{Addr: start}}}
	}
	s.Insert(mk(0x100))
	s.Insert(mk(0x200))
	s.Lookup(ID{Start: 0x100})
	s.Insert(mk(0x300)) // evicts 0x200
	if _, ok := s.Lookup(ID{Start: 0x100}); !ok {
		t.Fatal("recently used trace evicted")
	}
	if _, ok := s.Lookup(ID{Start: 0x200}); ok {
		t.Fatal("LRU trace survived")
	}
}

func TestPredictorLearnsTraceChain(t *testing.T) {
	p := NewPredictor(DefaultConfig())
	a := Pred{ID: ID{Start: 0x1000, Dirs: 1, NCond: 1}, Len: 10, Next: 0x2000, TermType: isa.BranchCond}
	b := Pred{ID: ID{Start: 0x2000}, Len: 16, Next: 0x1000, TermType: isa.BranchUncond}
	for round := 0; round < 4; round++ {
		for _, pr := range []Pred{a, b} {
			got, hit := p.Predict(pr.ID.Start)
			mis := !hit || got != pr
			p.OnPredict(pr.ID.Start)
			p.Update(pr, mis)
		}
	}
	got, hit := p.Predict(a.ID.Start)
	if !hit || got != a {
		t.Fatalf("Predict = %+v hit=%v, want %+v", got, hit, a)
	}
}

func TestPredictorHitRate(t *testing.T) {
	p := NewPredictor(DefaultConfig())
	if p.HitRate() != 0 {
		t.Fatal("idle predictor hit rate non-zero")
	}
	p.Predict(0x1)
	if p.HitRate() != 0 {
		t.Fatal("cold miss counted as hit")
	}
}
