// The path-based next trace predictor (Jacobson, Rotenberg & Smith,
// MICRO 1997), in the cascaded organization of Table 2: a first-level table
// indexed by the current fetch address and a second-level table indexed by a
// DOLC hash of the preceding trace start addresses.
package tcache

import (
	"streamfetch/internal/bpred"
	"streamfetch/internal/isa"
)

// Pred is one trace prediction: the identity of the trace expected to start
// at the lookup address, and the fetch address that follows it.
type Pred struct {
	ID       ID
	Len      int
	Next     isa.Addr
	TermType isa.BranchType
}

type predEntry struct {
	valid bool
	stamp uint64
	tag   uint64
	dirs  uint8
	ncond uint8
	len   uint8
	term  isa.BranchType
	next  isa.Addr
	ctr   bpred.TwoBit
}

func (e *predEntry) matches(p Pred) bool {
	return e.dirs == p.ID.Dirs && e.ncond == p.ID.NCond &&
		int(e.len) == p.Len && e.next == p.Next && e.term == p.TermType
}

// predTable is a set-associative prediction table. Entries live in one
// dense backing array indexed by set*ways+way: a single allocation at
// construction and no per-set pointer chasing on the lookup path.
type predTable struct {
	entries []predEntry
	ways    int
	setBits uint
	clock   uint64
}

func newPredTable(entries, ways int) *predTable {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("tcache: bad predictor geometry")
	}
	nsets := entries / ways
	if nsets&(nsets-1) != 0 {
		panic("tcache: predictor set count must be a power of two")
	}
	t := &predTable{entries: make([]predEntry, nsets*ways), ways: ways}
	for b := nsets; b > 1; b >>= 1 {
		t.setBits++
	}
	return t
}

// set returns the entry range of set idx.
func (t *predTable) set(idx uint64) []predEntry {
	base := int(idx) * t.ways
	return t.entries[base : base+t.ways]
}

func (t *predTable) lookup(idx, tag uint64) *predEntry {
	set := t.set(idx)
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == tag {
			t.clock++
			e.stamp = t.clock
			return e
		}
	}
	return nil
}

func (t *predTable) update(idx, tag uint64, p Pred, insertOnMiss bool) {
	set := t.set(idx)
	if e := t.lookup(idx, tag); e != nil {
		if e.matches(p) {
			// Re-saturate on every confirmation (like 2bcgskew's
			// partial update): an established stream only yields its
			// entry after several *consecutive* contradictions, so
			// Bernoulli noise cannot flip-flop the entry.
			e.ctr = 3
		} else {
			if e.ctr > 0 {
				e.ctr--
			}
			if e.ctr == 0 {
				e.dirs = p.ID.Dirs
				e.ncond = p.ID.NCond
				e.len = uint8(p.Len)
				e.term = p.TermType
				e.next = p.Next
				e.ctr = 1
			}
		}
		return
	}
	if !insertOnMiss {
		return
	}
	// LRU insertion; hysteresis arbitrates only same-tag versions.
	t.clock++
	v := 0
	for i := range set {
		if !set[i].valid {
			v = i
			break
		}
		if set[i].stamp < set[v].stamp {
			v = i
		}
	}
	set[v] = predEntry{
		valid: true, stamp: t.clock, tag: tag,
		dirs: p.ID.Dirs, ncond: p.ID.NCond,
		len: uint8(p.Len), term: p.TermType, next: p.Next, ctr: 1,
	}
}

// Predictor is the cascaded next trace predictor.
type Predictor struct {
	cfg Config
	t1  *predTable
	t2  *predTable

	SpecPath *bpred.PathHist
	RetPath  *bpred.PathHist

	lookups, hits uint64
}

// NewPredictor builds the predictor.
func NewPredictor(cfg Config) *Predictor {
	return &Predictor{
		cfg:      cfg,
		t1:       newPredTable(cfg.FirstEntries, cfg.FirstWays),
		t2:       newPredTable(cfg.SecondEntries, cfg.SecondWays),
		SpecPath: bpred.NewPathHist(cfg.DOLC.Depth),
		RetPath:  bpred.NewPathHist(cfg.DOLC.Depth),
	}
}

func (p *Predictor) t1Index(start isa.Addr) (idx, tag uint64) {
	x := uint64(start) >> 2
	return x & ((1 << p.t1.setBits) - 1), x
}

func (p *Predictor) t2Index(start isa.Addr, hist *bpred.PathHist) (idx, tag uint64) {
	return p.cfg.DOLC.Hash(hist, uint64(start), p.t2.setBits), uint64(start) >> 2
}

// Predict looks up the trace expected at start.
func (p *Predictor) Predict(start isa.Addr) (Pred, bool) {
	p.lookups++
	i2, tag2 := p.t2Index(start, p.SpecPath)
	if e := p.t2.lookup(i2, tag2); e != nil {
		p.hits++
		return entryPred(start, e), true
	}
	i1, tag1 := p.t1Index(start)
	if e := p.t1.lookup(i1, tag1); e != nil {
		p.hits++
		return entryPred(start, e), true
	}
	return Pred{}, false
}

func entryPred(start isa.Addr, e *predEntry) Pred {
	return Pred{
		ID:       ID{Start: start, Dirs: e.dirs, NCond: e.ncond},
		Len:      int(e.len),
		Next:     e.next,
		TermType: e.term,
	}
}

// OnPredict records a predicted trace start into the speculative path
// history.
func (p *Predictor) OnPredict(start isa.Addr) { p.SpecPath.Push(uint64(start)) }

// Update learns a completed trace at retirement; mispredicted traces are
// upgraded into the path-correlated table.
func (p *Predictor) Update(pr Pred, mispredicted bool) {
	i1, tag1 := p.t1Index(pr.ID.Start)
	i2, tag2 := p.t2Index(pr.ID.Start, p.RetPath)
	first := p.t1.lookup(i1, tag1) == nil && p.t2.lookup(i2, tag2) == nil
	p.t1.update(i1, tag1, pr, true)
	p.t2.update(i2, tag2, pr, first || mispredicted)
	p.RetPath.Push(uint64(pr.ID.Start))
}

// Recover restores the speculative path history.
func (p *Predictor) Recover() { p.SpecPath.CopyFrom(p.RetPath) }

// HitRate returns the fraction of lookups that hit.
func (p *Predictor) HitRate() float64 {
	if p.lookups == 0 {
		return 0
	}
	return float64(p.hits) / float64(p.lookups)
}
