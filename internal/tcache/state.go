package tcache

import (
	"streamfetch/internal/bpred"
	"streamfetch/internal/ckpt/wire"
	"streamfetch/internal/isa"
)

// Warm-state serialization for checkpoints: stored traces (contents plus
// LRU bookkeeping), both predictor tables with their path histories, and
// the fill unit's in-flight trace. Lookup/hit statistics are excluded.
// The load paths re-establish the arena/buf aliasing invariants that make
// steady-state operation allocation-free.

func appendTraceInsts(dst []byte, insts []TraceInst) []byte {
	dst = wire.AppendU64(dst, uint64(len(insts)))
	for _, ti := range insts {
		dst = wire.AppendU64(dst, uint64(ti.Addr))
		dst = wire.AppendU64(dst, uint64(ti.Inst.Addr))
		dst = wire.AppendByte(dst, byte(ti.Inst.Class))
		dst = wire.AppendByte(dst, byte(ti.Inst.Branch))
	}
	return dst
}

func loadTraceInsts(r *wire.Reader, max int) ([]TraceInst, error) {
	n := r.Len(max)
	if r.Err() != nil {
		return nil, r.Err()
	}
	insts := make([]TraceInst, n)
	for i := range insts {
		insts[i].Addr = isa.Addr(r.U64())
		insts[i].Inst.Addr = isa.Addr(r.U64())
		insts[i].Inst.Class = isa.Class(r.Byte())
		insts[i].Inst.Branch = isa.BranchType(r.Byte())
	}
	return insts, r.Err()
}

func appendTraceMeta(dst []byte, tr *Trace) []byte {
	dst = wire.AppendU64(dst, uint64(tr.ID.Start))
	dst = wire.AppendByte(dst, tr.ID.Dirs)
	dst = wire.AppendByte(dst, tr.ID.NCond)
	dst = wire.AppendU64(dst, uint64(tr.Next))
	dst = wire.AppendByte(dst, byte(tr.TermType))
	return wire.AppendBool(dst, tr.Red)
}

func loadTraceMeta(r *wire.Reader, tr *Trace) {
	tr.ID.Start = isa.Addr(r.U64())
	tr.ID.Dirs = r.Byte()
	tr.ID.NCond = r.Byte()
	tr.Next = isa.Addr(r.U64())
	tr.TermType = isa.BranchType(r.Byte())
	tr.Red = r.Bool()
}

// AppendState appends the trace cache contents and LRU clock.
func (s *Storage) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, s.clock)
	dst = wire.AppendU64(dst, uint64(len(s.slots)))
	dst = wire.AppendU64(dst, uint64(s.maxLen))
	for i := range s.slots {
		st := &s.slots[i]
		dst = wire.AppendBool(dst, st.valid)
		if !st.valid {
			continue
		}
		dst = wire.AppendU64(dst, st.stamp)
		dst = appendTraceMeta(dst, &st.tr)
		dst = appendTraceInsts(dst, st.tr.Inst)
	}
	return dst
}

// LoadState restores a trace cache of identical geometry, re-aliasing
// each slot's instruction slice into the dense arena. The storage is
// unmodified on error; stats are untouched.
func (s *Storage) LoadState(r *wire.Reader) error {
	clock := r.U64()
	nslots := r.U64()
	maxLen := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nslots != uint64(len(s.slots)) || maxLen != uint64(s.maxLen) {
		return wire.ErrMalformed
	}
	type slotState struct {
		valid bool
		stamp uint64
		tr    Trace
		insts []TraceInst
	}
	scratch := make([]slotState, nslots)
	for i := range scratch {
		scratch[i].valid = r.Bool()
		if r.Err() != nil || !scratch[i].valid {
			continue
		}
		scratch[i].stamp = r.U64()
		loadTraceMeta(r, &scratch[i].tr)
		insts, err := loadTraceInsts(r, s.maxLen)
		if err != nil {
			return err
		}
		scratch[i].insts = insts
	}
	if err := r.Err(); err != nil {
		return err
	}
	s.clock = clock
	for i := range s.slots {
		st := &s.slots[i]
		sc := &scratch[i]
		if !sc.valid {
			st.valid = false
			st.id = ID{}
			st.tr = Trace{}
			st.stamp = 0
			continue
		}
		region := s.arena[i*s.maxLen : i*s.maxLen+len(sc.insts)]
		copy(region, sc.insts)
		st.valid = true
		st.id = sc.tr.ID
		st.stamp = sc.stamp
		st.tr = sc.tr
		st.tr.Inst = region
	}
	return nil
}

func (t *predTable) appendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, t.clock)
	dst = wire.AppendU64(dst, uint64(len(t.entries)))
	for i := range t.entries {
		e := &t.entries[i]
		dst = wire.AppendBool(dst, e.valid)
		dst = wire.AppendU64(dst, e.stamp)
		dst = wire.AppendU64(dst, e.tag)
		dst = wire.AppendByte(dst, e.dirs)
		dst = wire.AppendByte(dst, e.ncond)
		dst = wire.AppendByte(dst, e.len)
		dst = wire.AppendByte(dst, byte(e.term))
		dst = wire.AppendU64(dst, uint64(e.next))
		dst = wire.AppendByte(dst, byte(e.ctr))
	}
	return dst
}

func (t *predTable) loadState(r *wire.Reader) error {
	clock := r.U64()
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(t.entries)) {
		return wire.ErrMalformed
	}
	scratch := make([]predEntry, n)
	for i := range scratch {
		scratch[i].valid = r.Bool()
		scratch[i].stamp = r.U64()
		scratch[i].tag = r.U64()
		scratch[i].dirs = r.Byte()
		scratch[i].ncond = r.Byte()
		scratch[i].len = r.Byte()
		scratch[i].term = isa.BranchType(r.Byte())
		scratch[i].next = isa.Addr(r.U64())
		scratch[i].ctr = bpred.TwoBit(r.Byte())
	}
	if err := r.Err(); err != nil {
		return err
	}
	t.clock = clock
	copy(t.entries, scratch)
	return nil
}

// AppendState appends both predictor tables and path histories.
func (p *Predictor) AppendState(dst []byte) []byte {
	dst = p.t1.appendState(dst)
	dst = p.t2.appendState(dst)
	dst = p.SpecPath.AppendState(dst)
	return p.RetPath.AppendState(dst)
}

// LoadState restores a predictor of identical geometry; stats untouched.
func (p *Predictor) LoadState(r *wire.Reader) error {
	if err := p.t1.loadState(r); err != nil {
		return err
	}
	if err := p.t2.loadState(r); err != nil {
		return err
	}
	if err := p.SpecPath.LoadState(r); err != nil {
		return err
	}
	return p.RetPath.LoadState(r)
}

// AppendState appends the fill unit's in-flight trace.
func (f *FillUnit) AppendState(dst []byte) []byte {
	dst = appendTraceMeta(dst, &f.pending)
	dst = appendTraceInsts(dst, f.pending.Inst)
	return wire.AppendBool(dst, f.mispredicted)
}

// LoadState restores the fill unit, rebuilding the pending trace inside
// the fixed-capacity buffer. The unit is unmodified on error.
func (f *FillUnit) LoadState(r *wire.Reader) error {
	var tr Trace
	loadTraceMeta(r, &tr)
	insts, err := loadTraceInsts(r, cap(f.buf))
	if err != nil {
		return err
	}
	misp := r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	f.buf = f.buf[:0]
	f.buf = append(f.buf, insts...)
	tr.Inst = f.buf
	f.pending = tr
	f.mispredicted = misp
	return nil
}
