// Package cache implements the memory hierarchy models of the simulated
// processor: generic set-associative LRU caches used as the (wide-line)
// instruction cache, the data cache, and the unified L2, plus a Hierarchy
// helper that charges the Table-2 latencies (L1 1 cycle, L2 15 cycles,
// memory 100 cycles).
package cache

import (
	"fmt"

	"streamfetch/internal/isa"
)

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line size.
	LineBytes int
	// Ways is the associativity.
	Ways int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*ways %d",
			c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats counts cache events. Stats are mergeable: independently collected
// counter blocks (parallel trace intervals, multiple caches) combine with
// Merge, and a warmup prefix is excluded with Delta.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns misses per access (0 when idle).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Reset zeroes the counters.
func (s *Stats) Reset() { *s = Stats{} }

// Merge accumulates another counter block into s.
func (s *Stats) Merge(o Stats) {
	s.Accesses += o.Accesses
	s.Misses += o.Misses
}

// Delta returns the events counted since the earlier snapshot.
func (s Stats) Delta(since Stats) Stats {
	return Stats{
		Accesses: s.Accesses - since.Accesses,
		Misses:   s.Misses - since.Misses,
	}
}

type way struct {
	tag   uint64
	valid bool
	stamp uint64
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       Config
	sets      [][]way
	setMask   uint64
	lineShift uint
	clock     uint64
	stats     Stats
}

// New builds a cache; it panics on invalid geometry (a construction-time
// programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]way, nsets),
		setMask: uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]way, cfg.Ways)
	}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.lineShift++
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

func (c *Cache) index(a isa.Addr) (set, tag uint64) {
	line := uint64(a) >> c.lineShift
	return line & c.setMask, line
}

// Access looks address a up, filling the line on a miss (LRU victim).
// It returns true on a hit. The hit lookup and the LRU victim scan share
// one pass over the set: victim tracking mirrors the classic two-pass
// selection exactly (first invalid way at index >= 1 wins outright; an
// invalid way 0 is picked through its zero stamp, since valid stamps are
// always positive), so replacement decisions are unchanged.
func (c *Cache) Access(a isa.Addr) bool {
	c.clock++
	c.stats.Accesses++
	set, tag := c.index(a)
	s := c.sets[set]
	v, victimFixed := 0, false
	for i := range s {
		if s[i].valid && s[i].tag == tag {
			s[i].stamp = c.clock
			return true
		}
		if victimFixed || i == 0 {
			continue
		}
		if !s[i].valid {
			v, victimFixed = i, true
		} else if s[i].stamp < s[v].stamp {
			v = i
		}
	}
	c.stats.Misses++
	s[v] = way{tag: tag, valid: true, stamp: c.clock}
	return false
}

// Probe reports whether a is resident without updating LRU state or stats.
func (c *Cache) Probe(a isa.Addr) bool {
	set, tag := c.index(a)
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Stats returns the event counts so far.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	c.clock = 0
	c.stats = Stats{}
}

// LineAddr returns the line-aligned address containing a.
func (c *Cache) LineAddr(a isa.Addr) isa.Addr {
	return isa.Addr(uint64(a) &^ uint64(c.cfg.LineBytes-1))
}

// HierarchyConfig describes the full memory system (Table 2 defaults via
// DefaultHierarchy).
type HierarchyConfig struct {
	ICache Config
	DCache Config
	L2     Config
	// L1Latency, L2Latency, MemLatency are access latencies in cycles.
	L1Latency, L2Latency, MemLatency int
}

// DefaultHierarchy returns the paper's Table-2 memory system for the given
// pipeline width: 64KB 2-way L1s (I-line = 4x width instructions), 1MB
// 4-way L2, 15-cycle L2, 100-cycle memory.
func DefaultHierarchy(width int) HierarchyConfig {
	return HierarchyConfig{
		ICache:     Config{SizeBytes: 64 << 10, LineBytes: 4 * width * isa.InstBytes, Ways: 2},
		DCache:     Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 2},
		L2:         Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 4},
		L1Latency:  1,
		L2Latency:  15,
		MemLatency: 100,
	}
}

// Hierarchy wires L1 instruction and data caches above a unified L2.
type Hierarchy struct {
	cfg    HierarchyConfig
	ICache *Cache
	DCache *Cache
	L2     *Cache
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		cfg:    cfg,
		ICache: New(cfg.ICache),
		DCache: New(cfg.DCache),
		L2:     New(cfg.L2),
	}
}

// FetchLatency charges an instruction fetch of the line containing a and
// returns its latency in cycles.
func (h *Hierarchy) FetchLatency(a isa.Addr) int {
	if h.ICache.Access(a) {
		return h.cfg.L1Latency
	}
	if h.L2.Access(a) {
		return h.cfg.L2Latency
	}
	return h.cfg.MemLatency
}

// LoadLatency charges a data load at address a and returns its latency.
func (h *Hierarchy) LoadLatency(a isa.Addr) int {
	if h.DCache.Access(a) {
		return h.cfg.L1Latency
	}
	if h.L2.Access(a) {
		return h.cfg.L2Latency
	}
	return h.cfg.MemLatency
}

// Store charges a data store (write-allocate, latency hidden by the store
// buffer in the back-end model).
func (h *Hierarchy) Store(a isa.Addr) {
	if !h.DCache.Access(a) {
		h.L2.Access(a)
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }
