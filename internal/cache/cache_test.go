package cache

import (
	"testing"
	"testing/quick"

	"streamfetch/internal/isa"
)

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 1024, LineBytes: 64, Ways: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for _, bad := range []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 60, Ways: 2},       // non-power-of-two line
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},       // size not divisible
		{SizeBytes: 64 * 2 * 3, LineBytes: 64, Ways: 2}, // 3 sets
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid config %+v accepted", bad)
		}
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	a := isa.Addr(0x1000)
	if c.Access(a) {
		t.Fatal("cold access hit")
	}
	if !c.Access(a) {
		t.Fatal("second access missed")
	}
	if !c.Access(a + 60) {
		t.Fatal("same-line access missed")
	}
	if c.Access(a + 64) {
		t.Fatal("next-line access hit")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 4 accesses 2 misses", s)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// Direct test with 2 ways and 1 set: size = line*ways.
	c := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	c.Access(0x0000)
	c.Access(0x1000)
	c.Access(0x0000) // refresh line 0
	c.Access(0x2000) // evicts 0x1000 (LRU)
	if !c.Probe(0x0000) {
		t.Fatal("recently used line evicted")
	}
	if c.Probe(0x1000) {
		t.Fatal("LRU line survived")
	}
	if !c.Probe(0x2000) {
		t.Fatal("new line absent")
	}
}

func TestCacheReset(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	c.Access(0x40)
	c.Reset()
	if c.Probe(0x40) {
		t.Fatal("line survived reset")
	}
	if c.Stats() != (Stats{}) {
		t.Fatal("stats survived reset")
	}
}

// TestCacheCapacityProperty: any working set that fits entirely must stop
// missing after the first pass.
func TestCacheCapacityProperty(t *testing.T) {
	c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
	lines := 4096 / 64
	for pass := 0; pass < 3; pass++ {
		missesBefore := c.Stats().Misses
		for i := 0; i < lines; i++ {
			c.Access(isa.Addr(i * 64))
		}
		if pass > 0 && c.Stats().Misses != missesBefore {
			t.Fatalf("pass %d missed on a resident working set", pass)
		}
	}
}

func TestLineAddr(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	f := func(a uint32) bool {
		la := c.LineAddr(isa.Addr(a))
		return uint64(la)%64 == 0 && la <= isa.Addr(a) && isa.Addr(a)-la < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(8))
	a := isa.Addr(0x5000)
	if lat := h.FetchLatency(a); lat != 100 {
		t.Fatalf("cold fetch latency %d, want 100 (memory)", lat)
	}
	if lat := h.FetchLatency(a); lat != 1 {
		t.Fatalf("warm fetch latency %d, want 1", lat)
	}
	// Evict from L1 but not L2: access many conflicting lines.
	line := isa.Addr(h.ICache.LineBytes())
	sets := isa.Addr(64 << 10 / (int(line) * 2))
	for i := isa.Addr(1); i <= 4; i++ {
		h.ICache.Access(a + i*sets*line)
	}
	if lat := h.FetchLatency(a); lat != 15 {
		t.Fatalf("L2-resident fetch latency %d, want 15", lat)
	}
}

func TestDefaultHierarchyLineScalesWithWidth(t *testing.T) {
	for _, w := range []int{2, 4, 8} {
		cfg := DefaultHierarchy(w)
		if cfg.ICache.LineBytes != 4*w*isa.InstBytes {
			t.Errorf("width %d: line %dB, want %d", w, cfg.ICache.LineBytes, 4*w*isa.InstBytes)
		}
		if err := cfg.ICache.Validate(); err != nil {
			t.Errorf("width %d: invalid icache: %v", w, err)
		}
	}
}

func TestStoreAllocates(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy(4))
	h.Store(0x9000)
	if lat := h.LoadLatency(0x9000); lat != 1 {
		t.Fatalf("load after store latency %d, want 1 (write-allocate)", lat)
	}
}
