package cache

import "streamfetch/internal/ckpt/wire"

// Warm-state serialization for checkpoints. Only behavioral state is
// captured: tags, valid bits, LRU stamps and the LRU clock. Statistics
// counters are deliberately excluded — a restored run starts with zeroed
// stats and the warm-region snapshot/delta in the simulator cancels the
// baseline exactly as it does for a functionally warmed run.

// AppendState appends the cache's behavioral state to dst.
func (c *Cache) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, c.clock)
	dst = wire.AppendU64(dst, uint64(len(c.sets)))
	if len(c.sets) > 0 {
		dst = wire.AppendU64(dst, uint64(len(c.sets[0])))
	} else {
		dst = wire.AppendU64(dst, 0)
	}
	for _, set := range c.sets {
		for _, w := range set {
			dst = wire.AppendU64(dst, w.tag)
			dst = wire.AppendBool(dst, w.valid)
			dst = wire.AppendU64(dst, w.stamp)
		}
	}
	return dst
}

// LoadState restores state appended by AppendState into a cache of
// identical geometry. On a geometry mismatch or decode error the cache is
// left unmodified and an error is returned; statistics are never touched.
func (c *Cache) LoadState(r *wire.Reader) error {
	clock := r.U64()
	nsets := r.U64()
	nways := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	wantWays := 0
	if len(c.sets) > 0 {
		wantWays = len(c.sets[0])
	}
	if nsets != uint64(len(c.sets)) || nways != uint64(wantWays) {
		return wire.ErrMalformed
	}
	// Decode into scratch first so a truncated payload cannot leave the
	// cache half-restored.
	scratch := make([]way, nsets*nways)
	for i := range scratch {
		scratch[i].tag = r.U64()
		scratch[i].valid = r.Bool()
		scratch[i].stamp = r.U64()
	}
	if err := r.Err(); err != nil {
		return err
	}
	c.clock = clock
	for si := range c.sets {
		copy(c.sets[si], scratch[si*int(nways):(si+1)*int(nways)])
	}
	return nil
}

// AppendState appends all three caches of the hierarchy.
func (h *Hierarchy) AppendState(dst []byte) []byte {
	dst = h.ICache.AppendState(dst)
	dst = h.DCache.AppendState(dst)
	return h.L2.AppendState(dst)
}

// LoadState restores all three caches of the hierarchy.
func (h *Hierarchy) LoadState(r *wire.Reader) error {
	if err := h.ICache.LoadState(r); err != nil {
		return err
	}
	if err := h.DCache.LoadState(r); err != nil {
		return err
	}
	return h.L2.LoadState(r)
}
