// Package xrand provides a small, fast, deterministic PRNG (xoshiro-style
// splitmix fallthrough) used everywhere the simulator needs reproducible
// pseudo-randomness: workload synthesis, branch behaviour, load addresses.
// A dedicated generator keeps results bit-identical across Go releases,
// which math/rand's global source does not guarantee.
package xrand

// RNG is a splitmix64-seeded xorshift128+ generator. The zero value is not
// usable; construct with New.
type RNG struct {
	s0, s1 uint64
}

// splitmix64 advances the seed state and returns the next 64-bit value; it
// is used only to expand the user seed into generator state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	s := seed
	r := &RNG{}
	r.s0 = splitmix64(&s)
	r.s1 = splitmix64(&s)
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 bits of the sequence.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Geometric returns a sample from a geometric-like distribution with the
// given mean (minimum 1). It is used for loop trip counts and block sizes.
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	// Inverse-CDF sampling of a geometric distribution with success
	// probability 1/mean, shifted to a minimum of 1.
	p := 1.0 / mean
	n := 1
	for !r.Bool(p) && n < int(mean*8)+8 {
		n++
	}
	return n
}

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to weights. A zero total weight picks uniformly.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
