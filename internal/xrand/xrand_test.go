package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical values across different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(11)
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	got := float64(n) / trials
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bool(0.3) frequency %.3f", got)
	}
}

func TestIntRangeInclusive(t *testing.T) {
	r := New(13)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.IntRange(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntRange(3,5) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("IntRange(3,5) covered %d values, want 3", len(seen))
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	sum := 0
	const trials = 50000
	for i := 0; i < trials; i++ {
		sum += r.Geometric(6)
	}
	mean := float64(sum) / trials
	if mean < 5.0 || mean > 7.0 {
		t.Fatalf("Geometric(6) mean %.2f", mean)
	}
}

func TestGeometricMinimum(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		if r.Geometric(0.5) != 1 {
			t.Fatal("Geometric below 1")
		}
	}
}

func TestPickWeights(t *testing.T) {
	r := New(23)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Pick([]float64{1, 2, 1})]++
	}
	if !(counts[1] > counts[0] && counts[1] > counts[2]) {
		t.Fatalf("weighted pick ignored weights: %v", counts)
	}
}

func TestPickZeroWeights(t *testing.T) {
	r := New(29)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Pick([]float64{0, 0, 0})] = true
	}
	if len(seen) < 2 {
		t.Fatal("zero-weight pick not uniform")
	}
}
