// Package cfg models whole-program control flow graphs: basic blocks,
// profile-weighted edges, and procedures. The CFG is the layout-independent
// description of a program; package layout assigns addresses, and package
// trace executes the CFG to produce dynamic instruction streams.
//
// Block successor semantics depend on the terminating branch type:
//
//	BranchNone         one successor, pure fall-through
//	BranchCond         Succs[0] = fall-through side, Succs[1] = branch side
//	BranchUncond       one successor
//	BranchCall         Succs[0] = callee entry; Cont = continuation block
//	BranchIndirectCall Succs[*] = possible callee entries; Cont = continuation
//	BranchReturn       no successors (target is dynamic, from the call stack)
//	BranchIndirect     Succs[*] = possible targets, with probabilities
package cfg

import (
	"fmt"

	"streamfetch/internal/isa"
)

// BlockID identifies a basic block within a Program.
type BlockID int32

// NoBlock is the null block ID.
const NoBlock BlockID = -1

// CondKind selects the behavioural model of a conditional branch.
type CondKind uint8

const (
	// CondBias chooses the branch side with fixed probability P.
	CondBias CondKind = iota
	// CondLoop models a loop back edge: the branch side (Succs[1]) is
	// chosen Trip-1 consecutive times, then the fall-through side once.
	CondLoop
	// CondPattern repeats a fixed boolean pattern (true = branch side);
	// such branches are perfectly predictable with enough history.
	CondPattern
)

// CondModel describes the dynamic behaviour of a conditional branch.
type CondModel struct {
	Kind CondKind
	// P is the probability of choosing Succs[1] (CondBias only).
	P float64
	// Trip is the mean loop trip count (CondLoop only). The actual trip
	// count of each loop entry is drawn near Trip.
	Trip int
	// TripJitter is the +/- range around Trip for per-entry trip counts.
	TripJitter int
	// Pattern is the repeating choice sequence (CondPattern only).
	Pattern []bool
}

// Edge is a profile-weighted CFG edge.
type Edge struct {
	To BlockID
	// Prob is the static probability of following this edge, used by the
	// trace generator for indirect branches and by workload synthesis.
	Prob float64
}

// Block is one basic block. NInsts counts all instructions including the
// terminating branch (if any). Classes lists the functional class of each
// instruction; when Branch != BranchNone the final class is ClassBranch.
type Block struct {
	ID     BlockID
	Proc   int
	NInsts int
	// Classes has length NInsts; materialized once at synthesis time.
	Classes []isa.Class
	Branch  isa.BranchType
	Succs   []Edge
	// Cont is the block where execution continues after a call returns.
	Cont BlockID
	// Cond is the behaviour model for conditional branches.
	Cond CondModel
	// IndMarkov is, for indirect branches, the probability that the next
	// target follows a deterministic first-order cycle over the arms
	// (interpreter-style correlated dispatch); the rest of the instances
	// pick an arm by edge probability.
	IndMarkov float64
}

// Proc is a procedure: a named entry block plus the set of blocks that
// belong to it (used by the layout optimizer to keep procedures contiguous
// in the baseline layout).
type Proc struct {
	Name   string
	Entry  BlockID
	Blocks []BlockID
}

// Program is a whole-program CFG.
type Program struct {
	Name   string
	Blocks []*Block
	Procs  []Proc
	Entry  BlockID
}

// Block returns the block with the given ID.
func (p *Program) Block(id BlockID) *Block {
	return p.Blocks[id]
}

// NumBlocks returns the number of basic blocks in the program.
func (p *Program) NumBlocks() int { return len(p.Blocks) }

// StaticInsts returns the total static instruction count (layout extras such
// as materialized jumps not included).
func (p *Program) StaticInsts() int {
	n := 0
	for _, b := range p.Blocks {
		n += b.NInsts
	}
	return n
}

// Validate checks structural invariants of the program and returns the first
// violation found, if any.
func (p *Program) Validate() error {
	if p.Entry < 0 || int(p.Entry) >= len(p.Blocks) {
		return fmt.Errorf("cfg: entry block %d out of range", p.Entry)
	}
	for i, b := range p.Blocks {
		if b == nil {
			return fmt.Errorf("cfg: nil block %d", i)
		}
		if b.ID != BlockID(i) {
			return fmt.Errorf("cfg: block %d has ID %d", i, b.ID)
		}
		if b.NInsts <= 0 {
			return fmt.Errorf("cfg: block %d has %d instructions", i, b.NInsts)
		}
		if len(b.Classes) != b.NInsts {
			return fmt.Errorf("cfg: block %d has %d classes for %d instructions",
				i, len(b.Classes), b.NInsts)
		}
		if b.Branch != isa.BranchNone && b.Classes[b.NInsts-1] != isa.ClassBranch {
			return fmt.Errorf("cfg: block %d final class %v, want branch",
				i, b.Classes[b.NInsts-1])
		}
		for _, e := range b.Succs {
			if e.To < 0 || int(e.To) >= len(p.Blocks) {
				return fmt.Errorf("cfg: block %d successor %d out of range", i, e.To)
			}
		}
		switch b.Branch {
		case isa.BranchNone, isa.BranchUncond:
			if len(b.Succs) != 1 {
				return fmt.Errorf("cfg: block %d (%v) has %d successors, want 1",
					i, b.Branch, len(b.Succs))
			}
		case isa.BranchCond:
			if len(b.Succs) != 2 {
				return fmt.Errorf("cfg: block %d (cond) has %d successors, want 2",
					i, len(b.Succs))
			}
		case isa.BranchCall, isa.BranchIndirectCall:
			if len(b.Succs) == 0 {
				return fmt.Errorf("cfg: block %d (call) has no callees", i)
			}
			if b.Cont == NoBlock {
				return fmt.Errorf("cfg: block %d (call) has no continuation", i)
			}
			if b.Cont < 0 || int(b.Cont) >= len(p.Blocks) {
				return fmt.Errorf("cfg: block %d continuation %d out of range", i, b.Cont)
			}
		case isa.BranchReturn:
			if len(b.Succs) != 0 {
				return fmt.Errorf("cfg: block %d (return) has %d successors, want 0",
					i, len(b.Succs))
			}
		case isa.BranchIndirect:
			if len(b.Succs) == 0 {
				return fmt.Errorf("cfg: block %d (indirect) has no targets", i)
			}
		default:
			return fmt.Errorf("cfg: block %d has unknown branch type %v", i, b.Branch)
		}
	}
	for pi, proc := range p.Procs {
		if proc.Entry < 0 || int(proc.Entry) >= len(p.Blocks) {
			return fmt.Errorf("cfg: proc %d entry %d out of range", pi, proc.Entry)
		}
		for _, id := range proc.Blocks {
			if id < 0 || int(id) >= len(p.Blocks) {
				return fmt.Errorf("cfg: proc %d lists block %d out of range", pi, id)
			}
			if p.Blocks[id].Proc != pi {
				return fmt.Errorf("cfg: block %d in proc %d list but tagged proc %d",
					id, pi, p.Blocks[id].Proc)
			}
		}
	}
	return nil
}

// EdgeKey identifies a dynamic control-flow edge for profiling.
type EdgeKey struct {
	From, To BlockID
}

// Profile holds execution counts collected from a training run. The layout
// optimizer consumes it to chain hot successors.
type Profile struct {
	// BlockCount[b] is the number of times block b executed.
	BlockCount []uint64
	// EdgeCount[e] is the number of times control flowed from e.From
	// straight to e.To.
	EdgeCount map[EdgeKey]uint64
}

// NewProfile returns an empty profile sized for program p.
func NewProfile(p *Program) *Profile {
	return &Profile{
		BlockCount: make([]uint64, len(p.Blocks)),
		EdgeCount:  make(map[EdgeKey]uint64),
	}
}

// AddEdge records one traversal of the edge from→to.
func (pr *Profile) AddEdge(from, to BlockID) {
	pr.EdgeCount[EdgeKey{from, to}]++
}

// AddBlock records one execution of block b.
func (pr *Profile) AddBlock(b BlockID) {
	pr.BlockCount[b]++
}

// Merge accumulates other into pr.
func (pr *Profile) Merge(other *Profile) {
	for i, c := range other.BlockCount {
		pr.BlockCount[i] += c
	}
	for k, c := range other.EdgeCount {
		pr.EdgeCount[k] += c
	}
}
