package cfg

import (
	"testing"

	"streamfetch/internal/isa"
)

// tiny builds a minimal valid two-block program: a conditional loop header
// and a return.
func tiny() *Program {
	a := &Block{
		ID: 0, NInsts: 2,
		Classes: []isa.Class{isa.ClassALU, isa.ClassBranch},
		Branch:  isa.BranchCond,
		Succs:   []Edge{{To: 1, Prob: 0.5}, {To: 0, Prob: 0.5}},
		Cont:    NoBlock,
	}
	b := &Block{
		ID: 1, NInsts: 1,
		Classes: []isa.Class{isa.ClassBranch},
		Branch:  isa.BranchReturn,
		Cont:    NoBlock,
	}
	return &Program{
		Name:   "tiny",
		Blocks: []*Block{a, b},
		Procs:  []Proc{{Name: "main", Entry: 0, Blocks: []BlockID{0, 1}}},
		Entry:  0,
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Program)
	}{
		{"bad entry", func(p *Program) { p.Entry = 99 }},
		{"wrong id", func(p *Program) { p.Blocks[0].ID = 5 }},
		{"zero insts", func(p *Program) { p.Blocks[0].NInsts = 0 }},
		{"classes mismatch", func(p *Program) { p.Blocks[0].Classes = p.Blocks[0].Classes[:1] }},
		{"non-branch final class", func(p *Program) { p.Blocks[0].Classes[1] = isa.ClassALU }},
		{"succ out of range", func(p *Program) { p.Blocks[0].Succs[0].To = 42 }},
		{"cond needs two succs", func(p *Program) { p.Blocks[0].Succs = p.Blocks[0].Succs[:1] }},
		{"return with succs", func(p *Program) {
			p.Blocks[1].Succs = []Edge{{To: 0, Prob: 1}}
		}},
		{"proc entry range", func(p *Program) { p.Procs[0].Entry = 77 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := tiny()
			c.mut(p)
			if err := p.Validate(); err == nil {
				t.Fatal("invalid program accepted")
			}
		})
	}
}

func TestValidateCallNeedsContinuation(t *testing.T) {
	p := tiny()
	p.Blocks[0].Branch = isa.BranchCall
	p.Blocks[0].Succs = []Edge{{To: 1, Prob: 1}}
	if err := p.Validate(); err == nil {
		t.Fatal("call without continuation accepted")
	}
	p.Blocks[0].Cont = 1
	if err := p.Validate(); err != nil {
		t.Fatalf("call with continuation rejected: %v", err)
	}
}

func TestStaticInsts(t *testing.T) {
	if got := tiny().StaticInsts(); got != 3 {
		t.Fatalf("StaticInsts = %d, want 3", got)
	}
}

func TestProfileAccumulation(t *testing.T) {
	p := tiny()
	prof := NewProfile(p)
	prof.AddBlock(0)
	prof.AddBlock(0)
	prof.AddEdge(0, 1)
	if prof.BlockCount[0] != 2 || prof.EdgeCount[EdgeKey{0, 1}] != 1 {
		t.Fatalf("profile counts wrong: %+v", prof)
	}
	other := NewProfile(p)
	other.AddBlock(1)
	other.AddEdge(0, 1)
	prof.Merge(other)
	if prof.BlockCount[1] != 1 || prof.EdgeCount[EdgeKey{0, 1}] != 2 {
		t.Fatalf("merge wrong: %+v", prof)
	}
}
