package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// reopen closes a store and opens a fresh one on the same directory, the
// way a restarted daemon would.
func reopen(t *testing.T, s *FS) *FS {
	t.Helper()
	dir := s.Dir()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestFSPersistence: journal records and blobs written by one process
// generation are visible to the next.
func TestFSPersistence(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Journal(rec("run-000001", "queued", "k1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlob(Key("x"), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	s = reopen(t, s)
	recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "run-000001" || recs[0].State != "queued" {
		t.Fatalf("recovered %+v", recs)
	}
	if b, ok, err := s.GetBlob(Key("x")); err != nil || !ok || string(b) != "payload" {
		t.Fatalf("blob after reopen: %q ok=%v err=%v", b, ok, err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.JournalRecords != 1 || st.JournalDepth != 1 || st.Blobs != 1 || st.Bytes <= 0 {
		t.Errorf("stats after reopen = %+v", st)
	}
}

// TestFSTornJournalTail: a crash mid-append leaves a partial final line;
// Open must seal it, Recover must ignore it, and subsequent appends must
// parse cleanly — earlier records stay intact throughout.
func TestFSTornJournalTail(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Journal(rec("run-000001", "queued", "k1")); err != nil {
		t.Fatal(err)
	}
	dir := s.Dir()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write: an unterminated half-record at EOF.
	f, err := os.OpenFile(filepath.Join(dir, journalName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"run-000002","state":"qu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err = Open(dir)
	if err != nil {
		t.Fatalf("Open on torn journal: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	recs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "run-000001" {
		t.Fatalf("recovered %+v, want only the intact record", recs)
	}
	// The next append must land on its own line, not glued to the tear.
	if err := s.Journal(rec("run-000003", "queued", "k3")); err != nil {
		t.Fatal(err)
	}
	recs, err = s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].ID != "run-000003" {
		t.Fatalf("after post-tear append, recovered %+v", recs)
	}
}

// TestFSBlobTempOrphanSweep: a crash between temp-write and rename
// leaves an orphan that must never surface as a blob and is cleaned by
// the next Open.
func TestFSBlobTempOrphanSweep(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("orphaned")
	shard := filepath.Join(s.Dir(), blobsDir, key[:2])
	if err := os.MkdirAll(shard, 0o777); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(shard, tmpPrefix+"1234")
	if err := os.WriteFile(orphan, []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	s = reopen(t, s)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphaned temp blob survived reopen")
	}
	if _, ok, err := s.GetBlob(key); err != nil || ok {
		t.Errorf("orphan visible as blob: ok=%v err=%v", ok, err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Blobs != 0 {
		t.Errorf("stats count orphans: %+v", st)
	}
}

// TestFSBlobKeyValidation: path-escaping or degenerate keys are rejected
// instead of touching the filesystem outside the blob root.
func TestFSBlobKeyValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	for _, key := range []string{"", "ab", "../../etc/passwd", "a/b", "x" + string(os.PathSeparator) + "y"} {
		if err := s.PutBlob(key, []byte("x")); err == nil || !strings.Contains(err.Error(), "invalid blob key") {
			t.Errorf("PutBlob(%q) err = %v, want invalid-key error", key, err)
		}
		if _, _, err := s.GetBlob(key); err == nil {
			t.Errorf("GetBlob(%q) accepted an invalid key", key)
		}
	}
}
