// Package faultstore is the fault-injection layer for the durability
// stack: a store.Store wrapper that fails, corrupts or crash-stops
// scripted store operations, so the serve layer's degradation and
// recovery paths are specified and enforced by tests instead of assumed.
//
// Faults are scripted against per-operation call counters:
//
//	fs := faultstore.Wrap(inner)
//	fs.FailAt(faultstore.OpJournal, 3, syscall.ENOSPC) // 3rd Journal call fails
//	fs.FailAll(faultstore.OpPutBlob, syscall.EIO)      // every PutBlob fails until Heal
//	fs.CrashAt(faultstore.OpWrite, 5)                  // 5th write crash-stops the store
//
// A crash-stop models power loss mid-write: the scripted call (and every
// call after it) returns ErrCrashed without reaching the inner store, and
// an optional OnCrash hook runs first — the crash-point harness uses it
// with TearJournal/DropOrphan to leave exactly the on-disk wreckage a real
// crash would (a torn half-record at the journal tail, an orphaned blob
// temp file). Reopening the directory with a fresh store.FS then exercises
// the real recovery path: seal the torn line, sweep the orphan, replay.
package faultstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"streamfetch/internal/store"
)

// Op names an injectable store operation. OpWrite is a pseudo-op matching
// both Journal and PutBlob under one shared counter — the write points a
// crash harness enumerates.
type Op string

const (
	OpJournal Op = "journal"
	OpPutBlob Op = "putblob"
	OpGetBlob Op = "getblob"
	OpWrite   Op = "write" // Journal ∪ PutBlob, jointly counted
)

// ErrCrashed is returned by every operation after a scripted crash-stop:
// the process is pretending the machine died at that write point.
var ErrCrashed = errors.New("faultstore: store crash-stopped")

// fault is one scripted injection: fire on the call-th matching call
// (1-based), returning err or crash-stopping.
type fault struct {
	op    Op
	call  int
	err   error
	crash bool
}

// Store wraps an inner store.Store with scripted faults. Safe for
// concurrent use; the scripting calls (FailAt, FailAll, CrashAt, Heal)
// may race operations, taking effect from the next matching call.
type Store struct {
	inner store.Store

	// OnCrash, when set, runs once as a scripted crash-stop fires, before
	// any call starts failing — the place to tear on-disk state the way a
	// real crash would. Set it before arming CrashAt.
	OnCrash func(op Op)

	mu      sync.Mutex
	calls   map[Op]int
	script  []fault
	failAll map[Op]error
	crashed bool
}

// Wrap builds a fault-injecting wrapper around inner with no faults
// armed: every operation passes through until scripted otherwise.
func Wrap(inner store.Store) *Store {
	return &Store{inner: inner, calls: map[Op]int{}, failAll: map[Op]error{}}
}

// FailAt arms a one-shot fault: the call-th (1-based) future call of op
// returns err instead of reaching the inner store.
func (s *Store) FailAt(op Op, call int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.script = append(s.script, fault{op: op, call: s.calls[op] + call, err: err})
}

// FailAll arms a persistent fault: every call of op fails with err until
// Heal. Models a disk that stays dead rather than hiccups.
func (s *Store) FailAll(op Op, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAll[op] = err
}

// CrashAt arms a crash-stop at the call-th (1-based) future call of op:
// OnCrash fires, then that call and every operation after it return
// ErrCrashed. The wrapped store never recovers — recovery is the next
// process's job, on a fresh store opened over the same state.
func (s *Store) CrashAt(op Op, call int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.script = append(s.script, fault{op: op, call: s.calls[op] + call, crash: true})
}

// Heal clears every persistent FailAll fault (one-shot scripted faults
// and a crash-stop stay armed): the disk came back.
func (s *Store) Heal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAll = map[Op]error{}
}

// Calls reports how many times op has been attempted (faulted attempts
// included). OpWrite reports the joint Journal+PutBlob counter.
func (s *Store) Calls(op Op) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[op]
}

// Crashed reports whether a scripted crash-stop has fired.
func (s *Store) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// check advances op's counter (and OpWrite's, for writes) and returns the
// injected error, if any fault fires. ops lists the counters this call
// matches, the primary op first.
func (s *Store) check(ops ...Op) error {
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return ErrCrashed
	}
	var fire *fault
	for _, op := range ops {
		s.calls[op]++
		for i := range s.script {
			f := &s.script[i]
			if f.op == op && f.call == s.calls[op] {
				fire = f
				break
			}
		}
	}
	if fire != nil && fire.crash {
		s.crashed = true
		hook := s.OnCrash
		s.mu.Unlock()
		if hook != nil {
			hook(ops[0]) // the actual operation, not the counter it matched
		}
		return ErrCrashed
	}
	if fire != nil {
		s.mu.Unlock()
		return fmt.Errorf("faultstore: injected %s fault: %w", fire.op, fire.err)
	}
	for _, op := range ops {
		if err := s.failAll[op]; err != nil {
			s.mu.Unlock()
			return fmt.Errorf("faultstore: injected %s fault: %w", op, err)
		}
	}
	s.mu.Unlock()
	return nil
}

func (s *Store) Name() string { return s.inner.Name() }

func (s *Store) Journal(rec store.JournalRecord) error {
	if err := s.check(OpJournal, OpWrite); err != nil {
		return err
	}
	return s.inner.Journal(rec)
}

func (s *Store) Recover() ([]store.JournalRecord, error) {
	s.mu.Lock()
	crashed := s.crashed
	s.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return s.inner.Recover()
}

func (s *Store) PutBlob(key string, data []byte) error {
	if err := s.check(OpPutBlob, OpWrite); err != nil {
		return err
	}
	return s.inner.PutBlob(key, data)
}

func (s *Store) GetBlob(key string) ([]byte, bool, error) {
	if err := s.check(OpGetBlob); err != nil {
		return nil, false, err
	}
	return s.inner.GetBlob(key)
}

func (s *Store) Stats() (store.Stats, error) {
	s.mu.Lock()
	crashed := s.crashed
	s.mu.Unlock()
	if crashed {
		return store.Stats{}, ErrCrashed
	}
	return s.inner.Stats()
}

// Close closes the inner store — even "after a crash", so tests can
// release file handles before reopening the directory.
func (s *Store) Close() error { return s.inner.Close() }

// TearJournal appends half a record with no trailing newline to the
// journal of a store.FS directory — the torn tail a crash mid-append
// leaves. A fresh Open must seal it and Recover must ignore it.
func TearJournal(dir string) error {
	f, err := os.OpenFile(filepath.Join(dir, "journal.log"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(`{"id":"torn-by-crash","kind":"run","state":"qu`)
	return err
}

// DropOrphan writes a partial blob temp file into a store.FS directory —
// the orphan a crash between CreateTemp and rename leaves. A fresh Open
// must sweep it.
func DropOrphan(dir string) error {
	blobs := filepath.Join(dir, "blobs")
	if err := os.MkdirAll(blobs, 0o777); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(blobs, "tmp-crash-orphan"),
		[]byte("SFBL1\n\x00partial"), 0o666)
}
