package faultstore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"streamfetch/internal/store"
)

func rec(id, state string) store.JournalRecord {
	return store.JournalRecord{ID: id, Kind: "run", State: state, Time: time.Unix(0, 0).UTC()}
}

// TestScriptedFaults: one-shot faults fire on exactly the scripted call,
// persistent faults hold until Heal, and everything else passes through.
func TestScriptedFaults(t *testing.T) {
	fs := Wrap(store.NewMem())
	fs.FailAt(OpJournal, 2, syscall.ENOSPC)

	if err := fs.Journal(rec("a", "queued")); err != nil {
		t.Fatalf("1st journal: %v, want pass-through", err)
	}
	err := fs.Journal(rec("b", "queued"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("2nd journal: %v, want injected ENOSPC", err)
	}
	if err := fs.Journal(rec("c", "queued")); err != nil {
		t.Fatalf("3rd journal: %v, want pass-through again", err)
	}

	fs.FailAll(OpPutBlob, syscall.EIO)
	for i := 0; i < 3; i++ {
		if err := fs.PutBlob("abc", []byte("x")); !errors.Is(err, syscall.EIO) {
			t.Fatalf("PutBlob under FailAll: %v, want EIO", err)
		}
	}
	fs.Heal()
	if err := fs.PutBlob("abc", []byte("x")); err != nil {
		t.Fatalf("PutBlob after Heal: %v", err)
	}
	if b, ok, err := fs.GetBlob("abc"); err != nil || !ok || string(b) != "x" {
		t.Fatalf("GetBlob = %q,%v,%v, want x,true,nil", b, ok, err)
	}

	// The injected journal failure never reached the inner store: replay
	// sees records a and c only.
	recs, err := fs.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].ID != "c" {
		t.Fatalf("Recover = %+v, want a then c", recs)
	}
}

// TestOpWriteCounter: OpWrite is the joint Journal+PutBlob counter, so a
// crash harness can enumerate write points across both.
func TestOpWriteCounter(t *testing.T) {
	fs := Wrap(store.NewMem())
	fs.Journal(rec("a", "queued"))
	fs.PutBlob("abc", []byte("x"))
	fs.Journal(rec("a", "done"))
	if got := fs.Calls(OpWrite); got != 3 {
		t.Errorf("Calls(OpWrite) = %d, want 3", got)
	}
	if got := fs.Calls(OpJournal); got != 2 {
		t.Errorf("Calls(OpJournal) = %d, want 2", got)
	}
}

// TestCrashStop: the scripted write crash-stops the store — OnCrash runs,
// that call and everything after return ErrCrashed, nothing more reaches
// the inner store.
func TestCrashStop(t *testing.T) {
	inner := store.NewMem()
	fs := Wrap(inner)
	var crashedOn Op
	fs.OnCrash = func(op Op) { crashedOn = op }
	fs.CrashAt(OpWrite, 2)

	if err := fs.Journal(rec("a", "queued")); err != nil {
		t.Fatalf("pre-crash journal: %v", err)
	}
	if err := fs.PutBlob("abc", []byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point write: %v, want ErrCrashed", err)
	}
	if crashedOn != OpPutBlob {
		t.Errorf("OnCrash saw op %q, want putblob", crashedOn)
	}
	if !fs.Crashed() {
		t.Error("Crashed() = false after crash-stop")
	}
	for _, call := range []func() error{
		func() error { return fs.Journal(rec("b", "queued")) },
		func() error { return fs.PutBlob("def", nil) },
		func() error { _, _, err := fs.GetBlob("abc"); return err },
		func() error { _, err := fs.Recover(); return err },
		func() error { _, err := fs.Stats(); return err },
	} {
		if err := call(); !errors.Is(err, ErrCrashed) {
			t.Errorf("post-crash operation: %v, want ErrCrashed", err)
		}
	}
	if recs, _ := inner.Recover(); len(recs) != 1 {
		t.Errorf("inner store saw %d records, want 1 (nothing after the crash)", len(recs))
	}
}

// TestFSFaultsAndRecovery: a store.FS under injected ENOSPC keeps its
// journal replayable; a crash that tears the journal tail and orphans a
// blob temp file is fully repaired by the next Open (seal, sweep, replay).
func TestFSFaultsAndRecovery(t *testing.T) {
	dir := t.TempDir()
	inner, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := Wrap(inner)
	fs.OnCrash = func(Op) {
		if err := TearJournal(dir); err != nil {
			t.Errorf("tearing journal: %v", err)
		}
		if err := DropOrphan(dir); err != nil {
			t.Errorf("dropping orphan: %v", err)
		}
	}
	fs.FailAt(OpJournal, 2, syscall.ENOSPC)

	if err := fs.Journal(rec("a", "queued")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Journal(rec("lost", "queued")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("injected ENOSPC journal: %v", err)
	}
	if err := fs.Journal(rec("b", "queued")); err != nil {
		t.Fatalf("journal after transient ENOSPC: %v", err)
	}
	if err := fs.PutBlob("abcdef", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}

	// Crash on the next write, tearing the on-disk state.
	fs.CrashAt(OpWrite, 1)
	if err := fs.Journal(rec("b", "done")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write: %v, want ErrCrashed", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	// Next process: Open must seal the torn line, sweep the orphan, and
	// replay exactly the records that were acknowledged.
	reopened, err := store.Open(dir)
	if err != nil {
		t.Fatalf("reopening crashed dir: %v", err)
	}
	defer reopened.Close()
	recs, err := reopened.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != "a" || recs[1].ID != "b" {
		t.Fatalf("recovered %+v, want a then b (ENOSPC'd and torn records gone)", recs)
	}
	for _, r := range recs {
		if r.State != "queued" {
			t.Errorf("record %s state %q, want queued (terminal write crashed)", r.ID, r.State)
		}
	}
	if b, ok, err := reopened.GetBlob("abcdef"); err != nil || !ok || string(b) != `{"ok":true}` {
		t.Fatalf("blob after recovery = %q,%v,%v", b, ok, err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Errorf("orphaned temp file %s survived Open's sweep", e.Name())
		}
	}

	// Journaling continues cleanly on the sealed log.
	if err := reopened.Journal(rec("b", "done")); err != nil {
		t.Fatalf("journal after recovery: %v", err)
	}
	if recs, _ := reopened.Recover(); len(recs) != 2 || recs[1].State != "done" {
		t.Fatalf("post-recovery replay = %+v", recs)
	}
}

// TestFSTruncatedBlobNeverValid: a blob truncated (or corrupted) on disk
// after a clean write is treated as a miss, never served, and the path is
// freed so PutBlob can rewrite it.
func TestFSTruncatedBlobNeverValid(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	key := "deadbeefcafe"
	payload := []byte(`{"report":"full"}`)
	if err := fs.PutBlob(key, payload); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "blobs", key[:2], key)

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":  func(b []byte) []byte { return b[:len(b)-4] },
		"bit-flip":   func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b },
		"extended":   func(b []byte) []byte { return append(b, "junk"...) },
		"no-header":  func(b []byte) []byte { return payload },
		"empty-file": func(b []byte) []byte { return nil },
	} {
		if err := fs.PutBlob(key, payload); err != nil {
			t.Fatal(err)
		}
		if _, ok, err := fs.GetBlob(key); err != nil || !ok {
			t.Fatalf("%s: clean blob unreadable: ok=%v err=%v", name, ok, err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(raw), 0o666); err != nil {
			t.Fatal(err)
		}
		if b, ok, err := fs.GetBlob(key); err != nil || ok {
			t.Fatalf("%s blob served as valid: %q ok=%v err=%v", name, b, ok, err)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s blob not removed after detection", name)
		}
	}

	// The rewrite stores a clean framed blob again.
	if err := fs.PutBlob(key, payload); err != nil {
		t.Fatal(err)
	}
	if b, ok, err := fs.GetBlob(key); err != nil || !ok || string(b) != string(payload) {
		t.Fatalf("rewritten blob = %q,%v,%v", b, ok, err)
	}
}
