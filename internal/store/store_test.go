package store

import (
	"encoding/json"
	"testing"
	"time"
)

// backends builds one of each Store implementation for conformance runs.
func backends(t *testing.T) map[string]Store {
	t.Helper()
	fss, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fss.Close() })
	return map[string]Store{"mem": NewMem(), "fs": fss}
}

func rec(id, state, key string) JournalRecord {
	return JournalRecord{
		ID: id, Kind: "run", Key: key, State: state,
		Time:    time.Unix(1700000000, 0).UTC(),
		Request: json.RawMessage(`{"benchmark":"164.gzip"}`),
	}
}

// TestJournalReplay: Recover returns the latest record per job in
// first-seen order, and journal depth tracks jobs without a terminal
// record.
func TestJournalReplay(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			for _, r := range []JournalRecord{
				rec("run-000001", "queued", "k1"),
				rec("run-000002", "queued", "k2"),
				rec("run-000001", "done", "k1"),
				rec("sweep-000003", "queued", "k3"),
			} {
				if err := s.Journal(r); err != nil {
					t.Fatal(err)
				}
			}
			recs, err := s.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 3 {
				t.Fatalf("recovered %d jobs, want 3: %+v", len(recs), recs)
			}
			wantOrder := []string{"run-000001", "run-000002", "sweep-000003"}
			wantState := []string{"done", "queued", "queued"}
			for i, r := range recs {
				if r.ID != wantOrder[i] || r.State != wantState[i] {
					t.Errorf("rec[%d] = %s/%s, want %s/%s", i, r.ID, r.State, wantOrder[i], wantState[i])
				}
			}
			st, err := s.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.JournalRecords != 4 || st.JournalDepth != 2 {
				t.Errorf("stats = %+v, want 4 records, depth 2", st)
			}
			if st.Bytes <= 0 {
				t.Errorf("stats bytes = %d, want > 0", st.Bytes)
			}
		})
	}
}

// TestBlobRoundTrip: put/get round-trips, missing keys report ok=false,
// and re-putting an existing key is a no-op.
func TestBlobRoundTrip(t *testing.T) {
	key := Key(struct{ A string }{"x"})
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := s.GetBlob(key); err != nil || ok {
				t.Fatalf("GetBlob on empty store = ok=%v err=%v", ok, err)
			}
			data := []byte(`{"ipc": 3.14}`)
			if err := s.PutBlob(key, data); err != nil {
				t.Fatal(err)
			}
			if err := s.PutBlob(key, data); err != nil {
				t.Fatalf("re-put of existing key: %v", err)
			}
			got, ok, err := s.GetBlob(key)
			if err != nil || !ok {
				t.Fatalf("GetBlob = ok=%v err=%v", ok, err)
			}
			if string(got) != string(data) {
				t.Errorf("blob = %q, want %q", got, data)
			}
			st, err := s.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st.Blobs != 1 {
				t.Errorf("stats blobs = %d, want 1", st.Blobs)
			}
		})
	}
}

// TestKeyDeterminism: equal specs hash equal, different specs differ.
func TestKeyDeterminism(t *testing.T) {
	type spec struct {
		Benchmark string
		Seed      uint64
	}
	a := Key(spec{"164.gzip", 99})
	if b := Key(spec{"164.gzip", 99}); b != a {
		t.Errorf("same spec hashed differently: %s vs %s", a, b)
	}
	if b := Key(spec{"164.gzip", 100}); b == a {
		t.Error("different specs collided")
	}
	if len(a) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(a))
	}
}

func TestTerminal(t *testing.T) {
	for state, want := range map[string]bool{
		"queued": false, "running": false,
		"done": true, "failed": true, "cancelled": true,
	} {
		if got := Terminal(state); got != want {
			t.Errorf("Terminal(%q) = %v, want %v", state, got, want)
		}
	}
}
