package store

import (
	"slices"
	"sync"
)

// Mem is the in-memory Store: the default backend, and the test double
// for the durable ones. It provides the same journal/blob semantics with
// process lifetime — a daemon on Mem keeps the full caching and
// coalescing behaviour but starts empty after a restart.
type Mem struct {
	mu    sync.Mutex
	recs  []JournalRecord
	blobs map[string][]byte
	bytes int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{blobs: map[string][]byte{}}
}

func (s *Mem) Name() string { return "mem" }

func (s *Mem) Journal(rec JournalRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Clone the raw payloads so a caller reusing its buffers cannot
	// mutate journaled history.
	rec.Request = slices.Clone(rec.Request)
	rec.Envelope = slices.Clone(rec.Envelope)
	s.recs = append(s.recs, rec)
	s.bytes += int64(len(rec.Request) + len(rec.Envelope))
	return nil
}

func (s *Mem) Recover() ([]JournalRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return replay(s.recs), nil
}

func (s *Mem) PutBlob(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[key]; ok {
		return nil // content-addressed: same key, same bytes
	}
	s.blobs[key] = slices.Clone(data)
	s.bytes += int64(len(data))
	return nil
}

func (s *Mem) GetBlob(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[key]
	if !ok {
		return nil, false, nil
	}
	return slices.Clone(b), true, nil
}

func (s *Mem) Stats() (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		JournalRecords: len(s.recs),
		JournalDepth:   pendingCount(s.recs),
		Blobs:          len(s.blobs),
		Bytes:          s.bytes,
	}, nil
}

func (s *Mem) Close() error { return nil }
