package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// FS is the filesystem Store: crash-safe persistence under one
// directory, shareable by successive daemon processes (restart/resume)
// or by several daemons mounting the same path.
//
// Layout:
//
//	<dir>/journal.log      append-only JSON lines, fsync'd per record
//	<dir>/blobs/ab/abc...  result blobs, named by content hash
//
// Crash safety: journal records are fsync'd before Journal returns, so
// an acknowledged submission survives power loss; a record torn by a
// crash mid-write can only be the file's final line, which Open seals
// (so later appends start clean) and Recover ignores. Blobs are written
// to a temp file, fsync'd, and atomically renamed into place — readers
// never observe a partial blob, and a crash leaves at worst an orphaned
// temp file that the next Open sweeps.
type FS struct {
	dir string

	mu      sync.Mutex
	journal *os.File
	// Incrementally maintained stats (rebuilt from disk at Open).
	records   int
	pending   map[string]struct{} // journaled, not yet terminal
	journalB  int64
	blobCount int
	blobB     int64
}

const (
	journalName = "journal.log"
	blobsDir    = "blobs"
	tmpPrefix   = "tmp-"
)

// Blob files are framed so a torn or bit-rotted blob can never be served
// as a valid result: a magic tag, the CRC32 of the payload and its exact
// length, then the payload. GetBlob verifies the frame and treats any
// mismatch — truncation, trailing garbage, a flipped bit, a file that
// predates the framing — as a miss, removing the file so the content-
// addressed PutBlob (which no-ops on an existing path) can rewrite it.
// Atomic rename already keeps crashes from publishing partial blobs; the
// frame covers everything rename can't: lying disks, torn sector writes
// under power loss, external truncation.
const (
	blobMagic  = "SFBL1\n"
	blobHdrLen = len(blobMagic) + 4 + 8 // magic + crc32 + payload length
)

// frameBlob prefixes data with the integrity header.
func frameBlob(data []byte) []byte {
	framed := make([]byte, blobHdrLen, blobHdrLen+len(data))
	copy(framed, blobMagic)
	binary.BigEndian.PutUint32(framed[len(blobMagic):], crc32.ChecksumIEEE(data))
	binary.BigEndian.PutUint64(framed[len(blobMagic)+4:], uint64(len(data)))
	return append(framed, data...)
}

// unframeBlob verifies the header and returns the payload; ok is false
// for anything that is not a complete, checksum-clean framed blob.
func unframeBlob(b []byte) (data []byte, ok bool) {
	if len(b) < blobHdrLen || string(b[:len(blobMagic)]) != blobMagic {
		return nil, false
	}
	sum := binary.BigEndian.Uint32(b[len(blobMagic):])
	n := binary.BigEndian.Uint64(b[len(blobMagic)+4:])
	payload := b[blobHdrLen:]
	if uint64(len(payload)) != n || crc32.ChecksumIEEE(payload) != sum {
		return nil, false
	}
	return payload, true
}

// Open opens (creating as needed) a filesystem store rooted at dir.
func Open(dir string) (*FS, error) {
	if err := os.MkdirAll(filepath.Join(dir, blobsDir), 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &FS{dir: dir, pending: map[string]struct{}{}}
	if err := s.sealJournal(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.journal = f
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *FS) Name() string        { return "fs" }
func (s *FS) Dir() string         { return s.dir }
func (s *FS) journalPath() string { return filepath.Join(s.dir, journalName) }

// sealJournal terminates a torn final record left by a crash mid-append:
// if the journal does not end in a newline, one is appended (and synced)
// so the broken line stays isolated from future records. Recover treats
// the unparsable line as noise.
func (s *FS) sealJournal() error {
	f, err := os.OpenFile(s.journalPath(), os.O_RDWR, 0)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if st.Size() == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, st.Size()-1); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if last[0] == '\n' {
		return nil
	}
	if _, err := f.WriteAt([]byte{'\n'}, st.Size()); err != nil {
		return fmt.Errorf("store: sealing torn journal: %w", err)
	}
	return f.Sync()
}

// scan rebuilds the incremental stats from disk and sweeps orphaned blob
// temp files left by a crash mid-PutBlob.
func (s *FS) scan() error {
	recs, err := s.readJournal()
	if err != nil {
		return err
	}
	s.records = len(recs)
	for _, rec := range replay(recs) {
		if !Terminal(rec.State) {
			s.pending[rec.ID] = struct{}{}
		}
	}
	if st, err := os.Stat(s.journalPath()); err == nil {
		s.journalB = st.Size()
	}
	return filepath.WalkDir(filepath.Join(s.dir, blobsDir), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if len(d.Name()) >= len(tmpPrefix) && d.Name()[:len(tmpPrefix)] == tmpPrefix {
			os.Remove(path) // crash orphan; the rename never happened
			return nil
		}
		if info, err := d.Info(); err == nil {
			s.blobCount++
			s.blobB += info.Size()
		}
		return nil
	})
}

// readJournal parses every complete record, skipping unparsable lines
// (at most the sealed torn tail of a crashed process).
func (s *FS) readJournal() ([]JournalRecord, error) {
	f, err := os.Open(s.journalPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var recs []JournalRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		var rec JournalRecord
		if json.Unmarshal(sc.Bytes(), &rec) != nil || rec.ID == "" {
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: reading journal: %w", err)
	}
	return recs, nil
}

func (s *FS) Journal(rec JournalRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return errors.New("store: journal closed")
	}
	if _, err := s.journal.Write(line); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("store: journal fsync: %w", err)
	}
	s.records++
	s.journalB += int64(len(line))
	if Terminal(rec.State) {
		delete(s.pending, rec.ID)
	} else {
		s.pending[rec.ID] = struct{}{}
	}
	return nil
}

func (s *FS) Recover() ([]JournalRecord, error) {
	recs, err := s.readJournal()
	if err != nil {
		return nil, err
	}
	return replay(recs), nil
}

// blobPath shards blobs by the key's first byte so one directory never
// accumulates the whole cache.
func (s *FS) blobPath(key string) (string, error) {
	if len(key) < 3 || filepath.Base(key) != key {
		return "", fmt.Errorf("store: invalid blob key %q", key)
	}
	return filepath.Join(s.dir, blobsDir, key[:2], key), nil
}

func (s *FS) PutBlob(key string, data []byte) error {
	path, err := s.blobPath(key)
	if err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		return nil // content-addressed: already stored
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Write-to-temp, fsync, rename: the final name only ever points at a
	// complete blob, and concurrent writers of one key race benignly
	// (identical content, last rename wins).
	framed := frameBlob(data)
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(framed); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	// Persist the rename itself (best effort: not every platform lets a
	// directory be fsync'd).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.mu.Lock()
	s.blobCount++
	s.blobB += int64(len(framed))
	s.mu.Unlock()
	return nil
}

func (s *FS) GetBlob(key string) ([]byte, bool, error) {
	path, err := s.blobPath(key)
	if err != nil {
		return nil, false, err
	}
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	data, ok := unframeBlob(b)
	if !ok {
		// Truncated or corrupted on disk: never serve it as valid. Remove
		// the file so the miss is self-healing — PutBlob no-ops on an
		// existing path, so a lingering corrupt file would pin the
		// corruption forever.
		if os.Remove(path) == nil {
			s.mu.Lock()
			s.blobCount--
			s.blobB -= int64(len(b))
			s.mu.Unlock()
		}
		return nil, false, nil
	}
	return data, true, nil
}

func (s *FS) Stats() (Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		JournalRecords: s.records,
		JournalDepth:   len(s.pending),
		Blobs:          s.blobCount,
		Bytes:          s.journalB + s.blobB,
	}, nil
}

func (s *FS) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}
