// Package store is the durability layer under streamfetchd: a job
// journal plus a content-addressed blob store for terminal results.
//
// The journal is an append-only sequence of JournalRecords, one per job
// state transition that matters for recovery: a record with a
// non-terminal state ("queued") carries the original request body, and a
// terminal record ("done", "failed", "cancelled") carries the job's final
// envelope. Replaying the journal — latest record per job id wins —
// reconstructs a daemon's job registry after a restart: terminal jobs are
// served from their envelopes, and jobs journaled as accepted but never
// finished are re-enqueued from their requests.
//
// The blob store holds results keyed by content hash (see Key): runs are
// deterministic for a fixed configuration and seed, so a blob written
// under the canonical hash of a request's semantic fields turns every
// repeat of that request into an O(1) lookup, shareable across daemons
// pointed at the same directory.
//
// Two backends implement the Store interface: Mem (process-local, for
// tests and the default daemon configuration) and FS (an atomic-rename
// filesystem layout with an fsync'd journal, crash-safe; see Open).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"
)

// JournalRecord is one journaled job state transition.
type JournalRecord struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "run" or "sweep"
	// Key is the content hash of the job's request (see Key); terminal
	// "done" records have a result blob stored under it.
	Key   string    `json:"key,omitempty"`
	State string    `json:"state"` // "queued", "done", "failed", "cancelled"
	Time  time.Time `json:"time"`
	// Request is the submitted job body, carried by non-terminal records
	// so recovery can re-enqueue the job.
	Request json.RawMessage `json:"request,omitempty"`
	// Envelope is the job's terminal resource representation, carried by
	// terminal records so a restarted daemon keeps serving it.
	Envelope json.RawMessage `json:"envelope,omitempty"`
}

// Terminal reports whether a journaled state is final. Anything
// non-terminal at recovery time is owed a re-run.
func Terminal(state string) bool {
	switch state {
	case "queued", "running":
		return false
	}
	return true
}

// Stats is a point-in-time view of a store's contents, surfaced through
// the daemon's /healthz.
type Stats struct {
	// JournalRecords is the total record count; JournalDepth the number
	// of journaled jobs with no terminal record yet (the recovery debt a
	// restart would re-enqueue).
	JournalRecords int `json:"journal_records"`
	JournalDepth   int `json:"journal_depth"`
	// Blobs and Bytes size the stored state: blob count, and bytes on
	// disk (FS) or resident (Mem) across journal and blobs.
	Blobs int   `json:"blobs"`
	Bytes int64 `json:"bytes"`
}

// Store is the pluggable durability backend. Implementations are safe
// for concurrent use.
type Store interface {
	// Name identifies the backend ("mem", "fs") for health reporting.
	Name() string

	// Journal appends one record. For durable backends the record has
	// reached stable storage when Journal returns.
	Journal(rec JournalRecord) error

	// Recover returns the latest journaled record per job id, ordered by
	// each job's first appearance in the journal (enqueue order).
	Recover() ([]JournalRecord, error)

	// PutBlob stores a result under its content key. Blobs are
	// immutable: writing an existing key is a no-op, never corruption.
	PutBlob(key string, data []byte) error

	// GetBlob fetches a blob; ok is false when the key is absent.
	GetBlob(key string) (data []byte, ok bool, err error)

	Stats() (Stats, error)
	Close() error
}

// Key derives the canonical content hash of a request's semantic fields:
// the SHA-256 of the spec's JSON encoding, hex-encoded. Callers pass a
// fully normalized spec struct (defaults resolved, order-insensitive
// fields canonicalized) so that every spelling of one configuration maps
// to one key; struct field order is fixed at compile time, so the
// encoding — and the key — is deterministic.
func Key(spec any) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// Key specs are plain data structs; an unmarshalable one is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("store: unencodable key spec %T: %v", spec, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// replay folds records into latest-per-id in first-seen order; shared by
// backends implementing Recover.
func replay(recs []JournalRecord) []JournalRecord {
	latest := make(map[string]int, len(recs))
	var order []string
	for _, rec := range recs {
		if _, seen := latest[rec.ID]; !seen {
			order = append(order, rec.ID)
		}
		latest[rec.ID] = -1
	}
	for i, rec := range recs {
		latest[rec.ID] = i
	}
	out := make([]JournalRecord, 0, len(order))
	for _, id := range order {
		out = append(out, recs[latest[id]])
	}
	return out
}

// pendingCount tallies journaled jobs with no terminal record.
func pendingCount(recs []JournalRecord) int {
	n := 0
	for _, rec := range replay(recs) {
		if !Terminal(rec.State) {
			n++
		}
	}
	return n
}
