package frontend

import (
	"fmt"
	"strings"
	"sync"

	"streamfetch/internal/cache"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
)

// BuildEnv is the environment a fetch engine is constructed in: the memory
// hierarchy it fetches through, the laid-out code image it fetches from, the
// pipe width it must feed, and the address fetch starts at.
type BuildEnv struct {
	Hier  *cache.Hierarchy
	Image *layout.Layout
	Width int
	Entry isa.Addr
}

// Factory builds an engine from a build environment and engine-specific
// options. A nil opts selects the engine's defaults (the paper's Table 2 for
// the built-ins); a factory must reject option values of the wrong type with
// an error rather than a panic.
type Factory func(env BuildEnv, opts any) (Engine, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
	// registered preserves registration order: the four paper engines
	// first, then anything importers register.
	registered []string
)

// The paper's four engines register here, in presentation order, rather
// than from per-file init functions — file-name compile order must not
// decide how tables and sweeps order their rows.
func init() {
	Register("ev8", func(env BuildEnv, opts any) (Engine, error) {
		cfg, err := optionsAs("ev8", opts, DefaultEV8Config())
		if err != nil {
			return nil, err
		}
		return NewEV8Engine(cfg, env.Hier, env.Image, env.Width, env.Entry), nil
	})
	Register("ftb", func(env BuildEnv, opts any) (Engine, error) {
		cfg, err := optionsAs("ftb", opts, DefaultFTBConfig())
		if err != nil {
			return nil, err
		}
		return NewFTBEngine(cfg, env.Hier, env.Image, env.Width, env.Entry), nil
	})
	Register("streams", func(env BuildEnv, opts any) (Engine, error) {
		cfg, err := optionsAs("streams", opts, DefaultStreamConfig())
		if err != nil {
			return nil, err
		}
		return NewStreamEngine(cfg, env.Hier, env.Image, env.Width, env.Entry), nil
	})
	Register("tcache", func(env BuildEnv, opts any) (Engine, error) {
		cfg, err := optionsAs("tcache", opts, DefaultTCConfig())
		if err != nil {
			return nil, err
		}
		return NewTraceCacheEngine(cfg, env.Hier, env.Image, env.Width, env.Entry), nil
	})
}

// Register makes an engine constructible by name through New. It panics on
// an empty name, a nil factory, or a duplicate registration — all
// programming errors at package-init time.
func Register(name string, factory Factory) {
	if name == "" {
		panic("frontend: Register with empty engine name")
	}
	if factory == nil {
		panic(fmt.Sprintf("frontend: Register(%q) with nil factory", name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("frontend: engine %q already registered", name))
	}
	registry[name] = factory
	registered = append(registered, name)
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// New constructs the engine registered under name. Unknown names yield an
// error listing the registered engines.
func New(name string, env BuildEnv, opts any) (Engine, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("frontend: unknown engine %q (registered: %s)",
			name, strings.Join(Engines(), ", "))
	}
	return f(env, opts)
}

// Engines lists the registered engine names in registration order: the four
// paper engines (ev8, ftb, streams, tcache) first, then any extensions.
func Engines() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return append([]string(nil), registered...)
}

// optionsAs coerces the opts value a factory received into the engine's
// config type C: nil selects def, and both C and *C are accepted.
func optionsAs[C any](name string, opts any, def C) (C, error) {
	switch o := opts.(type) {
	case nil:
		return def, nil
	case C:
		return o, nil
	case *C:
		if o == nil {
			return def, nil
		}
		return *o, nil
	default:
		var zero C
		return zero, fmt.Errorf("frontend: engine %q wants options of type %T, got %T",
			name, zero, opts)
	}
}
