// The FTB front-end (Reinman, Austin & Calder, ISCA 1999): a decoupled
// fetch-target-buffer prediction stage feeding an FTQ, with a perceptron
// conditional predictor (Table 2). Fetch blocks are variable length, embed
// never-taken branches, and end at a branch that has been taken at least
// once; overlapping blocks are not stored (taken branches split blocks).
package frontend

import (
	"streamfetch/internal/bpred"
	"streamfetch/internal/cache"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
)

// FTBConfig configures the FTB front-end.
type FTBConfig struct {
	FTBEntries  int
	FTBWays     int
	MaxBlockLen int
	Perceptron  bpred.PerceptronConfig
	FTQDepth    int
	RASDepth    int
}

// DefaultFTBConfig returns the Table-2 configuration: 2048-entry 4-way FTB,
// 512-perceptron predictor with 40-bit global and 4096x14-bit local history,
// 4-entry FTQ, 8-entry RAS.
func DefaultFTBConfig() FTBConfig {
	return FTBConfig{
		FTBEntries:  2048,
		FTBWays:     4,
		MaxBlockLen: 32,
		Perceptron:  bpred.DefaultPerceptronConfig(),
		FTQDepth:    4,
		RASDepth:    8,
	}
}

// FTBEngine is the decoupled FTB front-end.
type FTBEngine struct {
	ftb  *bpred.FTB
	perc *bpred.Perceptron

	ftq     *FTQ
	fetcher ICacheFetcher

	specRAS *bpred.RAS
	retRAS  *bpred.RAS

	fetchAddr isa.Addr
	// commitBlockStart tracks fetch-block boundaries at retirement for
	// FTB training.
	commitBlockStart isa.Addr
	maxBlockLen      int
	stats            FetchStats
}

// NewFTBEngine builds the front-end.
func NewFTBEngine(cfg FTBConfig, hier *cache.Hierarchy, image *layout.Layout, width int, entry isa.Addr) *FTBEngine {
	return &FTBEngine{
		ftb:              bpred.NewFTB(cfg.FTBEntries, cfg.FTBWays, cfg.MaxBlockLen),
		perc:             bpred.NewPerceptron(cfg.Perceptron),
		ftq:              NewFTQ(cfg.FTQDepth),
		fetcher:          ICacheFetcher{Hier: hier, Image: image, Width: width},
		specRAS:          bpred.NewRAS(cfg.RASDepth),
		retRAS:           bpred.NewRAS(cfg.RASDepth),
		fetchAddr:        entry,
		commitBlockStart: entry,
		maxBlockLen:      cfg.MaxBlockLen,
	}
}

// Name implements Engine.
func (e *FTBEngine) Name() string { return "ftb" }

// Cycle implements Engine.
func (e *FTBEngine) Cycle(out []FetchedInst) []FetchedInst {
	e.stats.Cycles++

	// Fetch request generation: one FTB lookup per cycle.
	if !e.ftq.Full() {
		e.stats.PredictorLookups++
		if entry, hit := e.ftb.Lookup(e.fetchAddr); hit {
			e.stats.PredictorHits++
			e.stats.Units++
			e.stats.UnitInsts += uint64(entry.Len)
			taken := true
			target := entry.Target
			switch entry.Type {
			case isa.BranchCond:
				p := e.perc.Predict(uint64(entry.BranchPC(e.fetchAddr)))
				e.perc.OnPredict(p.Taken)
				taken = p.Taken
			case isa.BranchReturn:
				target = e.specRAS.Pop()
			case isa.BranchCall, isa.BranchIndirectCall:
				e.specRAS.Push(entry.FallThrough(e.fetchAddr))
			case isa.BranchNone:
				taken = false // length-capped block: sequential
			}
			e.ftq.Push(Request{Start: e.fetchAddr, Len: entry.Len})
			if taken {
				e.fetchAddr = target
			} else {
				e.fetchAddr = entry.FallThrough(e.fetchAddr)
			}
		} else {
			// FTB miss: request sequentially to the end of the
			// line; embedded taken branches will be discovered at
			// decode or execute and learned at commit.
			lineBytes := isa.Addr(e.fetcher.Hier.ICache.LineBytes())
			lineEnd := (e.fetchAddr/lineBytes + 1) * lineBytes
			n := int(lineEnd-e.fetchAddr) / isa.InstBytes
			e.ftq.Push(Request{Start: e.fetchAddr, Len: n})
			e.fetchAddr = e.fetchAddr.Plus(n)
		}
	}

	// Instruction cache access.
	before := len(out)
	out = e.fetcher.CycleFTQ(e.ftq, out)
	if n := len(out) - before; n > 0 {
		e.stats.Delivered += uint64(n)
		e.stats.DeliveryCycles++
	}
	return out
}

// Redirect implements Engine.
func (e *FTBEngine) Redirect(target isa.Addr, recover bool) {
	e.ftq.Clear()
	e.fetcher.Reset()
	e.fetchAddr = target
	if recover {
		e.perc.Recover()
		e.specRAS.CopyFrom(e.retRAS)
	}
}

// Commit implements Engine: perceptron training, retirement RAS, and FTB
// block learning with splitting.
func (e *FTBEngine) Commit(c Committed) {
	switch {
	case c.Branch == isa.BranchCond:
		e.perc.UpdateAtCommit(uint64(c.Addr), c.Taken)
	case c.Branch.IsCall():
		e.retRAS.Push(c.Addr.Next())
	case c.Branch.IsReturn():
		e.retRAS.Pop()
	}

	blockLen := int(c.Addr-e.commitBlockStart)/isa.InstBytes + 1
	switch {
	case c.Branch != isa.BranchNone && c.Taken:
		// A taken branch always terminates (and possibly splits) the
		// fetch block starting at the tracked start.
		e.ftb.Update(e.commitBlockStart, bpred.FTBEntry{
			Len:    blockLen,
			Type:   c.Branch,
			Target: c.Target,
		})
		e.commitBlockStart = c.Target
	case c.Mispredicted:
		// Predicted taken, fell through: the next block starts at the
		// fall-through (mirrors the front-end redirect).
		e.commitBlockStart = c.Addr.Next()
	case blockLen >= e.maxBlockLen:
		// Length cap: the stored block ends here; continue at the
		// fall-through.
		e.commitBlockStart = c.Addr.Next()
	case c.Branch != isa.BranchNone:
		// A not-taken branch ends the block only if the FTB already
		// stores a block terminating exactly here (ever-taken
		// terminator not taken this time).
		if entry, ok := e.ftb.Probe(e.commitBlockStart); ok &&
			entry.BranchPC(e.commitBlockStart) == c.Addr {
			e.commitBlockStart = c.Addr.Next()
		}
	}
}

// FetchStats implements Engine.
func (e *FTBEngine) FetchStats() FetchStats { return e.stats }
