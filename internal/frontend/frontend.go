// Package frontend defines the fetch-engine contract shared by the four
// simulated front-ends (EV8, FTB, streams, trace cache) and the common
// machinery they are built from: the fetch target queue and the
// single-ported wide-line instruction cache fetcher with the fetch-request
// update mechanism of §3.3.
package frontend

import (
	"streamfetch/internal/cache"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
)

// FetchedInst is one instruction delivered by a fetch engine.
type FetchedInst struct {
	Addr isa.Addr
	Inst isa.Inst
}

// Committed describes one retired instruction, fed back to the engine for
// commit-time predictor training.
type Committed struct {
	Addr isa.Addr
	// Branch is the effective branch type (BranchNone for plain
	// instructions).
	Branch isa.BranchType
	// Taken and Target give the architectural outcome for branches.
	Taken  bool
	Target isa.Addr
	// Mispredicted marks the branch whose prediction caused a front-end
	// redirect.
	Mispredicted bool
}

// Engine is a processor front-end. The driving simulator calls Cycle every
// cycle fetch may proceed, validates the fetched addresses against the
// correct path, redirects on decode fix-ups and resolved mispredictions, and
// feeds retirement back through Commit.
type Engine interface {
	// Name identifies the engine in reports.
	Name() string
	// Cycle runs one front-end cycle, appending fetched instructions
	// (at most the pipe width) to out.
	Cycle(out []FetchedInst) []FetchedInst
	// Redirect restarts fetching at target. recover is true when the
	// redirect comes from a resolved branch misprediction, in which case
	// speculative predictor state (histories, RAS) is restored from the
	// retirement copies; decode-stage fix-ups pass false.
	Redirect(target isa.Addr, recover bool)
	// Commit retires one instruction in program order.
	Commit(c Committed)
	// FetchStats reports delivery statistics.
	FetchStats() FetchStats
}

// FetchStats aggregates front-end delivery statistics. The counters are
// mergeable: independently collected blocks (parallel trace intervals)
// combine with Merge, and a warmup prefix is excluded with Delta.
type FetchStats struct {
	// Delivered counts instructions handed to the pipeline (correct and
	// wrong path).
	Delivered uint64
	// Cycles counts front-end cycles in which delivery was attempted.
	Cycles uint64
	// DeliveryCycles counts cycles with at least one delivered
	// instruction.
	DeliveryCycles uint64
	// Units counts fetch units issued (streams/blocks/traces predicted).
	Units uint64
	// UnitInsts accumulates predicted unit lengths.
	UnitInsts uint64
	// PredictorLookups/PredictorHits count unit-predictor activity.
	PredictorLookups uint64
	PredictorHits    uint64
}

// Reset zeroes the counters.
func (s *FetchStats) Reset() { *s = FetchStats{} }

// Merge accumulates another counter block into s.
func (s *FetchStats) Merge(o FetchStats) {
	s.Delivered += o.Delivered
	s.Cycles += o.Cycles
	s.DeliveryCycles += o.DeliveryCycles
	s.Units += o.Units
	s.UnitInsts += o.UnitInsts
	s.PredictorLookups += o.PredictorLookups
	s.PredictorHits += o.PredictorHits
}

// Delta returns the events counted since the earlier snapshot.
func (s FetchStats) Delta(since FetchStats) FetchStats {
	return FetchStats{
		Delivered:        s.Delivered - since.Delivered,
		Cycles:           s.Cycles - since.Cycles,
		DeliveryCycles:   s.DeliveryCycles - since.DeliveryCycles,
		Units:            s.Units - since.Units,
		UnitInsts:        s.UnitInsts - since.UnitInsts,
		PredictorLookups: s.PredictorLookups - since.PredictorLookups,
		PredictorHits:    s.PredictorHits - since.PredictorHits,
	}
}

// MeanUnitLen returns the mean predicted fetch-unit length.
func (s FetchStats) MeanUnitLen() float64 {
	if s.Units == 0 {
		return 0
	}
	return float64(s.UnitInsts) / float64(s.Units)
}

// FetchIPC returns delivered instructions per delivery-attempt cycle.
func (s FetchStats) FetchIPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Cycles)
}

// Request is a fetch request: Len instructions starting at Start. The
// instruction cache satisfies it over one or more cycles, updating the
// request in place (§3.3's fetch request update mechanism).
type Request struct {
	Start isa.Addr
	Len   int
}

// FTQ is the fetch target queue decoupling the unit predictor from the
// instruction cache (Reinman, Austin & Calder). It is a fixed-capacity ring
// buffer: Push/Pop never reslice or reallocate, keeping the per-cycle fetch
// path allocation-free.
type FTQ struct {
	q    []Request
	head int
	n    int
}

// NewFTQ builds a queue with the given capacity (Table 2: 4 entries).
func NewFTQ(capacity int) *FTQ {
	if capacity <= 0 {
		panic("frontend: FTQ capacity must be positive")
	}
	return &FTQ{q: make([]Request, capacity)}
}

// Full reports whether another request fits.
func (f *FTQ) Full() bool { return f.n == len(f.q) }

// Empty reports whether the queue holds no requests.
func (f *FTQ) Empty() bool { return f.n == 0 }

// Len returns the number of queued requests.
func (f *FTQ) Len() int { return f.n }

// Push appends a request; it panics when full (callers must check).
func (f *FTQ) Push(r Request) {
	if f.Full() {
		panic("frontend: push to full FTQ")
	}
	i := f.head + f.n
	if i >= len(f.q) {
		i -= len(f.q)
	}
	f.q[i] = r
	f.n++
}

// Front returns the oldest request for in-place update; callers must check
// Empty.
func (f *FTQ) Front() *Request { return &f.q[f.head] }

// Pop removes the oldest request; callers must check Empty.
func (f *FTQ) Pop() {
	f.head++
	if f.head == len(f.q) {
		f.head = 0
	}
	f.n--
}

// Clear empties the queue (redirect).
func (f *FTQ) Clear() { f.head, f.n = 0, 0 }

// ICacheFetcher drains fetch requests through a single-ported instruction
// cache with very wide lines, delivering at most width instructions per
// cycle and never crossing a line boundary within a cycle.
//
// Banks = 2 models the §3.4 alternative: a multi-banked cache reading two
// consecutive lines per cycle, which removes the misalignment penalty at
// the cost of an interchange network (both banks are charged for their
// accesses). The default (0 or 1) is the paper's chosen wide-line design.
type ICacheFetcher struct {
	Hier  *cache.Hierarchy
	Image *layout.Layout
	Width int
	Banks int

	busy int // remaining miss-stall cycles
}

// fetchLimit returns the address at which this cycle's delivery must stop:
// the end of the current line, or of the following line with two banks.
func (f *ICacheFetcher) fetchLimit(start isa.Addr) isa.Addr {
	lineBytes := isa.Addr(f.Hier.ICache.LineBytes())
	end := (start/lineBytes + 1) * lineBytes
	if f.Banks >= 2 {
		// The second bank supplies the next consecutive line; charge
		// its access (it may miss independently).
		if lat := f.Hier.FetchLatency(end); lat > 1 {
			// Second-bank miss: deliver only the first line this
			// cycle; the line fill proceeds in the background
			// (no extra stall modelled beyond losing the bank).
			return end
		}
		end += lineBytes
	}
	return end
}

// Busy reports whether the fetcher is stalled on a line miss.
func (f *ICacheFetcher) Busy() bool { return f.busy > 0 }

// Reset drops any in-flight miss stall (redirect).
func (f *ICacheFetcher) Reset() { f.busy = 0 }

// Cycle services the front request for one cycle, appending delivered
// instructions to out. done reports that the request has been fully
// satisfied (or abandoned because it left the code segment).
func (f *ICacheFetcher) Cycle(req *Request, out []FetchedInst) (res []FetchedInst, done bool) {
	if f.busy > 0 {
		f.busy--
		if f.busy > 0 {
			return out, false
		}
		// Miss serviced; the line is resident, deliver this cycle.
	} else {
		lat := f.Hier.FetchLatency(req.Start)
		if lat > 1 {
			f.busy = lat - 1
			return out, false
		}
	}
	lineEnd := f.fetchLimit(req.Start)
	n := req.Len
	if n > f.Width {
		n = f.Width
	}
	if room := int(lineEnd-req.Start) / isa.InstBytes; n > room {
		n = room
	}
	for i := 0; i < n; i++ {
		// FetchAt is total: wrong-path addresses outside the code
		// segment yield synthetic instructions, so the misprediction
		// that led here still resolves normally.
		inst := f.Image.FetchAt(req.Start)
		out = append(out, FetchedInst{Addr: req.Start, Inst: inst})
		req.Start = req.Start.Next()
		req.Len--
	}
	return out, req.Len <= 0
}

// CycleFTQ services the queue for one cycle. The line read for the front
// request also satisfies following requests that continue exactly where the
// previous one ended within the same line — the rotate-and-select network
// merges adjacent fetch blocks read from the single line access — up to the
// pipe width.
func (f *ICacheFetcher) CycleFTQ(q *FTQ, out []FetchedInst) []FetchedInst {
	if q.Empty() {
		return out
	}
	req := q.Front()
	if f.busy > 0 {
		f.busy--
		if f.busy > 0 {
			return out
		}
	} else {
		lat := f.Hier.FetchLatency(req.Start)
		if lat > 1 {
			f.busy = lat - 1
			return out
		}
	}
	lineEnd := f.fetchLimit(req.Start)
	budget := f.Width
	expected := req.Start
	for budget > 0 && !q.Empty() {
		req = q.Front()
		if req.Start != expected || req.Start >= lineEnd {
			break // different line or non-contiguous: next cycle
		}
		n := req.Len
		if n > budget {
			n = budget
		}
		if room := int(lineEnd-req.Start) / isa.InstBytes; n > room {
			n = room
		}
		for i := 0; i < n; i++ {
			inst := f.Image.FetchAt(req.Start)
			out = append(out, FetchedInst{Addr: req.Start, Inst: inst})
			req.Start = req.Start.Next()
			req.Len--
		}
		budget -= n
		expected = req.Start
		if req.Len <= 0 {
			q.Pop()
		} else {
			break // request continues (line boundary or width)
		}
	}
	return out
}
