// The trace cache front-end (Rotenberg et al., with the next trace
// predictor and selective trace storage): the primary path delivers whole
// traces from the trace cache in a single access (drained at pipe width per
// cycle while the predictor stalls, footnote 2 of the paper); the secondary
// path fetches from the instruction cache one block per cycle, guided by the
// predicted branch directions and a backup BTB.
package frontend

import (
	"streamfetch/internal/bpred"
	"streamfetch/internal/cache"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
	"streamfetch/internal/tcache"
)

// TCConfig configures the trace cache front-end.
type TCConfig struct {
	TCache     tcache.Config
	BTBEntries int
	BTBWays    int
	RASDepth   int
}

// DefaultTCConfig returns the Table-2 configuration (32KB 2-way trace
// cache, 1K-entry 4-way backup BTB, 8-entry RAS).
func DefaultTCConfig() TCConfig {
	return TCConfig{
		TCache:     tcache.DefaultConfig(),
		BTBEntries: 1024,
		BTBWays:    4,
		RASDepth:   8,
	}
}

// TraceCacheEngine is the trace cache front-end.
type TraceCacheEngine struct {
	pred    *tcache.Predictor
	store   *tcache.Storage
	fill    *tcache.FillUnit
	btb     *bpred.BTB
	specRAS *bpred.RAS
	retRAS  *bpred.RAS

	hier  *cache.Hierarchy
	image *layout.Layout
	width int

	fetchAddr isa.Addr
	// drain holds trace instructions being delivered width-per-cycle:
	// a fixed-capacity buffer (cap MaxLen, allocated once) consumed from
	// drainPos, so trace-hit delivery never reallocates.
	drain    []FetchedInst
	drainPos int
	// secondary path state: remaining predicted-trace walk.
	sec struct {
		active  bool
		addr    isa.Addr
		left    int
		dirs    uint8
		condIdx uint8
		ncond   uint8
		haveDir bool
	}
	busy  int
	stats FetchStats
	// extra stats
	tcHits, tcLookups uint64
}

// NewTraceCacheEngine builds the front-end.
func NewTraceCacheEngine(cfg TCConfig, hier *cache.Hierarchy, image *layout.Layout, width int, entry isa.Addr) *TraceCacheEngine {
	return &TraceCacheEngine{
		pred:      tcache.NewPredictor(cfg.TCache),
		store:     tcache.NewStorage(cfg.TCache.SizeBytes, cfg.TCache.Ways, cfg.TCache.MaxLen),
		fill:      tcache.NewFillUnit(cfg.TCache, entry),
		btb:       bpred.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		specRAS:   bpred.NewRAS(cfg.RASDepth),
		retRAS:    bpred.NewRAS(cfg.RASDepth),
		hier:      hier,
		image:     image,
		width:     width,
		fetchAddr: entry,
		drain:     make([]FetchedInst, 0, cfg.TCache.MaxLen),
	}
}

// Name implements Engine.
func (e *TraceCacheEngine) Name() string { return "tcache" }

// TraceHitRate returns the trace cache hit rate.
func (e *TraceCacheEngine) TraceHitRate() float64 {
	if e.tcLookups == 0 {
		return 0
	}
	return float64(e.tcHits) / float64(e.tcLookups)
}

// Cycle implements Engine.
func (e *TraceCacheEngine) Cycle(out []FetchedInst) []FetchedInst {
	e.stats.Cycles++

	// Drain a previously hit trace at pipe width per cycle; the
	// predictor and trace cache stall meanwhile.
	if e.drainPos < len(e.drain) {
		n := e.width
		if rem := len(e.drain) - e.drainPos; n > rem {
			n = rem
		}
		out = append(out, e.drain[e.drainPos:e.drainPos+n]...)
		e.drainPos += n
		e.deliver(n)
		return out
	}

	// Secondary path in progress: one instruction-cache block per cycle.
	if e.sec.active {
		return e.secondaryCycle(out)
	}

	// New trace prediction.
	e.stats.PredictorLookups++
	pr, hit := e.pred.Predict(e.fetchAddr)
	if hit {
		e.stats.PredictorHits++
		e.stats.Units++
		e.stats.UnitInsts += uint64(pr.Len)
		next := pr.Next
		switch {
		case pr.TermType.IsReturn():
			next = e.specRAS.Pop()
		case pr.TermType.IsCall():
			next = pr.Next
			e.specRAS.Push(pr.ID.Start.Plus(pr.Len))
		}
		e.pred.OnPredict(pr.ID.Start)

		e.tcLookups++
		if tr, ok := e.store.Lookup(pr.ID); ok {
			// Primary path: the whole trace in one access.
			e.tcHits++
			n := e.width
			if n > tr.Len() {
				n = tr.Len()
			}
			for _, ti := range tr.Inst[:n] {
				out = append(out, FetchedInst{Addr: ti.Addr, Inst: ti.Inst})
			}
			e.drain = e.drain[:0]
			e.drainPos = 0
			for _, ti := range tr.Inst[n:] {
				e.drain = append(e.drain, FetchedInst{Addr: ti.Addr, Inst: ti.Inst})
			}
			e.fetchAddr = next
			e.deliver(n)
			return out
		}
		// Trace cache miss: walk the predicted trace through the
		// instruction cache, one block per cycle.
		e.sec.active = true
		e.sec.addr = pr.ID.Start
		e.sec.left = pr.Len
		e.sec.dirs = pr.ID.Dirs
		e.sec.ncond = pr.ID.NCond
		e.sec.condIdx = 0
		e.sec.haveDir = true
		e.fetchAddr = next
		return e.secondaryCycle(out)
	}

	// Predictor miss: secondary path without direction guidance (backup
	// BTB counters only), one block per cycle, until the predictor hits
	// again. The walk advances fetchAddr itself.
	e.sec.active = true
	e.sec.addr = e.fetchAddr
	e.sec.left = e.width
	e.sec.haveDir = false
	return e.secondaryCycle(out)
}

func (e *TraceCacheEngine) deliver(n int) {
	if n > 0 {
		e.stats.Delivered += uint64(n)
		e.stats.DeliveryCycles++
	}
}

// secondaryCycle fetches one cache-line-bounded block from the instruction
// cache, ending at the first predicted-taken branch.
func (e *TraceCacheEngine) secondaryCycle(out []FetchedInst) []FetchedInst {
	if e.busy > 0 {
		e.busy--
		if e.busy > 0 {
			return out
		}
	} else {
		lat := e.hier.FetchLatency(e.sec.addr)
		if lat > 1 {
			e.busy = lat - 1
			return out
		}
	}
	lineBytes := isa.Addr(e.hier.ICache.LineBytes())
	lineEnd := (e.sec.addr/lineBytes + 1) * lineBytes
	n := e.width
	if n > e.sec.left {
		n = e.sec.left
	}
	if room := int(lineEnd-e.sec.addr) / isa.InstBytes; n > room {
		n = room
	}
	delivered := 0
	for i := 0; i < n; i++ {
		inst := e.image.FetchAt(e.sec.addr)
		out = append(out, FetchedInst{Addr: e.sec.addr, Inst: inst})
		delivered++
		e.sec.left--
		if inst.IsBranch() {
			taken, target, have := e.secondaryBranch(e.sec.addr, inst.Branch)
			if taken {
				if !have {
					target = e.sec.addr.Next()
				}
				e.sec.addr = target
				if e.sec.left <= 0 || !e.sec.haveDir {
					e.endSecondary(target)
				}
				e.deliver(delivered)
				return out
			}
		}
		e.sec.addr = e.sec.addr.Next()
		if e.sec.left <= 0 {
			e.endSecondary(e.sec.addr)
			e.deliver(delivered)
			return out
		}
	}
	e.deliver(delivered)
	return out
}

// endSecondary finishes a secondary walk; cont is where fetch continues when
// the walk was unguided.
func (e *TraceCacheEngine) endSecondary(cont isa.Addr) {
	e.sec.active = false
	if !e.sec.haveDir {
		e.fetchAddr = cont
	}
}

// secondaryBranch resolves one branch on the secondary path: predicted
// directions come from the trace prediction when available, otherwise from
// the backup BTB's 2-bit counters.
func (e *TraceCacheEngine) secondaryBranch(addr isa.Addr, bt isa.BranchType) (taken bool, target isa.Addr, have bool) {
	entry, btbHit := e.btb.Lookup(addr)
	switch bt {
	case isa.BranchCond:
		if e.sec.haveDir && e.sec.condIdx < e.sec.ncond {
			taken = e.sec.dirs>>e.sec.condIdx&1 == 1
			e.sec.condIdx++
		} else {
			taken = btbHit && entry.Ctr.Taken()
		}
		if !taken {
			return false, 0, false
		}
		return true, entry.Target, btbHit
	case isa.BranchReturn:
		return true, e.specRAS.Pop(), true
	case isa.BranchCall, isa.BranchIndirectCall:
		e.specRAS.Push(addr.Next())
		return true, entry.Target, btbHit
	default:
		return true, entry.Target, btbHit
	}
}

// Redirect implements Engine.
func (e *TraceCacheEngine) Redirect(target isa.Addr, recover bool) {
	e.drain = e.drain[:0]
	e.drainPos = 0
	e.sec.active = false
	e.busy = 0
	e.fetchAddr = target
	if recover {
		e.pred.Recover()
		e.specRAS.CopyFrom(e.retRAS)
	}
}

// Commit implements Engine: fill-unit trace construction, predictor
// training, selective trace storage, backup BTB maintenance.
func (e *TraceCacheEngine) Commit(c Committed) {
	if c.Branch.IsCall() && c.Taken {
		e.retRAS.Push(c.Addr.Next())
	}
	if c.Branch.IsReturn() && c.Taken {
		e.retRAS.Pop()
	}
	if c.Branch != isa.BranchNone {
		entry, ok := e.btb.Probe(c.Addr)
		if c.Taken {
			ctr := bpred.TwoBit(2)
			if ok {
				ctr = entry.Ctr.Update(true)
			}
			e.btb.Update(c.Addr, bpred.BTBEntry{Target: c.Target, Type: c.Branch, Ctr: ctr})
		} else if ok {
			entry.Ctr = entry.Ctr.Update(false)
			e.btb.Update(c.Addr, entry)
		}
	}

	inst := isa.Inst{Addr: c.Addr, Class: isa.ClassALU, Branch: c.Branch}
	if c.Branch != isa.BranchNone {
		inst.Class = isa.ClassBranch
	}
	tr, misp, ok := e.fill.Commit(c.Addr, inst, c.Taken, c.Target, c.Mispredicted)
	if !ok {
		return
	}
	e.pred.Update(tcache.Pred{
		ID:       tr.ID,
		Len:      tr.Len(),
		Next:     tr.Next,
		TermType: tr.TermType,
	}, misp)
	// Selective trace storage: only red (non-sequential) traces enter the
	// trace cache; blue traces are redundant with the instruction cache.
	if tr.Red {
		e.store.Insert(tr)
	}
}

// FetchStats implements Engine.
func (e *TraceCacheEngine) FetchStats() FetchStats { return e.stats }
