package frontend

import (
	"testing"

	"streamfetch/internal/cache"
	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

func testImage(t testing.TB) (*layout.Layout, *cache.Hierarchy) {
	t.Helper()
	p, err := workload.ByName("164.gzip")
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.Generate(p)
	lay := layout.Baseline(prog)
	return lay, cache.NewHierarchy(cache.DefaultHierarchy(8))
}

func TestFTQBasics(t *testing.T) {
	q := NewFTQ(2)
	if !q.Empty() || q.Full() {
		t.Fatal("fresh FTQ state wrong")
	}
	q.Push(Request{Start: 0x100, Len: 4})
	q.Push(Request{Start: 0x200, Len: 8})
	if !q.Full() || q.Len() != 2 {
		t.Fatal("FTQ should be full")
	}
	if q.Front().Start != 0x100 {
		t.Fatal("front is not the oldest request")
	}
	q.Pop()
	if q.Front().Start != 0x200 {
		t.Fatal("pop did not advance")
	}
	q.Clear()
	if !q.Empty() {
		t.Fatal("clear did not empty the queue")
	}
}

func TestFTQPushFullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("push to full FTQ did not panic")
		}
	}()
	q := NewFTQ(1)
	q.Push(Request{})
	q.Push(Request{})
}

func TestICacheFetcherWidthAndLineLimits(t *testing.T) {
	lay, hier := testImage(t)
	f := &ICacheFetcher{Hier: hier, Image: lay, Width: 8}
	start := layout.CodeBase
	req := Request{Start: start, Len: 64}
	var out []FetchedInst
	var done bool
	// First access misses in the cold cache: stalls, no delivery.
	out, done = f.Cycle(&req, out)
	if len(out) != 0 || done {
		t.Fatalf("cold access delivered %d insts done=%v", len(out), done)
	}
	// Drain the miss stall.
	for i := 0; i < 200 && len(out) == 0; i++ {
		out, done = f.Cycle(&req, out)
	}
	if len(out) == 0 {
		t.Fatal("fetcher never delivered after miss")
	}
	if len(out) > 8 {
		t.Fatalf("delivered %d > width", len(out))
	}
	for i, fi := range out {
		if fi.Addr != start.Plus(i) {
			t.Fatalf("inst %d at %v, want sequential", i, fi.Addr)
		}
	}
}

func TestICacheFetcherRequestUpdate(t *testing.T) {
	lay, hier := testImage(t)
	f := &ICacheFetcher{Hier: hier, Image: lay, Width: 4}
	hier.ICache.Access(layout.CodeBase) // pre-warm
	req := Request{Start: layout.CodeBase, Len: 10}
	var out []FetchedInst
	out, done := f.Cycle(&req, out)
	if done {
		t.Fatal("10-instruction request done after one 4-wide cycle")
	}
	if req.Len != 10-len(out) {
		t.Fatalf("request not updated: len=%d delivered=%d", req.Len, len(out))
	}
	if req.Start != layout.CodeBase.Plus(len(out)) {
		t.Fatalf("request start not advanced: %v", req.Start)
	}
}

func TestCycleFTQMergesContiguousRequests(t *testing.T) {
	lay, hier := testImage(t)
	f := &ICacheFetcher{Hier: hier, Image: lay, Width: 8}
	hier.ICache.Access(layout.CodeBase)
	q := NewFTQ(4)
	q.Push(Request{Start: layout.CodeBase, Len: 3})
	q.Push(Request{Start: layout.CodeBase.Plus(3), Len: 3})
	out := f.CycleFTQ(q, nil)
	if len(out) != 6 {
		t.Fatalf("delivered %d, want 6 (two merged contiguous blocks)", len(out))
	}
	if !q.Empty() {
		t.Fatal("merged requests not consumed")
	}
}

func TestCycleFTQDoesNotMergeDiscontiguous(t *testing.T) {
	lay, hier := testImage(t)
	f := &ICacheFetcher{Hier: hier, Image: lay, Width: 8}
	hier.ICache.Access(layout.CodeBase)
	hier.ICache.Access(layout.CodeBase.Plus(64))
	q := NewFTQ(4)
	q.Push(Request{Start: layout.CodeBase, Len: 3})
	q.Push(Request{Start: layout.CodeBase.Plus(64), Len: 3}) // elsewhere
	out := f.CycleFTQ(q, nil)
	if len(out) != 3 {
		t.Fatalf("delivered %d, want 3 (no merge across a jump)", len(out))
	}
	if q.Len() != 1 {
		t.Fatalf("queue length %d, want 1", q.Len())
	}
}

func buildEngines(t testing.TB) []Engine {
	t.Helper()
	p, _ := workload.ByName("164.gzip")
	prog := workload.Generate(p)
	lay := layout.Baseline(prog)
	entry := lay.Start(prog.Entry)
	return []Engine{
		NewEV8Engine(DefaultEV8Config(), cache.NewHierarchy(cache.DefaultHierarchy(8)), lay, 8, entry),
		NewFTBEngine(DefaultFTBConfig(), cache.NewHierarchy(cache.DefaultHierarchy(8)), lay, 8, entry),
		NewStreamEngine(DefaultStreamConfig(), cache.NewHierarchy(cache.DefaultHierarchy(8)), lay, 8, entry),
		NewTraceCacheEngine(DefaultTCConfig(), cache.NewHierarchy(cache.DefaultHierarchy(8)), lay, 8, entry),
	}
}

// TestEnginesDeliverBoundedGroups: no engine may exceed the pipe width in a
// single cycle, and all must make progress within a bounded number of
// cycles.
func TestEnginesDeliverBoundedGroups(t *testing.T) {
	for _, e := range buildEngines(t) {
		t.Run(e.Name(), func(t *testing.T) {
			delivered := 0
			for cycle := 0; cycle < 1000; cycle++ {
				out := e.Cycle(nil)
				if len(out) > 8 {
					t.Fatalf("cycle delivered %d > width", len(out))
				}
				delivered += len(out)
			}
			if delivered == 0 {
				t.Fatal("engine never delivered an instruction")
			}
		})
	}
}

// TestEnginesRedirect: after a redirect, the next delivered instruction must
// be at the redirect target.
func TestEnginesRedirect(t *testing.T) {
	p, _ := workload.ByName("164.gzip")
	prog := workload.Generate(p)
	lay := layout.Baseline(prog)
	target := lay.Start(prog.Procs[1].Entry)
	for _, e := range buildEngines(t) {
		t.Run(e.Name(), func(t *testing.T) {
			for i := 0; i < 20; i++ {
				e.Cycle(nil)
			}
			e.Redirect(target, true)
			var first *FetchedInst
			for cycle := 0; cycle < 500 && first == nil; cycle++ {
				out := e.Cycle(nil)
				if len(out) > 0 {
					first = &out[0]
				}
			}
			if first == nil {
				t.Fatal("no delivery after redirect")
			}
			if first.Addr != target {
				t.Fatalf("first instruction after redirect at %v, want %v", first.Addr, target)
			}
		})
	}
}

// TestEnginesCommitTolerant: engines must absorb a realistic committed
// stream without panicking and keep fetch statistics consistent.
func TestEnginesCommitTolerant(t *testing.T) {
	p, _ := workload.ByName("164.gzip")
	prog := workload.Generate(p)
	lay := layout.Baseline(prog)
	tr := trace.Generate(prog, trace.GenConfig{Seed: 3, MaxInsts: 20_000})
	for _, e := range buildEngines(t) {
		t.Run(e.Name(), func(t *testing.T) {
			var buf []layout.DynInst
			for i, id := range tr.Blocks {
				next := nextBlock(tr, i)
				buf = lay.AppendDyn(buf[:0], id, next)
				for _, d := range buf {
					tgt := isa.Addr(0)
					if d.Taken {
						tgt = d.NextAddr
					}
					e.Commit(Committed{Addr: d.Addr, Branch: d.Branch, Taken: d.Taken, Target: tgt})
				}
			}
			s := e.FetchStats()
			if s.Delivered != 0 && s.DeliveryCycles == 0 {
				t.Fatal("inconsistent fetch stats")
			}
		})
	}
}

func nextBlock(tr *trace.Trace, i int) cfg.BlockID {
	if i+1 < len(tr.Blocks) {
		return tr.Blocks[i+1]
	}
	return cfg.NoBlock
}
