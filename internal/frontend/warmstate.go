package frontend

import (
	"streamfetch/internal/ckpt/wire"
	"streamfetch/internal/isa"
)

// WarmStater is implemented by engines whose warm microarchitectural
// state (predictor tables, trace storage, return stacks, in-flight
// commit-side builders) can be captured into and restored from a
// checkpoint. Fetch-side state (fetch address, FTQ, busy counters) is
// deliberately out of scope: checkpoints are taken at an interval
// boundary before the first timed cycle, where that state still holds
// its construction-time values in both the capturing and the restoring
// run. Statistics counters are likewise excluded.
type WarmStater interface {
	// AppendWarmState appends the engine's warm state to dst.
	AppendWarmState(dst []byte) []byte
	// LoadWarmState restores state produced by AppendWarmState on an
	// engine of identical configuration. On error the engine may be
	// partially modified and must be discarded.
	LoadWarmState(data []byte) error
}

// AppendWarmState implements WarmStater.
func (e *StreamEngine) AppendWarmState(dst []byte) []byte {
	dst = e.pred.AppendState(dst)
	dst = e.builder.AppendState(dst)
	dst = e.specRAS.AppendState(dst)
	return e.retRAS.AppendState(dst)
}

// LoadWarmState implements WarmStater.
func (e *StreamEngine) LoadWarmState(data []byte) error {
	r := wire.NewReader(data)
	if err := e.pred.LoadState(r); err != nil {
		return err
	}
	if err := e.builder.LoadState(r); err != nil {
		return err
	}
	if err := e.specRAS.LoadState(r); err != nil {
		return err
	}
	if err := e.retRAS.LoadState(r); err != nil {
		return err
	}
	return r.Done()
}

// AppendWarmState implements WarmStater.
func (e *EV8Engine) AppendWarmState(dst []byte) []byte {
	dst = e.gskew.AppendState(dst)
	dst = e.btb.AppendState(dst)
	dst = e.specRAS.AppendState(dst)
	return e.retRAS.AppendState(dst)
}

// LoadWarmState implements WarmStater.
func (e *EV8Engine) LoadWarmState(data []byte) error {
	r := wire.NewReader(data)
	if err := e.gskew.LoadState(r); err != nil {
		return err
	}
	if err := e.btb.LoadState(r); err != nil {
		return err
	}
	if err := e.specRAS.LoadState(r); err != nil {
		return err
	}
	if err := e.retRAS.LoadState(r); err != nil {
		return err
	}
	return r.Done()
}

// AppendWarmState implements WarmStater.
func (e *FTBEngine) AppendWarmState(dst []byte) []byte {
	dst = e.ftb.AppendState(dst)
	dst = e.perc.AppendState(dst)
	dst = e.specRAS.AppendState(dst)
	dst = e.retRAS.AppendState(dst)
	return wire.AppendU64(dst, uint64(e.commitBlockStart))
}

// LoadWarmState implements WarmStater.
func (e *FTBEngine) LoadWarmState(data []byte) error {
	r := wire.NewReader(data)
	if err := e.ftb.LoadState(r); err != nil {
		return err
	}
	if err := e.perc.LoadState(r); err != nil {
		return err
	}
	if err := e.specRAS.LoadState(r); err != nil {
		return err
	}
	if err := e.retRAS.LoadState(r); err != nil {
		return err
	}
	cbs := r.U64()
	if err := r.Done(); err != nil {
		return err
	}
	e.commitBlockStart = isa.Addr(cbs)
	return nil
}

// AppendWarmState implements WarmStater.
func (e *TraceCacheEngine) AppendWarmState(dst []byte) []byte {
	dst = e.pred.AppendState(dst)
	dst = e.store.AppendState(dst)
	dst = e.fill.AppendState(dst)
	dst = e.btb.AppendState(dst)
	dst = e.specRAS.AppendState(dst)
	return e.retRAS.AppendState(dst)
}

// LoadWarmState implements WarmStater.
func (e *TraceCacheEngine) LoadWarmState(data []byte) error {
	r := wire.NewReader(data)
	if err := e.pred.LoadState(r); err != nil {
		return err
	}
	if err := e.store.LoadState(r); err != nil {
		return err
	}
	if err := e.fill.LoadState(r); err != nil {
		return err
	}
	if err := e.btb.LoadState(r); err != nil {
		return err
	}
	if err := e.specRAS.LoadState(r); err != nil {
		return err
	}
	if err := e.retRAS.LoadState(r); err != nil {
		return err
	}
	return r.Done()
}

// Compile-time checks that every engine supports checkpointing.
var (
	_ WarmStater = (*StreamEngine)(nil)
	_ WarmStater = (*EV8Engine)(nil)
	_ WarmStater = (*FTBEngine)(nil)
	_ WarmStater = (*TraceCacheEngine)(nil)
)
