// The Alpha EV8-style front-end (Seznec et al.): an interleaved BTB and the
// 2bcgskew multiple branch predictor fetch instructions from the current
// cache line up to the first predicted-taken branch (the SEQ.3-like scheme
// the paper describes in §2.3).
package frontend

import (
	"streamfetch/internal/bpred"
	"streamfetch/internal/cache"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
)

// EV8Config configures the EV8 front-end.
type EV8Config struct {
	Gskew      bpred.GskewConfig
	BTBEntries int
	BTBWays    int
	RASDepth   int
}

// DefaultEV8Config returns the Table-2 configuration: 4 x 32K-entry gskew
// tables, 15-bit history, 2048-entry 4-way BTB, 8-entry RAS.
func DefaultEV8Config() EV8Config {
	return EV8Config{
		Gskew:      bpred.DefaultGskewConfig(),
		BTBEntries: 2048,
		BTBWays:    4,
		RASDepth:   8,
	}
}

// EV8Engine fetches one cache-line-bounded group of sequential instructions
// per cycle, terminating at the first predicted-taken branch.
type EV8Engine struct {
	gskew *bpred.Gskew
	btb   *bpred.BTB

	specRAS *bpred.RAS
	retRAS  *bpred.RAS

	hier  *cache.Hierarchy
	image *layout.Layout
	width int

	fetchAddr isa.Addr
	busy      int
	unitInsts uint64 // instructions in the current taken-to-taken unit
	stats     FetchStats
}

// NewEV8Engine builds the front-end.
func NewEV8Engine(cfg EV8Config, hier *cache.Hierarchy, image *layout.Layout, width int, entry isa.Addr) *EV8Engine {
	return &EV8Engine{
		gskew:     bpred.NewGskew(cfg.Gskew),
		btb:       bpred.NewBTB(cfg.BTBEntries, cfg.BTBWays),
		specRAS:   bpred.NewRAS(cfg.RASDepth),
		retRAS:    bpred.NewRAS(cfg.RASDepth),
		hier:      hier,
		image:     image,
		width:     width,
		fetchAddr: entry,
	}
}

// Name implements Engine.
func (e *EV8Engine) Name() string { return "ev8" }

// Cycle implements Engine.
func (e *EV8Engine) Cycle(out []FetchedInst) []FetchedInst {
	e.stats.Cycles++
	if e.busy > 0 {
		e.busy--
		if e.busy > 0 {
			return out
		}
	} else {
		lat := e.hier.FetchLatency(e.fetchAddr)
		if lat > 1 {
			e.busy = lat - 1
			return out
		}
	}

	lineBytes := isa.Addr(e.hier.ICache.LineBytes())
	lineEnd := (e.fetchAddr/lineBytes + 1) * lineBytes
	n := e.width
	if room := int(lineEnd-e.fetchAddr) / isa.InstBytes; n > room {
		n = room
	}

	addr := e.fetchAddr
	delivered := 0
	for i := 0; i < n; i++ {
		inst := e.image.FetchAt(addr)
		out = append(out, FetchedInst{Addr: addr, Inst: inst})
		delivered++
		e.unitInsts++
		if inst.IsBranch() {
			taken, target, haveTarget := e.predictBranch(addr, inst.Branch)
			if taken {
				e.stats.Units++
				e.stats.UnitInsts += e.unitInsts
				e.unitInsts = 0
				if haveTarget {
					e.fetchAddr = target
				} else {
					// No target available: fall through; the
					// decode stage will fix direct branches.
					e.fetchAddr = addr.Next()
				}
				e.finishCycle(delivered)
				return out
			}
		}
		addr = addr.Next()
	}
	e.fetchAddr = addr
	e.finishCycle(delivered)
	return out
}

func (e *EV8Engine) finishCycle(delivered int) {
	if delivered > 0 {
		e.stats.Delivered += uint64(delivered)
		e.stats.DeliveryCycles++
	}
}

// predictBranch runs the in-line multiple-branch prediction for one branch
// slot.
func (e *EV8Engine) predictBranch(addr isa.Addr, bt isa.BranchType) (taken bool, target isa.Addr, haveTarget bool) {
	e.stats.PredictorLookups++
	entry, btbHit := e.btb.Lookup(addr)
	if btbHit {
		e.stats.PredictorHits++
	}
	switch bt {
	case isa.BranchCond:
		p := e.gskew.Predict(uint64(addr))
		e.gskew.OnPredict(p.Taken)
		if !p.Taken {
			return false, 0, false
		}
		return true, entry.Target, btbHit
	case isa.BranchReturn:
		return true, e.specRAS.Pop(), true
	case isa.BranchCall, isa.BranchIndirectCall:
		e.specRAS.Push(addr.Next())
		return true, entry.Target, btbHit
	default: // uncond, indirect
		return true, entry.Target, btbHit
	}
}

// Redirect implements Engine.
func (e *EV8Engine) Redirect(target isa.Addr, recover bool) {
	e.fetchAddr = target
	e.busy = 0
	e.unitInsts = 0
	if recover {
		e.gskew.Recover()
		e.specRAS.CopyFrom(e.retRAS)
	}
}

// Commit implements Engine.
func (e *EV8Engine) Commit(c Committed) {
	switch {
	case c.Branch == isa.BranchCond:
		e.gskew.UpdateAtCommit(uint64(c.Addr), c.Taken)
	case c.Branch.IsCall():
		e.retRAS.Push(c.Addr.Next())
	case c.Branch.IsReturn():
		e.retRAS.Pop()
	}
	if c.Branch != isa.BranchNone && c.Taken {
		e.btb.Update(c.Addr, bpred.BTBEntry{Target: c.Target, Type: c.Branch})
	}
}

// FetchStats implements Engine.
func (e *EV8Engine) FetchStats() FetchStats { return e.stats }
