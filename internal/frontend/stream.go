// The stream fetch engine (§3, Figure 4): a next stream predictor provides
// stream-level sequencing into an FTQ; the wide-line instruction cache
// drains the FTQ with the fetch-request update mechanism. On a predictor
// miss the engine falls back to sequential fetching — no backup predictor is
// needed.
package frontend

import (
	"streamfetch/internal/bpred"
	"streamfetch/internal/cache"
	"streamfetch/internal/core"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
)

// StreamConfig configures the stream fetch engine.
type StreamConfig struct {
	Predictor core.PredictorConfig
	FTQDepth  int
	RASDepth  int
	// ICacheBanks selects the instruction cache organization: 1 (default)
	// reads one very wide line per cycle; 2 reads two consecutive lines
	// from a multi-banked cache (§3.4's alternative design).
	ICacheBanks int
}

// DefaultStreamConfig returns the Table-2 configuration.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Predictor: core.DefaultPredictorConfig(),
		FTQDepth:  4,
		RASDepth:  8,
	}
}

// StreamEngine is the paper's front-end.
type StreamEngine struct {
	pred    *core.Predictor
	ftq     *FTQ
	fetcher ICacheFetcher
	builder *core.Builder

	specRAS *bpred.RAS
	retRAS  *bpred.RAS

	fetchAddr isa.Addr
	lineInsts int
	// CommittedStreams / MispredictedStreams count commit-side stream
	// reconstruction events (diagnostics).
	CommittedStreams, MispredictedStreams uint64
	// MissByAddr, when non-nil, counts predictor misses per lookup
	// address (diagnostics). It is nil by default and must stay gated
	// behind a nil check at every touch point: enabling it costs a map
	// write on every predictor miss, which measurably slows the fetch
	// hot loop on low-hit-rate workloads.
	MissByAddr map[isa.Addr]int
	// DebugValidate, when non-nil, is called with every stream the
	// builder closes (diagnostics).
	DebugValidate func(s core.Stream)
	// DebugPushes, when non-nil, records every FTQ push (diagnostics).
	DebugPushes func(r Request, hit bool)
	// seqMode is true while the predictor misses and fetch proceeds
	// sequentially; the episode start is pushed into the speculative
	// path history once, keeping it aligned with the commit-side stream
	// sequence.
	seqMode bool
	stats   FetchStats
}

// NewStreamEngine builds a stream front-end fetching from image through
// hier, starting at entry.
func NewStreamEngine(cfg StreamConfig, hier *cache.Hierarchy, image *layout.Layout, width int, entry isa.Addr) *StreamEngine {
	return &StreamEngine{
		pred:    core.NewPredictor(cfg.Predictor),
		ftq:     NewFTQ(cfg.FTQDepth),
		fetcher: ICacheFetcher{Hier: hier, Image: image, Width: width, Banks: cfg.ICacheBanks},
		builder: core.NewBuilder(entry),
		specRAS: bpred.NewRAS(cfg.RASDepth),
		retRAS:  bpred.NewRAS(cfg.RASDepth),

		fetchAddr: entry,
		lineInsts: hier.ICache.LineBytes() / isa.InstBytes,
	}
}

// Name implements Engine.
func (e *StreamEngine) Name() string { return "streams" }

// Predictor exposes the next stream predictor (for reports and tests).
func (e *StreamEngine) Predictor() *core.Predictor { return e.pred }

// Cycle implements Engine: one prediction-stage step and one
// instruction-cache step.
func (e *StreamEngine) Cycle(out []FetchedInst) []FetchedInst {
	e.stats.Cycles++

	// Fetch request generation: one stream prediction per cycle.
	if !e.ftq.Full() {
		e.stats.PredictorLookups++
		if s, hit := e.pred.Predict(e.fetchAddr); hit {
			e.stats.PredictorHits++
			e.stats.Units++
			e.stats.UnitInsts += uint64(s.Len)
			next := s.Next
			switch {
			case s.Type.IsReturn():
				next = e.specRAS.Pop()
			case s.Type.IsCall():
				e.specRAS.Push(s.End())
			}
			if e.DebugPushes != nil {
				e.DebugPushes(Request{Start: e.fetchAddr, Len: s.Len}, true)
			}
			e.ftq.Push(Request{Start: e.fetchAddr, Len: s.Len})
			e.pred.OnPredict(e.fetchAddr)
			e.seqMode = false
			e.fetchAddr = next
		} else {
			if e.MissByAddr != nil {
				e.MissByAddr[e.fetchAddr]++
			}
			// Sequential fetching until the predictor hits again or
			// a misprediction is detected (§3.2). Request up to the
			// end of the current cache line. The episode start is a
			// (partial) stream start: record it in the speculative
			// path once so lookup and update histories stay aligned.
			if !e.seqMode {
				e.pred.OnPredict(e.fetchAddr)
				e.seqMode = true
			}
			lineBytes := isa.Addr(e.fetcher.Hier.ICache.LineBytes())
			lineEnd := (e.fetchAddr/lineBytes + 1) * lineBytes
			n := int(lineEnd-e.fetchAddr) / isa.InstBytes
			if e.DebugPushes != nil {
				e.DebugPushes(Request{Start: e.fetchAddr, Len: n}, false)
			}
			e.ftq.Push(Request{Start: e.fetchAddr, Len: n})
			e.fetchAddr = e.fetchAddr.Plus(n)
		}
	}

	// Instruction cache access: drain the queue through the wide line.
	before := len(out)
	out = e.fetcher.CycleFTQ(e.ftq, out)
	if n := len(out) - before; n > 0 {
		e.stats.Delivered += uint64(n)
		e.stats.DeliveryCycles++
	}
	return out
}

// Redirect implements Engine.
func (e *StreamEngine) Redirect(target isa.Addr, recover bool) {
	e.ftq.Clear()
	e.fetcher.Reset()
	e.fetchAddr = target
	e.seqMode = false
	if recover {
		e.pred.Recover()
		e.specRAS.CopyFrom(e.retRAS)
	}
}

// Commit implements Engine: retired instructions rebuild streams for
// predictor training and maintain the retirement RAS.
func (e *StreamEngine) Commit(c Committed) {
	if c.Branch.IsCall() && c.Taken {
		e.retRAS.Push(c.Addr.Next())
	}
	if c.Branch.IsReturn() && c.Taken {
		e.retRAS.Pop()
	}
	if cl, ok := e.builder.Commit(c.Addr, c.Branch, c.Taken, c.Target, c.Mispredicted); ok {
		if e.DebugValidate != nil {
			e.DebugValidate(cl.Stream)
		}
		e.CommittedStreams++
		if cl.Mispredicted {
			e.MispredictedStreams++
		}
		e.pred.Update(cl.Stream, cl.Mispredicted)
		if cl.HasPartial {
			// Teach the predictor the partial stream too, so the
			// next recovery at its start address hits. Partial
			// streams exist because of a misprediction: admit them
			// to the path table as upgrades.
			e.pred.UpdatePartial(cl.Partial)
		}
	}
}

// FetchStats implements Engine.
func (e *StreamEngine) FetchStats() FetchStats { return e.stats }
