package frontend

import (
	"strings"
	"testing"

	"streamfetch/internal/cache"
	"streamfetch/internal/layout"
	"streamfetch/internal/workload"
)

func testEnv(t *testing.T) BuildEnv {
	t.Helper()
	params, err := workload.ByName("164.gzip")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	prog := workload.Generate(params)
	lay := layout.Baseline(prog)
	return BuildEnv{
		Hier:  cache.NewHierarchy(cache.DefaultHierarchy(8)),
		Image: lay,
		Width: 8,
		Entry: lay.Start(prog.Entry),
	}
}

func TestBuiltinEnginesRegistered(t *testing.T) {
	want := []string{"ev8", "ftb", "streams", "tcache"}
	got := Engines()
	if len(got) < len(want) {
		t.Fatalf("Engines() = %v, want at least %v", got, want)
	}
	// The paper's four engines register first, in presentation order.
	for i, name := range want {
		if got[i] != name {
			t.Errorf("Engines()[%d] = %q, want %q (full list %v)", i, got[i], name, got)
		}
	}
}

func TestNewResolvesAllBuiltins(t *testing.T) {
	env := testEnv(t)
	for _, name := range []string{"ev8", "ftb", "streams", "tcache"} {
		eng, err := New(name, env, nil)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if eng.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, eng.Name())
		}
	}
}

func TestNewUnknownEngine(t *testing.T) {
	_, err := New("no-such-engine", testEnv(t), nil)
	if err == nil {
		t.Fatal("New with unknown name did not error")
	}
	for _, name := range []string{"no-such-engine", "ev8", "streams"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
}

func TestNewRejectsWrongOptionsType(t *testing.T) {
	env := testEnv(t)
	if _, err := New("streams", env, EV8Config{}); err == nil {
		t.Error("streams factory accepted EV8Config options")
	}
	// Both value and pointer forms of the right type are accepted.
	sc := DefaultStreamConfig()
	if _, err := New("streams", env, sc); err != nil {
		t.Errorf("value options rejected: %v", err)
	}
	if _, err := New("streams", env, &sc); err != nil {
		t.Errorf("pointer options rejected: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("streams", func(env BuildEnv, opts any) (Engine, error) { return nil, nil })
}

func TestRegisterRejectsBadArguments(t *testing.T) {
	for _, tc := range []struct {
		name    string
		regName string
		factory Factory
	}{
		{"empty name", "", func(env BuildEnv, opts any) (Engine, error) { return nil, nil }},
		{"nil factory", "custom", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%q, %v) did not panic", tc.regName, tc.factory)
				}
			}()
			Register(tc.regName, tc.factory)
		})
	}
}
