// Package par is the process-wide simulation worker budget. Every bounded
// fan-out in the module — experiment sweeps, sharded session runs — draws
// extra workers from one shared pool of GOMAXPROCS-1 tokens, so nested
// parallelism (a sharded run inside a sweep worker) composes instead of
// multiplying: total concurrency stays at GOMAXPROCS however the fan-outs
// stack.
//
// The calling goroutine always participates in its own work and never
// needs a token, which is what makes nesting deadlock-free: a worker that
// holds a token and opens an inner fan-out still makes progress even when
// the pool is empty.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// pool bundles the token channel with its own saturation counter, so a
// release that fires after SetBudget swapped pools adjusts the old pool's
// counter (and channel), never the new one's.
type pool struct {
	tokens chan struct{}
	inUse  atomic.Int64
}

var (
	mu  sync.Mutex
	cur *pool
)

func init() { SetBudget(runtime.GOMAXPROCS(0) - 1) }

// SetBudget resets the extra-worker pool to n tokens (total parallelism
// n+1 counting the caller). It exists for tests and unusual deployments;
// calling it while work is in flight loses outstanding tokens, so don't.
func SetBudget(n int) {
	if n < 0 {
		n = 0
	}
	p := &pool{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		p.tokens <- struct{}{}
	}
	mu.Lock()
	cur = p
	mu.Unlock()
}

func current() *pool {
	mu.Lock()
	defer mu.Unlock()
	return cur
}

// Budget returns the extra-worker pool capacity: the process runs at most
// Budget()+1 simulation goroutines (the extras plus the free caller).
func Budget() int { return cap(current().tokens) }

// InUse returns how many extra-worker tokens are claimed right now — the
// pool saturation metric. It never exceeds Budget, so total simulation
// concurrency (InUse()+1 counting the token-free caller) never exceeds
// GOMAXPROCS under the default budget.
func InUse() int { return int(current().inUse.Load()) }

// tryAcquire claims one extra-worker token without blocking; the returned
// release func (idempotent) returns it to the pool it came from, so a
// SetBudget between acquire and release never corrupts the new pool.
func tryAcquire() (func(), bool) {
	p := current()
	select {
	case <-p.tokens:
		p.inUse.Add(1)
		var once sync.Once
		return func() {
			once.Do(func() {
				p.inUse.Add(-1)
				p.tokens <- struct{}{}
			})
		}, true
	default:
		return nil, false
	}
}

// TryHold claims one extra-worker token without blocking, for callers that
// hold it across a unit of work longer than one Do fan-out (e.g. a service
// job runner that wants its job goroutine counted against the shared
// budget). The release func is idempotent. Holders must release promptly
// when their work ends; a held token is one fewer worker for every Do in
// the process.
func TryHold() (release func(), ok bool) { return tryAcquire() }

// Do runs f(0..n-1) on the calling goroutine plus however many extra
// workers the shared budget can spare (none when parallel is false).
// Tokens are re-polled as indices are claimed, so a fan-out that starts
// while the pool is momentarily drained still picks up workers freed by
// other fan-outs finishing mid-run. The first error — or context
// cancellation — stops new work from being claimed; in-flight calls
// finish, every worker joins before return (no goroutine leaks), and that
// first error is returned. A panic in f is contained the same way: it
// becomes that call's error (stack attached) instead of unwinding a
// worker goroutine and killing the process.
func Do(ctx context.Context, n int, parallel bool, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	// call guards one f(i) behind a recover barrier: a worker goroutine
	// that panicked would otherwise take the whole process down, and the
	// calling goroutine's panic would leak the spawned workers mid-flight.
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("par: worker panicked: %v\n%s", r, debug.Stack())
			}
		}()
		return f(i)
	}
	var work func()
	// spawn adds one extra worker if the pool can spare a token right
	// now. Every worker (the new one included) re-attempts a spawn per
	// claimed index, so ramp-up is immediate when tokens are free and
	// late-freed tokens are still picked up.
	spawn := func() {
		release, ok := tryAcquire()
		if !ok {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			work()
		}()
	}
	work = func() {
		for !failed.Load() {
			if err := ctx.Err(); err != nil {
				fail(err)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if parallel && i+1 < n {
				spawn()
			}
			if err := call(i); err != nil {
				fail(err)
				return
			}
		}
	}
	work()
	wg.Wait()
	return firstErr
}
