// Package par is the process-wide simulation worker budget. Every bounded
// fan-out in the module — experiment sweeps, sharded session runs — draws
// extra workers from one shared pool of GOMAXPROCS-1 tokens, so nested
// parallelism (a sharded run inside a sweep worker) composes instead of
// multiplying: total concurrency stays at GOMAXPROCS however the fan-outs
// stack.
//
// The calling goroutine always participates in its own work and never
// needs a token, which is what makes nesting deadlock-free: a worker that
// holds a token and opens an inner fan-out still makes progress even when
// the pool is empty.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	mu     sync.Mutex
	tokens chan struct{}
)

func init() { SetBudget(runtime.GOMAXPROCS(0) - 1) }

// SetBudget resets the extra-worker pool to n tokens (total parallelism
// n+1 counting the caller). It exists for tests and unusual deployments;
// calling it while work is in flight loses outstanding tokens, so don't.
func SetBudget(n int) {
	if n < 0 {
		n = 0
	}
	c := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		c <- struct{}{}
	}
	mu.Lock()
	tokens = c
	mu.Unlock()
}

// tryAcquire claims one extra-worker token without blocking.
func tryAcquire() (chan struct{}, bool) {
	mu.Lock()
	c := tokens
	mu.Unlock()
	select {
	case <-c:
		return c, true
	default:
		return nil, false
	}
}

// Do runs f(0..n-1) on the calling goroutine plus however many extra
// workers the shared budget can spare (none when parallel is false).
// Tokens are re-polled as indices are claimed, so a fan-out that starts
// while the pool is momentarily drained still picks up workers freed by
// other fan-outs finishing mid-run. The first error — or context
// cancellation — stops new work from being claimed; in-flight calls
// finish, every worker joins before return (no goroutine leaks), and that
// first error is returned.
func Do(ctx context.Context, n int, parallel bool, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	var work func()
	// spawn adds one extra worker if the pool can spare a token right
	// now. Every worker (the new one included) re-attempts a spawn per
	// claimed index, so ramp-up is immediate when tokens are free and
	// late-freed tokens are still picked up.
	spawn := func() {
		c, ok := tryAcquire()
		if !ok {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { c <- struct{}{} }()
			work()
		}()
	}
	work = func() {
		for !failed.Load() {
			if err := ctx.Err(); err != nil {
				fail(err)
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if parallel && i+1 < n {
				spawn()
			}
			if err := f(i); err != nil {
				fail(err)
				return
			}
		}
	}
	work()
	wg.Wait()
	return firstErr
}
