package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// restoreBudget resets the pool to the default after a test resizes it.
func restoreBudget(t *testing.T) {
	t.Cleanup(func() { SetBudget(runtime.GOMAXPROCS(0) - 1) })
}

// TestDoRunsEverything: all indices run exactly once, serial and parallel.
func TestDoRunsEverything(t *testing.T) {
	restoreBudget(t)
	SetBudget(3)
	for _, parallel := range []bool{false, true} {
		seen := make([]atomic.Int32, 50)
		err := Do(context.Background(), len(seen), parallel, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("parallel=%v: index %d ran %d times", parallel, i, got)
			}
		}
	}
}

// TestDoSharedBudget: concurrency across nested Do calls never exceeds the
// budget plus the one caller — shards inside sweep workers must not
// oversubscribe.
func TestDoSharedBudget(t *testing.T) {
	restoreBudget(t)
	const budget = 2 // caller + 2 extras = 3 concurrent at most
	SetBudget(budget)
	var cur, max atomic.Int32
	enter := func() {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
	}
	err := Do(context.Background(), 4, true, func(i int) error {
		// Each outer worker opens an inner fan-out: the inner calls draw
		// from the same pool, not a fresh one.
		return Do(context.Background(), 4, true, func(j int) error {
			enter()
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > budget+1 {
		t.Fatalf("observed %d concurrent workers, budget allows %d", got, budget+1)
	}
}

// TestDoPicksUpFreedTokens: a fan-out that starts while the pool is
// drained must gain workers once another fan-out returns its tokens,
// instead of running serially for its whole duration.
func TestDoPicksUpFreedTokens(t *testing.T) {
	restoreBudget(t)
	SetBudget(1)
	hold := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Drain the pool: the caller runs one task, the single token
		// holds a worker in the other.
		Do(context.Background(), 2, true, func(i int) error {
			<-hold
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond) // let the first fan-out claim the token

	var cur, max atomic.Int32
	var release sync.Once
	err := Do(context.Background(), 30, true, func(i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		if i == 2 {
			// Free the other fan-out's token mid-run.
			release.Do(func() { close(hold) })
			<-done
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got < 2 {
		t.Fatalf("fan-out never picked up the freed token (max concurrency %d)", got)
	}
}

// TestTryHoldInUse: TryHold/release drive the saturation metric, releases
// are idempotent, and a release outliving a SetBudget adjusts only the
// pool it came from — never the new pool's counter.
func TestTryHoldInUse(t *testing.T) {
	restoreBudget(t)
	SetBudget(2)
	if got := InUse(); got != 0 {
		t.Fatalf("InUse = %d on a fresh pool", got)
	}
	r1, ok := TryHold()
	if !ok || InUse() != 1 {
		t.Fatalf("first hold: ok=%v InUse=%d", ok, InUse())
	}
	r2, ok := TryHold()
	if !ok || InUse() != 2 {
		t.Fatalf("second hold: ok=%v InUse=%d", ok, InUse())
	}
	if _, ok := TryHold(); ok {
		t.Fatal("third hold succeeded beyond the budget")
	}
	r2()
	r2() // idempotent
	if InUse() != 1 {
		t.Fatalf("InUse = %d after one release", InUse())
	}

	// Swap pools while r1 is outstanding: the new pool starts clean, and
	// r1 firing later must not drive its counter negative.
	SetBudget(2)
	if InUse() != 0 {
		t.Fatalf("InUse = %d after SetBudget", InUse())
	}
	r1()
	if InUse() != 0 {
		t.Fatalf("InUse = %d after a stale release; old-pool releases must not corrupt the new pool", InUse())
	}
	if Budget() != 2 {
		t.Fatalf("Budget = %d", Budget())
	}
}

// TestDoFirstError: the first failure stops new work and is returned.
func TestDoFirstError(t *testing.T) {
	restoreBudget(t)
	SetBudget(0) // serial: deterministic claim order
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Do(context.Background(), 100, true, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d tasks after failure at 3", got)
	}
}

// TestDoCancellation: a cancelled context surfaces and stops the fan-out.
func TestDoCancellation(t *testing.T) {
	restoreBudget(t)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := Do(ctx, 1000, true, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == 1000 {
		t.Fatal("cancellation did not stop the fan-out")
	}
}
