// Package isa defines the minimal instruction-set model shared by every
// component of the simulator: addresses, instruction classes, and branch
// types. The model is a fixed-width RISC (4-byte instructions), matching the
// Alpha ISA the paper evaluates on closely enough for front-end studies,
// where only instruction addresses and branch semantics matter.
package isa

import "fmt"

// InstBytes is the size of one instruction in bytes (fixed-width ISA).
const InstBytes = 4

// Addr is a virtual instruction address. Addresses are always multiples of
// InstBytes.
type Addr uint64

// Next returns the address of the sequential successor instruction.
func (a Addr) Next() Addr { return a + InstBytes }

// Plus returns the address n instructions after a.
func (a Addr) Plus(n int) Addr { return a + Addr(n*InstBytes) }

// String formats the address as hex, the conventional notation in
// architecture papers.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Class is the coarse functional class of an instruction. The back-end model
// only needs to distinguish memory operations and branches from plain ALU
// work.
type Class uint8

const (
	// ClassALU is any integer/logic operation with single-cycle latency.
	ClassALU Class = iota
	// ClassLoad reads memory through the data cache.
	ClassLoad
	// ClassStore writes memory through the data cache.
	ClassStore
	// ClassMul is a long-latency integer operation.
	ClassMul
	// ClassBranch is any control-transfer instruction; its BranchType
	// refines the kind.
	ClassBranch
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassMul:
		return "mul"
	case ClassBranch:
		return "branch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// BranchType is the kind of a control-transfer instruction. The next stream
// predictor stores it per stream so it can drive return-address-stack
// management (§3.2 of the paper).
type BranchType uint8

const (
	// BranchNone marks a non-branch instruction.
	BranchNone BranchType = iota
	// BranchCond is a conditional direct branch.
	BranchCond
	// BranchUncond is an unconditional direct jump.
	BranchUncond
	// BranchCall is a direct procedure call (pushes a return address).
	BranchCall
	// BranchReturn is a procedure return (pops the return address stack).
	BranchReturn
	// BranchIndirect is an indirect jump through a register (e.g. a
	// switch table); its target varies dynamically.
	BranchIndirect
	// BranchIndirectCall is an indirect call (pushes a return address and
	// has a dynamic target).
	BranchIndirectCall
)

// String implements fmt.Stringer.
func (b BranchType) String() string {
	switch b {
	case BranchNone:
		return "none"
	case BranchCond:
		return "cond"
	case BranchUncond:
		return "uncond"
	case BranchCall:
		return "call"
	case BranchReturn:
		return "return"
	case BranchIndirect:
		return "indirect"
	case BranchIndirectCall:
		return "indcall"
	default:
		return fmt.Sprintf("branch(%d)", uint8(b))
	}
}

// IsBranch reports whether the type denotes an actual control transfer.
func (b BranchType) IsBranch() bool { return b != BranchNone }

// IsConditional reports whether the branch may fall through.
func (b BranchType) IsConditional() bool { return b == BranchCond }

// IsCall reports whether the branch pushes a return address.
func (b BranchType) IsCall() bool {
	return b == BranchCall || b == BranchIndirectCall
}

// IsReturn reports whether the branch pops a return address.
func (b BranchType) IsReturn() bool { return b == BranchReturn }

// IsIndirect reports whether the target is computed dynamically.
func (b BranchType) IsIndirect() bool {
	return b == BranchIndirect || b == BranchIndirectCall
}

// Inst is one static instruction. Instructions are materialized lazily from
// basic blocks; the simulator mostly moves (Addr, count) pairs around, and
// only branches carry interesting metadata.
type Inst struct {
	// Addr is the instruction's virtual address under the active layout.
	Addr Addr
	// Class is the functional class.
	Class Class
	// Branch is the branch type (BranchNone unless Class==ClassBranch).
	Branch BranchType
}

// IsBranch reports whether the instruction is a control transfer.
func (i Inst) IsBranch() bool { return i.Class == ClassBranch }
