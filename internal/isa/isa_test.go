package isa

import "testing"

func TestAddrArithmetic(t *testing.T) {
	a := Addr(0x1000)
	if a.Next() != 0x1004 {
		t.Fatalf("Next = %v", a.Next())
	}
	if a.Plus(3) != 0x100c {
		t.Fatalf("Plus(3) = %v", a.Plus(3))
	}
	if a.String() != "0x1000" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestBranchTypePredicates(t *testing.T) {
	cases := []struct {
		bt                                  BranchType
		isBranch, cond, call, ret, indirect bool
	}{
		{BranchNone, false, false, false, false, false},
		{BranchCond, true, true, false, false, false},
		{BranchUncond, true, false, false, false, false},
		{BranchCall, true, false, true, false, false},
		{BranchReturn, true, false, false, true, false},
		{BranchIndirect, true, false, false, false, true},
		{BranchIndirectCall, true, false, true, false, true},
	}
	for _, c := range cases {
		if c.bt.IsBranch() != c.isBranch || c.bt.IsConditional() != c.cond ||
			c.bt.IsCall() != c.call || c.bt.IsReturn() != c.ret ||
			c.bt.IsIndirect() != c.indirect {
			t.Errorf("%v predicates wrong", c.bt)
		}
	}
}

func TestStringers(t *testing.T) {
	if BranchCond.String() != "cond" || ClassLoad.String() != "load" {
		t.Fatal("stringer output wrong")
	}
	if BranchType(200).String() == "" || Class(200).String() == "" {
		t.Fatal("unknown values must still render")
	}
}

func TestInstIsBranch(t *testing.T) {
	i := Inst{Class: ClassBranch, Branch: BranchCond}
	if !i.IsBranch() {
		t.Fatal("branch inst not recognized")
	}
	if (Inst{Class: ClassALU}).IsBranch() {
		t.Fatal("ALU inst recognized as branch")
	}
}
