package pipeline

import (
	"sort"

	"streamfetch/internal/ckpt/wire"
	"streamfetch/internal/isa"
)

// Warm-state serialization for the deterministic load address generator.
// The per-PC occurrence counts are the whole of its behavioral state: a
// restored generator replays the exact address sequence a functionally
// warmed one would continue with.

// AppendState appends the generator's state to dst. Overflow entries are
// emitted in sorted key order so equal states encode to equal bytes.
func (g *LoadAddrGen) AppendState(dst []byte) []byte {
	dst = wire.AppendU64(dst, uint64(len(g.counts)))
	for _, c := range g.counts {
		dst = wire.AppendU64(dst, c)
	}
	keys := make([]isa.Addr, 0, len(g.overflow))
	for k := range g.overflow {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	dst = wire.AppendU64(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = wire.AppendU64(dst, uint64(k))
		dst = wire.AppendU64(dst, g.overflow[k])
	}
	return dst
}

// LoadState restores state appended by AppendState into a generator built
// for the same layout. The generator is unmodified on error.
func (g *LoadAddrGen) LoadState(r *wire.Reader) error {
	n := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	if n != uint64(len(g.counts)) {
		return wire.ErrMalformed
	}
	scratch := make([]uint64, n)
	for i := range scratch {
		scratch[i] = r.U64()
	}
	no := r.Len(1 << 24)
	type kv struct {
		k isa.Addr
		v uint64
	}
	ov := make([]kv, no)
	for i := range ov {
		ov[i] = kv{isa.Addr(r.U64()), r.U64()}
	}
	if err := r.Err(); err != nil {
		return err
	}
	copy(g.counts, scratch)
	g.overflow = nil
	if len(ov) > 0 {
		g.overflow = make(map[isa.Addr]uint64, len(ov))
		for _, e := range ov {
			g.overflow[e.k] = e.v
		}
	}
	return nil
}
