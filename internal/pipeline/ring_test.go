package pipeline

import (
	"math/rand"
	"testing"

	"streamfetch/internal/isa"
)

// sliceROB is the pre-ring reference implementation (reslice + append),
// retained here as the behavioral oracle for the ring ROB.
type sliceROB struct {
	buf  []Entry
	size int
}

func (r *sliceROB) Full() bool   { return len(r.buf) >= r.size }
func (r *sliceROB) Len() int     { return len(r.buf) }
func (r *sliceROB) Push(e Entry) { r.buf = append(r.buf, e) }
func (r *sliceROB) Head() *Entry { return &r.buf[0] }
func (r *sliceROB) PopHead() Entry {
	e := r.buf[0]
	r.buf = r.buf[1:]
	return e
}
func (r *sliceROB) SquashAfter(seq uint64) int {
	for i := range r.buf {
		if r.buf[i].Seq > seq {
			n := len(r.buf) - i
			r.buf = r.buf[:i]
			return n
		}
	}
	return 0
}
func (r *sliceROB) Find(seq uint64) *Entry {
	for i := range r.buf {
		if r.buf[i].Seq == seq {
			return &r.buf[i]
		}
	}
	return nil
}
func (r *sliceROB) At(i int) *Entry { return &r.buf[i] }

// TestRingROBEquivalence drives the ring ROB and the slice oracle through
// long random push/pop/squash/find sequences mirroring the simulator's use
// (consecutive sequence numbers, counter rewound to the squash point) and
// requires identical observable behavior at every step.
func TestRingROBEquivalence(t *testing.T) {
	const size = 16
	rng := rand.New(rand.NewSource(42))
	ring := NewROB(size)
	ref := &sliceROB{size: size}
	seq := uint64(0)

	check := func(step int) {
		t.Helper()
		if ring.Len() != ref.Len() || ring.Full() != ref.Full() {
			t.Fatalf("step %d: len/full diverged: ring (%d,%v) ref (%d,%v)",
				step, ring.Len(), ring.Full(), ref.Len(), ref.Full())
		}
		for i := 0; i < ref.Len(); i++ {
			if *ring.At(i) != *ref.At(i) {
				t.Fatalf("step %d: entry %d diverged: ring %+v ref %+v",
					step, i, *ring.At(i), *ref.At(i))
			}
		}
	}

	for step := 0; step < 20000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // push
			if ring.Full() {
				continue
			}
			seq++
			e := Entry{Seq: seq, Addr: isa.Addr(0x10000 + 4*(seq%1024)), DoneCycle: uint64(rng.Intn(100))}
			ring.Push(e)
			ref.Push(e)
		case op < 7: // pop
			if ref.Len() == 0 {
				continue
			}
			if *ring.Head() != *ref.Head() {
				t.Fatalf("step %d: heads diverged", step)
			}
			a, b := ring.PopHead(), ref.PopHead()
			if a != b {
				t.Fatalf("step %d: PopHead %+v vs %+v", step, a, b)
			}
		case op < 8: // squash at a random in-flight (or retired) seq
			if ref.Len() == 0 {
				continue
			}
			at := ref.At(rng.Intn(ref.Len())).Seq
			if na, nb := ring.SquashAfter(at), ref.SquashAfter(at); na != nb {
				t.Fatalf("step %d: SquashAfter(%d) dropped %d vs %d", step, at, na, nb)
			}
			// The driver rewinds its counter to the squash point so
			// sequence numbers stay contiguous.
			seq = at
		case op < 9: // find present and absent seqs
			probe := seq - uint64(rng.Intn(2*size))
			a, b := ring.Find(probe), ref.Find(probe)
			if (a == nil) != (b == nil) {
				t.Fatalf("step %d: Find(%d) presence diverged", step, probe)
			}
			if a != nil && *a != *b {
				t.Fatalf("step %d: Find(%d) %+v vs %+v", step, probe, *a, *b)
			}
		default: // mutate a found entry through the pointer (as sim does)
			if ref.Len() == 0 {
				continue
			}
			at := ref.At(rng.Intn(ref.Len())).Seq
			ring.Find(at).Mispredicted = true
			ref.Find(at).Mispredicted = true
		}
		check(step)
	}
}

// TestRingROBWraps exercises the wrap-around boundary explicitly: fill,
// half-drain, refill repeatedly so head circles the ring several times.
func TestRingROBWraps(t *testing.T) {
	const size = 8
	r := NewROB(size)
	seq := uint64(0)
	for round := 0; round < 5; round++ {
		for !r.Full() {
			seq++
			r.Push(Entry{Seq: seq})
		}
		for i := 0; i < size/2; i++ {
			want := seq - uint64(r.Len()) + 1
			if e := r.PopHead(); e.Seq != want {
				t.Fatalf("round %d: popped seq %d, want %d", round, e.Seq, want)
			}
		}
	}
	// Squash down to two entries across the wrap.
	head := r.Head().Seq
	wantDropped := r.Len() - 2
	if dropped := r.SquashAfter(head + 1); dropped != wantDropped {
		t.Fatalf("squash dropped %d, want %d", dropped, wantDropped)
	}
	if r.Len() != 2 || r.Find(head) == nil || r.Find(head+1) == nil || r.Find(head+2) != nil {
		t.Fatalf("post-squash state wrong: len=%d", r.Len())
	}
}
