package pipeline

import (
	"testing"

	"streamfetch/internal/cache"
	"streamfetch/internal/isa"
)

func TestROBOrderAndSquash(t *testing.T) {
	r := NewROB(8)
	for i := 1; i <= 5; i++ {
		r.Push(Entry{Seq: uint64(i)})
	}
	if r.Len() != 5 {
		t.Fatalf("len = %d", r.Len())
	}
	if n := r.SquashAfter(3); n != 2 {
		t.Fatalf("squashed %d, want 2", n)
	}
	if r.Len() != 3 {
		t.Fatalf("len after squash = %d", r.Len())
	}
	if e := r.PopHead(); e.Seq != 1 {
		t.Fatalf("head seq = %d", e.Seq)
	}
}

func TestROBFind(t *testing.T) {
	r := NewROB(4)
	r.Push(Entry{Seq: 10})
	r.Push(Entry{Seq: 11})
	if e := r.Find(11); e == nil || e.Seq != 11 {
		t.Fatal("Find failed")
	}
	if r.Find(99) != nil {
		t.Fatal("Find invented an entry")
	}
}

func TestROBFull(t *testing.T) {
	r := NewROB(2)
	r.Push(Entry{Seq: 1})
	if r.Full() {
		t.Fatal("full too early")
	}
	r.Push(Entry{Seq: 2})
	if !r.Full() {
		t.Fatal("not full at capacity")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Width: 8}.WithDefaults()
	if c.ROBSize != 128 || c.DecodePenalty == 0 || c.MulLatency == 0 || c.DataWorkingSet == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func TestLoadAddrGenDeterministic(t *testing.T) {
	a := NewLoadAddrGen(1<<20, 0x1000, 1<<12)
	b := NewLoadAddrGen(1<<20, 0x1000, 1<<12)
	for i := 0; i < 100; i++ {
		if a.Next(0x1234) != b.Next(0x1234) {
			t.Fatal("generators diverged")
		}
	}
}

func TestLoadAddrGenWithinSegment(t *testing.T) {
	g := NewLoadAddrGen(1<<18, 0x4000, 8)
	for i := 0; i < 10000; i++ {
		a := g.Next(isa.Addr(0x4000 + 4*(i%7)))
		if a < DataBase || a >= DataBase+(1<<18) {
			t.Fatalf("address %x outside the working set", a)
		}
	}
}

func TestLoadAddrGenLocality(t *testing.T) {
	// The streaming pattern must produce a high D-cache hit rate.
	h := cache.NewHierarchy(cache.DefaultHierarchy(8))
	g := NewLoadAddrGen(1<<20, 0x1000, 32)
	lat := Latency{Hier: h, Gen: g, Mul: 3}
	for i := 0; i < 50000; i++ {
		e := Entry{Addr: isa.Addr(0x1000 + 4*(i%17)), Class: isa.ClassLoad}
		lat.For(&e)
	}
	if mr := h.DCache.Stats().MissRate(); mr > 0.25 {
		t.Fatalf("D-cache miss rate %.2f too high for a streaming workload", mr)
	}
}

func TestLatencyClasses(t *testing.T) {
	h := cache.NewHierarchy(cache.DefaultHierarchy(8))
	lat := Latency{Hier: h, Gen: NewLoadAddrGen(1<<16, 0, 0), Mul: 3}
	if got := lat.For(&Entry{Class: isa.ClassALU}); got != 1 {
		t.Fatalf("ALU latency %d", got)
	}
	if got := lat.For(&Entry{Class: isa.ClassMul}); got != 3 {
		t.Fatalf("Mul latency %d", got)
	}
	if got := lat.For(&Entry{Class: isa.ClassLoad, WrongPath: true}); got != 1 {
		t.Fatalf("wrong-path load latency %d", got)
	}
	if got := lat.For(&Entry{Class: isa.ClassLoad, Addr: 0x100}); got <= 1 {
		t.Fatalf("cold load latency %d, want a miss", got)
	}
}
