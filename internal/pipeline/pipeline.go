// Package pipeline models the processor back-end consuming the front-end's
// fetch stream: an in-order reorder buffer retiring up to the pipe width per
// cycle, per-class execution latencies (loads consult the data cache and
// L2), and branch resolution a pipeline-depth after fetch — the point where
// mispredictions redirect the front-end. The back-end is identical across
// fetch architectures, so IPC differences come from fetch bandwidth and
// prediction accuracy, as in the paper's methodology.
package pipeline

import (
	"streamfetch/internal/cache"
	"streamfetch/internal/isa"
)

// Config parameterizes the back-end.
type Config struct {
	// Width is the pipe width (fetch/issue/retire per cycle).
	Width int
	// Depth is the pipeline depth in stages; a mispredicted branch
	// resolves Depth cycles after it was fetched (Table 2: 16 stages).
	Depth int
	// ROBSize bounds in-flight instructions (0 = 16x width).
	ROBSize int
	// DecodePenalty is the bubble charged by a decode-stage redirect.
	DecodePenalty int
	// MulLatency is the latency of long integer operations.
	MulLatency int
	// DataWorkingSet is the benchmark data footprint driving synthetic
	// load/store addresses.
	DataWorkingSet int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.ROBSize == 0 {
		c.ROBSize = 16 * c.Width
	}
	if c.DecodePenalty == 0 {
		c.DecodePenalty = 4
	}
	if c.MulLatency == 0 {
		c.MulLatency = 3
	}
	if c.DataWorkingSet == 0 {
		c.DataWorkingSet = 1 << 21
	}
	return c
}

// Entry is one in-flight instruction.
type Entry struct {
	Seq    uint64
	Addr   isa.Addr
	Class  isa.Class
	Branch isa.BranchType
	// Architectural truth (correct-path entries only).
	Taken  bool
	Target isa.Addr
	// WrongPath marks instructions fetched past a misprediction.
	WrongPath bool
	// Mispredicted marks the branch whose prediction diverged; Recovery
	// is where fetch must resume.
	Mispredicted bool
	Recovery     isa.Addr

	FetchCycle   uint64
	DoneCycle    uint64
	ResolveCycle uint64
	issued       bool
}

// ROB is a bounded in-order window of Entry backed by a fixed-capacity ring
// buffer: Push, PopHead and SquashAfter never move or reallocate entries,
// so the simulation hot loop is allocation-free. Entries must be pushed
// with consecutive sequence numbers (Push enforces this), which makes
// SquashAfter and Find pure seq-offset arithmetic instead of linear scans.
// The driver maintains the invariant by rewinding its sequence counter to
// the squash point on every wrong-path flush.
type ROB struct {
	buf  []Entry
	head int // index of the oldest entry
	n    int // occupancy
}

// NewROB builds a reorder buffer of the given capacity.
func NewROB(size int) *ROB {
	if size <= 0 {
		panic("pipeline: ROB capacity must be positive")
	}
	return &ROB{buf: make([]Entry, size)}
}

// Cap returns the capacity.
func (r *ROB) Cap() int { return len(r.buf) }

// Full reports whether the window is at capacity.
func (r *ROB) Full() bool { return r.n == len(r.buf) }

// Len returns the occupancy.
func (r *ROB) Len() int { return r.n }

// idx maps the i-th oldest entry to its ring position.
func (r *ROB) idx(i int) int {
	i += r.head
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

// Push appends an entry; callers must check Full. Sequence numbers must be
// consecutive with the current tail — the contiguity that turns Find and
// SquashAfter into O(1) arithmetic.
func (r *ROB) Push(e Entry) {
	if r.Full() {
		panic("pipeline: push to full ROB")
	}
	if r.n > 0 {
		if tail := r.buf[r.idx(r.n-1)].Seq; e.Seq != tail+1 {
			panic("pipeline: non-consecutive seq pushed to ROB")
		}
	}
	r.buf[r.idx(r.n)] = e
	r.n++
}

// Head returns the oldest entry for inspection; callers must check Len.
func (r *ROB) Head() *Entry { return &r.buf[r.head] }

// PopHead retires the oldest entry; callers must check Len.
func (r *ROB) PopHead() Entry {
	e := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return e
}

// SquashAfter drops every entry with Seq > seq (wrong-path flush) and
// returns how many were dropped.
func (r *ROB) SquashAfter(seq uint64) int {
	if r.n == 0 {
		return 0
	}
	headSeq := r.buf[r.head].Seq
	if seq < headSeq {
		n := r.n
		r.n = 0
		return n
	}
	keep := int(seq-headSeq) + 1
	if keep >= r.n {
		return 0
	}
	dropped := r.n - keep
	r.n = keep
	return dropped
}

// At returns the i-th oldest entry (diagnostics); callers must check Len.
func (r *ROB) At(i int) *Entry { return &r.buf[r.idx(i)] }

// Find returns the in-flight entry with the given sequence number, if
// present (used to attach misprediction state at divergence detection).
// Thanks to seq contiguity this is offset arithmetic, not a scan.
func (r *ROB) Find(seq uint64) *Entry {
	if r.n == 0 {
		return nil
	}
	headSeq := r.buf[r.head].Seq
	if seq < headSeq || seq-headSeq >= uint64(r.n) {
		return nil
	}
	return &r.buf[r.idx(int(seq-headSeq))]
}

// LoadAddrGen synthesizes deterministic data addresses for loads and
// stores: each static memory instruction streams through a private hot
// region with occasional jumps across the working set, approximating the
// locality mix of integer codes. Address sequences depend only on the
// committed instruction stream, so every fetch architecture sees identical
// data-cache behaviour.
// Per-instruction counts live in a dense slot-indexed array over the code
// segment (one uint64 per static instruction slot), so the hot path is an
// array load instead of a map access; PCs outside the declared segment fall
// back to a lazily-built overflow map.
type LoadAddrGen struct {
	workingSet uint64
	codeBase   isa.Addr
	counts     []uint64
	overflow   map[isa.Addr]uint64
}

// DataBase is the base virtual address of the synthetic data segment.
const DataBase = uint64(0x1000_0000)

// NewLoadAddrGen builds a generator over a working set of the given bytes,
// for code occupying codeSlots instruction slots starting at codeBase
// (typically layout.CodeBase and Layout.TotalSlots).
func NewLoadAddrGen(workingSet int, codeBase isa.Addr, codeSlots int) *LoadAddrGen {
	ws := uint64(workingSet)
	if ws < 1<<15 {
		ws = 1 << 15
	}
	if codeSlots < 0 {
		codeSlots = 0
	}
	return &LoadAddrGen{
		workingSet: ws,
		codeBase:   codeBase,
		counts:     make([]uint64, codeSlots),
	}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Next returns the data address for the next dynamic execution of the
// memory instruction at pc. Consecutive executions of one static memory
// instruction mostly walk a small private region with a sub-line stride
// (high spatial locality, as integer codes exhibit), with occasional far
// accesses across the working set (pointer chasing).
func (g *LoadAddrGen) Next(pc isa.Addr) uint64 {
	var n uint64
	if s := uint64(pc-g.codeBase) / isa.InstBytes; pc >= g.codeBase && s < uint64(len(g.counts)) {
		n = g.counts[s]
		g.counts[s] = n + 1
	} else {
		if g.overflow == nil {
			g.overflow = make(map[isa.Addr]uint64)
		}
		n = g.overflow[pc]
		g.overflow[pc] = n + 1
	}
	h := mix64(uint64(pc))
	if n%32 == 31 {
		// Occasional far access across the working set.
		return DataBase + (mix64(h^(n*0x9e3779b9))%g.workingSet)&^7
	}
	// Walk a 4KB hot region chosen per static instruction with an
	// 8-byte stride: eight accesses per cache line.
	const region = 4096
	base := (h % (g.workingSet - region)) &^ 63
	return DataBase + base + (n*8)%region
}

// Latency returns the execution latency of one instruction, charging the
// data cache hierarchy for correct-path memory operations.
type Latency struct {
	Hier *cache.Hierarchy
	Gen  *LoadAddrGen
	Mul  int
}

// For computes the latency of entry e in cycles.
func (l *Latency) For(e *Entry) int {
	switch e.Class {
	case isa.ClassLoad:
		if e.WrongPath {
			return 1
		}
		return l.Hier.LoadLatency(isa.Addr(l.Gen.Next(e.Addr)))
	case isa.ClassStore:
		if !e.WrongPath {
			l.Hier.Store(isa.Addr(l.Gen.Next(e.Addr)))
		}
		return 1
	case isa.ClassMul:
		return l.Mul
	default:
		return 1
	}
}
