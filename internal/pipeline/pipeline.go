// Package pipeline models the processor back-end consuming the front-end's
// fetch stream: an in-order reorder buffer retiring up to the pipe width per
// cycle, per-class execution latencies (loads consult the data cache and
// L2), and branch resolution a pipeline-depth after fetch — the point where
// mispredictions redirect the front-end. The back-end is identical across
// fetch architectures, so IPC differences come from fetch bandwidth and
// prediction accuracy, as in the paper's methodology.
package pipeline

import (
	"streamfetch/internal/cache"
	"streamfetch/internal/isa"
)

// Config parameterizes the back-end.
type Config struct {
	// Width is the pipe width (fetch/issue/retire per cycle).
	Width int
	// Depth is the pipeline depth in stages; a mispredicted branch
	// resolves Depth cycles after it was fetched (Table 2: 16 stages).
	Depth int
	// ROBSize bounds in-flight instructions (0 = 16x width).
	ROBSize int
	// DecodePenalty is the bubble charged by a decode-stage redirect.
	DecodePenalty int
	// MulLatency is the latency of long integer operations.
	MulLatency int
	// DataWorkingSet is the benchmark data footprint driving synthetic
	// load/store addresses.
	DataWorkingSet int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.ROBSize == 0 {
		c.ROBSize = 16 * c.Width
	}
	if c.DecodePenalty == 0 {
		c.DecodePenalty = 4
	}
	if c.MulLatency == 0 {
		c.MulLatency = 3
	}
	if c.DataWorkingSet == 0 {
		c.DataWorkingSet = 1 << 21
	}
	return c
}

// Entry is one in-flight instruction.
type Entry struct {
	Seq    uint64
	Addr   isa.Addr
	Class  isa.Class
	Branch isa.BranchType
	// Architectural truth (correct-path entries only).
	Taken  bool
	Target isa.Addr
	// WrongPath marks instructions fetched past a misprediction.
	WrongPath bool
	// Mispredicted marks the branch whose prediction diverged; Recovery
	// is where fetch must resume.
	Mispredicted bool
	Recovery     isa.Addr

	FetchCycle   uint64
	DoneCycle    uint64
	ResolveCycle uint64
	issued       bool
}

// ROB is a bounded in-order window of Entry.
type ROB struct {
	buf  []Entry
	size int
}

// NewROB builds a reorder buffer of the given capacity.
func NewROB(size int) *ROB {
	return &ROB{size: size}
}

// Full reports whether the window is at capacity.
func (r *ROB) Full() bool { return len(r.buf) >= r.size }

// Len returns the occupancy.
func (r *ROB) Len() int { return len(r.buf) }

// Push appends an entry; callers must check Full.
func (r *ROB) Push(e Entry) { r.buf = append(r.buf, e) }

// Head returns the oldest entry for inspection.
func (r *ROB) Head() *Entry { return &r.buf[0] }

// PopHead retires the oldest entry.
func (r *ROB) PopHead() Entry {
	e := r.buf[0]
	r.buf = r.buf[1:]
	return e
}

// SquashAfter drops every entry with Seq > seq (wrong-path flush) and
// returns how many were dropped.
func (r *ROB) SquashAfter(seq uint64) int {
	for i := range r.buf {
		if r.buf[i].Seq > seq {
			n := len(r.buf) - i
			r.buf = r.buf[:i]
			return n
		}
	}
	return 0
}

// Find2 returns the i-th oldest entry (diagnostics).
func (r *ROB) Find2(i int) *Entry { return &r.buf[i] }

// Find returns the in-flight entry with the given sequence number, if
// present (used to attach misprediction state at divergence detection).
func (r *ROB) Find(seq uint64) *Entry {
	for i := range r.buf {
		if r.buf[i].Seq == seq {
			return &r.buf[i]
		}
	}
	return nil
}

// LoadAddrGen synthesizes deterministic data addresses for loads and
// stores: each static memory instruction streams through a private hot
// region with occasional jumps across the working set, approximating the
// locality mix of integer codes. Address sequences depend only on the
// committed instruction stream, so every fetch architecture sees identical
// data-cache behaviour.
type LoadAddrGen struct {
	workingSet uint64
	counts     map[isa.Addr]uint64
}

// DataBase is the base virtual address of the synthetic data segment.
const DataBase = uint64(0x1000_0000)

// NewLoadAddrGen builds a generator over a working set of the given bytes.
func NewLoadAddrGen(workingSet int) *LoadAddrGen {
	ws := uint64(workingSet)
	if ws < 1<<15 {
		ws = 1 << 15
	}
	return &LoadAddrGen{workingSet: ws, counts: make(map[isa.Addr]uint64)}
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Next returns the data address for the next dynamic execution of the
// memory instruction at pc. Consecutive executions of one static memory
// instruction mostly walk a small private region with a sub-line stride
// (high spatial locality, as integer codes exhibit), with occasional far
// accesses across the working set (pointer chasing).
func (g *LoadAddrGen) Next(pc isa.Addr) uint64 {
	n := g.counts[pc]
	g.counts[pc] = n + 1
	h := mix64(uint64(pc))
	if n%32 == 31 {
		// Occasional far access across the working set.
		return DataBase + (mix64(h^(n*0x9e3779b9))%g.workingSet)&^7
	}
	// Walk a 4KB hot region chosen per static instruction with an
	// 8-byte stride: eight accesses per cache line.
	const region = 4096
	base := (h % (g.workingSet - region)) &^ 63
	return DataBase + base + (n*8)%region
}

// Latency returns the execution latency of one instruction, charging the
// data cache hierarchy for correct-path memory operations.
type Latency struct {
	Hier *cache.Hierarchy
	Gen  *LoadAddrGen
	Mul  int
}

// For computes the latency of entry e in cycles.
func (l *Latency) For(e *Entry) int {
	switch e.Class {
	case isa.ClassLoad:
		if e.WrongPath {
			return 1
		}
		return l.Hier.LoadLatency(isa.Addr(l.Gen.Next(e.Addr)))
	case isa.ClassStore:
		if !e.WrongPath {
			l.Hier.Store(isa.Addr(l.Gen.Next(e.Addr)))
		}
		return 1
	case isa.ClassMul:
		return l.Mul
	default:
		return 1
	}
}
