package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.TraceInsts = 60_000
	c.TrainInsts = 20_000
	c.Benchmarks = []string{"164.gzip"}
	return c
}

func TestPrepare(t *testing.T) {
	c := smallConfig()
	benches := Prepare(c)
	if len(benches) != 1 {
		t.Fatalf("prepared %d benches", len(benches))
	}
	b := benches[0]
	if b.Session == nil || b.Prog == nil || b.Base == nil || b.Opt == nil || b.Ref == nil {
		t.Fatal("incomplete bench")
	}
	if err := b.Base.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Opt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepAndHarmonic(t *testing.T) {
	benches := Prepare(smallConfig())
	cells := Sweep(benches, 4, []string{"base", "optimized"},
		[]string{"streams"}, false)
	if len(cells) != 2 {
		t.Fatalf("sweep returned %d cells", len(cells))
	}
	h := HarmonicIPC(cells)
	for _, l := range []string{"base", "optimized"} {
		v := h[[2]string{l, "streams"}]
		if v <= 0 || v > 8 {
			t.Fatalf("%s IPC %v implausible", l, v)
		}
	}
}

func TestUnitSizesShape(t *testing.T) {
	benches := Prepare(smallConfig())
	u := UnitSizes(benches[0].Prog, benches[0].Opt, benches[0].Ref)
	if u.BasicBlock <= 0 || u.Stream <= 0 || u.Trace <= 0 {
		t.Fatalf("zero unit sizes: %+v", u)
	}
	// Table 1's ordering: basic block < trace, basic block < stream.
	if u.BasicBlock >= u.Stream {
		t.Errorf("basic block %.1f not smaller than stream %.1f", u.BasicBlock, u.Stream)
	}
	if u.BasicBlock >= u.Trace {
		t.Errorf("basic block %.1f not smaller than trace %.1f", u.BasicBlock, u.Trace)
	}
}

func TestTable2Renders(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"2bcgskew", "DOLC 12-2-4-10", "64KB", "16 stages"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	benches := Prepare(smallConfig())
	var buf bytes.Buffer
	Table1(&buf, benches)
	if !strings.Contains(buf.String(), "stream") {
		t.Fatalf("Table 1 output: %q", buf.String())
	}
}
