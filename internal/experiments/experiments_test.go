package experiments

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.TraceInsts = 60_000
	c.TrainInsts = 20_000
	c.Benchmarks = []string{"164.gzip"}
	return c
}

func mustPrepare(t *testing.T, c Config) []Bench {
	t.Helper()
	benches, err := Prepare(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	return benches
}

func TestPrepare(t *testing.T) {
	c := smallConfig()
	benches := mustPrepare(t, c)
	if len(benches) != 1 {
		t.Fatalf("prepared %d benches", len(benches))
	}
	b := benches[0]
	if b.Session == nil || b.Prog == nil || b.Base == nil || b.Opt == nil {
		t.Fatal("incomplete bench")
	}
	if err := b.Base.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Opt.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPrepareUnknownBenchmark: failures surface as errors, not panics.
func TestPrepareUnknownBenchmark(t *testing.T) {
	c := smallConfig()
	c.Benchmarks = []string{"999.nope"}
	if _, err := Prepare(context.Background(), c); err == nil {
		t.Fatal("Prepare with unknown benchmark did not error")
	}
}

func TestSweepAndHarmonic(t *testing.T) {
	benches := mustPrepare(t, smallConfig())
	cells, err := Sweep(context.Background(), benches, 4,
		[]string{"base", "optimized"}, []string{"streams"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("sweep returned %d cells", len(cells))
	}
	h := HarmonicIPC(cells)
	for _, l := range []string{"base", "optimized"} {
		v := h[[2]string{l, "streams"}]
		if v <= 0 || v > 8 {
			t.Fatalf("%s IPC %v implausible", l, v)
		}
	}
}

// TestSweepUnknownEngine: a bad engine name is an error from Sweep, not a
// panic inside a worker goroutine.
func TestSweepUnknownEngine(t *testing.T) {
	benches := mustPrepare(t, smallConfig())
	_, err := Sweep(context.Background(), benches, 4,
		[]string{"base"}, []string{"warp-drive"}, true)
	if err == nil {
		t.Fatal("Sweep with unknown engine did not error")
	}
	if !strings.Contains(err.Error(), "warp-drive") {
		t.Errorf("error does not identify the failing job: %v", err)
	}
}

// TestSweepCancellation: cancelling mid-sweep returns the cells completed
// so far with ctx.Err, and the worker pool leaks no goroutines.
func TestSweepCancellation(t *testing.T) {
	c := smallConfig()
	c.TraceInsts = 400_000
	benches := mustPrepare(t, c)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	// Cancel after a short head start so some jobs complete and some are
	// cut off mid-flight.
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	cells, err := Sweep(ctx, benches, 8,
		[]string{"base", "optimized"},
		[]string{"ev8", "ftb", "streams", "tcache"}, true)
	if err == nil {
		t.Skip("sweep finished before cancellation; nothing to assert")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(cells) >= 8 {
		t.Errorf("cancelled sweep returned all %d cells", len(cells))
	}
	for _, cell := range cells {
		if cell.Result == nil {
			t.Fatal("partial sweep returned an incomplete cell")
		}
	}

	// Every worker must have joined: no goroutine leak.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before sweep, %d after", before, runtime.NumGoroutine())
}

func TestUnitSizesShape(t *testing.T) {
	benches := mustPrepare(t, smallConfig())
	src, err := benches[0].Session.Source()
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	u := UnitSizes(benches[0].Opt, src)
	if u.BasicBlock <= 0 || u.Stream <= 0 || u.Trace <= 0 {
		t.Fatalf("zero unit sizes: %+v", u)
	}
	// Table 1's ordering: basic block < trace, basic block < stream.
	if u.BasicBlock >= u.Stream {
		t.Errorf("basic block %.1f not smaller than stream %.1f", u.BasicBlock, u.Stream)
	}
	if u.BasicBlock >= u.Trace {
		t.Errorf("basic block %.1f not smaller than trace %.1f", u.BasicBlock, u.Trace)
	}
}

func TestTable2Renders(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"2bcgskew", "DOLC 12-2-4-10", "64KB", "16 stages"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	benches := mustPrepare(t, smallConfig())
	var buf bytes.Buffer
	if err := Table1(&buf, benches); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stream") {
		t.Fatalf("Table 1 output: %q", buf.String())
	}
}
