// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the fetch-unit comparison (Table 1), the processor setup
// (Table 2), IPC across pipe widths and layouts (Figure 8), per-benchmark
// IPC (Figure 9), and misprediction rate / fetch IPC (Table 3).
//
// Absolute numbers differ from the paper (synthetic workloads, simplified
// back-end); the harness exists to reproduce the *shape*: which engine wins,
// by roughly what factor, and how code layout optimization shifts the
// comparison. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"streamfetch/internal/cfg"
	"streamfetch/internal/core"
	"streamfetch/internal/frontend"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
	"streamfetch/internal/sim"
	"streamfetch/internal/stats"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

// Config scales the experiments.
type Config struct {
	// TraceInsts is the dynamic trace length per benchmark (the paper
	// uses 300M; the default here is laptop-scale).
	TraceInsts uint64
	// TrainInsts is the profiling run length for layout optimization.
	TrainInsts uint64
	// RefSeed and TrainSeed pick the simulated "inputs".
	RefSeed, TrainSeed uint64
	// Benchmarks restricts the suite (nil = all 11).
	Benchmarks []string
	// Parallel runs benchmarks concurrently.
	Parallel bool
}

// DefaultConfig returns a configuration that completes in minutes.
func DefaultConfig() Config {
	return Config{
		TraceInsts: 2_000_000,
		TrainInsts: 2_000_000,
		RefSeed:    99,
		TrainSeed:  7,
		Parallel:   true,
	}
}

// Bench bundles one prepared benchmark: program, layouts and trace.
type Bench struct {
	Name string
	Prog *cfg.Program
	Base *layout.Layout
	Opt  *layout.Layout
	Ref  *trace.Trace
}

// Prepare synthesizes the benchmark set: generate programs, profile with the
// train input, build both layouts, and generate the ref trace.
func Prepare(c Config) []Bench {
	params := workload.Suite()
	if c.Benchmarks != nil {
		var sel []workload.Params
		for _, name := range c.Benchmarks {
			p, err := workload.ByName(name)
			if err != nil {
				panic(err)
			}
			sel = append(sel, p)
		}
		params = sel
	}
	out := make([]Bench, len(params))
	run := func(i int) {
		p := params[i]
		prog := workload.Generate(p)
		prof := trace.CollectProfile(prog, c.TrainSeed, c.TrainInsts)
		out[i] = Bench{
			Name: p.Name,
			Prog: prog,
			Base: layout.Baseline(prog),
			Opt:  layout.Optimized(prog, prof),
			Ref:  trace.Generate(prog, trace.GenConfig{Seed: c.RefSeed, MaxInsts: c.TraceInsts}),
		}
	}
	forEach(len(params), c.Parallel, run)
	return out
}

func forEach(n int, parallel bool, f func(i int)) {
	if !parallel {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	wg.Wait()
}

// Cell is one simulation outcome within a sweep.
type Cell struct {
	Bench  string
	Layout string
	Result sim.Result
}

// Sweep runs every (benchmark, layout, engine) combination at one width.
func Sweep(benches []Bench, width int, layouts []string, engines []sim.EngineKind, parallel bool) []Cell {
	type job struct {
		b      Bench
		layout string
		engine sim.EngineKind
	}
	var jobs []job
	for _, b := range benches {
		for _, l := range layouts {
			for _, e := range engines {
				jobs = append(jobs, job{b, l, e})
			}
		}
	}
	cells := make([]Cell, len(jobs))
	forEach(len(jobs), parallel, func(i int) {
		j := jobs[i]
		lay := j.b.Base
		if j.layout == "optimized" {
			lay = j.b.Opt
		}
		res := sim.Run(lay, j.b.Ref, sim.Config{Width: width, Engine: j.engine})
		cells[i] = Cell{Bench: j.b.Name, Layout: j.layout, Result: res}
	})
	return cells
}

// HarmonicIPC aggregates the harmonic-mean IPC per (layout, engine) over the
// suite, as the paper reports.
func HarmonicIPC(cells []Cell) map[[2]string]float64 {
	group := map[[2]string][]float64{}
	for _, c := range cells {
		k := [2]string{c.Layout, string(c.Result.Engine)}
		group[k] = append(group[k], c.Result.IPC)
	}
	out := map[[2]string]float64{}
	for k, v := range group {
		out[k] = stats.HarmonicMean(v)
	}
	return out
}

// Fig8 runs Figure 8: IPC for 2-, 4- and 8-wide pipelines, base and
// optimized layouts, all four engines, and writes the three sub-figures.
func Fig8(w io.Writer, benches []Bench, c Config) {
	for _, width := range []int{2, 4, 8} {
		fmt.Fprintf(w, "Figure 8: IPC, %d-wide processor (harmonic mean over %d benchmarks)\n",
			width, len(benches))
		cells := Sweep(benches, width, []string{"base", "optimized"}, sim.Kinds(), c.Parallel)
		h := HarmonicIPC(cells)
		fmt.Fprintf(w, "  %-22s %10s %10s\n", "engine", "base", "optimized")
		for _, e := range sim.Kinds() {
			fmt.Fprintf(w, "  %-22s %10.3f %10.3f\n", engineLabel(e),
				h[[2]string{"base", string(e)}], h[[2]string{"optimized", string(e)}])
		}
		fmt.Fprintln(w)
	}
}

// Fig9 runs Figure 9: per-benchmark IPC for the 8-wide processor with
// optimized layouts.
func Fig9(w io.Writer, benches []Bench, c Config) {
	fmt.Fprintln(w, "Figure 9: individual IPC, 8-wide processor, optimized codes")
	cells := Sweep(benches, 8, []string{"optimized"}, sim.Kinds(), c.Parallel)
	byBench := map[string]map[sim.EngineKind]float64{}
	for _, cell := range cells {
		if byBench[cell.Bench] == nil {
			byBench[cell.Bench] = map[sim.EngineKind]float64{}
		}
		byBench[cell.Bench][cell.Result.Engine] = cell.Result.IPC
	}
	names := make([]string, 0, len(byBench))
	for n := range byBench {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "  %-14s %8s %8s %8s %8s\n", "benchmark", "ev8", "ftb", "streams", "tcache")
	perEngine := map[sim.EngineKind][]float64{}
	for _, n := range names {
		fmt.Fprintf(w, "  %-14s %8.3f %8.3f %8.3f %8.3f\n", n,
			byBench[n][sim.EngineEV8], byBench[n][sim.EngineFTB],
			byBench[n][sim.EngineStreams], byBench[n][sim.EngineTraceCache])
		for _, e := range sim.Kinds() {
			perEngine[e] = append(perEngine[e], byBench[n][e])
		}
	}
	fmt.Fprintf(w, "  %-14s %8.3f %8.3f %8.3f %8.3f\n", "Hmean",
		stats.HarmonicMean(perEngine[sim.EngineEV8]), stats.HarmonicMean(perEngine[sim.EngineFTB]),
		stats.HarmonicMean(perEngine[sim.EngineStreams]), stats.HarmonicMean(perEngine[sim.EngineTraceCache]))
}

// Table3 runs Table 3: branch misprediction rate and fetch IPC for the
// 8-wide processor, base and optimized layouts.
func Table3(w io.Writer, benches []Bench, c Config) {
	fmt.Fprintln(w, "Table 3: misprediction rate and fetch IPC, 8-wide processor")
	fmt.Fprintf(w, "  %-22s %23s %23s\n", "", "base", "optimized")
	fmt.Fprintf(w, "  %-22s %10s %12s %10s %12s\n", "engine", "mispred", "fetch IPC", "mispred", "fetch IPC")
	for _, e := range sim.Kinds() {
		row := map[string][2]float64{}
		for _, l := range []string{"base", "optimized"} {
			cells := Sweep(benches, 8, []string{l}, []sim.EngineKind{e}, c.Parallel)
			var mp, fi []float64
			for _, cell := range cells {
				mp = append(mp, cell.Result.MispredRate)
				fi = append(fi, cell.Result.FetchIPC)
			}
			row[l] = [2]float64{stats.Mean(mp), stats.HarmonicMean(fi)}
		}
		fmt.Fprintf(w, "  %-22s %9.2f%% %12.2f %9.2f%% %12.2f\n", engineLabel(e),
			100*row["base"][0], row["base"][1], 100*row["optimized"][0], row["optimized"][1])
	}
}

// Table1 measures the fetch-unit size comparison of Table 1: mean dynamic
// basic block, FTB block, stream, and trace lengths on optimized layouts.
func Table1(w io.Writer, benches []Bench) {
	fmt.Fprintln(w, "Table 1: mean fetch-unit sizes (dynamic, optimized layouts)")
	var bb, st, tr []float64
	for _, b := range benches {
		u := UnitSizes(b.Prog, b.Opt, b.Ref)
		bb = append(bb, u.BasicBlock)
		st = append(st, u.Stream)
		tr = append(tr, u.Trace)
	}
	fmt.Fprintf(w, "  %-22s %10s %10s\n", "unit", "size", "paper")
	fmt.Fprintf(w, "  %-22s %10.1f %10s\n", "basic block", stats.Mean(bb), "5-6")
	fmt.Fprintf(w, "  %-22s %10.1f %10s\n", "trace (16-inst cap)", stats.Mean(tr), "~14")
	fmt.Fprintf(w, "  %-22s %10.1f %10s\n", "stream", stats.Mean(st), "20+")
}

// Units reports the mean dynamic fetch-unit sizes of one benchmark.
type Units struct {
	BasicBlock float64
	Stream     float64
	Trace      float64
}

// UnitSizes computes Table-1 style unit sizes for one benchmark.
func UnitSizes(prog *cfg.Program, lay *layout.Layout, tr *trace.Trace) Units {
	var insts, blocks, streams, traces uint64
	var buf []layout.DynInst
	var curTrace, curTraceCond int
	for i, id := range tr.Blocks {
		next := cfg.NoBlock
		if i+1 < len(tr.Blocks) {
			next = tr.Blocks[i+1]
		}
		buf = lay.AppendDyn(buf[:0], id, next)
		blocks++
		for _, d := range buf {
			insts++
			curTrace++
			taken := d.IsBranch() && d.Taken
			if taken {
				streams++
			}
			if d.Branch == isa.BranchCond {
				curTraceCond++
			}
			if curTrace >= 16 || curTraceCond >= 3 || d.Branch.IsIndirect() || d.Branch.IsReturn() {
				traces++
				curTrace, curTraceCond = 0, 0
			}
		}
	}
	u := Units{}
	if blocks > 0 {
		u.BasicBlock = float64(insts) / float64(blocks)
	}
	if streams > 0 {
		u.Stream = float64(insts) / float64(streams)
	}
	if traces > 0 {
		u.Trace = float64(insts) / float64(traces)
	}
	return u
}

// StreamLengths computes the dynamic stream length distribution of one
// benchmark under a layout (the property study of the authors' stream
// front-end report: streams are long, especially in optimized codes).
func StreamLengths(lay *layout.Layout, tr *trace.Trace) *stats.Histogram {
	h := stats.NewHistogram()
	var buf []layout.DynInst
	run := 0
	for i, id := range tr.Blocks {
		next := cfg.NoBlock
		if i+1 < len(tr.Blocks) {
			next = tr.Blocks[i+1]
		}
		buf = lay.AppendDyn(buf[:0], id, next)
		for _, d := range buf {
			run++
			if d.IsBranch() && d.Taken {
				h.Add(run)
				run = 0
			}
		}
	}
	return h
}

// Distribution prints stream length distributions per benchmark, base vs
// optimized.
func Distribution(w io.Writer, benches []Bench) {
	fmt.Fprintln(w, "Stream length distribution (dynamic)")
	fmt.Fprintf(w, "  %-14s %28s %28s\n", "", "base", "optimized")
	fmt.Fprintf(w, "  %-14s %6s %5s %5s %5s %10s %5s %5s %5s\n", "benchmark",
		"mean", "p50", "p90", "p99", "mean", "p50", "p90", "p99")
	for _, b := range benches {
		hb := StreamLengths(b.Base, b.Ref)
		ho := StreamLengths(b.Opt, b.Ref)
		fmt.Fprintf(w, "  %-14s %6.1f %5d %5d %5d %10.1f %5d %5d %5d\n",
			b.Name,
			hb.Mean(), hb.Percentile(0.5), hb.Percentile(0.9), hb.Percentile(0.99),
			ho.Mean(), ho.Percentile(0.5), ho.Percentile(0.9), ho.Percentile(0.99))
	}
}

// Table2 prints the simulated processor setup.
func Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: processor setup")
	fmt.Fprintln(w, `  FTB architecture + perceptron
    perceptrons             512, 40-bit global + 4096x14-bit local history
    FTB                     2048-entry, 4-way
  EV8 fetch + 2bcgskew
    tables                  4 x 32K-entry, 15-bit history
    BTB                     2048-entry, 4-way
  Stream fetch architecture
    first table             1K-entry, 4-way
    second table            6K-entry, 3-way, DOLC 12-2-4-10
  Trace cache + trace predictor
    first level             1K-entry, 4-way
    second level            4K-entry, 4-way, DOLC 9-4-7-9
    backup BTB              1K-entry, 4-way
    trace cache             32KB, 2-way, selective trace storage
  Common
    pipe width              2, 4, 8 (RAS 8-entry, FTQ 4 entries)
    pipe depth              16 stages
    L1 I-cache              64KB, 2-way, line = 4x width
    L1 D-cache              64KB, 2-way, 64B lines
    L2 (unified)            1MB, 4-way, 15 cycles
    memory                  100 cycles`)
}

// Ablation compares next-stream-predictor design choices on the 8-wide
// optimized configuration: the full cascade, no mispredict upgrades, a
// single address-indexed table, and strict path priority.
func Ablation(w io.Writer, benches []Bench, c Config) {
	fmt.Fprintln(w, "Ablation: next stream predictor design choices (8-wide, optimized)")
	variants := []struct {
		name string
		mut  func(*core.PredictorConfig)
	}{
		{"cascade (default)", nil},
		{"no mispredict upgrade", func(p *core.PredictorConfig) { p.NoUpgrade = true }},
		{"single table", func(p *core.PredictorConfig) { p.NoCascade = true }},
		{"strict path priority", func(p *core.PredictorConfig) { p.AlwaysPathPriority = true }},
	}
	for _, v := range variants {
		var ipc, mp []float64
		for _, b := range benches {
			cfgS := sim.Config{Width: 8, Engine: sim.EngineStreams}
			cfgS.Stream = frontendDefaultStream()
			if v.mut != nil {
				v.mut(&cfgS.Stream.Predictor)
			}
			r := sim.Run(b.Opt, b.Ref, cfgS)
			ipc = append(ipc, r.IPC)
			mp = append(mp, r.MispredRate)
		}
		fmt.Fprintf(w, "  %-24s IPC=%6.3f  mispred=%5.2f%%\n",
			v.name, stats.HarmonicMean(ipc), 100*stats.Mean(mp))
	}
}

func frontendDefaultStream() frontend.StreamConfig {
	return frontend.DefaultStreamConfig()
}

func engineLabel(e sim.EngineKind) string {
	switch e {
	case sim.EngineEV8:
		return "EV8 + 2bcgskew"
	case sim.EngineFTB:
		return "FTB + perceptron"
	case sim.EngineStreams:
		return "Streams"
	case sim.EngineTraceCache:
		return "Tcache + Tpred"
	default:
		return string(e)
	}
}
