// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): the fetch-unit comparison (Table 1), the processor setup
// (Table 2), IPC across pipe widths and layouts (Figure 8), per-benchmark
// IPC (Figure 9), and misprediction rate / fetch IPC (Table 3).
//
// Every experiment is computed as a structured streamfetch.Experiment (the
// XxxData builders) and rendered either as aligned text (the Xxx writer
// functions) or as JSON (cmd/experiments -json). Simulations run through
// streamfetch sessions, so any engine registered in the frontend registry
// shows up in the sweeps by name.
//
// Absolute numbers differ from the paper (synthetic workloads, simplified
// back-end); the harness exists to reproduce the *shape*: which engine wins,
// by roughly what factor, and how code layout optimization shifts the
// comparison. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"streamfetch"
	"streamfetch/internal/cfg"
	"streamfetch/internal/core"
	"streamfetch/internal/frontend"
	"streamfetch/internal/isa"
	"streamfetch/internal/layout"
	"streamfetch/internal/par"
	"streamfetch/internal/stats"
	"streamfetch/internal/trace"
)

// Config scales the experiments.
type Config struct {
	// TraceInsts is the dynamic trace length per benchmark (the paper
	// uses 300M; the default here is laptop-scale).
	TraceInsts uint64
	// TrainInsts is the profiling run length for layout optimization.
	TrainInsts uint64
	// RefSeed and TrainSeed pick the simulated "inputs".
	RefSeed, TrainSeed uint64
	// Benchmarks restricts the suite (nil = all 11).
	Benchmarks []string
	// Engines restricts the fetch engines (nil = every registered
	// engine, the paper's four in a stock build).
	Engines []string
	// Parallel runs benchmarks concurrently.
	Parallel bool
}

// DefaultConfig returns a configuration that completes in minutes.
func DefaultConfig() Config {
	return Config{
		TraceInsts: 2_000_000,
		TrainInsts: 2_000_000,
		RefSeed:    99,
		TrainSeed:  7,
		Parallel:   true,
	}
}

// engines resolves the engine set: the explicit list, or every registered
// engine.
func (c Config) engines() []string {
	if c.Engines != nil {
		return c.Engines
	}
	return frontend.Engines()
}

// Bench bundles one prepared benchmark: the session owning its artifacts,
// plus direct handles on the program and layouts for the analyses that walk
// them (Table 1, stream length distributions). Traces are not materialized;
// analyses pull fresh streaming sources from the session.
type Bench struct {
	Name    string
	Session *streamfetch.Session
	Prog    *cfg.Program
	Base    *layout.Layout
	Opt     *layout.Layout
}

// Prepare synthesizes the benchmark set through streamfetch sessions:
// generate programs, profile with the train input, and build both layouts.
// Preparation runs on a bounded worker pool; the context cancels it, and
// failures (e.g. an unknown benchmark name) are returned, not panicked.
func Prepare(ctx context.Context, c Config) ([]Bench, error) {
	names := c.Benchmarks
	if names == nil {
		names = streamfetch.Benchmarks()
	}
	out := make([]Bench, len(names))
	err := forEach(ctx, len(names), c.Parallel, func(i int) error {
		s := streamfetch.New(names[i],
			streamfetch.WithInstructions(c.TraceInsts),
			streamfetch.WithTrainInstructions(c.TrainInsts),
			streamfetch.WithSeed(c.RefSeed),
			streamfetch.WithTrainSeed(c.TrainSeed),
		)
		prog, err := s.Program()
		if err != nil {
			return err
		}
		base, err := s.Layout("base")
		if err != nil {
			return err
		}
		opt, err := s.Layout("optimized")
		if err != nil {
			return err
		}
		out[i] = Bench{Name: names[i], Session: s, Prog: prog, Base: base, Opt: opt}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// forEach runs f(0..n-1) on the process-wide worker budget (par.Do): the
// calling goroutine plus whatever extra workers the shared pool can spare,
// one goroutine total when parallel is false. Sharded session runs inside
// f draw from the same pool, so shards × sweep workers never oversubscribe
// GOMAXPROCS. The first error (or context cancellation) stops new work
// from being claimed; in-flight calls finish, every worker joins before
// return (no goroutine leaks), and that first error is returned.
func forEach(ctx context.Context, n int, parallel bool, f func(i int) error) error {
	return par.Do(ctx, n, parallel, f)
}

// Cell is one simulation outcome within a sweep.
type Cell struct {
	Bench  string
	Layout string
	Result *streamfetch.Report
}

// Sweep runs every (benchmark, layout, engine) combination at one width on
// a bounded worker pool — streamfetch.RunGrid over the benches' sessions,
// the same grid runner streamfetchd sweep jobs execute. On error or
// cancellation it returns the cells that completed (in job order,
// incomplete cells dropped) together with the first error, so a cancelled
// sweep still yields its partial results.
func Sweep(ctx context.Context, benches []Bench, width int, layouts []string, engines []string, parallel bool) ([]Cell, error) {
	sessions := make([]*streamfetch.Session, len(benches))
	for i := range benches {
		sessions[i] = benches[i].Session
	}
	grid, err := streamfetch.RunGrid(ctx, sessions, []int{width}, layouts, engines, parallel, nil)
	cells := make([]Cell, 0, len(grid))
	for _, g := range grid {
		if g.Report == nil {
			continue
		}
		cells = append(cells, Cell{Bench: g.Benchmark, Layout: g.Layout, Result: g.Report})
	}
	return cells, err
}

// HarmonicIPC aggregates the harmonic-mean IPC per (layout, engine) over the
// suite, as the paper reports.
func HarmonicIPC(cells []Cell) map[[2]string]float64 {
	group := map[[2]string][]float64{}
	for _, c := range cells {
		k := [2]string{c.Layout, c.Result.Engine}
		group[k] = append(group[k], c.Result.IPC)
	}
	out := map[[2]string]float64{}
	for k, v := range group {
		out[k] = stats.HarmonicMean(v)
	}
	return out
}

// Fig8Data computes Figure 8: harmonic-mean IPC for 2-, 4- and 8-wide
// pipelines, base and optimized layouts, every engine — one experiment per
// width.
func Fig8Data(ctx context.Context, benches []Bench, c Config) ([]*streamfetch.Experiment, error) {
	var exps []*streamfetch.Experiment
	for _, width := range []int{2, 4, 8} {
		cells, err := Sweep(ctx, benches, width, []string{"base", "optimized"}, c.engines(), c.Parallel)
		if err != nil {
			return nil, err
		}
		h := HarmonicIPC(cells)
		e := &streamfetch.Experiment{
			Name: fmt.Sprintf("fig8-w%d", width),
			Title: fmt.Sprintf("Figure 8: IPC, %d-wide processor (harmonic mean over %d benchmarks)",
				width, len(benches)),
			RowHeader: "engine",
			Columns:   []string{"base", "optimized"},
		}
		for _, eng := range c.engines() {
			e.AddRow(engineLabel(eng), h[[2]string{"base", eng}], h[[2]string{"optimized", eng}])
		}
		exps = append(exps, e)
	}
	return exps, nil
}

// Fig8 renders Figure 8's three sub-figures as text.
func Fig8(w io.Writer, benches []Bench, c Config) error {
	exps, err := Fig8Data(context.Background(), benches, c)
	if err != nil {
		return err
	}
	for _, e := range exps {
		e.WriteText(w)
		fmt.Fprintln(w)
	}
	return nil
}

// Fig9Data computes Figure 9: per-benchmark IPC for the 8-wide processor
// with optimized layouts, with a harmonic-mean summary row.
func Fig9Data(ctx context.Context, benches []Bench, c Config) (*streamfetch.Experiment, error) {
	engines := c.engines()
	cells, err := Sweep(ctx, benches, 8, []string{"optimized"}, engines, c.Parallel)
	if err != nil {
		return nil, err
	}
	byBench := map[string]map[string]float64{}
	for _, cell := range cells {
		if byBench[cell.Bench] == nil {
			byBench[cell.Bench] = map[string]float64{}
		}
		byBench[cell.Bench][cell.Result.Engine] = cell.Result.IPC
	}
	names := make([]string, 0, len(byBench))
	for n := range byBench {
		names = append(names, n)
	}
	sort.Strings(names)
	e := &streamfetch.Experiment{
		Name:      "fig9",
		Title:     "Figure 9: individual IPC, 8-wide processor, optimized codes",
		RowHeader: "benchmark",
		Columns:   engines,
	}
	perEngine := map[string][]float64{}
	for _, n := range names {
		row := make([]float64, len(engines))
		for j, eng := range engines {
			row[j] = byBench[n][eng]
			perEngine[eng] = append(perEngine[eng], byBench[n][eng])
		}
		e.AddRow(n, row...)
	}
	hmean := make([]float64, len(engines))
	for j, eng := range engines {
		hmean[j] = stats.HarmonicMean(perEngine[eng])
	}
	e.AddSummary("Hmean", hmean...)
	return e, nil
}

// Fig9 renders Figure 9 as text.
func Fig9(w io.Writer, benches []Bench, c Config) error {
	e, err := Fig9Data(context.Background(), benches, c)
	if err != nil {
		return err
	}
	e.WriteText(w)
	return nil
}

// Table3Data computes Table 3: branch misprediction rate and fetch IPC for
// the 8-wide processor, base and optimized layouts. Misprediction rates are
// stored in percent.
func Table3Data(ctx context.Context, benches []Bench, c Config) (*streamfetch.Experiment, error) {
	e := &streamfetch.Experiment{
		Name:      "table3",
		Title:     "Table 3: misprediction rate and fetch IPC, 8-wide processor",
		RowHeader: "engine",
		Columns:   []string{"base mispred", "base fetch IPC", "opt mispred", "opt fetch IPC"},
		Formats:   []string{"%.2f%%", "%.2f", "%.2f%%", "%.2f"},
	}
	for _, eng := range c.engines() {
		row := map[string][2]float64{}
		for _, l := range []string{"base", "optimized"} {
			cells, err := Sweep(ctx, benches, 8, []string{l}, []string{eng}, c.Parallel)
			if err != nil {
				return nil, err
			}
			var mp, fi []float64
			for _, cell := range cells {
				mp = append(mp, cell.Result.MispredRate)
				fi = append(fi, cell.Result.FetchIPC)
			}
			row[l] = [2]float64{stats.Mean(mp), stats.HarmonicMean(fi)}
		}
		e.AddRow(engineLabel(eng),
			100*row["base"][0], row["base"][1], 100*row["optimized"][0], row["optimized"][1])
	}
	return e, nil
}

// Table3 renders Table 3 as text.
func Table3(w io.Writer, benches []Bench, c Config) error {
	e, err := Table3Data(context.Background(), benches, c)
	if err != nil {
		return err
	}
	e.WriteText(w)
	return nil
}

// Table1Data measures the fetch-unit size comparison of Table 1: mean
// dynamic basic block, stream, and trace lengths on optimized layouts,
// alongside the paper's reported ranges. Each benchmark's trace is streamed
// from a fresh session source, never materialized.
func Table1Data(benches []Bench) (*streamfetch.Experiment, error) {
	var bb, st, tr []float64
	for _, b := range benches {
		src, err := b.Session.Source()
		if err != nil {
			return nil, err
		}
		u := UnitSizes(b.Opt, src)
		if err := src.Close(); err != nil {
			return nil, err
		}
		bb = append(bb, u.BasicBlock)
		st = append(st, u.Stream)
		tr = append(tr, u.Trace)
	}
	e := &streamfetch.Experiment{
		Name:      "table1",
		Title:     "Table 1: mean fetch-unit sizes (dynamic, optimized layouts)",
		RowHeader: "unit",
		Columns:   []string{"size", "paper"},
		Formats:   []string{"%.1f"},
	}
	e.Rows = append(e.Rows,
		streamfetch.ExperimentRow{Label: "basic block", Values: []float64{stats.Mean(bb)}, Text: []string{"5-6"}},
		streamfetch.ExperimentRow{Label: "trace (16-inst cap)", Values: []float64{stats.Mean(tr)}, Text: []string{"~14"}},
		streamfetch.ExperimentRow{Label: "stream", Values: []float64{stats.Mean(st)}, Text: []string{"20+"}},
	)
	return e, nil
}

// Table1 renders Table 1 as text.
func Table1(w io.Writer, benches []Bench) error {
	e, err := Table1Data(benches)
	if err != nil {
		return err
	}
	e.WriteText(w)
	return nil
}

// Units reports the mean dynamic fetch-unit sizes of one benchmark.
type Units struct {
	BasicBlock float64
	Stream     float64
	Trace      float64
}

// UnitSizes computes Table-1 style unit sizes for one benchmark, streaming
// the block sequence from src (which it consumes but does not close).
func UnitSizes(lay *layout.Layout, src trace.Source) Units {
	var insts, blocks, streams, traces uint64
	var buf []layout.DynInst
	var curTrace, curTraceCond int
	trace.ForEachPair(src, func(cur, next cfg.BlockID) {
		buf = lay.AppendDyn(buf[:0], cur, next)
		blocks++
		for _, d := range buf {
			insts++
			curTrace++
			taken := d.IsBranch() && d.Taken
			if taken {
				streams++
			}
			if d.Branch == isa.BranchCond {
				curTraceCond++
			}
			if curTrace >= 16 || curTraceCond >= 3 || d.Branch.IsIndirect() || d.Branch.IsReturn() {
				traces++
				curTrace, curTraceCond = 0, 0
			}
		}
	})
	u := Units{}
	if blocks > 0 {
		u.BasicBlock = float64(insts) / float64(blocks)
	}
	if streams > 0 {
		u.Stream = float64(insts) / float64(streams)
	}
	if traces > 0 {
		u.Trace = float64(insts) / float64(traces)
	}
	return u
}

// StreamLengths computes the dynamic stream length distribution of one
// benchmark under a layout (the property study of the authors' stream
// front-end report: streams are long, especially in optimized codes). The
// block sequence streams from src (consumed, not closed).
func StreamLengths(lay *layout.Layout, src trace.Source) *stats.Histogram {
	h := stats.NewHistogram()
	var buf []layout.DynInst
	run := 0
	trace.ForEachPair(src, func(cur, next cfg.BlockID) {
		buf = lay.AppendDyn(buf[:0], cur, next)
		for _, d := range buf {
			run++
			if d.IsBranch() && d.Taken {
				h.Add(run)
				run = 0
			}
		}
	})
	return h
}

// DistributionData computes stream length distributions per benchmark, base
// vs optimized: mean and 50th/90th/99th percentiles.
func DistributionData(benches []Bench) (*streamfetch.Experiment, error) {
	e := &streamfetch.Experiment{
		Name:      "dist",
		Title:     "Stream length distribution (dynamic)",
		RowHeader: "benchmark",
		Columns: []string{"base mean", "base p50", "base p90", "base p99",
			"opt mean", "opt p50", "opt p90", "opt p99"},
		Formats: []string{"%.1f", "%.0f", "%.0f", "%.0f", "%.1f", "%.0f", "%.0f", "%.0f"},
	}
	for _, b := range benches {
		lengths := func(lay *layout.Layout) (*stats.Histogram, error) {
			src, err := b.Session.Source()
			if err != nil {
				return nil, err
			}
			h := StreamLengths(lay, src)
			return h, src.Close()
		}
		hb, err := lengths(b.Base)
		if err != nil {
			return nil, err
		}
		ho, err := lengths(b.Opt)
		if err != nil {
			return nil, err
		}
		e.AddRow(b.Name,
			hb.Mean(), float64(hb.Percentile(0.5)), float64(hb.Percentile(0.9)), float64(hb.Percentile(0.99)),
			ho.Mean(), float64(ho.Percentile(0.5)), float64(ho.Percentile(0.9)), float64(ho.Percentile(0.99)))
	}
	return e, nil
}

// Distribution renders the stream length distributions as text.
func Distribution(w io.Writer, benches []Bench) error {
	e, err := DistributionData(benches)
	if err != nil {
		return err
	}
	e.WriteText(w)
	return nil
}

// table2Setup is the simulated processor setup, one line per parameter.
const table2Setup = `FTB architecture + perceptron
  perceptrons             512, 40-bit global + 4096x14-bit local history
  FTB                     2048-entry, 4-way
EV8 fetch + 2bcgskew
  tables                  4 x 32K-entry, 15-bit history
  BTB                     2048-entry, 4-way
Stream fetch architecture
  first table             1K-entry, 4-way
  second table            6K-entry, 3-way, DOLC 12-2-4-10
Trace cache + trace predictor
  first level             1K-entry, 4-way
  second level            4K-entry, 4-way, DOLC 9-4-7-9
  backup BTB              1K-entry, 4-way
  trace cache             32KB, 2-way, selective trace storage
Common
  pipe width              2, 4, 8 (RAS 8-entry, FTQ 4 entries)
  pipe depth              16 stages
  L1 I-cache              64KB, 2-way, line = 4x width
  L1 D-cache              64KB, 2-way, 64B lines
  L2 (unified)            1MB, 4-way, 15 cycles
  memory                  100 cycles`

// Table2Data returns the simulated processor setup.
func Table2Data() *streamfetch.Experiment {
	return &streamfetch.Experiment{
		Name:  "table2",
		Title: "Table 2: processor setup",
		// Rows stays an empty array, not null, in JSON output.
		Rows:  []streamfetch.ExperimentRow{},
		Notes: strings.Split(table2Setup, "\n"),
	}
}

// Table2 prints the simulated processor setup.
func Table2(w io.Writer) {
	Table2Data().WriteText(w)
}

// AblationData compares next-stream-predictor design choices on the 8-wide
// optimized configuration: the full cascade, no mispredict upgrades, a
// single address-indexed table, and strict path priority. Misprediction
// rates are stored in percent.
func AblationData(ctx context.Context, benches []Bench, c Config) (*streamfetch.Experiment, error) {
	e := &streamfetch.Experiment{
		Name:      "ablation",
		Title:     "Ablation: next stream predictor design choices (8-wide, optimized)",
		RowHeader: "variant",
		Columns:   []string{"IPC", "mispred"},
		Formats:   []string{"%.3f", "%.2f%%"},
	}
	variants := []struct {
		name string
		mut  func(*core.PredictorConfig)
	}{
		{"cascade (default)", nil},
		{"no mispredict upgrade", func(p *core.PredictorConfig) { p.NoUpgrade = true }},
		{"single table", func(p *core.PredictorConfig) { p.NoCascade = true }},
		{"strict path priority", func(p *core.PredictorConfig) { p.AlwaysPathPriority = true }},
	}
	for _, v := range variants {
		variant := v
		ipc := make([]float64, len(benches))
		mp := make([]float64, len(benches))
		err := forEach(ctx, len(benches), c.Parallel, func(i int) error {
			sc := frontend.DefaultStreamConfig()
			if variant.mut != nil {
				variant.mut(&sc.Predictor)
			}
			rep, err := benches[i].Session.RunWith(ctx,
				streamfetch.WithWidth(8),
				streamfetch.WithEngine("streams"),
				streamfetch.WithOptimizedLayout(),
				streamfetch.WithEngineOptions(sc),
			)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", benches[i].Name, variant.name, err)
			}
			ipc[i] = rep.IPC
			mp[i] = rep.MispredRate
			return nil
		})
		if err != nil {
			return nil, err
		}
		e.AddRow(variant.name, stats.HarmonicMean(ipc), 100*stats.Mean(mp))
	}
	return e, nil
}

// Ablation renders the predictor ablation as text.
func Ablation(w io.Writer, benches []Bench, c Config) error {
	e, err := AblationData(context.Background(), benches, c)
	if err != nil {
		return err
	}
	e.WriteText(w)
	return nil
}

func engineLabel(e string) string {
	switch e {
	case "ev8":
		return "EV8 + 2bcgskew"
	case "ftb":
		return "FTB + perceptron"
	case "streams":
		return "Streams"
	case "tcache":
		return "Tcache + Tpred"
	default:
		return e
	}
}
