package layout

import (
	"testing"

	"streamfetch/internal/isa"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

// decodeLayouts builds both layouts of a generated benchmark program, the
// same way sessions do.
func decodeLayouts(t *testing.T) []*Layout {
	t.Helper()
	params, err := workload.ByName("176.gcc")
	if err != nil {
		t.Fatal(err)
	}
	prog := workload.Generate(params)
	prof := trace.CollectProfile(prog, 7, 200_000)
	return []*Layout{Baseline(prog), Optimized(prog, prof)}
}

// TestDecodeTablesMatchOracle differentially checks the flat decode tables
// (BlockAt, InstAt, StaticTarget, FetchAt) against the retained
// binary-search oracle over every instruction address of both layouts,
// plus unmapped addresses on either side of the code segment.
func TestDecodeTablesMatchOracle(t *testing.T) {
	for _, l := range decodeLayouts(t) {
		limit := l.CodeLimit()
		t.Logf("layout %s: %d slots", l.Name, l.TotalSlots())
		for a := CodeBase.Plus(-16); a < limit.Plus(16); a = a.Next() {
			id, slot, ok := l.BlockAt(a)
			oid, oslot, ook := l.blockAtOracle(a)
			if id != oid || slot != oslot || ok != ook {
				t.Fatalf("%s: BlockAt(%v) = (%d,%d,%v), oracle (%d,%d,%v)",
					l.Name, a, id, slot, ok, oid, oslot, ook)
			}
			inst, ok := l.InstAt(a)
			oinst, ook := l.instAtOracle(a)
			if inst != oinst || ok != ook {
				t.Fatalf("%s: InstAt(%v) = (%+v,%v), oracle (%+v,%v)",
					l.Name, a, inst, ok, oinst, ook)
			}
			tgt, ok := l.StaticTarget(a)
			otgt, ook := l.staticTargetOracle(a)
			if tgt != otgt || ok != ook {
				t.Fatalf("%s: StaticTarget(%v) = (%v,%v), oracle (%v,%v)",
					l.Name, a, tgt, ok, otgt, ook)
			}
			fetched := l.FetchAt(a)
			if oinst, ook := l.instAtOracle(a); ook {
				if fetched != oinst {
					t.Fatalf("%s: FetchAt(%v) = %+v, oracle %+v", l.Name, a, fetched, oinst)
				}
			} else if want := (isa.Inst{Addr: a, Class: isa.ClassALU}); fetched != want {
				t.Fatalf("%s: FetchAt(%v) = %+v outside code, want %+v", l.Name, a, fetched, want)
			}
		}
	}
}

// TestDecodeTableTargetsInSegment: every statically-encoded target must be
// a code address (the 0 sentinel in the table can never collide with one).
func TestDecodeTableTargetsInSegment(t *testing.T) {
	for _, l := range decodeLayouts(t) {
		for a := CodeBase; a < l.CodeLimit(); a = a.Next() {
			if tgt, ok := l.StaticTarget(a); ok {
				if tgt < CodeBase || tgt >= l.CodeLimit() {
					t.Fatalf("%s: StaticTarget(%v) = %v outside the code segment",
						l.Name, a, tgt)
				}
			}
		}
	}
}
