package layout

import (
	"testing"

	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
	"streamfetch/internal/trace"
	"streamfetch/internal/workload"
)

func genProgram(t testing.TB, name string) *cfg.Program {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	return workload.Generate(p)
}

func TestBaselineValid(t *testing.T) {
	prog := genProgram(t, "164.gzip")
	l := Baseline(prog)
	if err := l.Validate(); err != nil {
		t.Fatalf("baseline layout invalid: %v", err)
	}
	if l.CodeSize() < prog.StaticInsts()*isa.InstBytes/2 {
		t.Errorf("code size %d implausibly small", l.CodeSize())
	}
}

func TestOptimizedValid(t *testing.T) {
	for _, name := range []string{"164.gzip", "176.gcc", "252.eon"} {
		prog := genProgram(t, name)
		prof := trace.CollectProfile(prog, 42, 200_000)
		l := Optimized(prog, prof)
		if err := l.Validate(); err != nil {
			t.Fatalf("%s: optimized layout invalid: %v", name, err)
		}
		if len(l.Order) != prog.NumBlocks() {
			t.Fatalf("%s: order has %d blocks, want %d", name, len(l.Order), prog.NumBlocks())
		}
	}
}

func TestBlockAtRoundTrip(t *testing.T) {
	prog := genProgram(t, "164.gzip")
	for _, l := range []*Layout{Baseline(prog), Optimized(prog, trace.CollectProfile(prog, 7, 100_000))} {
		for _, id := range l.Order {
			for s := 0; s < l.Slots(id); s++ {
				a := l.Start(id).Plus(s)
				gotID, gotSlot, ok := l.BlockAt(a)
				if !ok {
					t.Fatalf("%s: BlockAt(%v) not found", l.Name, a)
				}
				if gotID != id || gotSlot != s {
					t.Fatalf("%s: BlockAt(%v) = (%d,%d), want (%d,%d)",
						l.Name, a, gotID, gotSlot, id, s)
				}
			}
		}
		if _, _, ok := l.BlockAt(CodeBase - 4); ok {
			t.Error("BlockAt before code base succeeded")
		}
		if _, _, ok := l.BlockAt(l.CodeLimit()); ok {
			t.Error("BlockAt past code limit succeeded")
		}
	}
}

func TestInstAtBranchSlots(t *testing.T) {
	prog := genProgram(t, "164.gzip")
	l := Baseline(prog)
	for _, id := range l.Order {
		b := prog.Blocks[id]
		n := l.Slots(id)
		last, ok := l.InstAt(l.Start(id).Plus(n - 1))
		if !ok {
			t.Fatalf("InstAt end of block %d failed", id)
		}
		switch l.Arrange(id) {
		case ArrAppendJump:
			if last.Branch != isa.BranchUncond {
				t.Fatalf("block %d appended slot branch=%v, want uncond", id, last.Branch)
			}
		case ArrElide:
			if b.NInsts > 1 && last.Branch != isa.BranchNone {
				t.Fatalf("block %d elided but last slot branch=%v", id, last.Branch)
			}
		default:
			if last.Branch != b.Branch {
				t.Fatalf("block %d last slot branch=%v, want %v", id, last.Branch, b.Branch)
			}
		}
	}
}

func TestStaticTargetsResolve(t *testing.T) {
	prog := genProgram(t, "175.vpr")
	l := Baseline(prog)
	checked := 0
	for _, id := range l.Order {
		b := prog.Blocks[id]
		if b.Branch != isa.BranchCond || l.Arrange(id) != ArrAsIs {
			continue
		}
		a := l.Start(id).Plus(l.Slots(id) - 1)
		tgt, ok := l.StaticTarget(a)
		if !ok {
			t.Fatalf("StaticTarget of cond block %d failed", id)
		}
		want := l.Start(b.Succs[l.CondTargetSide(id)].To)
		if tgt != want {
			t.Fatalf("block %d target %v, want %v", id, tgt, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no conditional blocks checked")
	}
}

// TestDynExpansionConsistent replays a trace through AppendDyn and checks the
// chain invariant: each instruction's NextAddr equals the next instruction's
// Addr, and taken flags match layout adjacency.
func TestDynExpansionConsistent(t *testing.T) {
	prog := genProgram(t, "164.gzip")
	tr := trace.Generate(prog, trace.GenConfig{Seed: 99, MaxInsts: 100_000})
	for _, l := range []*Layout{Baseline(prog), Optimized(prog, trace.CollectProfile(prog, 7, 100_000))} {
		var buf []DynInst
		for i, id := range tr.Blocks {
			next := cfg.NoBlock
			if i+1 < len(tr.Blocks) {
				next = tr.Blocks[i+1]
			}
			buf = l.AppendDyn(buf, id, next)
		}
		for i := 0; i+1 < len(buf); i++ {
			if buf[i].NextAddr != buf[i+1].Addr {
				t.Fatalf("%s: inst %d at %v has NextAddr %v but next inst at %v",
					l.Name, i, buf[i].Addr, buf[i].NextAddr, buf[i+1].Addr)
			}
			if buf[i].IsBranch() {
				taken := buf[i].NextAddr != buf[i].Addr.Next()
				if taken != buf[i].Taken && buf[i].NextAddr != buf[i].Addr.Next() {
					t.Fatalf("%s: inst %d taken flag %v inconsistent with flow %v->%v",
						l.Name, i, buf[i].Taken, buf[i].Addr, buf[i].NextAddr)
				}
			} else if buf[i].NextAddr != buf[i].Addr.Next() {
				t.Fatalf("%s: non-branch %d at %v jumps to %v",
					l.Name, i, buf[i].Addr, buf[i].NextAddr)
			}
		}
	}
}

// TestAppendDynRunDifferential: expanding a trace run-at-a-time is
// instruction-for-instruction identical to expanding it block by block,
// for run lengths of one block up to the whole trace, including the
// trailing NoBlock run.
func TestAppendDynRunDifferential(t *testing.T) {
	prog := genProgram(t, "164.gzip")
	tr := trace.Generate(prog, trace.GenConfig{Seed: 99, MaxInsts: 100_000})
	for _, l := range []*Layout{Baseline(prog), Optimized(prog, trace.CollectProfile(prog, 7, 100_000))} {
		var want []DynInst
		for i, id := range tr.Blocks {
			next := cfg.NoBlock
			if i+1 < len(tr.Blocks) {
				next = tr.Blocks[i+1]
			}
			want = l.AppendDyn(want, id, next)
		}
		for _, run := range []int{1, 2, 33, 512, len(tr.Blocks)} {
			var got []DynInst
			for i := 0; i < len(tr.Blocks); i += run {
				end := i + run
				next := cfg.NoBlock
				if end >= len(tr.Blocks) {
					end = len(tr.Blocks)
				} else {
					next = tr.Blocks[end]
				}
				got = l.AppendDynRun(got, tr.Blocks[i:end], next)
			}
			if len(got) != len(want) {
				t.Fatalf("%s run=%d: %d insts, want %d", l.Name, run, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s run=%d: inst %d = %+v, want %+v",
						l.Name, run, i, got[i], want[i])
				}
			}
		}
		if out := l.AppendDynRun(nil, nil, cfg.NoBlock); len(out) != 0 {
			t.Fatalf("%s: AppendDynRun of an empty run emitted %d insts", l.Name, len(out))
		}
	}
}

// TestOptimizedReducesTakenRate is the load-bearing property for the whole
// paper: layout optimization must convert taken branch instances into
// not-taken ones (the paper reports ~80% of conditional instances not taken
// in optimized codes).
func TestOptimizedReducesTakenRate(t *testing.T) {
	for _, name := range []string{"164.gzip", "176.gcc", "300.twolf"} {
		prog := genProgram(t, name)
		prof := trace.CollectProfile(prog, 7, 600_000)
		tr := trace.Generate(prog, trace.GenConfig{Seed: 99, MaxInsts: 600_000})
		base := Baseline(prog)
		opt := Optimized(prog, prof)
		rate := func(l *Layout) (condTaken, streamLen float64) {
			var buf []DynInst
			taken, cond := 0, 0
			allTaken, total := 0, 0
			for i, id := range tr.Blocks {
				next := cfg.NoBlock
				if i+1 < len(tr.Blocks) {
					next = tr.Blocks[i+1]
				}
				buf = l.AppendDyn(buf[:0], id, next)
				total += len(buf)
				for _, d := range buf {
					if d.Branch == isa.BranchCond {
						cond++
						if d.Taken {
							taken++
						}
					}
					if d.IsBranch() && d.Taken {
						allTaken++
					}
				}
			}
			return float64(taken) / float64(cond), float64(total) / float64(allTaken)
		}
		baseCond, baseStream := rate(base)
		optCond, optStream := rate(opt)
		t.Logf("%s: cond taken rate base=%.3f opt=%.3f; mean stream length base=%.1f opt=%.1f",
			name, baseCond, optCond, baseStream, optStream)
		// Streams (taken-to-taken runs) must lengthen under layout
		// optimization; this is the property the stream architecture
		// exploits (paper: streams average 16+ instructions in
		// optimized codes).
		if optStream <= baseStream {
			t.Errorf("%s: optimized stream length %.2f not above base %.2f",
				name, optStream, baseStream)
		}
		// Conditional taken rate must not regress materially.
		if optCond > baseCond+0.03 {
			t.Errorf("%s: optimized cond taken rate %.3f above base %.3f",
				name, optCond, baseCond)
		}
	}
}
