// Package layout assigns code addresses to the basic blocks of a program.
// It implements two layouts, mirroring the paper's methodology:
//
//   - Baseline: blocks in program order (compiler order, no profile).
//   - Optimized: profile-guided greedy chaining in the style of
//     Pettis–Hansen / the Software Trace Cache, standing in for Compaq's
//     spike tool. Hot chains fall through their most likely successor and
//     are packed first; cold code is moved out of the way.
//
// Crucially, taken/not-taken is *derived from layout*: a branch instance is
// taken iff the dynamically following block is not the fall-through block.
// The optimizer therefore converts frequent taken branches into not-taken
// ones, removes unconditional jumps to adjacent blocks, and materializes
// jumps when a chain breaks — exactly the mechanism by which code layout
// optimization lengthens instruction streams.
package layout

import (
	"fmt"
	"sort"

	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
)

// Arrangement describes how a block's terminating control flow is encoded
// under a layout.
type Arrangement uint8

const (
	// ArrAsIs keeps the block's CFG instructions unchanged.
	ArrAsIs Arrangement = iota
	// ArrElide removes a trailing unconditional jump whose target is the
	// layout-adjacent block (layout optimizers delete such jumps).
	ArrElide
	// ArrAppendJump appends an unconditional jump because no successor is
	// layout-adjacent (a broken chain).
	ArrAppendJump
)

// CodeBase is the address of the first instruction.
const CodeBase isa.Addr = 0x0001_0000

// Layout is an address assignment for a program.
type Layout struct {
	Prog *cfg.Program
	// Name is "base" or "optimized".
	Name string
	// Order lists blocks in address order.
	Order []cfg.BlockID

	start []isa.Addr // block start address
	slots []int32    // encoded slot count (NInsts +/- arrangement)
	arr   []Arrangement
	fall  []cfg.BlockID // block placed immediately after (NoBlock for last)
	// condTarget is, for ArrAsIs conditional blocks, the successor index
	// (0 or 1) reached by *taking* the encoded branch; the other side is
	// the fall-through.
	condTarget []int8
	totalSlots int
	im         *image

	// Flat decode tables, built once in build(): dense per-slot arrays over
	// the code segment indexed by (addr-CodeBase)/isa.InstBytes, so the
	// per-instruction lookups on the fetch hot path (InstAt, FetchAt,
	// StaticTarget, BlockAt) are O(1) loads instead of binary searches.
	// slotInst holds the fully materialized instruction (address, class,
	// branch type); slotTarget holds the static taken-path target of the
	// direct branch in that slot (0 = no statically-encoded target — valid
	// as a sentinel because all code addresses are >= CodeBase); slotBlock
	// holds the owning block.
	slotInst   []isa.Inst
	slotTarget []isa.Addr
	slotBlock  []cfg.BlockID
}

// contCalls returns, per block, the call block whose continuation it is
// (NoBlock otherwise).
func contCalls(p *cfg.Program) []cfg.BlockID {
	m := make([]cfg.BlockID, len(p.Blocks))
	for i := range m {
		m[i] = cfg.NoBlock
	}
	for _, b := range p.Blocks {
		if b.Branch == isa.BranchCall || b.Branch == isa.BranchIndirectCall {
			m[b.Cont] = b.ID
		}
	}
	return m
}

// build assigns addresses following order.
func build(p *cfg.Program, name string, order []cfg.BlockID) *Layout {
	if len(order) != len(p.Blocks) {
		panic(fmt.Sprintf("layout: order has %d blocks, program has %d",
			len(order), len(p.Blocks)))
	}
	l := &Layout{
		Prog:       p,
		Name:       name,
		Order:      order,
		start:      make([]isa.Addr, len(p.Blocks)),
		slots:      make([]int32, len(p.Blocks)),
		arr:        make([]Arrangement, len(p.Blocks)),
		fall:       make([]cfg.BlockID, len(p.Blocks)),
		condTarget: make([]int8, len(p.Blocks)),
	}
	// Layout successor relation.
	for i, id := range order {
		if i+1 < len(order) {
			l.fall[id] = order[i+1]
		} else {
			l.fall[id] = cfg.NoBlock
		}
	}
	// Decide arrangements.
	for _, id := range order {
		b := p.Blocks[id]
		next := l.fall[id]
		arrange := ArrAsIs
		slots := int32(b.NInsts)
		switch b.Branch {
		case isa.BranchNone:
			if b.Succs[0].To != next {
				arrange = ArrAppendJump
				slots++
			}
		case isa.BranchUncond:
			if b.Succs[0].To == next {
				arrange = ArrElide
				slots--
			}
		case isa.BranchCond:
			switch {
			case b.Succs[0].To == next:
				l.condTarget[id] = 1
			case b.Succs[1].To == next:
				l.condTarget[id] = 0
			default:
				arrange = ArrAppendJump
				l.condTarget[id] = 1 // encoded branch aims at Succs[1]
				slots++              // appended jump aims at Succs[0]
			}
		case isa.BranchCall, isa.BranchIndirectCall:
			if b.Cont != next {
				panic(fmt.Sprintf("layout %s: call block %d continuation %d not adjacent (next %d)",
					name, id, b.Cont, next))
			}
		}
		if slots < 1 {
			// An elided single-instruction jump block still occupies
			// one slot (a nop); real optimizers would merge it away,
			// but keeping one slot preserves block identity.
			slots = 1
			arrange = ArrAsIs
		}
		l.arr[id] = arrange
		l.slots[id] = slots
	}
	// Assign addresses.
	addr := CodeBase
	for _, id := range order {
		l.start[id] = addr
		addr = addr.Plus(int(l.slots[id]))
		l.totalSlots += int(l.slots[id])
	}
	l.buildTables()
	return l
}

// buildTables populates the flat decode tables from the per-block oracle
// functions (instAtSlot, staticTargetAt), so the table contents are by
// construction identical to what the binary-search path would materialize.
func (l *Layout) buildTables() {
	l.slotInst = make([]isa.Inst, l.totalSlots)
	l.slotTarget = make([]isa.Addr, l.totalSlots)
	l.slotBlock = make([]cfg.BlockID, l.totalSlots)
	s := 0
	for _, id := range l.Order {
		for off := 0; off < int(l.slots[id]); off++ {
			a := CodeBase.Plus(s)
			l.slotBlock[s] = id
			l.slotInst[s] = l.instAtSlot(id, off, a)
			if t, ok := l.staticTargetAt(id, off); ok {
				l.slotTarget[s] = t
			}
			s++
		}
	}
}

// Baseline lays blocks out in program (creation) order, repaired so that
// call continuations stay adjacent to their call sites.
func Baseline(p *cfg.Program) *Layout {
	order := make([]cfg.BlockID, len(p.Blocks))
	for i := range order {
		order[i] = cfg.BlockID(i)
	}
	order = repairCallAdjacency(p, order, contCalls(p))
	return build(p, "base", order)
}

// Optimized lays blocks out with profile-guided Pettis–Hansen chain merging
// (as the Software Trace Cache does): every block starts as its own chain;
// call→continuation pairs merge first (mandatory adjacency); then chainable
// edges merge in descending weight order whenever the source is a chain tail
// and the destination a chain head. Hot chains are emitted first (entry
// chain leading), cold never-executed code last.
func Optimized(p *cfg.Program, prof *cfg.Profile) *Layout {
	n := len(p.Blocks)

	// Chain bookkeeping: chainID per block; chains as block lists.
	chainID := make([]int, n)
	chains := make([][]cfg.BlockID, n)
	for i := 0; i < n; i++ {
		chainID[i] = i
		chains[i] = []cfg.BlockID{cfg.BlockID(i)}
	}
	isTail := func(id cfg.BlockID) bool {
		c := chains[chainID[id]]
		return c[len(c)-1] == id
	}
	isHead := func(id cfg.BlockID) bool {
		return chains[chainID[id]][0] == id
	}
	merge := func(a, b cfg.BlockID) bool {
		ca, cb := chainID[a], chainID[b]
		if ca == cb || !isTail(a) || !isHead(b) {
			return false
		}
		for _, id := range chains[cb] {
			chainID[id] = ca
		}
		chains[ca] = append(chains[ca], chains[cb]...)
		chains[cb] = nil
		return true
	}

	// 1. Mandatory merges: a call's continuation must follow it.
	for _, b := range p.Blocks {
		if b.Branch == isa.BranchCall || b.Branch == isa.BranchIndirectCall {
			if !merge(b.ID, b.Cont) {
				panic(fmt.Sprintf("layout: cannot keep continuation %d after call %d",
					b.Cont, b.ID))
			}
		}
	}

	// 2. Chainable edges (control flow that can be encoded as a
	// fall-through) in descending weight order.
	type wedge struct {
		from, to cfg.BlockID
		w        uint64
	}
	var edges []wedge
	for _, b := range p.Blocks {
		switch b.Branch {
		case isa.BranchNone, isa.BranchUncond, isa.BranchCond:
			for _, e := range b.Succs {
				w := prof.EdgeCount[cfg.EdgeKey{From: b.ID, To: e.To}]
				if w > 0 {
					edges = append(edges, wedge{b.ID, e.To, w})
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w
		}
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		merge(e.from, e.to)
	}
	// Second pass: merge remaining *static* fall-through edges (weight 0)
	// in program order, so code the training run never reached still lays
	// out in structured order instead of degenerating into singleton
	// chains of materialized jumps.
	for _, b := range p.Blocks {
		switch b.Branch {
		case isa.BranchNone, isa.BranchUncond:
			merge(b.ID, b.Succs[0].To)
		case isa.BranchCond:
			merge(b.ID, b.Succs[0].To)
		}
	}

	// 3. Emit chains: the entry chain first, then remaining chains by
	// descending hotness (the hottest block they contain), cold chains
	// (never executed) last in block-ID order for determinism.
	type rankedChain struct {
		id   int
		hot  uint64
		head cfg.BlockID
	}
	var ranked []rankedChain
	for ci, c := range chains {
		if len(c) == 0 {
			continue
		}
		var hot uint64
		for _, id := range c {
			if prof.BlockCount[id] > hot {
				hot = prof.BlockCount[id]
			}
		}
		ranked = append(ranked, rankedChain{ci, hot, c[0]})
	}
	entryChain := chainID[p.Entry]
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].id == entryChain {
			return true
		}
		if ranked[j].id == entryChain {
			return false
		}
		if ranked[i].hot != ranked[j].hot {
			return ranked[i].hot > ranked[j].hot
		}
		return ranked[i].head < ranked[j].head
	})
	order := make([]cfg.BlockID, 0, n)
	for _, rc := range ranked {
		order = append(order, chains[rc.id]...)
	}
	return build(p, "optimized", order)
}

// repairCallAdjacency re-orders blocks minimally so every call block is
// immediately followed by its continuation.
func repairCallAdjacency(p *cfg.Program, order []cfg.BlockID, contOf []cfg.BlockID) []cfg.BlockID {
	out := make([]cfg.BlockID, 0, len(order))
	emitted := make([]bool, len(p.Blocks))
	var emit func(id cfg.BlockID)
	emit = func(id cfg.BlockID) {
		if emitted[id] {
			return
		}
		emitted[id] = true
		out = append(out, id)
		b := p.Blocks[id]
		if b.Branch == isa.BranchCall || b.Branch == isa.BranchIndirectCall {
			emit(b.Cont)
		}
	}
	for _, id := range order {
		// Skip continuations here; they are pulled in by their call.
		if contOf[id] != cfg.NoBlock && !emitted[id] {
			continue
		}
		emit(id)
	}
	// Any continuation whose call was never placed (unreachable code).
	for _, id := range order {
		emit(id)
	}
	return out
}

// Start returns the first instruction address of block id.
func (l *Layout) Start(id cfg.BlockID) isa.Addr { return l.start[id] }

// Slots returns the encoded instruction count of block id under this layout
// (NInsts, plus an appended jump or minus an elided jump).
func (l *Layout) Slots(id cfg.BlockID) int { return int(l.slots[id]) }

// End returns the address one past the last slot of block id.
func (l *Layout) End(id cfg.BlockID) isa.Addr {
	return l.start[id].Plus(int(l.slots[id]))
}

// Arrange returns the arrangement of block id.
func (l *Layout) Arrange(id cfg.BlockID) Arrangement { return l.arr[id] }

// FallThrough returns the block placed immediately after id.
func (l *Layout) FallThrough(id cfg.BlockID) cfg.BlockID { return l.fall[id] }

// CondTargetSide returns which successor index (0/1) the encoded conditional
// branch of block id jumps to when taken.
func (l *Layout) CondTargetSide(id cfg.BlockID) int { return int(l.condTarget[id]) }

// MaxBlockSlots returns the largest per-block slot count in the image: an
// upper bound on the dynamic instructions one execution of any block can
// emit, used to pre-size expansion buffers.
func (l *Layout) MaxBlockSlots() int {
	m := int32(1)
	for _, n := range l.slots {
		if n > m {
			m = n
		}
	}
	return int(m)
}

// CodeSize returns the total code size in bytes under this layout.
func (l *Layout) CodeSize() int { return l.totalSlots * isa.InstBytes }

// TotalSlots returns the total encoded instruction count.
func (l *Layout) TotalSlots() int { return l.totalSlots }

// Validate checks internal invariants (addresses contiguous, call
// continuations adjacent).
func (l *Layout) Validate() error {
	addr := CodeBase
	for _, id := range l.Order {
		if l.start[id] != addr {
			return fmt.Errorf("layout %s: block %d starts at %v, want %v",
				l.Name, id, l.start[id], addr)
		}
		addr = addr.Plus(int(l.slots[id]))
		b := l.Prog.Blocks[id]
		if b.Branch == isa.BranchCall || b.Branch == isa.BranchIndirectCall {
			if l.fall[id] != b.Cont {
				return fmt.Errorf("layout %s: call block %d not followed by continuation %d",
					l.Name, id, b.Cont)
			}
		}
	}
	return nil
}
