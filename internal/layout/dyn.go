// Dynamic expansion: turning the layout-independent block trace into the
// concrete dynamic instruction stream under a layout (addresses, effective
// branch types, taken/not-taken outcomes and targets).
package layout

import (
	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
)

// DynInst is one dynamic (correct-path) instruction.
type DynInst struct {
	// Addr is the instruction address.
	Addr isa.Addr
	// NextAddr is the address of the next dynamic instruction (the
	// architecturally correct successor).
	NextAddr isa.Addr
	// Class is the functional class.
	Class isa.Class
	// Branch is the effective branch type under this layout (an elided
	// jump becomes BranchNone; a materialized jump is BranchUncond).
	Branch isa.BranchType
	// Taken reports whether a branch instruction transferred control
	// away from the fall-through path.
	Taken bool
}

// IsBranch reports whether the dynamic instruction is a control transfer.
func (d DynInst) IsBranch() bool { return d.Branch != isa.BranchNone }

// AppendDyn appends the dynamic instructions of one execution of block id,
// given the dynamically following block next (NoBlock at the end of the
// trace), and returns the extended slice. The expansion accounts for the
// block's arrangement: an appended jump executes only on the fall-through
// side of a conditional, and an elided jump disappears entirely.
func (l *Layout) AppendDyn(buf []DynInst, id, next cfg.BlockID) []DynInst {
	b := l.Prog.Blocks[id]
	start := l.start[id]
	n := int(l.slots[id])
	arr := l.arr[id]

	// Degenerate single-slot elided block behaves like AsIs.
	if arr == ArrElide && b.NInsts == 1 {
		arr = ArrAsIs
	}

	nextStart := isa.Addr(0)
	if next != cfg.NoBlock {
		nextStart = l.start[next]
	}

	// Body slots: everything before the block's own branch slot (if any).
	bodyEnd := n
	hasBranch := b.Branch != isa.BranchNone
	switch arr {
	case ArrElide:
		hasBranch = false
		bodyEnd = n
	case ArrAppendJump:
		if b.Branch == isa.BranchNone {
			hasBranch = false
			bodyEnd = n - 1
		} else {
			bodyEnd = n - 2 // CFG branch at n-2, materialized jump at n-1
		}
	default:
		if hasBranch {
			bodyEnd = n - 1
		}
	}

	a := start
	for s := 0; s < bodyEnd; s++ {
		buf = append(buf, DynInst{
			Addr:     a,
			NextAddr: a.Next(),
			Class:    b.Classes[s],
		})
		a = a.Next()
	}

	switch arr {
	case ArrElide:
		// Fall off the end; fix up the architectural successor of the
		// final body instruction.
		if len(buf) > 0 && next != cfg.NoBlock {
			buf[len(buf)-1].NextAddr = nextStart
		}
		return buf

	case ArrAppendJump:
		if b.Branch == isa.BranchNone {
			// Body then jump to the sole successor.
			buf = append(buf, DynInst{
				Addr:     a,
				NextAddr: nextStart,
				Class:    isa.ClassBranch,
				Branch:   isa.BranchUncond,
				Taken:    true,
			})
			return buf
		}
		// Conditional with both successors remote: the encoded branch
		// aims at Succs[1]; the jump at Succs[0].
		takenSide := next == b.Succs[1].To
		if takenSide {
			buf = append(buf, DynInst{
				Addr:     a,
				NextAddr: nextStart,
				Class:    isa.ClassBranch,
				Branch:   isa.BranchCond,
				Taken:    true,
			})
			return buf
		}
		// Not taken: fall into the materialized jump, then jump.
		buf = append(buf, DynInst{
			Addr:     a,
			NextAddr: a.Next(),
			Class:    isa.ClassBranch,
			Branch:   isa.BranchCond,
			Taken:    false,
		})
		a = a.Next()
		buf = append(buf, DynInst{
			Addr:     a,
			NextAddr: nextStart,
			Class:    isa.ClassBranch,
			Branch:   isa.BranchUncond,
			Taken:    true,
		})
		return buf

	default: // ArrAsIs
		if !hasBranch {
			if len(buf) > 0 && next != cfg.NoBlock {
				buf[len(buf)-1].NextAddr = nextStart
			}
			return buf
		}
		d := DynInst{
			Addr:     a,
			NextAddr: nextStart,
			Class:    isa.ClassBranch,
			Branch:   b.Branch,
		}
		switch b.Branch {
		case isa.BranchCond:
			// Taken iff control went to the encoded target side.
			d.Taken = next == b.Succs[l.condTarget[id]].To
			if !d.Taken {
				d.NextAddr = a.Next()
			}
		default:
			// Unconditional transfers are always taken.
			d.Taken = true
		}
		if next == cfg.NoBlock {
			d.NextAddr = 0
			d.Taken = b.Branch != isa.BranchCond
		}
		buf = append(buf, d)
		return buf
	}
}

// AppendDynRun appends the dynamic instructions of a run of consecutively
// executed blocks: ids[i] is expanded with ids[i+1] as its dynamic
// successor, and next is the block following the whole run (NoBlock at the
// end of the trace). It is the bulk form of AppendDyn — identical
// expansion, one call per batch of blocks — used by the simulator's
// batched supply.
func (l *Layout) AppendDynRun(buf []DynInst, ids []cfg.BlockID, next cfg.BlockID) []DynInst {
	if len(ids) == 0 {
		return buf
	}
	for i := 0; i+1 < len(ids); i++ {
		buf = l.AppendDyn(buf, ids[i], ids[i+1])
	}
	return l.AppendDyn(buf, ids[len(ids)-1], next)
}

// DynLen returns the number of dynamic instructions one execution of block
// id contributes when followed by next.
func (l *Layout) DynLen(id, next cfg.BlockID) int {
	b := l.Prog.Blocks[id]
	n := int(l.slots[id])
	if l.arr[id] == ArrAppendJump && b.Branch == isa.BranchCond && next == b.Succs[1].To {
		return n - 1 // taken side skips the materialized jump
	}
	return n
}
