// Static program image: address → instruction lookup. This is the "static
// basic block dictionary" of the paper's simulator (§4.1), which lets the
// front-end fetch down wrong paths through real code.
//
// The public lookups (BlockAt, InstAt, FetchAt, StaticTarget) are O(1)
// loads from the flat decode tables built in build(); they run once per
// fetched instruction (correct- and wrong-path), so they are the hottest
// functions in the simulator. The sorted-start binary search is retained
// below as the test oracle the tables are differentially checked against.
package layout

import (
	"sort"

	"streamfetch/internal/cfg"
	"streamfetch/internal/isa"
)

// slotOf maps an address to its decode-table slot; ok is false outside the
// code segment.
func (l *Layout) slotOf(a isa.Addr) (int, bool) {
	if a < CodeBase {
		return 0, false
	}
	s := int(a-CodeBase) / isa.InstBytes
	if s >= l.totalSlots {
		return 0, false
	}
	return s, true
}

// BlockAt returns the block containing address a and the slot offset within
// it. ok is false when a is outside the code segment.
func (l *Layout) BlockAt(a isa.Addr) (id cfg.BlockID, slot int, ok bool) {
	s, ok := l.slotOf(a)
	if !ok {
		return cfg.NoBlock, 0, false
	}
	id = l.slotBlock[s]
	return id, int(a-l.start[id]) / isa.InstBytes, true
}

// InstAt returns the static instruction at address a. The front-end uses
// this to fetch down any (possibly wrong) path.
func (l *Layout) InstAt(a isa.Addr) (isa.Inst, bool) {
	s, ok := l.slotOf(a)
	if !ok {
		return isa.Inst{}, false
	}
	return l.slotInst[s], true
}

// FetchAt is the total variant of InstAt used by fetch engines: addresses
// outside the code segment return a synthetic non-branch instruction, the
// way real hardware happily fetches whatever bytes sit at a wrong-path
// address. The misprediction that led there resolves normally and recovery
// redirects fetch back into code.
func (l *Layout) FetchAt(a isa.Addr) isa.Inst {
	if s, ok := l.slotOf(a); ok {
		return l.slotInst[s]
	}
	return isa.Inst{Addr: a, Class: isa.ClassALU}
}

// StaticTarget returns the taken-path target of the direct branch at address
// a, as a decoder would compute from the instruction encoding. ok is false
// for non-branches and for dynamic-target branches (indirect, return).
func (l *Layout) StaticTarget(a isa.Addr) (isa.Addr, bool) {
	s, ok := l.slotOf(a)
	if !ok || l.slotTarget[s] == 0 {
		return 0, false
	}
	return l.slotTarget[s], true
}

// CodeLimit returns the first address past the code segment.
func (l *Layout) CodeLimit() isa.Addr {
	return CodeBase.Plus(l.totalSlots)
}

// instAtSlot materializes the instruction at a given slot of a block; it is
// the source of truth the decode tables are built from.
func (l *Layout) instAtSlot(id cfg.BlockID, slot int, a isa.Addr) isa.Inst {
	b := l.Prog.Blocks[id]
	n := int(l.slots[id])
	switch l.arr[id] {
	case ArrElide:
		// Trailing jump removed: every remaining slot is a body
		// instruction, except the degenerate one-slot case where the
		// block was all jump (kept as a jump).
		if b.NInsts == 1 {
			return isa.Inst{Addr: a, Class: isa.ClassBranch, Branch: b.Branch}
		}
		return isa.Inst{Addr: a, Class: b.Classes[slot]}
	case ArrAppendJump:
		if slot == n-1 {
			return isa.Inst{Addr: a, Class: isa.ClassBranch, Branch: isa.BranchUncond}
		}
		return isa.Inst{Addr: a, Class: b.Classes[slot], Branch: branchAtCFG(b, slot)}
	default: // ArrAsIs
		return isa.Inst{Addr: a, Class: b.Classes[slot], Branch: branchAtCFG(b, slot)}
	}
}

// staticTargetAt computes the statically-encoded taken-path target of the
// instruction at a given slot of a block (the decode-table source of truth).
func (l *Layout) staticTargetAt(id cfg.BlockID, slot int) (isa.Addr, bool) {
	b := l.Prog.Blocks[id]
	n := int(l.slots[id])
	if l.arr[id] == ArrAppendJump && slot == n-1 {
		// The materialized jump always goes to Succs[0] (the side the
		// encoded conditional does not take), or the sole successor of
		// a fall-through block.
		return l.start[b.Succs[0].To], true
	}
	if branchAtCFG(b, slot) == isa.BranchNone && !(l.arr[id] == ArrElide && b.NInsts == 1) {
		return 0, false
	}
	switch b.Branch {
	case isa.BranchCond:
		return l.start[b.Succs[l.condTarget[id]].To], true
	case isa.BranchUncond:
		return l.start[b.Succs[0].To], true
	case isa.BranchCall:
		return l.start[b.Succs[0].To], true
	default:
		return 0, false // indirect/return: target not in the encoding
	}
}

// branchAtCFG returns the branch type if slot is the block's terminating
// branch slot.
func branchAtCFG(b *cfg.Block, slot int) isa.BranchType {
	if b.Branch != isa.BranchNone && slot == b.NInsts-1 {
		return b.Branch
	}
	return isa.BranchNone
}

// --- Binary-search oracle -------------------------------------------------
//
// The pre-table implementation, retained solely so tests can differentially
// verify the flat decode tables against an independent lookup path.

// image caches the sorted block starts for address lookup; built lazily.
type image struct {
	starts []isa.Addr    // ascending block start addresses
	ids    []cfg.BlockID // block at starts[i]
}

func (l *Layout) img() *image {
	if l.im == nil {
		im := &image{
			starts: make([]isa.Addr, len(l.Order)),
			ids:    make([]cfg.BlockID, len(l.Order)),
		}
		for i, id := range l.Order {
			im.starts[i] = l.start[id]
			im.ids[i] = id
		}
		l.im = im
	}
	return l.im
}

// blockAtOracle is the binary-search BlockAt (test oracle).
func (l *Layout) blockAtOracle(a isa.Addr) (id cfg.BlockID, slot int, ok bool) {
	im := l.img()
	if len(im.starts) == 0 || a < im.starts[0] {
		return cfg.NoBlock, 0, false
	}
	// Find the last start <= a.
	i := sort.Search(len(im.starts), func(i int) bool { return im.starts[i] > a }) - 1
	id = im.ids[i]
	off := int(a-im.starts[i]) / isa.InstBytes
	if off >= int(l.slots[id]) {
		return cfg.NoBlock, 0, false // past the end of the code segment
	}
	return id, off, true
}

// instAtOracle is the binary-search InstAt (test oracle).
func (l *Layout) instAtOracle(a isa.Addr) (isa.Inst, bool) {
	id, slot, ok := l.blockAtOracle(a)
	if !ok {
		return isa.Inst{}, false
	}
	return l.instAtSlot(id, slot, a), true
}

// staticTargetOracle is the binary-search StaticTarget (test oracle).
func (l *Layout) staticTargetOracle(a isa.Addr) (isa.Addr, bool) {
	id, slot, ok := l.blockAtOracle(a)
	if !ok {
		return 0, false
	}
	return l.staticTargetAt(id, slot)
}
