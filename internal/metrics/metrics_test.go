package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Requests served.", L("code", "200"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotone
	g := r.Gauge("app_queue_depth", "Jobs queued.")
	g.Set(7)
	r.GaugeFunc("app_workers", "Worker count.", func() float64 { return 3 })

	out := render(t, r)
	for _, want := range []string{
		"# HELP app_requests_total Requests served.\n",
		"# TYPE app_requests_total counter\n",
		`app_requests_total{code="200"} 3` + "\n",
		"# TYPE app_queue_depth gauge\n",
		"app_queue_depth 7\n",
		"app_workers 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1, 10}, L("stage", "measure"))
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`app_latency_seconds_bucket{stage="measure",le="0.1"} 2`,
		`app_latency_seconds_bucket{stage="measure",le="1"} 3`,
		`app_latency_seconds_bucket{stage="measure",le="10"} 4`,
		`app_latency_seconds_bucket{stage="measure",le="+Inf"} 5`,
		`app_latency_seconds_sum{stage="measure"} 55.65`,
		`app_latency_seconds_count{stage="measure"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE app_latency_seconds histogram") != 1 {
		t.Errorf("want exactly one TYPE line:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("app_info", "Info.", L("path", `C:\x "q"`+"\n")).Set(1)
	out := render(t, r)
	want := `app_info{path="C:\\x \"q\"\n"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q:\n%s", want, out)
	}
}

func TestSameSeriesReturned(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("app_total", "")
	b := r.Counter("app_total", "")
	a.Inc()
	b.Inc()
	out := render(t, r)
	if !strings.Contains(out, "app_total 2\n") {
		t.Errorf("series not shared:\n%s", out)
	}
	if strings.Contains(out, "# HELP app_total") {
		t.Errorf("empty help must not emit a HELP line:\n%s", out)
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []func(){
		func() { r.Counter("9bad", "") },
		func() { r.Counter("has space", "") },
		func() { r.Gauge("ok_name", "", L("0bad", "v")) },
		func() { r.Gauge("ok_name2", "", L("", "v")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("invalid name did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_x", "")
	defer func() {
		if recover() == nil {
			t.Errorf("type conflict did not panic")
		}
	}()
	r.Gauge("app_x", "")
}

func TestSpecialValues(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("app_inf", "", func() float64 { return math.Inf(1) })
	out := render(t, r)
	if !strings.Contains(out, "app_inf +Inf\n") {
		t.Errorf("missing +Inf rendering:\n%s", out)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_n_total", "")
	h := r.Histogram("app_h_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	out := render(t, r)
	for _, want := range []string{
		"app_n_total 8000\n",
		`app_h_seconds_bucket{le="1"} 8000`,
		"app_h_seconds_count 8000\n",
		"app_h_seconds_sum 4000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
