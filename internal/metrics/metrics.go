// Package metrics is a dependency-free Prometheus text-exposition
// registry: counters, gauges, histograms and scrape-time callback
// variants, rendered in exposition format 0.0.4 by WriteText.
//
// It exists so streamfetchd can serve GET /metrics without pulling a
// client library into a simulator repo. Only the features the daemon
// needs are implemented — no summaries, no timestamps, no exemplars —
// but what is emitted is strictly valid: families are grouped under one
// HELP/TYPE pair, label values are escaped, histogram buckets are
// cumulative and end with +Inf, and _sum/_count agree with the
// observations.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair on a series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Registry holds metric families and renders them. The zero value is not
// usable; build with NewRegistry. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name   string
	help   string
	typ    metricType
	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// series is one labeled instance within a family. Exactly one of the
// value fields is active, per the family type.
type series struct {
	labels []Label
	bits   atomic.Uint64 // float64 bits for counter/gauge
	fn     func() float64
	hist   *histogram
}

type histogram struct {
	bounds []float64       // ascending upper bounds, +Inf excluded
	counts []atomic.Uint64 // one per bound, plus one trailing for +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) family(name, help string, typ metricType) *family {
	if !validName(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic("metrics: " + name + " re-registered as a different type")
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, byKey: map[string]*series{}}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func labelKey(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

func (f *family) seriesFor(labels []Label, mk func() *series) *series {
	for _, l := range labels {
		if !validName(l.Name) {
			panic("metrics: invalid label name " + strconv.Quote(l.Name))
		}
	}
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := mk()
	s.labels = append([]Label(nil), labels...)
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter is a monotonically increasing value.
type Counter struct{ s *series }

// Counter registers (or retrieves) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, typeCounter)
	return &Counter{f.seriesFor(labels, func() *series { return &series{} })}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.s.bits, v)
}

// CounterFunc registers a counter whose value is read at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, typeCounter)
	f.seriesFor(labels, func() *series { return &series{fn: fn} })
}

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Gauge registers (or retrieves) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, typeGauge)
	return &Gauge{f.seriesFor(labels, func() *series { return &series{} })}
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add adjusts by v.
func (g *Gauge) Add(v float64) { addFloat(&g.s.bits, v) }

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, typeGauge)
	f.seriesFor(labels, func() *series { return &series{fn: fn} })
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct{ h *histogram }

// Histogram registers (or retrieves) a histogram series with the given
// ascending upper bounds (+Inf is implicit and must not be passed).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("metrics: histogram bounds for " + name + " are not sorted")
	}
	f := r.family(name, help, typeHistogram)
	s := f.seriesFor(labels, func() *series {
		return &series{hist: &histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}}
	})
	return &Histogram{s.hist}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.h.bounds, v) // first bound >= v
	h.h.counts[i].Add(1)
	h.h.count.Add(1)
	addFloat(&h.h.sum, v)
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// WriteText renders every family in Prometheus exposition format 0.0.4.
// ContentType is the value to serve it under.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText writes the full exposition to w.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) render(b *strings.Builder) {
	f.mu.Lock()
	series := append([]*series(nil), f.series...)
	f.mu.Unlock()
	if len(series) == 0 {
		return
	}
	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, s := range series {
		switch f.typ {
		case typeHistogram:
			s.renderHistogram(b, f.name)
		default:
			v := math.Float64frombits(s.bits.Load())
			if s.fn != nil {
				v = s.fn()
			}
			b.WriteString(f.name)
			writeLabels(b, s.labels, "")
			b.WriteByte(' ')
			b.WriteString(formatValue(v))
			b.WriteByte('\n')
		}
	}
}

func (s *series) renderHistogram(b *strings.Builder, name string) {
	h := s.hist
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b.WriteString(name)
		b.WriteString("_bucket")
		writeLabels(b, s.labels, formatValue(bound))
		fmt.Fprintf(b, " %d\n", cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	b.WriteString(name)
	b.WriteString("_bucket")
	writeLabels(b, s.labels, "+Inf")
	fmt.Fprintf(b, " %d\n", cum)
	b.WriteString(name)
	b.WriteString("_sum")
	writeLabels(b, s.labels, "")
	b.WriteByte(' ')
	b.WriteString(formatValue(math.Float64frombits(h.sum.Load())))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	writeLabels(b, s.labels, "")
	fmt.Fprintf(b, " %d\n", h.count.Load())
}

// writeLabels renders {a="b",...}; le, when non-empty, is appended as the
// histogram bucket bound.
func writeLabels(b *strings.Builder, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
