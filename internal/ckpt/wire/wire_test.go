package wire

import (
	"bytes"
	"testing"
)

// TestRoundTrip: every primitive encodes and decodes back to itself, in
// sequence, with Done confirming full consumption.
func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU64(b, 0)
	b = AppendU64(b, ^uint64(0))
	b = AppendU64(b, 0x0123_4567_89ab_cdef)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendByte(b, 0x7f)
	b = AppendBytes(b, nil)
	b = AppendBytes(b, []byte{1, 2, 3})
	b = AppendString(b, "streams")

	r := NewReader(b)
	for i, want := range []uint64{0, ^uint64(0), 0x0123_4567_89ab_cdef} {
		if got := r.U64(); got != want {
			t.Fatalf("u64 #%d = %#x, want %#x", i, got, want)
		}
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools did not round-trip")
	}
	if got := r.Byte(); got != 0x7f {
		t.Fatalf("byte = %#x, want 0x7f", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("empty bytes decoded as %v", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", got)
	}
	if got := r.String(); got != "streams" {
		t.Fatalf("string = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done after full read: %v", err)
	}
}

// TestTruncation: decoding any strict prefix of a valid encoding reports
// an error (from the failing read or from Done) and never panics.
func TestTruncation(t *testing.T) {
	var b []byte
	b = AppendU64(b, 42)
	b = AppendString(b, "engine")
	b = AppendBytes(b, []byte{9, 8, 7, 6})
	for n := 0; n < len(b); n++ {
		r := NewReader(b[:n])
		r.U64()
		_ = r.String()
		r.Bytes()
		if r.Err() == nil && r.Done() == nil {
			t.Fatalf("prefix of %d/%d bytes decoded cleanly", n, len(b))
		}
	}
}

// TestTrailingBytes: Done rejects an encoding with unread bytes left.
func TestTrailingBytes(t *testing.T) {
	b := AppendU64(nil, 1)
	b = append(b, 0xee)
	r := NewReader(b)
	r.U64()
	if err := r.Done(); err == nil {
		t.Fatal("Done accepted trailing bytes")
	}
}

// TestStickyError: after a failed read every further read returns zero
// values and the first error is preserved.
func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if got := r.U64(); got != 0 {
		t.Fatalf("truncated u64 = %d, want 0", got)
	}
	first := r.Err()
	if first == nil {
		t.Fatal("truncated read reported no error")
	}
	if got := r.Bytes(); got != nil {
		t.Fatalf("read after error = %v, want nil", got)
	}
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

// TestLenGuard: Len rejects lengths above the caller's bound and lengths
// exceeding the remaining input, so corrupt headers cannot drive huge
// allocations.
func TestLenGuard(t *testing.T) {
	b := AppendU64(nil, 1_000_000)
	r := NewReader(b)
	if n := r.Len(64); n != 0 || r.Err() == nil {
		t.Fatalf("Len(64) on length 1e6 = %d, err %v", n, r.Err())
	}
	r = NewReader(AppendU64(nil, 16))
	if n := r.Len(1 << 20); n != 0 || r.Err() == nil {
		t.Fatalf("Len beyond remaining input = %d, err %v", n, r.Err())
	}
}

// TestBytesLengthGuard: a length prefix larger than the remaining input
// is an error, not a panic or short read.
func TestBytesLengthGuard(t *testing.T) {
	b := AppendU64(nil, 1<<40)
	b = append(b, 1, 2, 3)
	r := NewReader(b)
	if got := r.Bytes(); got != nil || r.Err() == nil {
		t.Fatalf("oversized Bytes = %v, err %v", got, r.Err())
	}
}
