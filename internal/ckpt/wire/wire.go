// Package wire is the binary codec underneath warm-state checkpoints.
//
// It is deliberately a leaf package with no imports from the simulator so
// that every stateful component (caches, predictor tables, trace-cache
// storage, the load address generator) can expose Append/Load methods
// without creating import cycles. The encoding is fixed-width
// little-endian: simple, allocation-conscious on the append side, and —
// critically for the checkpoint-as-cache contract — impossible to make
// panic on hostile input. A torn or corrupt snapshot must decode into a
// clean error, never a crash.
package wire

import (
	"encoding/binary"
	"errors"
)

// ErrTruncated is reported when a reader runs past the end of its buffer.
var ErrTruncated = errors.New("wire: truncated input")

// ErrMalformed is reported for structurally invalid input, e.g. a length
// prefix that exceeds the bytes remaining.
var ErrMalformed = errors.New("wire: malformed input")

// AppendU64 appends v in little-endian order.
func AppendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendBool appends b as a single byte.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendByte appends a single raw byte.
func AppendByte(dst []byte, b byte) []byte { return append(dst, b) }

// AppendBytes appends a u64 length prefix followed by the raw bytes.
func AppendBytes(dst []byte, b []byte) []byte {
	dst = AppendU64(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends s with a u64 length prefix.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU64(dst, uint64(len(s)))
	return append(dst, s...)
}

// Reader decodes a buffer written with the Append functions. Errors are
// sticky: after the first short or malformed read every subsequent call
// returns a zero value, so decode loops can defer the single error check
// to the end.
type Reader struct {
	b   []byte
	pos int
	err error
}

// NewReader wraps b for decoding. The reader aliases b; callers must not
// mutate it mid-decode.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// U64 decodes a little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.b) {
		r.err = ErrTruncated
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

// Bool decodes a single byte as a bool. Any nonzero byte is true.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.b) {
		r.err = ErrTruncated
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

// Bytes decodes a length-prefixed byte slice. The result aliases the
// reader's buffer; callers that retain it must copy.
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.pos) {
		r.err = ErrMalformed
		return nil
	}
	v := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return v
}

// String decodes a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Len decodes a u64 and validates it against max — and against the bytes
// remaining, since every element of the loop it gates consumes at least
// one — for use as a slice length before a decode loop. Invalid values
// poison the reader, which bounds memory and iteration on corrupt input.
func (r *Reader) Len(max int) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(max) || n > uint64(len(r.b)-r.pos) {
		r.err = ErrMalformed
		return 0
	}
	return int(n)
}

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Done returns the first error encountered, or ErrMalformed if undecoded
// bytes remain. Call it after the last field of a fixed-shape decode.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.b) {
		return ErrMalformed
	}
	return nil
}
