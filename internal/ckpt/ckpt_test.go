package ckpt

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"streamfetch/internal/cache"
	"streamfetch/internal/isa"
	"streamfetch/internal/pipeline"
)

// testHier is a deliberately small hierarchy: the corruption tests
// below are quadratic in blob size (a decode per flipped byte), so the
// paper-scale default geometry would make them crawl.
func testHier() cache.HierarchyConfig {
	cfg := cache.DefaultHierarchy(8)
	cfg.ICache.SizeBytes = 4 << 10
	cfg.DCache.SizeBytes = 4 << 10
	cfg.L2.SizeBytes = 16 << 10
	return cfg
}

func testComponents() (*cache.Hierarchy, *pipeline.LoadAddrGen) {
	hier := cache.NewHierarchy(testHier())
	gen := pipeline.NewLoadAddrGen(1<<16, 0x1000, 4096)
	// Touch both so the snapshot carries non-trivial state.
	for a := isa.Addr(0); a < 1<<14; a += 64 {
		hier.ICache.Access(0x1000 + a)
		hier.DCache.Access(0x80_0000 + a)
	}
	for i := 0; i < 500; i++ {
		gen.Next(0x1000 + 4*isa.Addr(i%37))
	}
	return hier, gen
}

// TestRoundTrip: Encode → Decode → Apply restores a fresh hierarchy and
// generator to produce the same subsequent behaviour as the originals.
func TestRoundTrip(t *testing.T) {
	hier, gen := testComponents()
	blob := Encode(nil, 12345, hier, gen, "streams", []byte{1, 2, 3})

	snap, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Boundary != 12345 || snap.EngineName != "streams" {
		t.Fatalf("decoded header (%d, %q)", snap.Boundary, snap.EngineName)
	}
	if string(snap.Engine) != "\x01\x02\x03" {
		t.Fatalf("engine section %v", snap.Engine)
	}

	hier2 := cache.NewHierarchy(testHier())
	gen2 := pipeline.NewLoadAddrGen(1<<16, 0x1000, 4096)
	if err := snap.Apply(hier2, gen2); err != nil {
		t.Fatal(err)
	}
	// Behavioural equivalence: the same accesses produce the same
	// hit/miss outcomes and the same generated addresses.
	for a := isa.Addr(0); a < 1<<14; a += 64 {
		if h1, h2 := hier.ICache.Access(0x1000+a), hier2.ICache.Access(0x1000+a); h1 != h2 {
			t.Fatalf("icache diverged at %#x: %v vs %v", a, h1, h2)
		}
	}
	for i := 0; i < 200; i++ {
		pc := 0x1000 + 4*isa.Addr(i%37)
		if a1, a2 := gen.Next(pc), gen2.Next(pc); a1 != a2 {
			t.Fatalf("addr gen diverged at step %d: %#x vs %#x", i, a1, a2)
		}
	}
}

// TestGeometryMismatch: a snapshot applied to components of different
// geometry fails cleanly instead of silently corrupting them.
func TestGeometryMismatch(t *testing.T) {
	hier, gen := testComponents()
	blob := Encode(nil, 1, hier, gen, "streams", nil)
	snap, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	small := testHier()
	small.ICache.SizeBytes /= 2
	if err := snap.Apply(cache.NewHierarchy(small), pipeline.NewLoadAddrGen(1<<16, 0x1000, 4096)); err == nil {
		t.Fatal("geometry mismatch applied cleanly")
	}
}

// TestDecodeCorrupt: truncation at every length and a flipped byte at
// every offset decode into errors, never panics or false successes that
// change the header fields.
func TestDecodeCorrupt(t *testing.T) {
	hier, gen := testComponents()
	blob := Encode(nil, 7, hier, gen, "ev8", []byte("state"))

	for n := 0; n < len(blob); n++ {
		if _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", n, len(blob))
		}
	}
	// Bit flips anywhere — header, checksum or section payload — must be
	// rejected: the envelope checksum is what keeps a flipped table
	// entry (structurally valid) from restoring silently wrong state.
	for off := 0; off < len(blob); off++ {
		mut := append([]byte(nil), blob...)
		mut[off] ^= 0xff
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at offset %d decoded cleanly", off)
		}
	}
}

// TestDecodeWrongMagicAndVersion: foreign blobs and future versions are
// rejected up front.
func TestDecodeWrongMagicAndVersion(t *testing.T) {
	if _, err := Decode([]byte("not a checkpoint at all")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty blob accepted")
	}
	hier, gen := testComponents()
	blob := Encode(nil, 7, hier, gen, "ev8", nil)
	// Bump the version field (offset 12: magic + checksum) and re-seal
	// the checksum, so the version check itself is what rejects it.
	blob[len(magic)+8]++
	sum := crc32.Checksum(blob[len(magic)+8:], castagnoli)
	binary.LittleEndian.PutUint64(blob[len(magic):], uint64(sum))
	if _, err := Decode(blob); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: %v, want ErrVersion", err)
	}
}
