// Package ckpt defines the versioned binary snapshot that carries a
// shard's warm microarchitectural state across runs: the cache
// hierarchy, the deterministic load address generator, and the fetch
// engine's warm state as an opaque section keyed by engine name.
//
// A snapshot is taken at an interval boundary, after functional warming
// of the prefix has completed and before the first timed cycle. Stored
// in the artifact store under a key derived from the preparation inputs
// and the boundary position, it lets a later run open the same boundary
// in O(state) instead of replaying O(prefix) instructions. Snapshots
// are pure cache entries: any decode failure — truncation, corruption,
// a version or geometry mismatch — is a clean miss that sends the
// caller back to functional warming, never an error surfaced to users.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"streamfetch/internal/cache"
	"streamfetch/internal/ckpt/wire"
	"streamfetch/internal/pipeline"
)

// Version is the snapshot format version. Bump it on any change to the
// layout of the encoded state; old blobs then decode as misses.
const Version = 1

// magic guards against feeding arbitrary store blobs into the decoder.
const magic = "SFCK"

// ErrVersion is reported for a snapshot with an unknown format version.
var ErrVersion = errors.New("ckpt: unsupported snapshot version")

// ErrChecksum is reported when a snapshot's payload fails integrity
// verification. The sections encode raw table contents, so most bit
// flips are structurally valid; without the envelope checksum they
// would restore silently wrong state instead of missing cleanly.
var ErrChecksum = errors.New("ckpt: snapshot checksum mismatch")

// castagnoli is the CRC32-C table for the envelope checksum (hardware-
// accelerated on current CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is a decoded checkpoint. The engine section stays opaque
// here — the caller matches EngineName against the engine it built and
// hands Engine to its LoadWarmState.
type Snapshot struct {
	// Boundary is the trace position (instructions from trace start) the
	// state was captured at.
	Boundary uint64
	// EngineName identifies the fetch engine that produced Engine.
	EngineName string
	// Engine is the engine's warm state (WarmStater encoding).
	Engine []byte

	hier []byte
	gen  []byte
}

// Encode serializes a checkpoint: the hierarchy and generator state are
// captured via their AppendState methods, the engine section is taken
// as already-encoded bytes.
func Encode(dst []byte, boundary uint64, hier *cache.Hierarchy, gen *pipeline.LoadAddrGen, engineName string, engine []byte) []byte {
	dst = append(dst, magic...)
	// Checksum placeholder, filled over everything that follows it.
	sumAt := len(dst)
	dst = wire.AppendU64(dst, 0)
	dst = wire.AppendU64(dst, Version)
	dst = wire.AppendU64(dst, boundary)
	dst = wire.AppendString(dst, engineName)
	dst = wire.AppendBytes(dst, hier.AppendState(nil))
	dst = wire.AppendBytes(dst, gen.AppendState(nil))
	dst = wire.AppendBytes(dst, engine)
	sum := crc32.Checksum(dst[sumAt+8:], castagnoli)
	binary.LittleEndian.PutUint64(dst[sumAt:], uint64(sum))
	return dst
}

// Decode parses an encoded snapshot. It never panics on corrupt input;
// every malformed byte sequence decodes into an error.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+8 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic")
	}
	r := wire.NewReader(data[len(magic):])
	sum := r.U64()
	if crc32.Checksum(data[len(magic)+8:], castagnoli) != uint32(sum) || sum>>32 != 0 {
		return nil, ErrChecksum
	}
	if v := r.U64(); r.Err() == nil && v != Version {
		return nil, ErrVersion
	}
	s := &Snapshot{}
	s.Boundary = r.U64()
	s.EngineName = r.String()
	s.hier = r.Bytes()
	s.gen = r.Bytes()
	s.Engine = r.Bytes()
	if err := r.Done(); err != nil {
		return nil, err
	}
	return s, nil
}

// Apply restores the hierarchy and generator sections onto components of
// identical geometry. On error the components may be partially restored
// and the caller must discard them (rebuild and fall back to functional
// warming). The engine section is applied separately by the caller.
func (s *Snapshot) Apply(hier *cache.Hierarchy, gen *pipeline.LoadAddrGen) error {
	hr := wire.NewReader(s.hier)
	if err := hier.LoadState(hr); err != nil {
		return err
	}
	if err := hr.Done(); err != nil {
		return err
	}
	gr := wire.NewReader(s.gen)
	if err := gen.LoadState(gr); err != nil {
		return err
	}
	return gr.Done()
}
