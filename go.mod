module streamfetch

go 1.24
