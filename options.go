package streamfetch

import (
	"fmt"
	"time"

	"streamfetch/internal/store"
	"streamfetch/internal/trace"
)

// Option configures a Session, either at New or per run through RunWith.
type Option func(*Session)

// WithWidth sets the pipe width (2, 4 or 8 in the paper; default 8).
func WithWidth(w int) Option {
	return func(s *Session) { s.width = w }
}

// WithEngine selects the fetch engine by registry name (default "streams";
// see Engines for the available set).
func WithEngine(name string) Option {
	return func(s *Session) { s.engine = name }
}

// WithEngineOptions passes engine-specific options to the engine factory
// (e.g. a frontend.StreamConfig for "streams"); nil keeps the engine's
// Table-2 defaults.
func WithEngineOptions(opts any) Option {
	return func(s *Session) { s.engineOpts = opts }
}

// WithLayout selects the code layout strategy: "base" or "optimized"
// (default "base").
func WithLayout(name string) Option {
	return func(s *Session) { s.layoutName = name }
}

// WithOptimizedLayout selects the profile-guided optimized code layout.
func WithOptimizedLayout() Option { return WithLayout("optimized") }

// WithBaseLayout selects the unoptimized baseline code layout.
func WithBaseLayout() Option { return WithLayout("base") }

// WithSeed picks the reference-input seed driving branch behaviour in the
// generated trace (default 99).
func WithSeed(seed uint64) Option {
	return func(s *Session) { s.seed = seed }
}

// WithTrainSeed picks the training-input seed used to profile for layout
// optimization (default 7; a different input than the reference run, as in
// the paper's methodology).
func WithTrainSeed(seed uint64) Option {
	return func(s *Session) { s.trainSeed = seed }
}

// WithInstructions sets the dynamic trace length (default 2,000,000).
func WithInstructions(n uint64) Option {
	return func(s *Session) { s.insts = n }
}

// WithTrainInstructions sets the profiling run length for layout
// optimization (default: a quarter of the trace length).
func WithTrainInstructions(n uint64) Option {
	return func(s *Session) { s.trainInsts = n }
}

// WithMaxInstructions stops the simulation after retiring this many
// correct-path instructions (0 = the whole trace).
func WithMaxInstructions(n uint64) Option {
	return func(s *Session) { s.maxInsts = n }
}

// WithTraceFile replays a saved binary trace file (see cmd/tracegen)
// instead of generating a trace from the seed. The file is decoded
// incrementally on each run, so traces far larger than RAM replay in
// constant memory.
func WithTraceFile(path string) Option {
	return func(s *Session) { s.traceFile = path }
}

// WithTrace replays an already-materialized in-memory trace instead of
// generating one from the seed (useful for tests and profiles that hold a
// trace). It takes precedence over WithTraceFile.
func WithTrace(tr *trace.Trace) Option {
	return func(s *Session) { s.traceData = tr }
}

// WithShards splits the run into n contiguous trace intervals simulated
// independently — in parallel up to the process-wide worker budget — and
// merged into one report (default 1: a single sequential run). By default
// each mid-trace shard functionally warms its prefix (caches and address
// generators replay at decode speed, no pipeline), so merged figures track
// a single-shot run closely; pair with WithWarmup to also train predictors
// before each measure window. WithColdShards skips the prefix instead —
// seeking through an indexed trace file (see cmd/tracegen) or
// fast-forwarding the seeded CFG walk — for O(interval) work per shard at
// the cost of cold-start bias.
func WithShards(n int) Option {
	return func(s *Session) { s.shards = n }
}

// WithWarmup prepends roughly this many instructions of warmup lead-in to
// every mid-trace shard (snapped to whole blocks): caches and predictors
// train on the lead-in while every counter stays frozen, and measurement
// starts exactly at the shard's interval boundary. Shard 0 starts at the
// trace head and needs no lead-in. Ignored for unsharded runs.
func WithWarmup(insts uint64) Option {
	return func(s *Session) { s.warmup = insts }
}

// WithColdShards disables functional warming in sharded runs: instead of
// replaying each shard's prefix through the caches and address generators
// at decode speed, shards skip straight to their intervals — seeking
// through the trace file's chunk index when it has one, or fast-forwarding
// the seeded CFG walk — and start cold except for the WithWarmup lead-in.
// This is the speed-maximal mode: per-shard work drops to O(interval), at
// the cost of cold-start bias in cycle-derived figures (the 1MB L2 in
// particular warms far slower than any practical WithWarmup covers).
// Instruction and branch counts still merge losslessly.
func WithColdShards() Option {
	return func(s *Session) { s.coldShards = true }
}

// WithCheckpoints caches warm microarchitectural state in st: every
// mid-trace interval (sharded shard or sampled window) looks up a
// checkpoint for its boundary and, on a hit, restores caches, predictor
// tables and the load address generator in O(state) instead of
// functionally replaying its O(prefix) lead-in; on a miss it warms
// functionally and publishes the checkpoint it produced for the next
// run — including a restarted daemon or another daemon sharing the
// store. Checkpoints key on the preparation inputs (benchmark, seeds,
// engine, width, layout, trace file path) plus the boundary position;
// any mismatch, torn blob or stale format decodes as a clean miss.
// In-memory traces (WithTrace) have no stable identity and never use
// checkpoints, nor do cold shards (WithColdShards), whose skipped
// prefix leaves nothing to capture. Report.CheckpointHits/Misses count
// the outcomes. nil disables checkpointing (the default).
func WithCheckpoints(st store.Store) Option {
	return func(s *Session) { s.ckptStore = st }
}

// WithSampling switches the run to statistical sampling: instead of
// simulating the whole trace, k measure windows of intervalInsts
// instructions each are spread evenly across it, simulated independently
// (with the WithWarmup lead-in and, under WithCheckpoints, checkpoint
// restore per window), and merged. The report carries the merged
// counters plus ipc_ci95, the 95% confidence half-width on IPC derived
// from the per-window spread. Cycle-exact totals are replaced by
// estimates — counts cover only the sampled windows — so sampled runs
// trade exactness for paper-scale speed. k <= 0 disables sampling.
func WithSampling(k int, intervalInsts uint64) Option {
	return func(s *Session) {
		s.samples = k
		s.sampleInsts = intervalInsts
	}
}

// WithICacheLineBytes overrides the L1 instruction cache line size,
// keeping the rest of the Table-2 hierarchy (the Figure-7 misalignment
// sweeps; default is 4x the pipe width in instructions).
func WithICacheLineBytes(n int) Option {
	return func(s *Session) { s.lineBytes = n }
}

// WithStageTimings opts runs into per-stage wall-clock collection: the
// Report carries a Timings breakdown (prepare/warmup/measure/merge;
// queue is filled by the daemon). Off by default — timings are
// wall-clock telemetry, so enabling them makes otherwise byte-identical
// reports differ, which is why golden-pinned direct runs leave this off
// while streamfetchd turns it on for every job it executes.
func WithStageTimings() Option {
	return func(s *Session) { s.stageTimings = true }
}

// WithProgress installs a progress callback invoked roughly every `every`
// retired instructions (0 = 65536). Long sweeps use it for liveness
// reporting; cancellation comes from the Run context.
func WithProgress(every uint64, fn func(Progress)) Option {
	return func(s *Session) {
		s.progressEvery = every
		s.onProgress = fn
	}
}

// ServerOption configures a Server (see NewServer).
type ServerOption func(*serverConfig)

type serverConfig struct {
	queueDepth int
	workers    int
	retainJobs int
	sessionCap int
	store      store.Store
	storeDir   string
	maxJobTime time.Duration
	watchdog   time.Duration
	probeEvery time.Duration
	err        error // first invalid option, surfaced by NewServer
}

// WithQueueDepth bounds the pending-job queue (default 64). A submission
// that would exceed it is rejected with ErrQueueFull (HTTP 429) instead of
// queueing unboundedly.
func WithQueueDepth(n int) ServerOption {
	return func(c *serverConfig) { c.queueDepth = n }
}

// WithWorkers caps concurrently executing jobs (default GOMAXPROCS). Each
// concurrent job holds one internal/par token, so jobs and the shard
// workers inside them never oversubscribe the process-wide budget; when
// the pool has fewer free tokens than the cap, the free-token count is the
// effective cap — except that one job always runs, token-free on the
// dispatcher, when nothing else is in flight, so a zero-token box (one
// core) still makes progress.
func WithWorkers(n int) ServerOption {
	return func(c *serverConfig) { c.workers = n }
}

// WithJobRetention bounds how many finished jobs (their envelopes, reports
// and sweep cells) stay pollable in memory (default 1024). Older terminal
// jobs are evicted oldest-first and answer 404 — unless a durable store
// holds them (WithStoreDir), in which case they are served from disk after
// a restart rather than from the in-memory registry.
func WithJobRetention(n int) ServerOption {
	return func(c *serverConfig) { c.retainJobs = n }
}

// WithSessionCacheSize bounds the prepared-session LRU shared across jobs
// (default 64): enough for a broad working set while keeping a long-lived
// daemon's prepared-artifact memory bounded against clients that sweep
// the key space. n must be positive; NewServer rejects the configuration
// otherwise.
func WithSessionCacheSize(n int) ServerOption {
	return func(c *serverConfig) {
		if n <= 0 {
			c.err = fmt.Errorf("streamfetch: session cache size must be positive, got %d", n)
			return
		}
		c.sessionCap = n
	}
}

// WithStore installs an explicit durability backend: the job journal and
// the content-addressed result cache live in st, and the caller owns its
// lifecycle (Shutdown does not close it). Most callers want WithStoreDir
// or the default in-memory store instead.
func WithStore(st store.Store) ServerOption {
	return func(c *serverConfig) { c.store = st }
}

// WithMaxJobTime caps every job's execution time (queue wait excluded):
// a job still running after d is cut down and finishes as a terminal
// failed envelope carrying its partial, aborted report. A per-request
// timeout_ms below the cap tightens it for that job; one above it is
// clamped. 0 (the default) leaves execution time unbounded.
func WithMaxJobTime(d time.Duration) ServerOption {
	return func(c *serverConfig) {
		if d < 0 {
			c.err = fmt.Errorf("streamfetch: max job time must be non-negative, got %s", d)
			return
		}
		c.maxJobTime = d
	}
}

// WithWatchdog cancels any running job that makes no measurable progress
// — no retired instructions, no completed sweep cells — for d: the job
// finishes as a terminal failed envelope naming the stall. This is the
// backstop for a wedged engine or a pathological configuration that a
// deadline alone would let occupy a worker until it fires. 0 (the
// default) disables the watchdog. Note that session preparation
// (synthesis, profiling, layouts) reports no progress, so d must comfortably
// exceed the longest expected preparation.
func WithWatchdog(d time.Duration) ServerOption {
	return func(c *serverConfig) {
		if d < 0 {
			c.err = fmt.Errorf("streamfetch: watchdog window must be non-negative, got %s", d)
			return
		}
		c.watchdog = d
	}
}

// WithStoreProbeInterval sets how often a degraded server probes the
// store with a test write to detect recovery (default 2s). A successful
// probe flips the server out of degraded mode; the interval bounds how
// stale that detection can be. Must be positive.
func WithStoreProbeInterval(d time.Duration) ServerOption {
	return func(c *serverConfig) {
		if d <= 0 {
			c.err = fmt.Errorf("streamfetch: store probe interval must be positive, got %s", d)
			return
		}
		c.probeEvery = d
	}
}

// WithStoreDir persists jobs and results under dir using the crash-safe
// filesystem backend: accepted jobs are journaled (fsync'd) before the
// 202, terminal results are written as content-addressed blobs, and a
// server restarted on the same dir re-enqueues journaled unfinished jobs
// and keeps serving terminal ones. Takes precedence over the
// STREAMFETCH_STORE_DIR environment variable; WithStore takes precedence
// over both.
func WithStoreDir(dir string) ServerOption {
	return func(c *serverConfig) { c.storeDir = dir }
}
