// Sharded session runs: one logical simulation executed as N independent
// trace intervals simulated in parallel and merged. Sharding is what makes
// paper-scale sweeps (hundreds of benchmark × engine × width × layout
// cells over 100M+-instruction traces) wall-clock-bounded by hardware
// rather than by one sequential instruction stream: each interval skips to
// its start (seeking through the trace-file chunk index, or fast-forwarding
// the seeded CFG walk), optionally warms caches and predictors on a
// counters-frozen lead-in, measures exactly its window, and the mergeable
// counter blocks combine into one Report.
//
// Accuracy: interval boundaries snap to whole blocks and tile the trace
// exactly, so instruction/branch counts merge losslessly; cycle-derived
// figures (IPC, miss rates) carry cold-start error at each interval head,
// which warmup shrinks. shards=1 with no warmup is byte-identical to a
// plain Run.
//
// Warm-state checkpoints (WithCheckpoints) attack the remaining O(shards ×
// prefix) term of functional warming: the warm microarchitectural state a
// shard builds by replaying its prefix is serialized at the interval
// boundary and stored content-addressed; the next run of the same boundary
// restores it in O(state) and skips straight to the timed window. Sampled
// runs (WithSampling) stack K short measure windows on the same executor
// and report a confidence interval instead of simulating the whole trace.
package streamfetch

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"streamfetch/internal/cfg"
	"streamfetch/internal/ckpt"
	"streamfetch/internal/frontend"
	"streamfetch/internal/layout"
	"streamfetch/internal/par"
	"streamfetch/internal/sim"
	"streamfetch/internal/store"
	"streamfetch/internal/trace"
)

// RunSharded executes the session as WithShards configures it — even for
// shards=1, where it runs the single interval through the sharding path
// and produces a report byte-identical to Run. RunWith with a WithShards
// override dispatches here, so most callers never call it directly. The
// context cancels in-flight shards; on cancellation the merged partial
// report (completed shards only, Aborted set) is returned with ctx.Err().
func (s *Session) RunSharded(ctx context.Context, opts ...Option) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	run := *s
	before := run.key()
	for _, o := range opts {
		o(&run)
	}
	if run.key() != before {
		run.prep = &prepared{}
	}
	return run.runSharded(ctx)
}

// intervalSpec positions one simulated interval in the trace: the
// measure window [start, end) in CFG instructions, end == 0 meaning "to
// the trace's end". index labels the interval in reports and progress.
type intervalSpec struct {
	index      int
	start, end uint64
}

// shardOut is one interval's outcome.
type shardOut struct {
	res      sim.Result
	start    uint64 // nominal measure-window start (CFG insts)
	measured uint64
	warm     uint64
	// Checkpoint outcome for this interval: restored from the store
	// (hit), or warmed functionally with checkpointing active (miss).
	// Both false when checkpointing was off or inapplicable.
	ckptHit  bool
	ckptMiss bool
	// Stage wall clock (WithStageTimings only): functional warming up to
	// the first timed cycle, then the timed simulation. A restored or
	// unwarmed interval counts entirely as measure.
	warmSecs    float64
	measureSecs float64
}

func (s *Session) runSharded(ctx context.Context) (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	nshards := s.shards
	if nshards < 1 {
		nshards = 1
	}
	prepStart := time.Now()
	lay, err := s.ensure(ctx, s.layoutName)
	if err != nil {
		return nil, err
	}
	prog := s.prep.prog

	total, err := s.traceTotal(prog)
	if err != nil {
		return nil, err
	}
	// WithMaxInstructions truncates the logical run: partition only its
	// prefix. The cap is in CFG instructions here (trace position), which
	// tracks the unsharded retired-instruction cap to within the layout's
	// materialized jumps.
	partTotal := total
	if s.maxInsts > 0 && s.maxInsts < partTotal {
		partTotal = s.maxInsts
	}
	if uint64(nshards) > partTotal {
		// Never more shards than instructions; in particular a trace
		// whose declared total is 0 (but which may still deliver blocks)
		// runs as one unbounded interval rather than N full copies.
		nshards = int(partTotal)
		if nshards < 1 {
			nshards = 1
		}
	}

	// Even instruction split: bounds[i] is shard i's measure-window start.
	q, r := partTotal/uint64(nshards), partTotal%uint64(nshards)
	bound := func(i int) uint64 {
		b := uint64(i) * q
		if uint64(i) < r {
			return b + uint64(i)
		}
		return b + r
	}
	specs := make([]intervalSpec, nshards)
	for i := range specs {
		end := bound(i + 1)
		if i == nshards-1 && partTotal == total {
			// The last interval runs to the trace's end: a seeded
			// generator may overshoot its budget by the crossing block,
			// and file totals are then covered exactly.
			end = 0
		}
		specs[i] = intervalSpec{index: i, start: bound(i), end: end}
	}

	prepSecs := time.Since(prepStart).Seconds()
	outs, runErr := s.runIntervals(ctx, lay, prog, specs, partTotal, nshards)
	mergeStart := time.Now()
	rep := s.mergeShards(lay, nshards, outs)
	s.attachTimings(rep, outs, prepSecs, time.Since(mergeStart).Seconds())
	if runErr != nil {
		if rep == nil || ctx.Err() == nil {
			return nil, runErr
		}
		rep.Aborted = true
		return rep, runErr
	}
	if rep.Aborted {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// runSampled executes the session in sampled mode (WithSampling): K
// measure windows of sampleInsts instructions spread evenly across the
// trace, each opened through the shared interval executor — so warmup,
// functional warming and checkpoint restore all apply per window — and
// merged into one report carrying an IPC confidence interval. The
// windows tile a small fraction of the trace; everything between them
// is never simulated, which is where the speedup comes from.
func (s *Session) runSampled(ctx context.Context) (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.sampleInsts == 0 {
		return nil, fmt.Errorf("streamfetch: sampled runs need a positive window length (WithSampling)")
	}
	prepStart := time.Now()
	lay, err := s.ensure(ctx, s.layoutName)
	if err != nil {
		return nil, err
	}
	prog := s.prep.prog

	total, err := s.traceTotal(prog)
	if err != nil {
		return nil, err
	}
	partTotal := total
	if s.maxInsts > 0 && s.maxInsts < partTotal {
		partTotal = s.maxInsts
	}

	var specs []intervalSpec
	if partTotal == 0 || s.sampleInsts >= partTotal {
		// The window covers the whole (or an unknown-length) trace:
		// degenerate to one full interval; the CI is then zero.
		end := uint64(0)
		if partTotal < total {
			end = partTotal
		}
		specs = []intervalSpec{{index: 0, start: 0, end: end}}
	} else {
		k := s.samples
		if uint64(k) > partTotal/s.sampleInsts {
			// Never let windows overlap: at most total/L disjoint
			// windows exist.
			k = int(partTotal / s.sampleInsts)
		}
		stride := partTotal / uint64(k)
		// Center each window in its stride so the sample spreads evenly
		// instead of clustering at stride heads.
		offset := (stride - s.sampleInsts) / 2
		specs = make([]intervalSpec, k)
		for i := range specs {
			start := uint64(i)*stride + offset
			specs[i] = intervalSpec{index: i, start: start, end: start + s.sampleInsts}
		}
	}

	prepSecs := time.Since(prepStart).Seconds()
	outs, runErr := s.runIntervals(ctx, lay, prog, specs, partTotal, len(specs))
	mergeStart := time.Now()
	rep := s.mergeSamples(lay, len(specs), outs)
	s.attachTimings(rep, outs, prepSecs, time.Since(mergeStart).Seconds())
	if runErr != nil {
		if rep == nil || ctx.Err() == nil {
			return nil, runErr
		}
		rep.Aborted = true
		return rep, runErr
	}
	if rep.Aborted {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// runIntervals simulates the given intervals in parallel (up to the
// process-wide worker budget). group is the interval count reported to
// progress callbacks. outs[i] stays nil for intervals that did not
// complete (cancellation).
func (s *Session) runIntervals(ctx context.Context, lay *layout.Layout, prog *cfg.Program, specs []intervalSpec, partTotal uint64, group int) ([]*shardOut, error) {
	outs := make([]*shardOut, len(specs))
	err := par.Do(ctx, len(specs), true, func(i int) error {
		out, err := s.runInterval(ctx, lay, prog, specs[i], partTotal, group)
		if err != nil {
			return err
		}
		outs[i] = out
		return nil
	})
	return outs, err
}

// runInterval simulates one trace interval. With checkpointing active
// it first tries to open the interval's warm boundary from the store —
// O(state) instead of O(prefix) — and on any miss (no blob, torn blob,
// stale version, geometry or engine mismatch) falls back to functional
// warming, capturing the warm state it builds and publishing it for the
// next run of the same boundary.
func (s *Session) runInterval(ctx context.Context, lay *layout.Layout, prog *cfg.Program, spec intervalSpec, partTotal uint64, group int) (*shardOut, error) {
	// The checkpointable boundary: where functional warming would stop
	// and the counters-frozen timed lead-in (WithWarmup) begins. A zero
	// boundary means no functional-warming prefix exists — nothing to
	// checkpoint. In-memory traces have no stable identity across runs
	// and cold shards skip the prefix outright, so neither checkpoints.
	boundary := uint64(0)
	if spec.start > s.warmup {
		boundary = spec.start - s.warmup
	}
	key := ""
	useCkpt := false
	if s.ckptStore != nil && !s.coldShards && s.traceData == nil && boundary > 0 {
		key, useCkpt = s.ckptKey(lay, boundary)
	}

	if useCkpt {
		out, err := s.runRestored(ctx, lay, prog, spec, key, boundary, partTotal, group)
		if out != nil || err != nil {
			return out, err
		}
		// Clean miss: warm functionally below and publish the result.
	}

	src, err := s.newSource(prog)
	if err != nil {
		return nil, err
	}
	iv, err := trace.NewInterval(src, prog, trace.IntervalConfig{
		Start:  spec.start,
		End:    spec.end,
		Warmup: s.warmup,
		// By default mid-trace intervals replay their prefix functionally
		// (caches and address generators warm at decode speed), so
		// measured memory behaviour matches a single-shot run closely.
		// WithColdShards trades that accuracy for O(interval) work per
		// shard: the prefix is skipped outright (seeking through an
		// indexed trace file, or fast-forwarding the CFG walk).
		FuncWarm: !s.coldShards,
	})
	if err != nil {
		src.Close()
		return nil, err
	}
	scfg := s.simConfig(ctx, lay, 0, partTotal, spec.index, group)
	var snapshot []byte
	var warmedAt time.Time
	if useCkpt || s.stageTimings {
		// One OnWarmed serves both consumers: the timestamp splits the
		// warmup stage from the measure stage, and (under checkpointing)
		// the snapshot captures the warm state the prefix just built.
		scfg.OnWarmed = func(p *sim.Processor) {
			warmedAt = time.Now()
			if !useCkpt {
				return
			}
			ws, ok := p.Engine().(frontend.WarmStater)
			if !ok {
				return
			}
			snapshot = ckpt.Encode(nil, boundary, p.Hier(), p.Gen(),
				p.Engine().Name(), ws.AppendWarmState(nil))
		}
	}
	proc, err := sim.New(lay, iv, scfg)
	if err != nil {
		iv.Close()
		return nil, err
	}
	runStart := time.Now()
	res := proc.Run()
	runSecs := time.Since(runStart).Seconds()
	if err := iv.Close(); err != nil {
		return nil, fmt.Errorf("streamfetch: shard %d reading trace: %w", spec.index, err)
	}
	if snapshot != nil && !res.Aborted {
		// Publishing is best-effort: a full or failing store must not
		// fail a run that already has its result.
		_ = s.ckptStore.PutBlob(key, snapshot)
	}
	out := &shardOut{
		res:      res,
		start:    spec.start,
		measured: iv.MeasuredInsts(),
		warm:     iv.WarmupInsts(),
		ckptMiss: useCkpt,
	}
	if s.stageTimings {
		out.measureSecs = runSecs
		if !warmedAt.IsZero() {
			out.warmSecs = warmedAt.Sub(runStart).Seconds()
			out.measureSecs = runSecs - out.warmSecs
		}
	}
	return out, nil
}

// runRestored attempts the checkpoint fast path for one interval: load
// the boundary's snapshot, build the interval with functional warming
// disabled (it skips straight to the boundary), restore the warm state
// onto the fresh processor, and run. A (nil, nil) return is a clean
// miss — the blob is absent, undecodable or for a different
// configuration — sending the caller to the functional-warming path; a
// non-nil error is fatal (it would fail that path identically).
func (s *Session) runRestored(ctx context.Context, lay *layout.Layout, prog *cfg.Program, spec intervalSpec, key string, boundary uint64, partTotal uint64, group int) (*shardOut, error) {
	blob, ok, err := s.ckptStore.GetBlob(key)
	if err != nil || !ok {
		return nil, nil
	}
	snap, err := ckpt.Decode(blob)
	if err != nil || snap.Boundary != boundary {
		return nil, nil
	}
	src, err := s.newSource(prog)
	if err != nil {
		return nil, err
	}
	iv, err := trace.NewInterval(src, prog, trace.IntervalConfig{
		Start:  spec.start,
		End:    spec.end,
		Warmup: s.warmup,
		// No functional warming: the snapshot already holds the prefix's
		// effect, so the interval seeks to the boundary and delivers only
		// the timed lead-in (if any) and the measure window.
		FuncWarm: false,
	})
	if err != nil {
		src.Close()
		return nil, err
	}
	scfg := s.simConfig(ctx, lay, 0, partTotal, spec.index, group)
	proc, err := sim.New(lay, iv, scfg)
	if err != nil {
		iv.Close()
		return nil, err
	}
	ws, isWS := proc.Engine().(frontend.WarmStater)
	if !isWS || proc.Engine().Name() != snap.EngineName ||
		snap.Apply(proc.Hier(), proc.Gen()) != nil ||
		ws.LoadWarmState(snap.Engine) != nil {
		// Mismatch or partial restore: discard the whole processor (its
		// state may be half-written) and fall back to functional
		// warming. The source was not consumed before Run, so closing
		// it is the only cleanup needed.
		iv.Close()
		return nil, nil
	}
	runStart := time.Now()
	res := proc.Run()
	runSecs := time.Since(runStart).Seconds()
	if err := iv.Close(); err != nil {
		return nil, fmt.Errorf("streamfetch: shard %d reading trace: %w", spec.index, err)
	}
	out := &shardOut{
		res:      res,
		start:    spec.start,
		measured: iv.MeasuredInsts(),
		warm:     iv.WarmupInsts(),
		ckptHit:  true,
	}
	if s.stageTimings {
		// The restore replaced functional warming, so the whole simulation
		// (timed lead-in included) counts as measure.
		out.measureSecs = runSecs
	}
	return out, nil
}

// ckptKeySpec is a checkpoint's canonical identity, hashed into its
// store key. It covers every session input that shapes the warm state
// at a boundary: the trace identity (benchmark, seeds, lengths, or the
// trace file path), the code layout, the hierarchy geometry, the engine
// and its options, and the boundary position itself. The format version
// is included so a layout change retires old blobs wholesale.
type ckptKeySpec struct {
	Kind       string `json:"kind"`
	Version    int    `json:"version"`
	Benchmark  string `json:"benchmark"`
	TraceFile  string `json:"trace_file,omitempty"`
	Seed       uint64 `json:"seed"`
	TrainSeed  uint64 `json:"train_seed"`
	Insts      uint64 `json:"insts"`
	TrainInsts uint64 `json:"train_insts"`
	Layout     string `json:"layout"`
	Width      int    `json:"width"`
	LineBytes  int    `json:"line_bytes,omitempty"`
	Engine     string `json:"engine"`
	EngineOpts string `json:"engine_opts,omitempty"`
	Boundary   uint64 `json:"boundary"`
}

// ckptKey derives the store key for this session's checkpoint at the
// given boundary. The second return is false when the configuration has
// no stable identity (unserializable engine options) and checkpointing
// must stay off for the run.
func (s *Session) ckptKey(lay *layout.Layout, boundary uint64) (string, bool) {
	opts := ""
	if s.engineOpts != nil {
		b, err := json.Marshal(s.engineOpts)
		if err != nil {
			return "", false
		}
		opts = string(b)
	}
	train := s.trainInsts
	if train == 0 {
		// Normalize the lazy default (see ensure) so "default by
		// omission" and "default spelled out" share checkpoints.
		train = s.insts / 4
	}
	return store.Key(ckptKeySpec{
		Kind:       "ckpt",
		Version:    ckpt.Version,
		Benchmark:  s.benchmark,
		TraceFile:  s.traceFile,
		Seed:       s.seed,
		TrainSeed:  s.trainSeed,
		Insts:      s.insts,
		TrainInsts: train,
		Layout:     lay.Name,
		Width:      s.width,
		LineBytes:  s.lineBytes,
		Engine:     s.engine,
		EngineOpts: opts,
		Boundary:   boundary,
	}), true
}

// mergeOuts combines completed intervals into one report (nil when none
// completed) plus the per-interval rows. Event counters merge
// losslessly; aggregate IPC is the merged retired count over the merged
// cycle count.
func (s *Session) mergeOuts(lay *layout.Layout, outs []*shardOut) (*Report, []IntervalReport) {
	var agg sim.Counters
	var traceInsts, hits, misses uint64
	aborted := false
	intervals := make([]IntervalReport, 0, len(outs))
	done := 0
	for i, o := range outs {
		if o == nil {
			continue
		}
		done++
		agg.Merge(o.res.Counters)
		traceInsts += o.measured
		if o.res.Aborted {
			aborted = true
		}
		if o.ckptHit {
			hits++
		}
		if o.ckptMiss {
			misses++
		}
		intervals = append(intervals, IntervalReport{
			Index:          i,
			StartInsts:     o.start,
			Insts:          o.measured,
			WarmupInsts:    o.warm,
			Cycles:         o.res.Cycles,
			Retired:        o.res.Retired,
			IPC:            o.res.IPC,
			MispredRate:    o.res.MispredRate,
			FetchIPC:       o.res.FetchIPC,
			ICacheMissRate: o.res.ICache.MissRate(),
		})
	}
	if done == 0 {
		return nil, nil
	}
	res := sim.Result{
		Engine:   s.engine,
		Width:    s.width,
		Aborted:  aborted || done < len(outs),
		Counters: agg,
	}
	res.IPC = agg.IPC()
	res.MispredRate = agg.MispredRate()
	res.FetchIPC = agg.Fetch.FetchIPC()
	rep := newReport(s.benchmark, lay, traceInsts, s.reportSeed(), res)
	rep.CheckpointHits = hits
	rep.CheckpointMisses = misses
	return rep, intervals
}

// mergeShards lifts merged intervals into a sharded-run report. For a
// single unwarmed interval the merged report is exactly the plain run's
// report: no shard fields, byte-identical JSON.
func (s *Session) mergeShards(lay *layout.Layout, nshards int, outs []*shardOut) *Report {
	rep, intervals := s.mergeOuts(lay, outs)
	if rep == nil || nshards <= 1 {
		return rep
	}
	rep.Shards = nshards
	rep.WarmupInsts = s.warmup
	rep.Intervals = intervals
	return rep
}

// mergeSamples lifts merged sample windows into a sampled-run report:
// the merged counters are the estimate, and ipc_ci95 carries the 95%
// confidence half-width on IPC from the per-window spread. TraceInsts
// is the sampled coverage, not the full trace length — sampled reports
// are estimates and say so through these fields.
func (s *Session) mergeSamples(lay *layout.Layout, k int, outs []*shardOut) *Report {
	rep, intervals := s.mergeOuts(lay, outs)
	if rep == nil {
		return nil
	}
	rep.Samples = k
	rep.SampleInsts = s.sampleInsts
	rep.WarmupInsts = s.warmup
	rep.Intervals = intervals
	rep.IPCCI95 = ipcCI95(outs)
	return rep
}

// ipcCI95 is the 95% confidence half-width on IPC from the spread of
// per-window IPC observations (Student's t on n-1 degrees of freedom).
// Fewer than two observations give no spread estimate: 0.
func ipcCI95(outs []*shardOut) float64 {
	var ipcs []float64
	for _, o := range outs {
		if o == nil || o.res.Cycles == 0 {
			continue
		}
		ipcs = append(ipcs, o.res.IPC)
	}
	n := len(ipcs)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range ipcs {
		mean += v
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range ipcs {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return tCrit95(n-1) * sd / math.Sqrt(float64(n))
}

// tCrit95 is the two-sided 95% Student-t critical value for df degrees
// of freedom, 1.96 asymptotically.
func tCrit95(df int) float64 {
	table := [...]float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
		2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
		2.048, 2.045, 2.042,
	}
	switch {
	case df < 1:
		return 0
	case df <= len(table):
		return table[df-1]
	default:
		return 1.96
	}
}

// attachTimings fills rep.Timings for a sharded or sampled run under
// WithStageTimings: prepare and merge are elapsed wall clock, warmup and
// measure are summed across the (parallel) intervals — per-stage
// work-seconds, which is what the SLO cost model predicts.
func (s *Session) attachTimings(rep *Report, outs []*shardOut, prepSecs, mergeSecs float64) {
	if rep == nil || !s.stageTimings {
		return
	}
	tm := &Timings{PrepareSeconds: prepSecs, MergeSeconds: mergeSecs}
	for _, o := range outs {
		if o == nil {
			continue
		}
		tm.WarmupSeconds += o.warmSecs
		tm.MeasureSeconds += o.measureSecs
	}
	rep.Timings = tm
}

// traceTotal returns the partition basis: the logical run's length in CFG
// instructions. Exact for in-memory traces, seeded budgets, legacy headers
// and indexed files; a footer-only trace file is pre-scanned once (a
// decode-only pass, no simulation).
func (s *Session) traceTotal(prog *cfg.Program) (uint64, error) {
	switch {
	case s.traceData != nil:
		return s.traceData.Insts, nil
	case s.traceFile != "":
		src, err := trace.Open(s.traceFile)
		if err != nil {
			return 0, fmt.Errorf("streamfetch: opening trace %s: %w", s.traceFile, err)
		}
		if n, exact := src.TotalInsts(); exact {
			src.Close()
			return n, nil
		}
		src.Bind(prog)
		n, err := src.Skip(^uint64(0))
		if err == nil {
			err = src.Close()
		} else {
			src.Close()
		}
		if err != nil {
			return 0, fmt.Errorf("streamfetch: sizing trace %s: %w", s.traceFile, err)
		}
		return n, nil
	default:
		return s.insts, nil
	}
}
