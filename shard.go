// Sharded session runs: one logical simulation executed as N independent
// trace intervals simulated in parallel and merged. Sharding is what makes
// paper-scale sweeps (hundreds of benchmark × engine × width × layout
// cells over 100M+-instruction traces) wall-clock-bounded by hardware
// rather than by one sequential instruction stream: each interval skips to
// its start (seeking through the trace-file chunk index, or fast-forwarding
// the seeded CFG walk), optionally warms caches and predictors on a
// counters-frozen lead-in, measures exactly its window, and the mergeable
// counter blocks combine into one Report.
//
// Accuracy: interval boundaries snap to whole blocks and tile the trace
// exactly, so instruction/branch counts merge losslessly; cycle-derived
// figures (IPC, miss rates) carry cold-start error at each interval head,
// which warmup shrinks. shards=1 with no warmup is byte-identical to a
// plain Run.
package streamfetch

import (
	"context"
	"fmt"

	"streamfetch/internal/cfg"
	"streamfetch/internal/layout"
	"streamfetch/internal/par"
	"streamfetch/internal/sim"
	"streamfetch/internal/trace"
)

// RunSharded executes the session as WithShards configures it — even for
// shards=1, where it runs the single interval through the sharding path
// and produces a report byte-identical to Run. RunWith with a WithShards
// override dispatches here, so most callers never call it directly. The
// context cancels in-flight shards; on cancellation the merged partial
// report (completed shards only, Aborted set) is returned with ctx.Err().
func (s *Session) RunSharded(ctx context.Context, opts ...Option) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	run := *s
	before := run.key()
	for _, o := range opts {
		o(&run)
	}
	if run.key() != before {
		run.prep = &prepared{}
	}
	return run.runSharded(ctx)
}

// shardOut is one interval's outcome.
type shardOut struct {
	res      sim.Result
	start    uint64 // nominal measure-window start (CFG insts)
	measured uint64
	warm     uint64
}

func (s *Session) runSharded(ctx context.Context) (*Report, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	nshards := s.shards
	if nshards < 1 {
		nshards = 1
	}
	lay, err := s.ensure(ctx, s.layoutName)
	if err != nil {
		return nil, err
	}
	prog := s.prep.prog

	total, err := s.traceTotal(prog)
	if err != nil {
		return nil, err
	}
	// WithMaxInstructions truncates the logical run: partition only its
	// prefix. The cap is in CFG instructions here (trace position), which
	// tracks the unsharded retired-instruction cap to within the layout's
	// materialized jumps.
	partTotal := total
	if s.maxInsts > 0 && s.maxInsts < partTotal {
		partTotal = s.maxInsts
	}
	if uint64(nshards) > partTotal {
		// Never more shards than instructions; in particular a trace
		// whose declared total is 0 (but which may still deliver blocks)
		// runs as one unbounded interval rather than N full copies.
		nshards = int(partTotal)
		if nshards < 1 {
			nshards = 1
		}
	}

	// Even instruction split: bounds[i] is shard i's measure-window start.
	q, r := partTotal/uint64(nshards), partTotal%uint64(nshards)
	bound := func(i int) uint64 {
		b := uint64(i) * q
		if uint64(i) < r {
			return b + uint64(i)
		}
		return b + r
	}

	outs := make([]*shardOut, nshards)
	runErr := par.Do(ctx, nshards, true, func(i int) error {
		src, err := s.newSource(prog)
		if err != nil {
			return err
		}
		start := bound(i)
		end := bound(i + 1)
		if i == nshards-1 && partTotal == total {
			// The last interval runs to the trace's end: a seeded
			// generator may overshoot its budget by the crossing block,
			// and file totals are then covered exactly.
			end = 0
		}
		iv, err := trace.NewInterval(src, prog, trace.IntervalConfig{
			Start:  start,
			End:    end,
			Warmup: s.warmup,
			// By default mid-trace shards replay their prefix functionally
			// (caches and address generators warm at decode speed), so
			// measured memory behaviour matches a single-shot run closely.
			// WithColdShards trades that accuracy for O(interval) work per
			// shard: the prefix is skipped outright (seeking through an
			// indexed trace file, or fast-forwarding the CFG walk).
			FuncWarm: !s.coldShards,
		})
		if err != nil {
			src.Close()
			return err
		}
		cfg := s.simConfig(ctx, lay, 0, partTotal, i, nshards)
		proc, err := sim.New(lay, iv, cfg)
		if err != nil {
			iv.Close()
			return err
		}
		res := proc.Run()
		if err := iv.Close(); err != nil {
			return fmt.Errorf("streamfetch: shard %d reading trace: %w", i, err)
		}
		outs[i] = &shardOut{
			res:      res,
			start:    start,
			measured: iv.MeasuredInsts(),
			warm:     iv.WarmupInsts(),
		}
		return nil
	})
	rep := s.mergeShards(lay, nshards, outs)
	if runErr != nil {
		if rep == nil || ctx.Err() == nil {
			return nil, runErr
		}
		rep.Aborted = true
		return rep, runErr
	}
	if rep.Aborted {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// mergeShards combines completed intervals into one report (nil when none
// completed). Event counters merge losslessly; aggregate IPC is the merged
// retired count over the merged cycle count. For a single unwarmed
// interval the merged report is exactly the plain run's report: no shard
// fields, byte-identical JSON.
func (s *Session) mergeShards(lay *layout.Layout, nshards int, outs []*shardOut) *Report {
	var agg sim.Counters
	var traceInsts uint64
	aborted := false
	intervals := make([]IntervalReport, 0, len(outs))
	done := 0
	for i, o := range outs {
		if o == nil {
			continue
		}
		done++
		agg.Merge(o.res.Counters)
		traceInsts += o.measured
		if o.res.Aborted {
			aborted = true
		}
		intervals = append(intervals, IntervalReport{
			Index:          i,
			StartInsts:     o.start,
			Insts:          o.measured,
			WarmupInsts:    o.warm,
			Cycles:         o.res.Cycles,
			Retired:        o.res.Retired,
			IPC:            o.res.IPC,
			MispredRate:    o.res.MispredRate,
			FetchIPC:       o.res.FetchIPC,
			ICacheMissRate: o.res.ICache.MissRate(),
		})
	}
	if done == 0 {
		return nil
	}
	res := sim.Result{
		Engine:   s.engine,
		Width:    s.width,
		Aborted:  aborted || done < len(outs),
		Counters: agg,
	}
	res.IPC = agg.IPC()
	res.MispredRate = agg.MispredRate()
	res.FetchIPC = agg.Fetch.FetchIPC()
	rep := newReport(s.benchmark, lay, traceInsts, s.reportSeed(), res)
	if nshards > 1 {
		rep.Shards = nshards
		rep.WarmupInsts = s.warmup
		rep.Intervals = intervals
	}
	return rep
}

// traceTotal returns the partition basis: the logical run's length in CFG
// instructions. Exact for in-memory traces, seeded budgets, legacy headers
// and indexed files; a footer-only trace file is pre-scanned once (a
// decode-only pass, no simulation).
func (s *Session) traceTotal(prog *cfg.Program) (uint64, error) {
	switch {
	case s.traceData != nil:
		return s.traceData.Insts, nil
	case s.traceFile != "":
		src, err := trace.Open(s.traceFile)
		if err != nil {
			return 0, fmt.Errorf("streamfetch: opening trace %s: %w", s.traceFile, err)
		}
		if n, exact := src.TotalInsts(); exact {
			src.Close()
			return n, nil
		}
		src.Bind(prog)
		n, err := src.Skip(^uint64(0))
		if err == nil {
			err = src.Close()
		} else {
			src.Close()
		}
		if err != nil {
			return 0, fmt.Errorf("streamfetch: sizing trace %s: %w", s.traceFile, err)
		}
		return n, nil
	default:
		return s.insts, nil
	}
}
